// chaos: the deterministic chaos harness CLI (docs/ROBUSTNESS.md).
//
// Sweeps every fault scenario over a seed range, checks each run's
// degradation contracts against a fault-free oracle, and prints one
// line per run plus the aggregate JSON. Exit 0 when every contract
// held, 1 otherwise -- so the command doubles as a CI assertion.
//
//   ./build/tools/chaos                   # full sweep, default seeds
//   ./build/tools/chaos --seeds 5         # quicker sweep
//   ./build/tools/chaos --scenario flap   # one scenario only
//   ./build/tools/chaos --json            # aggregate JSON only

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/chaos_harness.h"

int main(int argc, char** argv) {
  disco::chaos::ChaosOptions options;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      options.seeds = std::atoi(argv[++i]);
    } else if (arg == "--queries" && i + 1 < argc) {
      options.queries_per_run = std::atoi(argv[++i]);
    } else if (arg == "--scenario" && i + 1 < argc) {
      options.scenarios.push_back(argv[++i]);
    } else if (arg == "--json") {
      json_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--queries N] "
                   "[--scenario NAME]... [--json]\n",
                   argv[0]);
      std::fprintf(stderr, "scenarios:");
      for (const std::string& s : disco::chaos::AllChaosScenarios()) {
        std::fprintf(stderr, " %s", s.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  disco::chaos::ChaosSweepResult sweep =
      disco::chaos::RunChaosSweep(options);

  if (!json_only) {
    std::printf("%-20s %6s %6s %6s %8s %8s  %s\n", "scenario", "seed",
                "avail", "quar", "missing", "warns", "verdict");
    for (const disco::chaos::ChaosRunResult& r : sweep.results) {
      std::printf("%-20s %6llu %6.3f %6lld %8lld %8lld  %s\n",
                  r.scenario.c_str(),
                  static_cast<unsigned long long>(r.seed), r.availability,
                  static_cast<long long>(r.quarantined_rows),
                  static_cast<long long>(r.missing_tuples),
                  static_cast<long long>(r.warning_count),
                  r.passed() ? "ok" : "FAIL");
      for (const std::string& v : r.violations) {
        std::printf("    ! %s\n", v.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("%s\n", sweep.ToJson().c_str());
  if (!sweep.all_passed()) {
    std::fprintf(stderr, "FAIL: %d/%d runs violated a contract\n",
                 sweep.runs - sweep.passed, sweep.runs);
    return 1;
  }
  return 0;
}
