// perf_gate: assert a numeric metric inside a bench JSON file stays at
// or above a checked-in floor. CI runs it against BENCH_planning.json
// so a regression in (say) the warm plan-cache speedup fails the build
// instead of silently trending down.
//
//   ./build/tools/perf_gate BENCH_planning.json plan_cache.speedup 5.0
//
// Exit codes: 0 = at/above the floor, 1 = below the floor,
// 2 = file unreadable / unparseable / metric missing.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: %s <bench.json> <dotted.metric> <min>\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const std::string metric = argv[2];
  char* end = nullptr;
  const double floor = std::strtod(argv[3], &end);
  if (end == argv[3] || *end != '\0') {
    std::fprintf(stderr, "error: bad floor '%s'\n", argv[3]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = disco::json::ParseJson(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  const disco::json::JsonValue* value = (*parsed)->GetPath(metric);
  if (value == nullptr || !value->is_number()) {
    std::fprintf(stderr, "error: no numeric metric '%s' in %s\n",
                 metric.c_str(), path.c_str());
    return 2;
  }
  if (value->number_value < floor) {
    std::fprintf(stderr, "FAIL: %s %s = %.4f below floor %.4f\n",
                 path.c_str(), metric.c_str(), value->number_value, floor);
    return 1;
  }
  std::printf("OK: %s %s = %.4f >= %.4f\n", path.c_str(), metric.c_str(),
              value->number_value, floor);
  return 0;
}
