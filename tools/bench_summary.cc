// bench_summary: merge every BENCH_*.json a bench run produced into one
// BENCH_summary.json with a shared flat schema so CI can upload (and
// diff) a single artifact:
//
//   {"results":[
//     {"name":"planning","metric":"plan_cache.speedup","value":31.42,
//      "unit":"x"},
//     ...
//   ]}
//
//   ./build/tools/bench_summary --out BENCH_summary.json \
//       BENCH_planning.json BENCH_federation.json ...
//
// `name` is the input file's basename with the BENCH_ prefix and .json
// suffix stripped; `metric` is the dotted path of each numeric leaf.
// Unparseable files fail the merge (exit 1) -- a truncated bench
// artifact should fail CI, not vanish silently.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/str_util.h"

namespace {

/// "path/BENCH_planning.json" -> "planning".
std::string BenchName(const std::string& path) {
  std::string name = path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("BENCH_", 0) == 0) name = name.substr(6);
  const size_t dot = name.rfind(".json");
  if (dot != std::string::npos && dot == name.size() - 5) {
    name = name.substr(0, dot);
  }
  return name;
}

/// Best-effort unit from the metric's trailing path component.
std::string UnitOf(const std::string& metric) {
  const size_t dot = metric.find_last_of('.');
  const std::string leaf =
      dot == std::string::npos ? metric : metric.substr(dot + 1);
  if (leaf == "speedup" || leaf.rfind("reduction") != std::string::npos) {
    return "x";
  }
  if (leaf.size() >= 2 && leaf.compare(leaf.size() - 2, 2, "ms") == 0) {
    return "ms";
  }
  if (leaf.rfind("ms_", 0) == 0 || leaf.find("_ms_") != std::string::npos) {
    return "ms";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_summary.json";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out needs a path\n");
        return 2;
      }
      out_path = argv[++i];
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--out BENCH_summary.json] BENCH_a.json ...\n",
                 argv[0]);
    return 2;
  }

  std::string out = "{\"results\":[";
  bool first = true;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = disco::json::ParseJson(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    const std::string name = BenchName(path);
    for (const auto& [metric, value] :
         disco::json::FlattenNumbers(**parsed)) {
      out += disco::StringPrintf(
          "%s\n  {\"name\":\"%s\",\"metric\":\"%s\",\"value\":%.6g,"
          "\"unit\":\"%s\"}",
          first ? "" : ",", disco::JsonEscape(name).c_str(),
          disco::JsonEscape(metric).c_str(), value,
          UnitOf(metric).c_str());
      first = false;
    }
  }
  out += "\n]}\n";

  std::ofstream of(out_path);
  if (!of) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  of << out;
  std::printf("wrote %s (%zu input file%s)\n", out_path.c_str(),
              inputs.size(), inputs.size() == 1 ? "" : "s");
  return 0;
}
