// critpath: replay a flight-recorder JSONL query log (written by
// QueryLog::ToJsonl) against the built-in demo federation and print
// the aggregated critical-path picture: which sources/operators own
// the latency, and the ranked what-if scenarios that would shave the
// most off. With no log argument it runs a small built-in workload,
// so CI can capture sample output without a recorded log.
//
//   ./build/tools/critpath                      # built-in workload
//   ./build/tools/critpath query_log.jsonl      # replay a log
//   ./build/tools/critpath query_log.jsonl 8    # top-8 rows
//
// The demo federation matches replay_querylog: an OO7 object database
// (exporting the Yao cost rule) plus a relational "erp" source with a
// Supplier table. Deterministic: the clock is simulated, so the same
// input prints byte-identical output.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench007/oo7.h"
#include "mediator/mediator.h"
#include "mediator/query_log.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

void BuildDemoFederation(disco::mediator::Mediator& med) {
  using namespace disco;  // NOLINT: tool brevity

  bench007::OO7Config config;
  config.num_atomic_parts = 2000;
  config.connections_per_atomic = 1;
  config.num_composite_parts = 100;
  config.num_documents = 100;
  auto oo7 = bench007::BuildOO7Source(config);
  if (!oo7.ok()) Fail(oo7.status());
  wrapper::SimulatedWrapper::Options oo7_opts;
  oo7_opts.cost_rules = bench007::Oo7YaoRuleText();
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(*oo7), oo7_opts));
      !s.ok()) {
    Fail(s);
  }

  auto rel = sources::MakeRelationalSource("erp");
  storage::Table* suppliers = rel->CreateTable(CollectionSchema(
      "Supplier", {{"sid", AttrType::kLong},
                   {"partType", AttrType::kString},
                   {"region", AttrType::kString}}));
  for (int i = 0; i < 200; ++i) {
    if (auto s = suppliers->Insert({Value(int64_t{i}),
                                    Value(std::string("t") +
                                          std::to_string(i % 10)),
                                    Value(std::string(i % 2 ? "east"
                                                            : "west"))});
        !s.ok()) {
      Fail(s);
    }
  }
  if (auto s = suppliers->CreateIndex("sid"); !s.ok()) Fail(s);
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(rel), wrapper::SimulatedWrapper::Options()));
      !s.ok()) {
    Fail(s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using disco::mediator::Mediator;
  using disco::mediator::QueryLog;

  std::vector<std::string> workload;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      auto parsed = QueryLog::ParseJsonLine(line);
      if (parsed.has_value() && !parsed->sql.empty()) {
        workload.push_back(std::move(parsed->sql));
      }
    }
    if (workload.empty()) {
      std::fprintf(stderr, "error: no replayable queries in '%s'\n", argv[1]);
      return 2;
    }
  } else {
    workload = {
        "SELECT id, sid FROM AtomicPart, Supplier "
        "WHERE AtomicPart.type = Supplier.partType AND id <= 20 "
        "AND region = 'east'",
        "SELECT id FROM AtomicPart WHERE id <= 100",
        "SELECT sid FROM Supplier WHERE region = 'west'",
        "SELECT id, sid FROM AtomicPart, Supplier "
        "WHERE AtomicPart.type = Supplier.partType AND id <= 50",
    };
  }
  const int top_k = argc > 2 ? std::atoi(argv[2]) : 5;

  Mediator med;
  BuildDemoFederation(med);

  int failed = 0;
  std::shared_ptr<const disco::mediator::CriticalPath> last;
  for (const std::string& sql : workload) {
    auto r = med.Query(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n  %s\n", sql.c_str(),
                   r.status().ToString().c_str());
      ++failed;
      continue;
    }
    if (r->critical_path != nullptr) last = r->critical_path;
  }

  if (last != nullptr) {
    std::printf("last query:\n%s\n", last->ToText().c_str());
  }
  std::printf("%s", med.critical_paths().ToText(top_k).c_str());
  if (failed > 0) {
    std::printf("(%d quer%s failed to replay)\n", failed,
                failed == 1 ? "y" : "ies");
  }
  return failed == 0 ? 0 : 1;
}
