// replay_querylog: re-run a flight-recorder JSONL query log (written by
// QueryLog::ToJsonl, e.g. the query_log.jsonl that examples/observability
// produces) against a freshly built demo federation, and report how
// today's estimates track today's measurements -- a calibration
// regression check. Deterministic: the federation is seeded and the
// clock is simulated, so the same log replays byte-identically.
//
//   ./build/tools/replay_querylog query_log.jsonl
//   ./build/tools/replay_querylog query_log.jsonl --monitor   # + MonitorReport
//
// The demo federation matches examples/observability: an OO7 object
// database (exporting the Yao cost rule) plus a relational "erp" source
// with a Supplier table. Logs recorded against other schemas will
// report per-query binder errors instead of crashing.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "bench007/oo7.h"
#include "mediator/mediator.h"
#include "mediator/replay.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

void BuildDemoFederation(disco::mediator::Mediator& med) {
  using namespace disco;  // NOLINT: tool brevity

  bench007::OO7Config config;
  config.num_atomic_parts = 2000;
  config.connections_per_atomic = 1;
  config.num_composite_parts = 100;
  config.num_documents = 100;
  auto oo7 = bench007::BuildOO7Source(config);
  if (!oo7.ok()) Fail(oo7.status());
  wrapper::SimulatedWrapper::Options oo7_opts;
  oo7_opts.cost_rules = bench007::Oo7YaoRuleText();
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(*oo7), oo7_opts));
      !s.ok()) {
    Fail(s);
  }

  auto rel = sources::MakeRelationalSource("erp");
  storage::Table* suppliers = rel->CreateTable(CollectionSchema(
      "Supplier", {{"sid", AttrType::kLong},
                   {"partType", AttrType::kString},
                   {"region", AttrType::kString}}));
  for (int i = 0; i < 200; ++i) {
    if (auto s = suppliers->Insert({Value(int64_t{i}),
                                    Value(std::string("t") +
                                          std::to_string(i % 10)),
                                    Value(std::string(i % 2 ? "east"
                                                            : "west"))});
        !s.ok()) {
      Fail(s);
    }
  }
  if (auto s = suppliers->CreateIndex("sid"); !s.ok()) Fail(s);
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(rel), wrapper::SimulatedWrapper::Options()));
      !s.ok()) {
    Fail(s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <query_log.jsonl> [--monitor]\n"
                 "  replays the JSONL query log against the built-in demo "
                 "federation\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  disco::mediator::Mediator med;
  BuildDemoFederation(med);
  auto report = disco::mediator::ReplayQueryLog(&med, buf.str());
  if (!report.ok()) Fail(report.status());
  std::printf("%s", report->ToText().c_str());

  if (argc > 2 && std::string(argv[2]) == "--monitor") {
    std::printf("\n%s", med.MonitorReport().ToText().c_str());
  }
  return report->failed == 0 ? 0 : 1;
}
