// profile_dump: run a small deterministic workload against the demo
// federation (the same one examples/observability and replay_querylog
// build) and dump the execution-profiling surfaces:
//
//   profile.folded   merged folded-stack flame graph across the
//                    workload (speedscope / flamegraph.pl format)
//   waterfall.txt    the last query's cardinality waterfall
//   metrics.prom     OpenMetrics text exposition of the registry
//   trace.json       Chrome trace of the last query (counter tracks
//                    and named scatter lanes included)
//
//   ./build/tools/profile_dump [out_dir]
//
// Everything is simulated-clock driven, so repeated runs write
// byte-identical files -- CI uploads them as build artifacts.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench007/oo7.h"
#include "mediator/mediator.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

void BuildDemoFederation(disco::mediator::Mediator& med) {
  using namespace disco;  // NOLINT: tool brevity

  bench007::OO7Config config;
  config.num_atomic_parts = 2000;
  config.connections_per_atomic = 1;
  config.num_composite_parts = 100;
  config.num_documents = 100;
  auto oo7 = bench007::BuildOO7Source(config);
  if (!oo7.ok()) Fail(oo7.status());
  wrapper::SimulatedWrapper::Options oo7_opts;
  oo7_opts.cost_rules = bench007::Oo7YaoRuleText();
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(*oo7), oo7_opts));
      !s.ok()) {
    Fail(s);
  }

  auto rel = sources::MakeRelationalSource("erp");
  storage::Table* suppliers = rel->CreateTable(CollectionSchema(
      "Supplier", {{"sid", AttrType::kLong},
                   {"partType", AttrType::kString},
                   {"region", AttrType::kString}}));
  for (int i = 0; i < 200; ++i) {
    if (auto s = suppliers->Insert({Value(int64_t{i}),
                                    Value(std::string("t") +
                                          std::to_string(i % 10)),
                                    Value(std::string(i % 2 ? "east"
                                                            : "west"))});
        !s.ok()) {
      Fail(s);
    }
  }
  if (auto s = suppliers->CreateIndex("sid"); !s.ok()) Fail(s);
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(rel), wrapper::SimulatedWrapper::Options()));
      !s.ok()) {
    Fail(s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? std::string(argv[1]) + "/" : "";

  disco::mediator::Mediator med;
  BuildDemoFederation(med);

  const std::vector<std::string> workload = {
      "SELECT id, sid FROM AtomicPart, Supplier "
      "WHERE AtomicPart.type = Supplier.partType AND id <= 20 "
      "AND region = 'east'",
      "SELECT id FROM AtomicPart WHERE id <= 100",
      "SELECT sid FROM Supplier WHERE region = 'west'",
  };
  std::shared_ptr<const disco::mediator::PlanProfile> last_profile;
  disco::tracing::TraceHandle last_trace;
  for (const std::string& sql : workload) {
    auto r = med.Query(sql);
    if (!r.ok()) Fail(r.status());
    if (r->profile != nullptr) last_profile = r->profile;
    last_trace = r->trace;
  }

  std::ofstream(out_dir + "profile.folded") << med.profiles().ToFolded();
  if (last_profile != nullptr) {
    std::ofstream(out_dir + "waterfall.txt") << last_profile->WaterfallText();
  }
  std::ofstream(out_dir + "metrics.prom") << med.metrics()->ToOpenMetrics();
  if (last_trace != nullptr) {
    std::ofstream(out_dir + "trace.json") << last_trace->ToChromeJson();
  }

  std::printf("profiled %lld queries over %zu plan shapes\n",
              static_cast<long long>(med.profiles().total_queries()),
              med.profiles().plan_count());
  std::printf("wrote %sprofile.folded, %swaterfall.txt, %smetrics.prom, "
              "%strace.json\n",
              out_dir.c_str(), out_dir.c_str(), out_dir.c_str(),
              out_dir.c_str());
  return 0;
}
