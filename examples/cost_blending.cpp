// cost_blending: the paper's central mechanism, step by step.
//
// One query -- an index-range scan on the OO7 AtomicParts collection --
// estimated under progressively richer cost information:
//
//   stage 1  generic cost model only (calibration-style defaults)
//   stage 2  + wrapper-exported statistics (cardinalities, min/max,
//              index presence) -- better sizes, same formulas
//   stage 3  + a wrapper predicate-scope rule (Figure 13: Yao's formula)
//   stage 4  + a recorded execution (query-scope, Section 4.3.1):
//              the estimate snaps to the measured cost
//
// After each stage the same subquery is estimated and compared with the
// measured (simulated) execution time.
//
// Build & run:  ./build/examples/cost_blending

#include <cstdio>
#include <memory>

#include "algebra/operator.h"
#include "algebra/plan_printer.h"
#include "bench007/oo7.h"
#include "catalog/catalog.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/history.h"
#include "costmodel/registry.h"
#include "wrapper/registration.h"
#include "wrapper/wrapper.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  using namespace disco;  // NOLINT: example brevity

  // The data: OO7 AtomicParts, unclustered id index (Figure 12 setup).
  bench007::OO7Config config;
  config.num_atomic_parts = 70000;
  Result<std::unique_ptr<sources::DataSource>> built =
      bench007::BuildOO7Source(config);
  if (!built.ok()) Fail(built.status());

  wrapper::SimulatedWrapper::Options wrapper_options;
  wrapper::SimulatedWrapper w(std::move(*built), wrapper_options);

  // The subquery under study: retrieve 10% of AtomicParts by id range.
  std::unique_ptr<algebra::Operator> subquery = algebra::Select(
      algebra::Scan("AtomicPart"), "id", algebra::CmpOp::kLe,
      Value(int64_t{6999}));
  std::printf("subquery: %s\n\n", subquery->ToString().c_str());

  // Measure it once (cold caches).
  w.source()->env()->pool.Clear();
  Result<sources::ExecutionResult> measured = w.Execute(*subquery);
  if (!measured.ok()) Fail(measured.status());
  std::printf("measured (simulated) execution: %.1f s, %lld pages read\n\n",
              measured->total_ms / 1000.0,
              static_cast<long long>(measured->pages_read));

  costmodel::CalibrationParams params;
  auto estimate = [&](costmodel::RuleRegistry* registry,
                      const Catalog* catalog,
                      const costmodel::HistoryManager* history,
                      const char* stage) {
    costmodel::CostEstimator est(registry, catalog, history);
    Result<costmodel::PlanEstimate> e = est.EstimateAt(*subquery, "oo7");
    if (!e.ok()) Fail(e.status());
    double err = (e->root.total_time() - measured->total_ms) /
                 measured->total_ms * 100.0;
    std::printf("%-52s %9.1f s   (error %+6.1f%%)\n", stage,
                e->root.total_time() / 1000.0, err);
  };

  // ---- Stage 1: generic model, default statistics. ---------------------
  {
    costmodel::RuleRegistry registry;
    Catalog catalog;
    if (auto s = costmodel::InstallGenericModel(&registry, params); !s.ok())
      Fail(s);
    // The collection is known only by name: no statistics exported.
    if (auto s = catalog.RegisterSource("oo7"); !s.ok()) Fail(s);
    CollectionSchema schema("AtomicPart", {{"id", AttrType::kLong}});
    CollectionStats guessed;  // all defaults
    // An administrator's (bad) guess: 500k objects of 100 bytes.
    guessed.extent = ExtentStats{500000, 50000000, 100};
    if (auto s = catalog.RegisterCollection("oo7", schema, guessed); !s.ok())
      Fail(s);
    estimate(&registry, &catalog, nullptr,
             "stage 1: generic model, guessed statistics");
  }

  // ---- Stage 2: real statistics from the wrapper. ----------------------
  costmodel::RuleRegistry registry;
  Catalog catalog;
  optimizer::CapabilityTable caps;
  if (auto s = costmodel::InstallGenericModel(&registry, params); !s.ok())
    Fail(s);
  {
    Result<wrapper::RegistrationReport> r =
        wrapper::RegisterWrapper(&w, &catalog, &registry, &caps);
    if (!r.ok()) Fail(r.status());
    estimate(&registry, &catalog, nullptr,
             "stage 2: + exported statistics (calibration)");
  }

  // ---- Stage 3: the wrapper's Yao rule (predicate scope). --------------
  {
    costlang::CompileSchema cs;
    cs.AddCollection("AtomicPart", {"id", "docId", "buildDate", "x", "y",
                                    "type"});
    Result<costlang::CompiledRuleSet> rules =
        costlang::CompileRuleText(bench007::Oo7YaoRuleText(), cs);
    if (!rules.ok()) Fail(rules.status());
    if (auto s = registry.AddWrapperRules("oo7", std::move(*rules)); !s.ok())
      Fail(s);
    estimate(&registry, &catalog, nullptr,
             "stage 3: + wrapper cost rule (Yao formula)");
  }

  // ---- Stage 4: a recorded execution (query scope). --------------------
  {
    costmodel::HistoryManager history;
    costmodel::CostVector observed = costmodel::CostVector::Full(
        static_cast<double>(measured->tuples.size()), 0, 0,
        measured->first_tuple_ms, 0, measured->total_ms);
    history.RecordExecution(&registry, "oo7", *subquery,
                            /*estimated_total_ms=*/0, observed);
    estimate(&registry, &catalog, &history,
             "stage 4: + recorded execution (query scope)");
  }

  std::printf(
      "\nThe hierarchy at work: each stage overrides the one below it\n"
      "(query > predicate > collection > wrapper > default), which is\n"
      "exactly the Figure 10 specialization hierarchy of the paper.\n");
  return 0;
}
