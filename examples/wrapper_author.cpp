// wrapper_author: what writing a wrapper looks like, end to end --
// the extended IDL of Section 3 (interfaces + cardinality methods), the
// cost-rule language of Figure 9, and how the mediator blends the rules.
//
// Build & run:  ./build/examples/wrapper_author

#include <cstdio>

#include "algebra/operator.h"
#include "algebra/plan_printer.h"
#include "catalog/catalog.h"
#include "costlang/compiler.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/registry.h"
#include "idl/idl_parser.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

// The interface a wrapper exports: Figure 4 of the paper, verbatim in
// spirit -- attributes, an operation, and the two cardinality methods.
const char* kEmployeeIdl = R"(
interface Employee {
  attribute Long salary;
  attribute String name;
  short age();
  cardinality extent(out long CountObject, out long TotalSize,
                     out long ObjectSize);
  cardinality attribute(in String AttributeName, out Boolean Indexed,
                        out Long CountDistinct, out Constant Min,
                        out Constant Max);
}
)";

// The wrapper's cost rules, in the Figure 9 language. Three scopes at
// once: a wrapper-scope scan rule, a collection-scope select rule, and a
// predicate-scope rule for the salary attribute (cf. Figure 8).
const char* kEmployeeRules = R"(
define PageSize = 4000;

# wrapper scope: scans of anything this source serves
scan(C) {
  TotalTime = 120 + C.TotalSize / PageSize * 12 + 2 * C.CountObject;
}

# collection scope: any selection on Employee
select(Employee, P) {
  CountObject = Employee.CountObject * selectivity();
  TotalTime = Employee.TotalTime + 0.01 * Employee.CountObject;
}

# predicate scope: equality on the (indexed) salary attribute
select(Employee, salary = V) {
  CountObject = Employee.CountObject / Employee.salary.CountDistinct;
  TotalTime = 120 + 3 * 12 + CountObject * 2;
}
)";

}  // namespace

int main() {
  using namespace disco;  // NOLINT: example brevity

  // ---- 1. Parse the IDL. ------------------------------------------------
  Result<idl::InterfaceDef> parsed = idl::ParseInterface(kEmployeeIdl);
  if (!parsed.ok()) Fail(parsed.status());
  std::printf("parsed interface: %s\n", parsed->schema.ToString().c_str());
  std::printf("declares extent stats: %s, attribute stats: %s\n\n",
              parsed->declares_extent_stats ? "yes" : "no",
              parsed->declares_attribute_stats ? "yes" : "no");

  // ---- 2. The statistics behind the cardinality methods. ----------------
  Catalog catalog;
  if (auto s = catalog.RegisterSource("hr"); !s.ok()) Fail(s);
  CollectionStats stats;
  stats.extent = ExtentStats{10000, 1200000, 120};
  AttributeStats salary;
  salary.indexed = true;
  salary.count_distinct = 1000;
  salary.min = Value(int64_t{1000});
  salary.max = Value(int64_t{30000});
  stats.attributes["salary"] = salary;
  if (auto s = catalog.RegisterCollection("hr", parsed->schema, stats);
      !s.ok()) {
    Fail(s);
  }

  // ---- 3. Compile the cost rules against the wrapper's schema. ----------
  costlang::CompileSchema cs;
  cs.AddCollection("Employee", {"salary", "name"});
  Result<costlang::CompiledRuleSet> rules =
      costlang::CompileRuleText(kEmployeeRules, cs);
  if (!rules.ok()) Fail(rules.status());
  std::printf("compiled %zu rules;", rules->rules.size());
  std::printf(" bytecode of the scan rule's TotalTime formula:\n%s\n",
              rules->rules[0].formulas[0].program.Disassemble().c_str());

  // ---- 4. Install everything and look at the hierarchy. -----------------
  costmodel::RuleRegistry registry;
  if (auto s = costmodel::InstallGenericModel(
          &registry, costmodel::CalibrationParams());
      !s.ok()) {
    Fail(s);
  }
  if (auto s = registry.AddWrapperRules("hr", std::move(*rules)); !s.ok()) {
    Fail(s);
  }

  // ---- 5. Estimate plans; watch different scopes win. --------------------
  costmodel::CostEstimator estimator(&registry, &catalog);
  auto show = [&](std::unique_ptr<algebra::Operator> plan) {
    Result<costmodel::PlanEstimate> est = estimator.EstimateAt(*plan, "hr");
    if (!est.ok()) Fail(est.status());
    std::printf("%-55s -> %s\n", plan->ToString().c_str(),
                est->root.ToString().c_str());
  };

  show(algebra::Scan("Employee"));
  show(algebra::Select(algebra::Scan("Employee"), "name",
                       algebra::CmpOp::kEq, Value("Smith")));
  show(algebra::Select(algebra::Scan("Employee"), "salary",
                       algebra::CmpOp::kEq, Value(int64_t{25000})));

  std::printf(
      "\nscan -> wrapper-scope rule; select(name=...) -> collection-scope\n"
      "rule; select(salary=...) -> predicate-scope rule. Variables no rule\n"
      "computes fall through to the mediator's generic model.\n");
  return 0;
}
