// fault_tolerance: a federated query surviving a flaky source.
//
// A two-source federation where one source drops every connection for a
// while and then recovers. The mediator retries with exponential
// backoff, answers partially (with a warning) when a union branch stays
// dead, opens a circuit breaker after repeated failures, and routes the
// next query to a declared replica -- all on the simulated clock, so
// every run of this example prints the same numbers.
//
// Build & run:  ./build/examples/fault_tolerance

#include <cstdio>
#include <memory>
#include <string>

#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

std::unique_ptr<disco::wrapper::FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows,
    disco::wrapper::FaultProfile profile) {
  auto src = disco::sources::MakeRelationalSource(source);
  disco::storage::Table* t = src->CreateTable(disco::CollectionSchema(
      collection, {{"id", disco::AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    if (auto s = t->Insert({disco::Value(int64_t{i})}); !s.ok()) Fail(s);
  }
  auto inner = std::make_unique<disco::wrapper::SimulatedWrapper>(
      std::move(src), disco::wrapper::SimulatedWrapper::Options{});
  return std::make_unique<disco::wrapper::FaultInjectingWrapper>(
      std::move(inner), profile);
}

void Report(const disco::Result<disco::mediator::QueryResult>& r) {
  if (!r.ok()) {
    std::printf("   -> %s\n\n", r.status().ToString().c_str());
    return;
  }
  std::printf("   -> %zu rows in %.0f simulated ms\n", r->tuples.size(),
              r->measured_ms);
  for (const disco::mediator::ExecWarning& w : r->warnings) {
    std::printf("      warning: %s\n", w.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace disco;  // NOLINT: example brevity

  mediator::MediatorOptions options;
  options.fault_tolerance.retry = mediator::RetryPolicy::Standard(3);
  options.fault_tolerance.allow_partial = true;
  options.breaker.failure_threshold = 3;
  mediator::Mediator med(options);

  // 'archive' is healthy. 'branch' answers, but its network drops every
  // connection twice before letting one through.
  if (auto s = med.RegisterWrapper(MakeSource(
          "archive", "ArchiveOrders", 500, wrapper::FaultProfile{}));
      !s.ok()) {
    Fail(s);
  }
  auto branch = MakeSource("branch", "BranchOrders", 120,
                           wrapper::FaultProfile::Outage(2));
  wrapper::FaultInjectingWrapper* branch_ptr = branch.get();
  if (auto s = med.RegisterWrapper(std::move(branch)); !s.ok()) Fail(s);

  std::printf("== 1. A flaky source survives via retries\n");
  auto all_orders =
      algebra::Union(algebra::Submit("archive", algebra::Scan("ArchiveOrders")),
                     algebra::Submit("branch", algebra::Scan("BranchOrders")));
  Report(med.Execute(*all_orders));

  std::printf("== 2. A dead source degrades the union to a partial answer\n");
  branch_ptr->SetProfile(wrapper::FaultProfile::Dead());
  Report(med.Execute(*all_orders));

  std::printf("== 3. Repeated failures opened the circuit breaker\n");
  std::printf("   branch breaker: %s (%lld failures recorded)\n\n",
              mediator::BreakerStateToString(
                  med.health()->StateAt("branch", med.sim_now_ms())),
              static_cast<long long>(
                  med.health()->Health("branch").total_failures));

  std::printf("== 4. A declared replica lets the optimizer route around it\n");
  if (auto s = med.RegisterWrapper(MakeSource("mirror", "MirrorOrders", 120,
                                              wrapper::FaultProfile{}));
      !s.ok()) {
    Fail(s);
  }
  if (auto s = med.DeclareEquivalent("BranchOrders", "MirrorOrders"); !s.ok()) {
    Fail(s);
  }
  Report(med.Query("SELECT id FROM BranchOrders WHERE id < 10"));

  std::printf("(breaker cooldowns run on the simulated clock: after %.0f ms\n"
              " of simulated quiet the next submit probes 'branch' again)\n",
              med.health()->options().cooldown_ms);
  return 0;
}
