// observability: watching a federated query run.
//
// Registers two sources, runs one cross-source join, and then shows
// the three observability surfaces this library provides:
//
//   1. the query's span tree (deterministic: simulated-clock stamps),
//      exportable as Chrome trace-event JSON for chrome://tracing or
//      https://ui.perfetto.dev,
//   2. EXPLAIN ANALYZE: per plan node, the optimizer's estimate next
//      to what execution measured, with the q-error between them and
//      the cumulative cost-model accuracy scoreboard,
//   3. the metrics registry (counters / gauges / histograms),
//   4. the query-log flight recorder (JSONL export, replayable with
//      ./build/tools/replay_querylog),
//   5. Mediator::MonitorReport() -- the operational dashboard (now
//      including the profiler's hottest-operators panels),
//   6. the execution profiler: per-operator CPU/wait attribution as a
//      folded-stack flame graph, plus the Prometheus/OpenMetrics text
//      exposition of the metrics registry.
//
// Build & run:  ./build/examples/observability
// It also writes trace.json, query_log.jsonl, profile.folded, and
// metrics.prom to the working directory: load trace.json in a trace
// viewer to see the query timeline, profile.folded in
// https://www.speedscope.app, and replay the log with
//   ./build/tools/replay_querylog query_log.jsonl --monitor

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "bench007/oo7.h"
#include "mediator/mediator.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  using namespace disco;  // NOLINT: example brevity

  mediator::Mediator med;

  // An OO7 object database exporting the Yao cost rule.
  bench007::OO7Config config;
  config.num_atomic_parts = 2000;
  config.connections_per_atomic = 1;
  config.num_composite_parts = 100;
  config.num_documents = 100;
  auto oo7 = bench007::BuildOO7Source(config);
  if (!oo7.ok()) Fail(oo7.status());
  wrapper::SimulatedWrapper::Options oo7_opts;
  oo7_opts.cost_rules = bench007::Oo7YaoRuleText();
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(*oo7), oo7_opts));
      !s.ok()) {
    Fail(s);
  }

  // A relational source with no exported cost rules (the mediator falls
  // back to its calibrated generic model for it).
  auto rel = sources::MakeRelationalSource("erp");
  storage::Table* suppliers = rel->CreateTable(CollectionSchema(
      "Supplier", {{"sid", AttrType::kLong},
                   {"partType", AttrType::kString},
                   {"region", AttrType::kString}}));
  for (int i = 0; i < 200; ++i) {
    if (auto s = suppliers->Insert(
            {Value(int64_t{i}), Value(std::string("t") + std::to_string(i % 10)),
             Value(std::string(i % 2 ? "east" : "west"))});
        !s.ok()) {
      Fail(s);
    }
  }
  if (auto s = suppliers->CreateIndex("sid"); !s.ok()) Fail(s);
  if (auto s = med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
          std::move(rel), wrapper::SimulatedWrapper::Options()));
      !s.ok()) {
    Fail(s);
  }

  const std::string sql =
      "SELECT id, sid FROM AtomicPart, Supplier "
      "WHERE AtomicPart.type = Supplier.partType AND id <= 20 "
      "AND region = 'east'";

  std::printf("== 1. The query's span tree\n\n");
  auto r = med.Query(sql);
  if (!r.ok()) Fail(r.status());
  std::printf("%s\n", r->trace->ToText().c_str());

  std::ofstream("trace.json") << r->trace->ToChromeJson();
  std::printf("(wrote trace.json -- load it in chrome://tracing or"
              " ui.perfetto.dev)\n\n");

  std::printf("== 2. EXPLAIN ANALYZE (second run: history has kicked in)\n\n");
  auto report = med.ExplainAnalyze(sql);
  if (!report.ok()) Fail(report.status());
  std::printf("%s\n", report->c_str());

  std::printf("== 3. The metrics registry\n\n");
  std::printf("%s", med.metrics()->ToText().c_str());

  std::printf("\n== 4. The query-log flight recorder\n\n");
  std::ofstream("query_log.jsonl") << med.query_log()->ToJsonl();
  std::printf("(wrote query_log.jsonl -- %lld entries; replay it with\n"
              " ./build/tools/replay_querylog query_log.jsonl --monitor)\n",
              static_cast<long long>(med.query_log()->size()));

  std::printf("\n== 5. MonitorReport: the operational dashboard\n\n");
  std::printf("%s", med.MonitorReport().ToText().c_str());

  std::printf("\n== 6. The execution profiler\n\n");
  // Every EXPLAIN ANALYZE above already ended with the cardinality
  // waterfall; here is the process-wide flame graph (folded stacks
  // merged across every profiled query, values in microseconds).
  std::printf("%s", med.profiles().ToFolded().c_str());
  std::ofstream("profile.folded") << med.profiles().ToFolded();
  std::ofstream("metrics.prom") << med.metrics()->ToOpenMetrics();
  std::printf("(wrote profile.folded -- load it in speedscope.app --\n"
              " and metrics.prom, the OpenMetrics exposition)\n");
  return 0;
}
