// federated_query: a three-source federation -- the scenario the paper's
// introduction motivates. An object database (OO7 design library), a
// relational ERP system, and a flat-file web log, each behind a wrapper
// exporting different amounts of cost information.
//
// Build & run:  ./build/examples/federated_query

#include <cstdio>
#include <memory>

#include "bench007/oo7.h"
#include "mediator/mediator.h"

namespace {

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

void RunQuery(disco::mediator::Mediator* mediator, const char* title,
              const std::string& sql) {
  std::printf("== %s\n   %s\n", title, sql.c_str());
  disco::Result<disco::mediator::QueryResult> r = mediator->Query(sql);
  if (!r.ok()) Fail(r.status());
  std::printf("%s", r->plan_text.c_str());
  std::printf("   rows: %zu   estimated: %.1f s   measured: %.1f s\n\n",
              r->tuples.size(), r->estimated_ms / 1000.0,
              r->measured_ms / 1000.0);
}

}  // namespace

int main() {
  using namespace disco;  // NOLINT: example brevity

  mediator::Mediator mediator;

  // Source 1: the OO7 object database. Its wrapper is diligent: it
  // exports statistics AND the Yao cost rule for its unclustered index.
  bench007::OO7Config config;
  config.num_atomic_parts = 35000;
  config.num_documents = 500;
  Result<std::unique_ptr<sources::DataSource>> oo7 =
      bench007::BuildOO7Source(config);
  if (!oo7.ok()) Fail(oo7.status());
  wrapper::SimulatedWrapper::Options oo7_options;
  oo7_options.cost_rules = bench007::Oo7YaoRuleText();
  if (auto s = mediator.RegisterWrapper(
          std::make_unique<wrapper::SimulatedWrapper>(std::move(*oo7),
                                                      oo7_options));
      !s.ok()) {
    Fail(s);
  }

  // Source 2: a relational ERP. Statistics with histograms, no cost
  // rules (the generic model covers it).
  auto erp = sources::MakeRelationalSource("erp");
  storage::Table* suppliers = erp->CreateTable(CollectionSchema(
      "Supplier", {{"sid", AttrType::kLong},
                   {"partType", AttrType::kString},
                   {"region", AttrType::kString}}));
  for (int i = 0; i < 2000; ++i) {
    if (auto s = suppliers->Insert(
            {Value(int64_t{i}),
             Value(std::string("t") + std::to_string(i % 10)),
             Value(std::string(i % 3 ? "europe" : "asia"))});
        !s.ok()) {
      Fail(s);
    }
  }
  if (auto s = suppliers->CreateIndex("sid"); !s.ok()) Fail(s);
  wrapper::SimulatedWrapper::Options erp_options;
  erp_options.histogram_buckets = 32;
  if (auto s = mediator.RegisterWrapper(
          std::make_unique<wrapper::SimulatedWrapper>(std::move(erp),
                                                      erp_options));
      !s.ok()) {
    Fail(s);
  }

  // Source 3: a web log behind a scan-only file wrapper. It cannot join
  // or aggregate; the mediator compensates.
  auto weblog = sources::MakeFileSource("weblog");
  storage::Table* hits = weblog->CreateTable(CollectionSchema(
      "Hit", {{"docId", AttrType::kLong}, {"count", AttrType::kLong}}));
  for (int i = 0; i < 5000; ++i) {
    if (auto s = hits->Insert({Value(int64_t{i % 500}),
                               Value(int64_t{(i * 13) % 2000})});
        !s.ok()) {
      Fail(s);
    }
  }
  wrapper::SimulatedWrapper::Options weblog_options;
  weblog_options.capabilities = optimizer::SourceCapabilities::FilterOnly();
  if (auto s = mediator.RegisterWrapper(
          std::make_unique<wrapper::SimulatedWrapper>(std::move(weblog),
                                                      weblog_options));
      !s.ok()) {
    Fail(s);
  }

  std::printf("registered sources: oo7 (full cost info), erp (statistics "
              "only), weblog (scan-only)\n\n");

  RunQuery(&mediator, "single-source index range scan (Yao rule applies)",
           "SELECT id, x, y FROM AtomicPart WHERE id <= 3499");

  RunQuery(&mediator, "same-source join pushed into the object database",
           "SELECT id, length FROM AtomicPart, Connection "
           "WHERE AtomicPart.id = Connection.fromId AND id <= 99");

  RunQuery(&mediator, "cross-source join: object db x relational",
           "SELECT id, sid FROM AtomicPart, Supplier "
           "WHERE AtomicPart.type = Supplier.partType "
           "AND id <= 20 AND region = 'asia'");

  RunQuery(&mediator,
           "three sources: documents, their popularity, their parts",
           "SELECT title, count FROM Document, Hit, CompositePart "
           "WHERE Document.id = Hit.docId "
           "AND CompositePart.documentId = Document.id "
           "AND count >= 1900");

  RunQuery(&mediator, "aggregation over a federation",
           "SELECT region, count(*) FROM Supplier GROUP BY region");

  return 0;
}
