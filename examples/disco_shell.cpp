// disco_shell: an interactive mediator console over a demo federation.
//
//   ./build/examples/disco_shell            # interactive
//   echo "SELECT count(*) FROM AtomicPart" | ./build/examples/disco_shell
//
// Commands:
//   <SQL>            optimize + execute, print rows and costs
//   \plan <SQL>      optimize only, print the chosen plan + estimate
//   \explain <SQL>   per-node winning cost rules of the chosen plan
//   \catalog         registered sources, collections and statistics
//   \rules           the cost-rule hierarchy (Figure 10, rendered)
//   \history         recorded query-scope entries
//   \help, \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "algebra/plan_printer.h"
#include "bench007/oo7.h"
#include "common/str_util.h"
#include "mediator/mediator.h"

namespace {

using disco::mediator::Mediator;

void Fail(const disco::Status& s) {
  std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
  std::exit(1);
}

std::unique_ptr<Mediator> BuildDemoFederation() {
  auto med = std::make_unique<Mediator>();

  disco::bench007::OO7Config config;
  config.num_atomic_parts = 14000;
  config.num_composite_parts = 200;
  config.connections_per_atomic = 2;
  config.num_documents = 200;
  auto oo7 = disco::bench007::BuildOO7Source(config);
  if (!oo7.ok()) Fail(oo7.status());
  disco::wrapper::SimulatedWrapper::Options oo7_opts;
  oo7_opts.cost_rules = disco::bench007::Oo7YaoRuleText();
  if (auto s = med->RegisterWrapper(
          std::make_unique<disco::wrapper::SimulatedWrapper>(std::move(*oo7),
                                                             oo7_opts));
      !s.ok()) {
    Fail(s);
  }

  auto erp = disco::sources::MakeRelationalSource("erp");
  disco::storage::Table* suppliers = erp->CreateTable(disco::CollectionSchema(
      "Supplier", {{"sid", disco::AttrType::kLong},
                   {"partType", disco::AttrType::kString},
                   {"region", disco::AttrType::kString}}));
  for (int i = 0; i < 1000; ++i) {
    if (auto s = suppliers->Insert(
            {disco::Value(int64_t{i}),
             disco::Value("t" + std::to_string(i % 10)),
             disco::Value(std::string(i % 3 ? "europe" : "asia"))});
        !s.ok()) {
      Fail(s);
    }
  }
  if (auto s = suppliers->CreateIndex("sid"); !s.ok()) Fail(s);
  disco::wrapper::SimulatedWrapper::Options erp_opts;
  erp_opts.histogram_buckets = 32;
  if (auto s = med->RegisterWrapper(
          std::make_unique<disco::wrapper::SimulatedWrapper>(std::move(erp),
                                                             erp_opts));
      !s.ok()) {
    Fail(s);
  }
  return med;
}

void PrintCatalog(const Mediator& med) {
  for (const std::string& source : med.catalog().Sources()) {
    std::printf("source %s\n", source.c_str());
    for (const std::string& coll : med.catalog().CollectionsOf(source)) {
      auto entry = med.catalog().Collection(coll);
      if (!entry.ok()) continue;
      std::printf("  %s  %s\n", entry->schema.ToString().c_str(),
                  entry->stats.extent.ToString().c_str());
      for (const auto& [attr, stats] : entry->stats.attributes) {
        std::printf("    .%s %s\n", attr.c_str(), stats.ToString().c_str());
      }
    }
  }
}

void PrintRows(const disco::mediator::QueryResult& result, size_t limit) {
  for (const std::string& c : result.columns) std::printf("%-18s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < result.tuples.size() && i < limit; ++i) {
    for (const disco::Value& v : result.tuples[i]) {
      std::printf("%-18s", v.ToString().c_str());
    }
    std::printf("\n");
  }
  if (result.tuples.size() > limit) {
    std::printf("... (%zu rows total)\n", result.tuples.size());
  }
}

int Repl() {
  std::unique_ptr<Mediator> med = BuildDemoFederation();
  std::printf(
      "disco shell -- demo federation: oo7 (AtomicPart, CompositePart,\n"
      "Connection, Document; Yao cost rules) + erp (Supplier; histograms).\n"
      "Type SQL, or \\help.\n");

  std::string line;
  while (true) {
    std::printf("disco> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string input(disco::StripWhitespace(line));
    if (input.empty()) continue;

    if (input == "\\quit" || input == "\\q") break;
    if (input == "\\help") {
      std::printf(
          "  <SQL>          run a query\n"
          "  \\plan <SQL>    show the chosen plan without executing\n"
          "  \\explain <SQL> per-node winning cost rules\n"
          "  \\catalog       sources, collections, statistics\n"
          "  \\rules         the cost-rule scope hierarchy\n"
          "  \\history       recorded subquery costs\n"
          "  \\quit          leave\n");
      continue;
    }
    if (input == "\\catalog") {
      PrintCatalog(*med);
      continue;
    }
    if (input == "\\rules") {
      std::printf("%s", med->registry()->Describe().c_str());
      continue;
    }
    if (input == "\\history") {
      std::printf("%d query-scope entries, %d observations\n",
                  med->registry()->num_query_entries(),
                  med->history()->num_observations());
      continue;
    }
    if (disco::StartsWith(input, "\\explain ")) {
      auto text = med->Explain(input.substr(9));
      if (!text.ok()) {
        std::printf("error: %s\n", text.status().ToString().c_str());
        continue;
      }
      std::printf("%s", text->c_str());
      continue;
    }
    if (disco::StartsWith(input, "\\plan ")) {
      auto plan = med->Plan(input.substr(6));
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        continue;
      }
      std::printf("%s", disco::algebra::PrintPlan(*plan->plan).c_str());
      std::printf("estimated: %.1f ms  (%d candidate plans costed)\n",
                  plan->estimated_ms, plan->stats.plans_costed);
      continue;
    }
    if (input[0] == '\\') {
      std::printf("unknown command; try \\help\n");
      continue;
    }

    auto result = med->Query(input);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintRows(*result, 20);
    std::printf("estimated %.1f ms, measured %.1f ms (simulated)\n",
                result->estimated_ms, result->measured_ms);
  }
  return 0;
}

}  // namespace

int main() { return Repl(); }
