// Quickstart: stand up a mediator over one simulated data source, run a
// declarative query, look at the chosen plan.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "mediator/mediator.h"

using disco::AttrType;
using disco::CollectionSchema;
using disco::Value;

int main() {
  // 1. A mediator. Its generic cost model is installed on construction.
  disco::mediator::Mediator mediator;

  // 2. A data source: here a simulated relational system with one table.
  auto source = disco::sources::MakeRelationalSource("hr");
  disco::storage::Table* employees = source->CreateTable(CollectionSchema(
      "Employee", {{"id", AttrType::kLong},
                   {"name", AttrType::kString},
                   {"salary", AttrType::kLong}}));
  for (int i = 0; i < 10000; ++i) {
    disco::Status s = employees->Insert({
        Value(int64_t{i}),
        Value("employee-" + std::to_string(i)),
        Value(int64_t{30000 + (i * 37) % 90000}),
    });
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!employees->CreateIndex("id").ok()) return 1;

  // 3. Wrap it and register with the mediator (the registration phase:
  //    schema, statistics, capabilities and -- optionally -- cost rules
  //    flow to the mediator).
  disco::wrapper::SimulatedWrapper::Options options;
  disco::Status reg = mediator.RegisterWrapper(
      std::make_unique<disco::wrapper::SimulatedWrapper>(std::move(source),
                                                         options));
  if (!reg.ok()) {
    std::fprintf(stderr, "registration failed: %s\n", reg.ToString().c_str());
    return 1;
  }

  // 4. Query it.
  disco::Result<disco::mediator::QueryResult> result = mediator.Query(
      "SELECT name, salary FROM Employee WHERE salary >= 110000 "
      "ORDER BY salary DESC");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("chosen plan:\n%s\n", result->plan_text.c_str());
  std::printf("estimated: %.1f ms   measured (simulated): %.1f ms\n",
              result->estimated_ms, result->measured_ms);
  std::printf(
      "(the gap is the point: this wrapper exports statistics but no cost\n"
      " rules, so the mediator's generic model -- calibrated for a much\n"
      " slower store -- overestimates; see examples/cost_blending.cpp and\n"
      " examples/wrapper_author.cpp for how wrappers close the gap)\n\n");
  std::printf("%zu rows; first 5:\n", result->tuples.size());
  for (size_t i = 0; i < result->tuples.size() && i < 5; ++i) {
    for (const Value& v : result->tuples[i]) {
      std::printf("  %s", v.ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
