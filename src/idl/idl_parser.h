// Parser for the extended IDL interface language (paper Section 3,
// Figures 3-5).
//
// Grammar (the paper's Figure 5, plus operations and constants):
//
//   <module>          ::= <interface>*
//   <interface>       ::= "interface" <name> [":" <name> ("," <name>)*]
//                         "{" <export>* "}" [";"]
//   <export>          ::= <attr_dcl> | <op_dcl> | <card_dcl> | <const_dcl>
//   <attr_dcl>        ::= "attribute" <type> <name> ";"
//   <op_dcl>          ::= <type> <name> "(" [<param> ("," <param>)*] ")" ";"
//   <param>           ::= ["in"|"out"] <type> <name>
//   <card_dcl>        ::= "cardinality" <extent_sign> ";"
//                       | "cardinality" <attribute_sign> ";"
//   <const_dcl>       ::= "const" <type> <name> "=" <literal> ";"   (ignored)
//
// The `cardinality` declarations are fixed-signature markers; the parser
// verifies the signatures match Figure 5 and records their presence.

#ifndef DISCO_IDL_IDL_PARSER_H_
#define DISCO_IDL_IDL_PARSER_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"

namespace disco {
namespace idl {

/// Parsed interface: schema plus which cardinality methods it declares.
/// The paper lists interface inheritance as planned (§3.1); this parser
/// supports it: `interface Manager : Employee { ... }` prepends the base
/// interfaces' attributes and operations (ParseModule resolves bases).
struct InterfaceDef {
  CollectionSchema schema;
  std::vector<std::string> bases;         ///< declared base interfaces
  bool declares_extent_stats = false;     ///< `cardinality extent(...)` seen
  bool declares_attribute_stats = false;  ///< `cardinality attribute(...)` seen
};

/// Parses a module: zero or more interface definitions. Inheritance is
/// resolved within the module: bases must be declared (in any order),
/// cycles and attribute redefinitions are errors, and the cardinality
/// flags of a base carry over to its derived interfaces.
Result<std::vector<InterfaceDef>> ParseModule(const std::string& input);

/// Parses exactly one interface definition.
Result<InterfaceDef> ParseInterface(const std::string& input);

}  // namespace idl
}  // namespace disco

#endif  // DISCO_IDL_IDL_PARSER_H_
