// Tokenizer for the IDL subset of paper Section 3.1 (Figures 3-5).

#ifndef DISCO_IDL_IDL_LEXER_H_
#define DISCO_IDL_IDL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace disco {
namespace idl {

enum class TokenType {
  kIdentifier,  ///< names, keywords (keyword-ness decided by the parser)
  kNumber,      ///< integer or decimal literal
  kString,      ///< double-quoted literal
  kLBrace,      // {
  kRBrace,      // }
  kLParen,      // (
  kRParen,      // )
  kSemicolon,   // ;
  kComma,       // ,
  kColon,       // :
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;  ///< raw text (without quotes for kString)
  int line = 1;      ///< 1-based source line, for error messages

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive identifier match (IDL keywords are matched loosely).
  bool IsIdent(const std::string& word) const;
};

/// Tokenizes `input`; `//` line comments and `/* */` block comments are
/// skipped. Fails on unterminated strings/comments or stray characters.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace idl
}  // namespace disco

#endif  // DISCO_IDL_IDL_LEXER_H_
