#include "idl/idl_lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace disco {
namespace idl {

bool Token::IsIdent(const std::string& word) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, word);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && input[i + 1] == '/') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      size_t start_line = static_cast<size_t>(line);
      i += 2;
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) {
        if (input[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::ParseError(
            StringPrintf("unterminated comment starting at line %zu",
                         start_line));
      }
      i += 2;
      continue;
    }
    Token tok;
    tok.line = line;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = input.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        ++i;
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      while (i < n && input[i] != '"') {
        if (input[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) {
        return Status::ParseError(
            StringPrintf("unterminated string at line %d", tok.line));
      }
      tok.type = TokenType::kString;
      tok.text = input.substr(start, i - start);
      ++i;  // closing quote
      tokens.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '{':
        tok.type = TokenType::kLBrace;
        break;
      case '}':
        tok.type = TokenType::kRBrace;
        break;
      case '(':
        tok.type = TokenType::kLParen;
        break;
      case ')':
        tok.type = TokenType::kRParen;
        break;
      case ';':
        tok.type = TokenType::kSemicolon;
        break;
      case ',':
        tok.type = TokenType::kComma;
        break;
      case ':':
        tok.type = TokenType::kColon;
        break;
      default:
        return Status::ParseError(
            StringPrintf("unexpected character '%c' at line %d", c, line));
    }
    tok.text = std::string(1, c);
    tokens.push_back(std::move(tok));
    ++i;
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.line = line;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace idl
}  // namespace disco
