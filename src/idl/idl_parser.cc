#include "idl/idl_parser.h"

#include <functional>
#include <map>

#include "common/str_util.h"
#include "idl/idl_lexer.h"

namespace disco {
namespace idl {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<InterfaceDef>> ParseModule() {
    std::vector<InterfaceDef> out;
    while (!Peek().Is(TokenType::kEof)) {
      DISCO_ASSIGN_OR_RETURN(InterfaceDef def, ParseInterface());
      out.push_back(std::move(def));
    }
    return out;
  }

  Result<InterfaceDef> ParseInterface() {
    DISCO_RETURN_NOT_OK(ExpectIdent("interface"));
    DISCO_ASSIGN_OR_RETURN(std::string name, ExpectName());
    std::vector<std::string> bases;
    if (Peek().Is(TokenType::kColon)) {
      Advance();
      while (true) {
        DISCO_ASSIGN_OR_RETURN(std::string base, ExpectName());
        bases.push_back(std::move(base));
        if (!Peek().Is(TokenType::kComma)) break;
        Advance();
      }
    }
    DISCO_RETURN_NOT_OK(Expect(TokenType::kLBrace, "{"));

    std::vector<AttributeDef> attributes;
    std::vector<OperationDef> operations;
    bool extent_stats = false, attribute_stats = false;

    while (!Peek().Is(TokenType::kRBrace)) {
      if (Peek().Is(TokenType::kEof)) {
        return Err("unexpected end of input inside interface '" + name + "'");
      }
      if (Peek().IsIdent("attribute")) {
        Advance();
        DISCO_ASSIGN_OR_RETURN(std::string type_name, ExpectName());
        Result<AttrType> type_result = AttrTypeFromName(type_name);
        if (!type_result.ok()) return Err(type_result.status().message());
        AttrType type = *type_result;
        DISCO_ASSIGN_OR_RETURN(std::string attr_name, ExpectName());
        DISCO_RETURN_NOT_OK(Expect(TokenType::kSemicolon, ";"));
        attributes.push_back(AttributeDef{attr_name, type});
        continue;
      }
      if (Peek().IsIdent("cardinality")) {
        Advance();
        DISCO_ASSIGN_OR_RETURN(std::string which, ExpectName());
        if (EqualsIgnoreCase(which, "extent")) {
          DISCO_RETURN_NOT_OK(CheckSignature(
              {"CountObject", "TotalSize", "ObjectSize"}, "extent"));
          extent_stats = true;
        } else if (EqualsIgnoreCase(which, "attribute")) {
          DISCO_RETURN_NOT_OK(CheckSignature(
              {"AttributeName", "Indexed", "CountDistinct", "Min", "Max"},
              "attribute"));
          attribute_stats = true;
        } else {
          return Err("cardinality declaration must be 'extent' or "
                     "'attribute', got '" + which + "'");
        }
        DISCO_RETURN_NOT_OK(Expect(TokenType::kSemicolon, ";"));
        continue;
      }
      // Otherwise: an operation declaration `<type> <name> ( params ) ;`.
      DISCO_ASSIGN_OR_RETURN(std::string ret_type, ExpectName());
      DISCO_ASSIGN_OR_RETURN(std::string op_name, ExpectName());
      DISCO_RETURN_NOT_OK(Expect(TokenType::kLParen, "("));
      OperationDef op;
      op.name = op_name;
      op.return_type = ret_type;
      while (!Peek().Is(TokenType::kRParen)) {
        if (Peek().IsIdent("in") || Peek().IsIdent("out")) Advance();
        DISCO_ASSIGN_OR_RETURN(std::string ptype, ExpectName());
        // Parameter name is optional in abbreviated declarations.
        if (Peek().Is(TokenType::kIdentifier)) Advance();
        op.parameter_types.push_back(ptype);
        if (Peek().Is(TokenType::kComma)) Advance();
      }
      Advance();  // ')'
      DISCO_RETURN_NOT_OK(Expect(TokenType::kSemicolon, ";"));
      operations.push_back(std::move(op));
    }
    Advance();  // '}'
    if (Peek().Is(TokenType::kSemicolon)) Advance();

    InterfaceDef def;
    def.schema = CollectionSchema(name, std::move(attributes));
    def.schema.operations() = std::move(operations);
    def.bases = std::move(bases);
    def.declares_extent_stats = extent_stats;
    def.declares_attribute_stats = attribute_stats;
    return def;
  }

 private:
  /// Verifies a cardinality method's parameter list names the expected
  /// out-parameters in order (modes and types are accepted loosely, as the
  /// section is "purely descriptive" per the paper).
  Status CheckSignature(const std::vector<std::string>& expected_names,
                        const std::string& method) {
    DISCO_RETURN_NOT_OK(Expect(TokenType::kLParen, "("));
    size_t next = 0;
    while (!Peek().Is(TokenType::kRParen)) {
      if (Peek().IsIdent("in") || Peek().IsIdent("out")) Advance();
      DISCO_ASSIGN_OR_RETURN(std::string type_name, ExpectName());
      (void)type_name;
      DISCO_ASSIGN_OR_RETURN(std::string param_name, ExpectName());
      if (next >= expected_names.size() ||
          !EqualsIgnoreCase(param_name, expected_names[next])) {
        return Err("cardinality " + method + ": unexpected parameter '" +
                   param_name + "'");
      }
      ++next;
      if (Peek().Is(TokenType::kComma)) Advance();
    }
    Advance();  // ')'
    if (next != expected_names.size()) {
      return Err("cardinality " + method + ": expected " +
                 std::to_string(expected_names.size()) + " parameters, got " +
                 std::to_string(next));
    }
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Expect(TokenType t, const char* what) {
    if (!Peek().Is(t)) {
      return Err(std::string("expected '") + what + "', got '" + Peek().text +
                 "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectIdent(const std::string& word) {
    if (!Peek().IsIdent(word)) {
      return Err("expected '" + word + "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectName() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Err("expected identifier, got '" + Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("IDL line %d: %s", Peek().line, msg.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

namespace {

/// Resolves inheritance across a module: base attributes/operations are
/// prepended (in declaration order), cardinality flags OR in, cycles and
/// shadowed attributes are rejected.
Status ResolveInheritance(std::vector<InterfaceDef>* defs) {
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < defs->size(); ++i) {
    by_name[(*defs)[i].schema.name()] = static_cast<int>(i);
  }
  // 0 = unresolved, 1 = in progress, 2 = done.
  std::vector<int> state(defs->size(), 0);
  std::function<Status(int)> resolve = [&](int idx) -> Status {
    InterfaceDef& def = (*defs)[static_cast<size_t>(idx)];
    if (state[static_cast<size_t>(idx)] == 2) return Status::OK();
    if (state[static_cast<size_t>(idx)] == 1) {
      return Status::ParseError("inheritance cycle through interface '" +
                                def.schema.name() + "'");
    }
    state[static_cast<size_t>(idx)] = 1;

    std::vector<AttributeDef> attributes;
    std::vector<OperationDef> operations;
    for (const std::string& base_name : def.bases) {
      auto it = by_name.find(base_name);
      if (it == by_name.end()) {
        return Status::ParseError("interface '" + def.schema.name() +
                                  "' inherits unknown interface '" +
                                  base_name + "'");
      }
      DISCO_RETURN_NOT_OK(resolve(it->second));
      const InterfaceDef& base = (*defs)[static_cast<size_t>(it->second)];
      for (const AttributeDef& a : base.schema.attributes()) {
        attributes.push_back(a);
      }
      for (const OperationDef& o : base.schema.operations()) {
        operations.push_back(o);
      }
      def.declares_extent_stats |= base.declares_extent_stats;
      def.declares_attribute_stats |= base.declares_attribute_stats;
    }
    for (const AttributeDef& own : def.schema.attributes()) {
      for (const AttributeDef& inherited : attributes) {
        if (own.name == inherited.name) {
          return Status::ParseError(
              "interface '" + def.schema.name() + "' redefines inherited "
              "attribute '" + own.name + "'");
        }
      }
      attributes.push_back(own);
    }
    for (const OperationDef& own : def.schema.operations()) {
      operations.push_back(own);
    }
    CollectionSchema merged(def.schema.name(), std::move(attributes));
    merged.operations() = std::move(operations);
    def.schema = std::move(merged);
    state[static_cast<size_t>(idx)] = 2;
    return Status::OK();
  };
  for (size_t i = 0; i < defs->size(); ++i) {
    DISCO_RETURN_NOT_OK(resolve(static_cast<int>(i)));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<InterfaceDef>> ParseModule(const std::string& input) {
  DISCO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  DISCO_ASSIGN_OR_RETURN(std::vector<InterfaceDef> defs, p.ParseModule());
  DISCO_RETURN_NOT_OK(ResolveInheritance(&defs));
  return defs;
}

Result<InterfaceDef> ParseInterface(const std::string& input) {
  DISCO_ASSIGN_OR_RETURN(std::vector<InterfaceDef> defs, ParseModule(input));
  if (defs.size() != 1) {
    return Status::ParseError(
        StringPrintf("expected exactly one interface, found %zu", defs.size()));
  }
  return std::move(defs[0]);
}

}  // namespace idl
}  // namespace disco
