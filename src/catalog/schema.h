// Collection schemas: the structural half of what a wrapper exports at
// registration (paper Section 3.1, Figure 3).

#ifndef DISCO_CATALOG_SCHEMA_H_
#define DISCO_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace disco {

/// Declared type of an attribute in an interface definition.
enum class AttrType { kLong, kDouble, kString, kBool };

const char* AttrTypeToString(AttrType t);

/// Maps an IDL type name ("Long", "Double", "String", "Boolean"/"Bool",
/// case-insensitive) to an AttrType.
Result<AttrType> AttrTypeFromName(const std::string& name);

/// The ValueType that tuples of this attribute carry at runtime.
ValueType AttrTypeToValueType(AttrType t);

/// One attribute of a collection.
struct AttributeDef {
  std::string name;
  AttrType type = AttrType::kLong;

  bool operator==(const AttributeDef& o) const {
    return name == o.name && type == o.type;
  }
};

/// A declared operation (method) of an interface. The mediator does not
/// invoke operations; they are carried through from the IDL for
/// completeness and for ADT-cost future work (paper Section 7).
struct OperationDef {
  std::string name;
  std::string return_type;
  std::vector<std::string> parameter_types;
};

/// Schema of one collection (IDL interface): name, attributes, operations.
class CollectionSchema {
 public:
  CollectionSchema() = default;
  CollectionSchema(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  std::vector<OperationDef>& operations() { return operations_; }
  const std::vector<OperationDef>& operations() const { return operations_; }

  /// Index of `attribute` within the tuple layout, or nullopt.
  std::optional<int> AttributeIndex(const std::string& attribute) const;

  /// Definition of `attribute`; NotFound if absent.
  Result<AttributeDef> Attribute(const std::string& attribute) const;

  bool HasAttribute(const std::string& attribute) const {
    return AttributeIndex(attribute).has_value();
  }

  int num_attributes() const { return static_cast<int>(attributes_.size()); }

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
  std::vector<OperationDef> operations_;
};

}  // namespace disco

#endif  // DISCO_CATALOG_SCHEMA_H_
