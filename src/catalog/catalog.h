// The mediator catalog (paper Figure 1: "Schema / Cost info" storage).
//
// At registration the mediator pulls each wrapper's schema and statistics
// and stores them here; the optimizer and cost estimator consult the
// catalog during the query phase.

#ifndef DISCO_CATALOG_CATALOG_H_
#define DISCO_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/result.h"
#include "common/status.h"

namespace disco {

/// One registered collection: where it lives, its shape, and its stats.
struct CatalogEntry {
  std::string source;       ///< wrapper/source name owning the collection
  CollectionSchema schema;
  CollectionStats stats;
};

/// Name-keyed registry of sources and collections. Collection names are
/// global (the mediator's integrated view); a name can be registered only
/// once.
class Catalog {
 public:
  /// Declares a data source. Registering twice is AlreadyExists.
  Status RegisterSource(const std::string& source);

  /// Registers a collection owned by `source` (which must exist).
  Status RegisterCollection(const std::string& source,
                            CollectionSchema schema, CollectionStats stats);

  /// Replaces the statistics of an existing collection (the paper's
  /// re-registration path for out-of-date statistics, Section 2.1).
  Status UpdateStats(const std::string& collection, CollectionStats stats);

  /// Removes a source and every collection it owns (rollback of a failed
  /// registration, or administrative removal). NotFound if absent.
  Status RemoveSource(const std::string& source);

  bool HasSource(const std::string& source) const;
  bool HasCollection(const std::string& collection) const;

  Result<CatalogEntry> Collection(const std::string& collection) const;
  Result<std::string> SourceOf(const std::string& collection) const;

  /// All collection names owned by `source`.
  std::vector<std::string> CollectionsOf(const std::string& source) const;

  std::vector<std::string> Sources() const;
  std::vector<std::string> Collections() const;

  /// Declares two registered collections equivalent (replicas of the
  /// same logical data, typically at different sources): the optimizer
  /// may answer a query against either one, e.g. to route around a
  /// source whose circuit breaker is open. Requires identical schemas
  /// (same attribute names, case-insensitive, and types, in order);
  /// InvalidArgument otherwise. Equivalence is transitive: declaring
  /// (a,b) and (b,c) puts all three in one class.
  Status DeclareEquivalent(const std::string& collection_a,
                           const std::string& collection_b);

  /// The other members of `collection`'s equivalence class (empty when
  /// none were declared). Order follows declaration order.
  std::vector<std::string> EquivalentsOf(const std::string& collection) const;

  /// Monotonic version of the catalog's planning inputs: bumped by every
  /// successful RegisterCollection / UpdateStats / RemoveSource /
  /// DeclareEquivalent. The mediator's parameterized plan cache keys on
  /// it so cached plans go stale exactly when the inputs they were
  /// planned against change (docs/PERFORMANCE.md).
  int64_t version() const { return version_; }

 private:
  int64_t version_ = 0;
  std::vector<std::string> sources_;
  std::map<std::string, CatalogEntry> collections_;
  /// Equivalence classes of replica collections. equiv_index_ maps a
  /// collection name to its class in equiv_classes_.
  std::vector<std::vector<std::string>> equiv_classes_;
  std::map<std::string, size_t> equiv_index_;
};

}  // namespace disco

#endif  // DISCO_CATALOG_CATALOG_H_
