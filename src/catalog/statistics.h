// Statistics exported by wrappers at registration time (paper Section 3.2).
//
// The paper defines two "cardinality" methods per interface:
//   extent()    -> (CountObject, TotalSize, ObjectSize)
//   attribute() -> (Indexed, CountDistinct, Min, Max) per attribute
// These map to ExtentStats and AttributeStats below. The optional
// histogram supports the ad-hoc `selectivity(A, V)` function the paper
// suggests wrapper implementors may define (Section 3.3.2).

#ifndef DISCO_CATALOG_STATISTICS_H_
#define DISCO_CATALOG_STATISTICS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "catalog/histogram.h"
#include "common/result.h"
#include "common/value.h"

namespace disco {

/// Collection-level statistics: the `extent` cardinality triplet.
struct ExtentStats {
  int64_t count_object = 0;  ///< number of objects in the extent
  int64_t total_size = 0;    ///< extent size in bytes
  int64_t object_size = 0;   ///< average object size in bytes

  std::string ToString() const;
};

/// Attribute-level statistics: the `attribute` cardinality quadruplet.
struct AttributeStats {
  bool indexed = false;       ///< an index exists on this attribute
  bool clustered = false;     ///< ... and the data is clustered on it
  int64_t count_distinct = 0; ///< number of distinct values in the extent
  Value min;                  ///< minimum value (polymorphic Constant)
  Value max;                  ///< maximum value (polymorphic Constant)

  /// Optional equi-depth histogram for value-aware selectivity.
  std::optional<EquiDepthHistogram> histogram;

  std::string ToString() const;
};

/// All statistics for one collection, as stored in the mediator catalog.
struct CollectionStats {
  ExtentStats extent;
  std::map<std::string, AttributeStats> attributes;

  /// Looks up stats for `attribute`; NotFound if the wrapper never
  /// exported them.
  Result<AttributeStats> Attribute(const std::string& attribute) const;

  bool HasAttribute(const std::string& attribute) const {
    return attributes.count(attribute) > 0;
  }
};

}  // namespace disco

#endif  // DISCO_CATALOG_STATISTICS_H_
