#include "catalog/statistics.h"

#include "common/str_util.h"

namespace disco {

std::string ExtentStats::ToString() const {
  return StringPrintf("extent(CountObject=%lld, TotalSize=%lld, ObjectSize=%lld)",
                      static_cast<long long>(count_object),
                      static_cast<long long>(total_size),
                      static_cast<long long>(object_size));
}

std::string AttributeStats::ToString() const {
  std::string out = StringPrintf(
      "attribute(Indexed=%s, CountDistinct=%lld, Min=%s, Max=%s",
      indexed ? "true" : "false", static_cast<long long>(count_distinct),
      min.ToString().c_str(), max.ToString().c_str());
  if (clustered) out += ", clustered";
  if (histogram.has_value()) out += ", histogram";
  out += ")";
  return out;
}

Result<AttributeStats> CollectionStats::Attribute(
    const std::string& attribute) const {
  auto it = attributes.find(attribute);
  if (it == attributes.end()) {
    return Status::NotFound("no statistics for attribute '" + attribute + "'");
  }
  return it->second;
}

}  // namespace disco
