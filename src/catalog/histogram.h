// Equi-depth histogram for value-aware selectivity estimation.
//
// The paper (Section 3.3.2) notes that a wrapper's `selectivity(A, V)`
// function "could handle, for example, histogram statistics [IP95,
// PIHS96]". This class is that machinery: wrappers may attach a histogram
// to an attribute's statistics, and the builtin `selectivity` function in
// the cost-formula VM consults it when present.

#ifndef DISCO_CATALOG_HISTOGRAM_H_
#define DISCO_CATALOG_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace disco {

/// An equi-depth (equi-height) histogram over numeric or string values.
/// Buckets hold approximately equal row counts; bucket boundaries adapt to
/// skew, which is the property [PIHS96] argues for.
class EquiDepthHistogram {
 public:
  struct Bucket {
    Value lower;          ///< inclusive lower bound
    Value upper;          ///< inclusive upper bound
    int64_t count = 0;    ///< rows in the bucket
    int64_t distinct = 0; ///< distinct values in the bucket
  };

  EquiDepthHistogram() = default;

  /// Builds a histogram with (at most) `num_buckets` buckets from a
  /// sample of values. Values must be mutually comparable.
  static Result<EquiDepthHistogram> Build(std::vector<Value> values,
                                          int num_buckets);

  /// Estimated fraction of rows with value == v, in [0, 1].
  double EstimateEq(const Value& v) const;

  /// Estimated fraction of rows with value < v (strict) in [0, 1].
  double EstimateLt(const Value& v) const;

  /// Estimated fraction of rows in [lo, hi] inclusive.
  double EstimateRange(const Value& lo, const Value& hi) const;

  int64_t total_count() const { return total_count_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }
  bool empty() const { return buckets_.empty(); }

  std::string ToString() const;

 private:
  /// Fraction of `b` estimated to fall strictly below `v`, assuming
  /// uniform spread inside the bucket (numeric interpolation; string
  /// buckets fall back to half).
  static double FractionBelow(const Bucket& b, const Value& v);

  std::vector<Bucket> buckets_;
  int64_t total_count_ = 0;
};

}  // namespace disco

#endif  // DISCO_CATALOG_HISTOGRAM_H_
