#include "catalog/schema.h"

#include "common/str_util.h"

namespace disco {

const char* AttrTypeToString(AttrType t) {
  switch (t) {
    case AttrType::kLong:
      return "Long";
    case AttrType::kDouble:
      return "Double";
    case AttrType::kString:
      return "String";
    case AttrType::kBool:
      return "Boolean";
  }
  return "?";
}

Result<AttrType> AttrTypeFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "long" || n == "short" || n == "int" || n == "integer") {
    return AttrType::kLong;
  }
  if (n == "double" || n == "float" || n == "real") return AttrType::kDouble;
  if (n == "string") return AttrType::kString;
  if (n == "boolean" || n == "bool") return AttrType::kBool;
  return Status::ParseError("unknown attribute type '" + name + "'");
}

ValueType AttrTypeToValueType(AttrType t) {
  switch (t) {
    case AttrType::kLong:
      return ValueType::kInt64;
    case AttrType::kDouble:
      return ValueType::kDouble;
    case AttrType::kString:
      return ValueType::kString;
    case AttrType::kBool:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

std::optional<int> CollectionSchema::AttributeIndex(
    const std::string& attribute) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attribute) return static_cast<int>(i);
  }
  return std::nullopt;
}

Result<AttributeDef> CollectionSchema::Attribute(
    const std::string& attribute) const {
  std::optional<int> idx = AttributeIndex(attribute);
  if (!idx.has_value()) {
    return Status::NotFound("collection '" + name_ + "' has no attribute '" +
                            attribute + "'");
  }
  return attributes_[static_cast<size_t>(*idx)];
}

std::string CollectionSchema::ToString() const {
  std::string out = "interface " + name_ + " {";
  for (const AttributeDef& a : attributes_) {
    out += " ";
    out += AttrTypeToString(a.type);
    out += " ";
    out += a.name;
    out += ";";
  }
  out += " }";
  return out;
}

}  // namespace disco
