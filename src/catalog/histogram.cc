#include "catalog/histogram.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace disco {

Result<EquiDepthHistogram> EquiDepthHistogram::Build(std::vector<Value> values,
                                                     int num_buckets) {
  if (num_buckets <= 0) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  EquiDepthHistogram h;
  if (values.empty()) return h;

  // Sort; mixed incomparable types surface as an error.
  Status sort_status = Status::OK();
  std::sort(values.begin(), values.end(), [&](const Value& a, const Value& b) {
    Result<int> c = a.Compare(b);
    if (!c.ok()) {
      if (sort_status.ok()) sort_status = c.status();
      return false;
    }
    return *c < 0;
  });
  if (!sort_status.ok()) return sort_status;

  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t depth = std::max<int64_t>(1, (n + num_buckets - 1) / num_buckets);
  for (int64_t start = 0; start < n; start += depth) {
    int64_t end = std::min(n, start + depth);
    Bucket b;
    b.lower = values[static_cast<size_t>(start)];
    b.upper = values[static_cast<size_t>(end - 1)];
    b.count = end - start;
    b.distinct = 1;
    for (int64_t i = start + 1; i < end; ++i) {
      if (values[static_cast<size_t>(i)] != values[static_cast<size_t>(i - 1)]) {
        ++b.distinct;
      }
    }
    h.buckets_.push_back(std::move(b));
  }
  h.total_count_ = n;
  return h;
}

double EquiDepthHistogram::FractionBelow(const Bucket& b, const Value& v) {
  if (b.lower.is_numeric() && b.upper.is_numeric() && v.is_numeric()) {
    double lo = b.lower.AsDouble(), hi = b.upper.AsDouble(), x = v.AsDouble();
    if (hi <= lo) return x > lo ? 1.0 : 0.0;
    double f = (x - lo) / (hi - lo);
    return std::clamp(f, 0.0, 1.0);
  }
  return 0.5;  // no interpolation basis for strings
}

double EquiDepthHistogram::EstimateEq(const Value& v) const {
  if (total_count_ == 0) return 0.0;
  // A frequent value spans several equi-depth buckets; sum its share of
  // every bucket whose range contains it (uniform-within-bucket: each
  // distinct value holds count/distinct rows).
  double rows = 0;
  for (const Bucket& b : buckets_) {
    Result<int> lo = v.Compare(b.lower);
    Result<int> hi = v.Compare(b.upper);
    if (!lo.ok() || !hi.ok()) return 0.0;
    if (*lo >= 0 && *hi <= 0) {
      rows += static_cast<double>(b.count) /
              static_cast<double>(std::max<int64_t>(1, b.distinct));
    }
  }
  return std::clamp(rows / static_cast<double>(total_count_), 0.0, 1.0);
}

double EquiDepthHistogram::EstimateLt(const Value& v) const {
  if (total_count_ == 0) return 0.0;
  double below = 0;
  for (const Bucket& b : buckets_) {
    Result<int> lo = v.Compare(b.lower);
    Result<int> hi = v.Compare(b.upper);
    if (!lo.ok() || !hi.ok()) return 0.0;
    if (*lo <= 0) continue;        // v <= bucket.lower: nothing below in it
    if (*hi > 0) {                 // whole bucket below v
      below += static_cast<double>(b.count);
    } else {                       // v splits the bucket
      below += static_cast<double>(b.count) * FractionBelow(b, v);
    }
  }
  return std::clamp(below / static_cast<double>(total_count_), 0.0, 1.0);
}

double EquiDepthHistogram::EstimateRange(const Value& lo, const Value& hi) const {
  if (total_count_ == 0) return 0.0;
  double f = EstimateLt(hi) + EstimateEq(hi) - EstimateLt(lo);
  return std::clamp(f, 0.0, 1.0);
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = StringPrintf("EquiDepthHistogram(%lld rows, %zu buckets)",
                                 static_cast<long long>(total_count_),
                                 buckets_.size());
  return out;
}

}  // namespace disco
