#include "catalog/catalog.h"

#include <algorithm>

namespace disco {

Status Catalog::RegisterSource(const std::string& source) {
  if (HasSource(source)) {
    return Status::AlreadyExists("source '" + source + "' already registered");
  }
  sources_.push_back(source);
  return Status::OK();
}

Status Catalog::RegisterCollection(const std::string& source,
                                   CollectionSchema schema,
                                   CollectionStats stats) {
  if (!HasSource(source)) {
    return Status::NotFound("source '" + source + "' is not registered");
  }
  const std::string name = schema.name();
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("collection '" + name +
                                 "' already registered");
  }
  collections_[name] =
      CatalogEntry{source, std::move(schema), std::move(stats)};
  return Status::OK();
}

Status Catalog::UpdateStats(const std::string& collection,
                            CollectionStats stats) {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + collection + "' is not registered");
  }
  it->second.stats = std::move(stats);
  return Status::OK();
}

Status Catalog::RemoveSource(const std::string& source) {
  auto it = std::find(sources_.begin(), sources_.end(), source);
  if (it == sources_.end()) {
    return Status::NotFound("source '" + source + "' is not registered");
  }
  sources_.erase(it);
  for (auto cit = collections_.begin(); cit != collections_.end();) {
    if (cit->second.source == source) {
      cit = collections_.erase(cit);
    } else {
      ++cit;
    }
  }
  return Status::OK();
}

bool Catalog::HasSource(const std::string& source) const {
  return std::find(sources_.begin(), sources_.end(), source) != sources_.end();
}

bool Catalog::HasCollection(const std::string& collection) const {
  return collections_.count(collection) > 0;
}

Result<CatalogEntry> Catalog::Collection(const std::string& collection) const {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + collection + "' is not registered");
  }
  return it->second;
}

Result<std::string> Catalog::SourceOf(const std::string& collection) const {
  DISCO_ASSIGN_OR_RETURN(CatalogEntry entry, Collection(collection));
  return entry.source;
}

std::vector<std::string> Catalog::CollectionsOf(
    const std::string& source) const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : collections_) {
    if (entry.source == source) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Catalog::Sources() const { return sources_; }

std::vector<std::string> Catalog::Collections() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, entry] : collections_) out.push_back(name);
  return out;
}

}  // namespace disco
