#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace disco {

Status Catalog::RegisterSource(const std::string& source) {
  if (HasSource(source)) {
    return Status::AlreadyExists("source '" + source + "' already registered");
  }
  sources_.push_back(source);
  return Status::OK();
}

Status Catalog::RegisterCollection(const std::string& source,
                                   CollectionSchema schema,
                                   CollectionStats stats) {
  if (!HasSource(source)) {
    return Status::NotFound("source '" + source + "' is not registered");
  }
  const std::string name = schema.name();
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("collection '" + name +
                                 "' already registered");
  }
  collections_[name] =
      CatalogEntry{source, std::move(schema), std::move(stats)};
  ++version_;
  return Status::OK();
}

Status Catalog::UpdateStats(const std::string& collection,
                            CollectionStats stats) {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + collection + "' is not registered");
  }
  it->second.stats = std::move(stats);
  ++version_;
  return Status::OK();
}

Status Catalog::RemoveSource(const std::string& source) {
  auto it = std::find(sources_.begin(), sources_.end(), source);
  if (it == sources_.end()) {
    return Status::NotFound("source '" + source + "' is not registered");
  }
  sources_.erase(it);
  for (auto cit = collections_.begin(); cit != collections_.end();) {
    if (cit->second.source == source) {
      auto eit = equiv_index_.find(cit->first);
      if (eit != equiv_index_.end()) {
        std::vector<std::string>& cls = equiv_classes_[eit->second];
        cls.erase(std::remove(cls.begin(), cls.end(), cit->first), cls.end());
        equiv_index_.erase(eit);
      }
      cit = collections_.erase(cit);
    } else {
      ++cit;
    }
  }
  ++version_;
  return Status::OK();
}

bool Catalog::HasSource(const std::string& source) const {
  return std::find(sources_.begin(), sources_.end(), source) != sources_.end();
}

bool Catalog::HasCollection(const std::string& collection) const {
  return collections_.count(collection) > 0;
}

Result<CatalogEntry> Catalog::Collection(const std::string& collection) const {
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + collection + "' is not registered");
  }
  return it->second;
}

Result<std::string> Catalog::SourceOf(const std::string& collection) const {
  DISCO_ASSIGN_OR_RETURN(CatalogEntry entry, Collection(collection));
  return entry.source;
}

std::vector<std::string> Catalog::CollectionsOf(
    const std::string& source) const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : collections_) {
    if (entry.source == source) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Catalog::Sources() const { return sources_; }

std::vector<std::string> Catalog::Collections() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, entry] : collections_) out.push_back(name);
  return out;
}

Status Catalog::DeclareEquivalent(const std::string& collection_a,
                                  const std::string& collection_b) {
  if (EqualsIgnoreCase(collection_a, collection_b)) {
    return Status::InvalidArgument(
        "a collection cannot be declared equivalent to itself");
  }
  DISCO_ASSIGN_OR_RETURN(CatalogEntry a, Collection(collection_a));
  DISCO_ASSIGN_OR_RETURN(CatalogEntry b, Collection(collection_b));
  const std::vector<AttributeDef>& attrs_a = a.schema.attributes();
  const std::vector<AttributeDef>& attrs_b = b.schema.attributes();
  if (attrs_a.size() != attrs_b.size()) {
    return Status::InvalidArgument(
        "collections '" + collection_a + "' and '" + collection_b +
        "' have different arity; cannot be equivalent");
  }
  for (size_t i = 0; i < attrs_a.size(); ++i) {
    if (!EqualsIgnoreCase(attrs_a[i].name, attrs_b[i].name) ||
        attrs_a[i].type != attrs_b[i].type) {
      return Status::InvalidArgument(
          "collections '" + collection_a + "' and '" + collection_b +
          "' disagree on attribute " + std::to_string(i) + " ('" +
          attrs_a[i].name + "' vs '" + attrs_b[i].name +
          "'); cannot be equivalent");
    }
  }

  auto ia = equiv_index_.find(collection_a);
  auto ib = equiv_index_.find(collection_b);
  if (ia != equiv_index_.end() && ib != equiv_index_.end()) {
    if (ia->second == ib->second) return Status::OK();  // already declared
    // Merge b's class into a's.
    const size_t from = ib->second, to = ia->second;
    for (const std::string& name : equiv_classes_[from]) {
      equiv_classes_[to].push_back(name);
      equiv_index_[name] = to;
    }
    equiv_classes_[from].clear();
    ++version_;
    return Status::OK();
  }
  if (ia != equiv_index_.end()) {
    equiv_classes_[ia->second].push_back(collection_b);
    equiv_index_[collection_b] = ia->second;
    ++version_;
    return Status::OK();
  }
  if (ib != equiv_index_.end()) {
    equiv_classes_[ib->second].push_back(collection_a);
    equiv_index_[collection_a] = ib->second;
    ++version_;
    return Status::OK();
  }
  equiv_classes_.push_back({collection_a, collection_b});
  equiv_index_[collection_a] = equiv_classes_.size() - 1;
  equiv_index_[collection_b] = equiv_classes_.size() - 1;
  ++version_;
  return Status::OK();
}

std::vector<std::string> Catalog::EquivalentsOf(
    const std::string& collection) const {
  auto it = equiv_index_.find(collection);
  if (it == equiv_index_.end()) return {};
  std::vector<std::string> out;
  for (const std::string& name : equiv_classes_[it->second]) {
    if (name != collection) out.push_back(name);
  }
  return out;
}

}  // namespace disco
