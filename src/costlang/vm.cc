#include "costlang/vm.h"

#include <cmath>

#include "common/logging.h"
#include "common/str_util.h"
#include "costlang/builtin_functions.h"

namespace disco {
namespace costlang {

namespace {

Result<double> AsNumber(const Value& v) {
  if (v.is_numeric()) return v.AsDouble();
  if (v.is_bool()) return v.AsBool() ? 1.0 : 0.0;
  return Status::ExecutionError("expected a number, got " + v.ToString());
}

}  // namespace

Result<std::string> ResolveAttrOperand(int operand, const Program& program,
                                       EvalContext* ctx) {
  if (operand >= 0) {
    const Value& v = program.const_pool[static_cast<size_t>(operand)];
    if (!v.is_string()) {
      return Status::Internal("attribute operand pool entry is not a string");
    }
    return v.AsString();
  }
  if (operand == kAttrImplied) return ctx->ImpliedAttribute();
  DISCO_ASSIGN_OR_RETURN(Value bound, ctx->Binding(DecodeAttrBinding(operand)));
  if (!bound.is_string()) {
    return Status::ExecutionError(
        "attribute variable bound to non-name value " + bound.ToString());
  }
  return bound.AsString();
}

Result<double> Execute(const Program& program, EvalContext* ctx,
                       std::span<const Value> locals,
                       std::span<const Value> globals) {
  std::vector<Value> stack;
  stack.reserve(16);

  auto pop = [&]() -> Value {
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  for (const Instr& in : program.code) {
    switch (in.op) {
      case OpCode::kPushConst:
        stack.push_back(program.const_pool[static_cast<size_t>(in.a)]);
        break;
      case OpCode::kLoadInputVar: {
        DISCO_ASSIGN_OR_RETURN(
            double v, ctx->InputVar(in.a, static_cast<CostVarId>(in.b)));
        stack.push_back(Value(v));
        break;
      }
      case OpCode::kLoadInputAttr: {
        DISCO_ASSIGN_OR_RETURN(std::string attr,
                               ResolveAttrOperand(in.b, program, ctx));
        DISCO_ASSIGN_OR_RETURN(
            Value v,
            ctx->InputAttrStat(in.a, attr, static_cast<AttrStatId>(in.c)));
        stack.push_back(std::move(v));
        break;
      }
      case OpCode::kLoadSelfVar: {
        DISCO_ASSIGN_OR_RETURN(double v,
                               ctx->SelfVar(static_cast<CostVarId>(in.a)));
        stack.push_back(Value(v));
        break;
      }
      case OpCode::kLoadLocal:
        DISCO_DCHECK(static_cast<size_t>(in.a) < locals.size());
        stack.push_back(locals[static_cast<size_t>(in.a)]);
        break;
      case OpCode::kLoadGlobal:
        DISCO_DCHECK(static_cast<size_t>(in.a) < globals.size());
        stack.push_back(globals[static_cast<size_t>(in.a)]);
        break;
      case OpCode::kLoadBinding: {
        DISCO_ASSIGN_OR_RETURN(Value v, ctx->Binding(in.a));
        stack.push_back(std::move(v));
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv: {
        Value rv = pop();
        Value lv = pop();
        DISCO_ASSIGN_OR_RETURN(double r, AsNumber(rv));
        DISCO_ASSIGN_OR_RETURN(double l, AsNumber(lv));
        double out = 0;
        switch (in.op) {
          case OpCode::kAdd: out = l + r; break;
          case OpCode::kSub: out = l - r; break;
          case OpCode::kMul: out = l * r; break;
          case OpCode::kDiv:
            if (r == 0) {
              return Status::ExecutionError("division by zero in cost formula");
            }
            out = l / r;
            break;
          default:
            break;
        }
        stack.push_back(Value(out));
        break;
      }
      case OpCode::kNeg: {
        Value v = pop();
        DISCO_ASSIGN_OR_RETURN(double x, AsNumber(v));
        stack.push_back(Value(-x));
        break;
      }
      case OpCode::kCall: {
        const int argc = in.b;
        DISCO_DCHECK(static_cast<size_t>(argc) <= stack.size());
        std::span<const Value> args(stack.data() + stack.size() -
                                        static_cast<size_t>(argc),
                                    static_cast<size_t>(argc));
        DISCO_ASSIGN_OR_RETURN(Value out, CallBuiltin(in.a, args));
        stack.resize(stack.size() - static_cast<size_t>(argc));
        stack.push_back(std::move(out));
        break;
      }
      case OpCode::kSelectivity: {
        std::optional<std::string> attr;
        std::optional<Value> value;
        if (in.a == 2) {
          value = pop();
          DISCO_ASSIGN_OR_RETURN(std::string a,
                                 ResolveAttrOperand(in.b, program, ctx));
          attr = std::move(a);
        }
        DISCO_ASSIGN_OR_RETURN(double sel, ctx->Selectivity(0, attr, value));
        stack.push_back(Value(sel));
        break;
      }
      case OpCode::kRet: {
        if (stack.size() != 1) {
          return Status::Internal(StringPrintf(
              "VM stack has %zu entries at return", stack.size()));
        }
        return AsNumber(stack.back());
      }
    }
  }
  return Status::Internal("program fell off the end without kRet");
}

}  // namespace costlang
}  // namespace disco
