#include "costlang/builtin_functions.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"

namespace disco {
namespace costlang {

namespace {

enum BuiltinId {
  kExp = 0,
  kLn,
  kLog2,
  kLog10,
  kSqrt,
  kPow,
  kCeil,
  kFloor,
  kAbs,
  kMin,
  kMax,
  kIf,
  kLtFn,
  kLeFn,
  kGtFn,
  kGeFn,
  kEqFn,
  kNeFn,
  kAndFn,
  kOrFn,
  kNotFn,
  kClamp,
  kYao,
  kNumBuiltins,
};

const BuiltinFunction kBuiltins[] = {
    {kExp, "exp", 1, 1},    {kLn, "ln", 1, 1},       {kLog2, "log2", 1, 1},
    {kLog10, "log10", 1, 1},{kSqrt, "sqrt", 1, 1},   {kPow, "pow", 2, 2},
    {kCeil, "ceil", 1, 1},  {kFloor, "floor", 1, 1}, {kAbs, "abs", 1, 1},
    {kMin, "min", 1, -1},   {kMax, "max", 1, -1},    {kIf, "if", 3, 3},
    {kLtFn, "lt", 2, 2},    {kLeFn, "le", 2, 2},     {kGtFn, "gt", 2, 2},
    {kGeFn, "ge", 2, 2},    {kEqFn, "eq", 2, 2},     {kNeFn, "ne", 2, 2},
    {kAndFn, "and", 2, -1}, {kOrFn, "or", 2, -1},    {kNotFn, "not", 1, 1},
    {kClamp, "clamp", 3, 3},{kYao, "yao", 3, 3},
};
static_assert(sizeof(kBuiltins) / sizeof(kBuiltins[0]) == kNumBuiltins);

Result<double> Num(const Value& v, const char* fn) {
  if (!v.is_numeric()) {
    if (v.is_bool()) return v.AsBool() ? 1.0 : 0.0;
    return Status::ExecutionError(std::string(fn) +
                                  ": non-numeric argument " + v.ToString());
  }
  return v.AsDouble();
}

}  // namespace

Result<BuiltinFunction> LookupBuiltin(const std::string& name) {
  // "log" is accepted as an alias for the natural logarithm, matching the
  // paper's informal formula notation.
  std::string n = ToLower(name);
  if (n == "log") n = "ln";
  for (const BuiltinFunction& f : kBuiltins) {
    if (f.name == n) return f;
  }
  return Status::NotFound("unknown function '" + name + "'");
}

const BuiltinFunction& BuiltinById(int id) {
  DISCO_CHECK(id >= 0 && id < kNumBuiltins) << "bad builtin id " << id;
  return kBuiltins[id];
}

double YaoFraction(double sel, double count_object, double count_page) {
  if (count_page <= 0) return 1.0;
  double f = 1.0 - std::exp(-sel * count_object / count_page);
  return std::clamp(f, 0.0, 1.0);
}

Result<Value> CallBuiltin(int id, std::span<const Value> args) {
  const char* fn = BuiltinById(id).name.c_str();
  auto num = [&](size_t i) { return Num(args[i], fn); };

  switch (id) {
    case kExp: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      return Value(std::exp(x));
    }
    case kLn: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      if (x <= 0) return Status::ExecutionError("ln of non-positive value");
      return Value(std::log(x));
    }
    case kLog2: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      if (x <= 0) return Status::ExecutionError("log2 of non-positive value");
      return Value(std::log2(x));
    }
    case kLog10: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      if (x <= 0) return Status::ExecutionError("log10 of non-positive value");
      return Value(std::log10(x));
    }
    case kSqrt: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      if (x < 0) return Status::ExecutionError("sqrt of negative value");
      return Value(std::sqrt(x));
    }
    case kPow: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      DISCO_ASSIGN_OR_RETURN(double y, num(1));
      return Value(std::pow(x, y));
    }
    case kCeil: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      return Value(std::ceil(x));
    }
    case kFloor: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      return Value(std::floor(x));
    }
    case kAbs: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      return Value(std::abs(x));
    }
    case kMin: {
      DISCO_ASSIGN_OR_RETURN(double best, num(0));
      for (size_t i = 1; i < args.size(); ++i) {
        DISCO_ASSIGN_OR_RETURN(double x, num(i));
        best = std::min(best, x);
      }
      return Value(best);
    }
    case kMax: {
      DISCO_ASSIGN_OR_RETURN(double best, num(0));
      for (size_t i = 1; i < args.size(); ++i) {
        DISCO_ASSIGN_OR_RETURN(double x, num(i));
        best = std::max(best, x);
      }
      return Value(best);
    }
    case kIf: {
      DISCO_ASSIGN_OR_RETURN(double c, num(0));
      return c != 0 ? args[1] : args[2];
    }
    case kLtFn:
    case kLeFn:
    case kGtFn:
    case kGeFn:
    case kEqFn:
    case kNeFn: {
      DISCO_ASSIGN_OR_RETURN(int c, args[0].Compare(args[1]));
      bool r = false;
      switch (id) {
        case kLtFn: r = c < 0; break;
        case kLeFn: r = c <= 0; break;
        case kGtFn: r = c > 0; break;
        case kGeFn: r = c >= 0; break;
        case kEqFn: r = c == 0; break;
        case kNeFn: r = c != 0; break;
      }
      return Value(r ? 1.0 : 0.0);
    }
    case kAndFn: {
      for (size_t i = 0; i < args.size(); ++i) {
        DISCO_ASSIGN_OR_RETURN(double x, num(i));
        if (x == 0) return Value(0.0);
      }
      return Value(1.0);
    }
    case kOrFn: {
      for (size_t i = 0; i < args.size(); ++i) {
        DISCO_ASSIGN_OR_RETURN(double x, num(i));
        if (x != 0) return Value(1.0);
      }
      return Value(0.0);
    }
    case kNotFn: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      return Value(x == 0 ? 1.0 : 0.0);
    }
    case kClamp: {
      DISCO_ASSIGN_OR_RETURN(double x, num(0));
      DISCO_ASSIGN_OR_RETURN(double lo, num(1));
      DISCO_ASSIGN_OR_RETURN(double hi, num(2));
      if (lo > hi) return Status::ExecutionError("clamp: lo > hi");
      return Value(std::clamp(x, lo, hi));
    }
    case kYao: {
      DISCO_ASSIGN_OR_RETURN(double sel, num(0));
      DISCO_ASSIGN_OR_RETURN(double count_object, num(1));
      DISCO_ASSIGN_OR_RETURN(double count_page, num(2));
      return Value(YaoFraction(sel, count_object, count_page));
    }
    default:
      return Status::Internal(StringPrintf("bad builtin id %d", id));
  }
}

}  // namespace costlang
}  // namespace disco
