// Compiler: rule-set AST -> compiled rules (patterns + bytecode).
//
// This is the "semi-compiled bytecode ... sent efficiently from the
// wrapper to the mediator at source registration time" of the paper's
// conclusion. Compilation happens once per registration; the produced
// CompiledRuleSet is what the mediator's rule registry stores.

#ifndef DISCO_COSTLANG_COMPILER_H_
#define DISCO_COSTLANG_COMPILER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "costlang/analyzer.h"
#include "costlang/ast.h"
#include "costlang/bytecode.h"

namespace disco {
namespace costlang {

/// One compiled formula: which cost variable it computes and the code.
struct CompiledFormula {
  CostVarId target = CostVarId::kTotalTime;
  Program program;
};

/// One compiled rule-local definition (e.g. Figure 13's CountPage),
/// evaluated in textual order before the rule's formulas.
struct CompiledLocal {
  std::string name;
  Program program;
};

/// A compiled rule: matchable pattern + code. Scope and registration
/// order are attached later by the cost-model registry.
struct CompiledRule {
  CompiledPattern pattern;
  /// slot -> (lowercased variable name, kind); indices are the binding
  /// slots the matcher fills and kLoadBinding reads.
  std::vector<std::pair<std::string, BindingKind>> binding_slots;
  std::vector<CompiledLocal> locals;
  std::vector<CompiledFormula> formulas;
  int line = 0;

  /// True if some formula computes `var`.
  bool Provides(CostVarId var) const;

  std::string ToString() const;
};

/// A compiled rule file: globals (already evaluated -- `define`s are
/// registration-time constants) plus rules in source order.
struct CompiledRuleSet {
  std::vector<std::string> global_names;
  std::vector<Value> global_values;
  std::vector<CompiledRule> rules;
};

/// Compiles `ast` against the registering source's schema.
Result<CompiledRuleSet> Compile(const RuleSetAst& ast,
                                const CompileSchema& schema);

/// Convenience: parse + compile.
Result<CompiledRuleSet> CompileRuleText(const std::string& text,
                                        const CompileSchema& schema);

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_COMPILER_H_
