#include "costlang/lint.h"

#include <set>

#include "common/str_util.h"
#include "costlang/compiler.h"

namespace disco {
namespace costlang {

const char* LintKindToString(LintKind kind) {
  switch (kind) {
    case LintKind::kDuplicatePattern: return "duplicate-pattern";
    case LintKind::kUnknownAttribute: return "unknown-attribute";
    case LintKind::kSizeOnlyRule: return "size-only-rule";
    case LintKind::kUnusedDefine: return "unused-define";
  }
  return "?";
}

std::string LintWarning::ToString() const {
  return StringPrintf("line %d: [%s] %s", line, LintKindToString(kind),
                      message.c_str());
}

namespace {

/// Collects lint facts from one compiled program.
void ScanProgram(const Program& program, const CompiledPattern& pattern,
                 const CompileSchema& schema, int line,
                 std::set<int>* used_globals,
                 std::vector<LintWarning>* warnings,
                 std::set<std::string>* reported_attrs) {
  for (const Instr& instr : program.code) {
    if (instr.op == OpCode::kLoadGlobal) {
      used_globals->insert(instr.a);
      continue;
    }
    if (instr.op != OpCode::kLoadInputAttr) continue;
    // Literal attribute name on a literal-collection input: check it
    // against the schema (a typo silently falls back to the generic
    // model's default statistics at estimation time).
    if (instr.b < 0) continue;  // implied or binding: fine
    const int input = instr.a;
    if (input < 0 || input >= static_cast<int>(pattern.inputs.size())) {
      continue;
    }
    const InputPattern& in = pattern.inputs[static_cast<size_t>(input)];
    if (!in.is_literal) continue;
    const Value& name = program.const_pool[static_cast<size_t>(instr.b)];
    if (!name.is_string()) continue;
    if (schema.IsAttributeOf(in.name, name.AsString())) continue;
    std::string key = ToLower(in.name) + "." + ToLower(name.AsString());
    if (!reported_attrs->insert(key).second) continue;
    warnings->push_back(LintWarning{
        LintKind::kUnknownAttribute, line,
        "'" + name.AsString() + "' is not an attribute of '" + in.name +
            "'; statistics will fall back to defaults"});
  }
}

}  // namespace

Result<std::vector<LintWarning>> LintRuleText(const std::string& text,
                                              const CompileSchema& schema) {
  DISCO_ASSIGN_OR_RETURN(CompiledRuleSet rules,
                         CompileRuleText(text, schema));
  std::vector<LintWarning> warnings;
  std::set<std::string> seen_patterns;
  std::set<int> used_globals;
  std::set<std::string> reported_attrs;

  for (const CompiledRule& rule : rules.rules) {
    // Duplicate heads: both still run (min-wins), but under first-only
    // tie-breaking the later one is dead; either way it is usually a
    // copy/paste slip.
    std::string key = rule.pattern.ToString();
    if (!seen_patterns.insert(key).second) {
      warnings.push_back(LintWarning{
          LintKind::kDuplicatePattern, rule.line,
          "pattern " + key + " already appeared earlier in this file"});
    }

    bool any_time = false;
    for (const CompiledFormula& f : rule.formulas) {
      if (f.target == CostVarId::kTimeFirst ||
          f.target == CostVarId::kTimeNext ||
          f.target == CostVarId::kTotalTime) {
        any_time = true;
      }
      ScanProgram(f.program, rule.pattern, schema, rule.line, &used_globals,
                  &warnings, &reported_attrs);
    }
    for (const CompiledLocal& local : rule.locals) {
      ScanProgram(local.program, rule.pattern, schema, rule.line,
                  &used_globals, &warnings, &reported_attrs);
    }
    if (!any_time) {
      warnings.push_back(LintWarning{
          LintKind::kSizeOnlyRule, rule.line,
          "rule " + key + " computes only size variables; time estimates "
          "for matching operators will come from less specific scopes"});
    }
  }

  for (size_t i = 0; i < rules.global_names.size(); ++i) {
    if (used_globals.count(static_cast<int>(i)) > 0) continue;
    // A define may legitimately feed a later define; treat any global
    // referenced by no rule formula as unused only if no other global's
    // value depended on it -- conservatively, report it as info anyway.
    warnings.push_back(LintWarning{
        LintKind::kUnusedDefine, 0,
        "define '" + rules.global_names[i] + "' is never used by a rule"});
  }
  return warnings;
}

}  // namespace costlang
}  // namespace disco
