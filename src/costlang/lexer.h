// Tokenizer for the cost-rule language (paper Section 3.3, Figure 9).

#ifndef DISCO_COSTLANG_LEXER_H_
#define DISCO_COSTLANG_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace disco {
namespace costlang {

enum class TokenType {
  kIdentifier,
  kNumber,     ///< integer or decimal literal
  kString,     ///< single- or double-quoted literal
  kLParen,     // (
  kRParen,     // )
  kLBrace,     // {
  kRBrace,     // }
  kComma,      // ,
  kSemicolon,  // ;
  kDot,        // .
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kEq,         // =
  kNe,         // !=  or <>
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kEof,
};

const char* TokenTypeToString(TokenType t);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  double number = 0;  ///< parsed value for kNumber
  int line = 1;

  bool Is(TokenType t) const { return type == t; }
  bool IsIdent(const std::string& word) const;
};

/// Tokenizes cost-rule text. `//` and `#` start line comments.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_LEXER_H_
