// Builtin function library available to cost formulas.
//
// The paper lets wrapper implementors "invoke functions from the standard
// Java library"; this is the C++ analogue: a fixed registry of pure
// functions resolvable by name at compile time and dispatched by id in
// the VM. Notable entries:
//   yao(sel, count_object, count_page) -- Yao's page-fetch fraction
//       1 - exp(-sel * count_object / count_page), the approximation the
//       paper's Section 5 uses for the improved index-scan estimate.
//   if(cond, a, b)  -- cond != 0 ? a : b; lets the generic cost model
//       express "index scan if an index exists, else sequential".

#ifndef DISCO_COSTLANG_BUILTIN_FUNCTIONS_H_
#define DISCO_COSTLANG_BUILTIN_FUNCTIONS_H_

#include <span>
#include <string>

#include "common/result.h"
#include "common/value.h"

namespace disco {
namespace costlang {

struct BuiltinFunction {
  int id = -1;
  std::string name;
  int min_arity = 0;
  int max_arity = 0;  ///< -1 = unbounded (min, max)
};

/// Resolves a function by name (case-insensitive); NotFound if unknown.
Result<BuiltinFunction> LookupBuiltin(const std::string& name);

/// Resolves a function by id; checked.
const BuiltinFunction& BuiltinById(int id);

/// Invokes builtin `id` on `args`. Arity has been checked at compile
/// time; argument type errors surface as ExecutionError.
Result<Value> CallBuiltin(int id, std::span<const Value> args);

/// Yao's approximation of the fraction of pages fetched by an index scan
/// retrieving `sel * count_object` objects spread over `count_page` pages
/// (paper Section 5): 1 - exp(-sel * count_object / count_page).
double YaoFraction(double sel, double count_object, double count_page);

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_BUILTIN_FUNCTIONS_H_
