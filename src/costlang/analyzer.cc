#include "costlang/analyzer.h"

#include "common/str_util.h"

namespace disco {
namespace costlang {

void CompileSchema::AddCollection(const std::string& collection,
                                  const std::vector<std::string>& attributes) {
  Coll c;
  c.canonical = collection;
  for (const std::string& a : attributes) c.attrs[ToLower(a)] = a;
  colls_[ToLower(collection)] = std::move(c);
}

bool CompileSchema::IsCollection(const std::string& name) const {
  return colls_.count(ToLower(name)) > 0;
}

bool CompileSchema::IsAttributeOf(const std::string& collection,
                                  const std::string& attribute) const {
  auto it = colls_.find(ToLower(collection));
  if (it == colls_.end()) return false;
  return it->second.attrs.count(ToLower(attribute)) > 0;
}

bool CompileSchema::IsAttributeOfAny(const std::string& attribute) const {
  std::string a = ToLower(attribute);
  for (const auto& [name, coll] : colls_) {
    if (coll.attrs.count(a) > 0) return true;
  }
  return false;
}

std::optional<std::string> CompileSchema::CanonicalCollection(
    const std::string& name) const {
  auto it = colls_.find(ToLower(name));
  if (it == colls_.end()) return std::nullopt;
  return it->second.canonical;
}

std::optional<std::string> CompileSchema::CanonicalAttribute(
    const std::string& collection, const std::string& attribute) const {
  auto it = colls_.find(ToLower(collection));
  if (it == colls_.end()) return std::nullopt;
  auto at = it->second.attrs.find(ToLower(attribute));
  if (at == it->second.attrs.end()) return std::nullopt;
  return at->second;
}

std::optional<std::string> CompileSchema::CanonicalAttributeOfAny(
    const std::string& attribute) const {
  std::string a = ToLower(attribute);
  for (const auto& [name, coll] : colls_) {
    auto at = coll.attrs.find(a);
    if (at != coll.attrs.end()) return at->second;
  }
  return std::nullopt;
}

std::string CompiledPattern::ToString() const {
  std::string out = algebra::OpKindToString(op);
  out += "(";
  std::vector<std::string> parts;
  for (const InputPattern& in : inputs) {
    parts.push_back(in.is_literal ? in.name : ("?" + in.name));
  }
  auto attr_str = [](const AttrPattern& a) {
    return a.is_literal ? a.name : ("?" + a.name);
  };
  switch (pred_kind) {
    case PredKind::kNone:
      break;
    case PredKind::kFree:
      parts.push_back("?P");
      break;
    case PredKind::kSelect: {
      std::string p = attr_str(sel_attr);
      p += " ";
      p += algebra::CmpOpToString(sel_op);
      p += " ";
      p += sel_value.is_literal ? sel_value.value.ToString()
                                : ("?" + sel_value.name);
      parts.push_back(std::move(p));
      break;
    }
    case PredKind::kJoin:
      parts.push_back(attr_str(join_left) + " = " + attr_str(join_right));
      break;
    case PredKind::kSortAttr:
      parts.push_back(attr_str(sort_attr));
      break;
  }
  out += JoinStrings(parts, ", ");
  out += ")";
  return out;
}

namespace {

/// Slot allocation: a variable name maps to one slot per rule, so a name
/// repeated in the head unifies (both occurrences must bind equal).
class SlotTable {
 public:
  explicit SlotTable(AnalyzedHead* out) : out_(out) {}

  int Intern(const std::string& name, BindingKind kind) {
    std::string key = ToLower(name);
    for (size_t i = 0; i < out_->slots.size(); ++i) {
      if (out_->slots[i].first == key) return static_cast<int>(i);
    }
    out_->slots.emplace_back(key, kind);
    return static_cast<int>(out_->slots.size()) - 1;
  }

 private:
  AnalyzedHead* out_;
};

Status HeadError(const RuleHeadAst& head, const std::string& msg) {
  return Status::ParseError(
      StringPrintf("cost rule line %d (%s): %s", head.line,
                   head.ToString().c_str(), msg.c_str()));
}

/// True if `term` is a plain (possibly qualified) name.
bool IsName(const TermAst& term) { return term.kind == TermAst::Kind::kName; }

}  // namespace

Result<AnalyzedHead> AnalyzeHead(const RuleHeadAst& head,
                                 const CompileSchema& schema) {
  AnalyzedHead out;
  SlotTable slots(&out);
  CompiledPattern& pat = out.pattern;

  DISCO_ASSIGN_OR_RETURN(pat.op, algebra::OpKindFromName(head.op_name));

  // Expected shape per operator: how many collection positions, and
  // whether a predicate position follows.
  int num_inputs = 1;
  bool wants_pred = false;
  switch (pat.op) {
    case algebra::OpKind::kScan:
      num_inputs = 1;
      break;
    case algebra::OpKind::kSelect:
      num_inputs = 1;
      wants_pred = true;
      break;
    case algebra::OpKind::kProject:
    case algebra::OpKind::kAggregate:
      num_inputs = 1;
      wants_pred = true;  // optional free variable
      break;
    case algebra::OpKind::kSort:
      num_inputs = 1;
      wants_pred = true;  // attribute position
      break;
    case algebra::OpKind::kDedup:
    case algebra::OpKind::kSubmit:
      num_inputs = 1;
      break;
    case algebra::OpKind::kJoin:
    case algebra::OpKind::kUnion:
    case algebra::OpKind::kBindJoin:
      num_inputs = 2;
      wants_pred = (pat.op != algebra::OpKind::kUnion);
      break;
  }

  const int total_args = static_cast<int>(head.args.size());
  if (total_args < num_inputs || total_args > num_inputs + (wants_pred ? 1 : 0)) {
    return HeadError(head, StringPrintf("expected %d input argument(s)%s",
                                        num_inputs,
                                        wants_pred ? " plus a predicate" : ""));
  }

  // Collection positions.
  for (int i = 0; i < num_inputs; ++i) {
    const HeadArgAst& arg = head.args[static_cast<size_t>(i)];
    if (arg.cmp.has_value()) {
      return HeadError(head, "predicate found in a collection position");
    }
    if (!IsName(arg.lhs) || arg.lhs.path.size() != 1) {
      return HeadError(head, "collection position must be a simple name");
    }
    const std::string& name = arg.lhs.path[0];
    InputPattern in;
    std::optional<std::string> canonical = schema.CanonicalCollection(name);
    if (canonical.has_value()) {
      in.is_literal = true;
      in.name = *canonical;
      ++pat.specificity;
      pat.collection_bound = true;
    } else {
      in.is_literal = false;
      in.name = name;
      in.slot = slots.Intern(name, BindingKind::kCollection);
    }
    out.input_names[ToLower(name)] = i;
    pat.inputs.push_back(std::move(in));
  }

  if (total_args == num_inputs) return out;  // no predicate position

  const HeadArgAst& parg = head.args[static_cast<size_t>(num_inputs)];

  // Helper: classify an attribute term. Qualified names (x1.id) use the
  // last component; a qualifier naming a literal input constrains nothing
  // further here (orientation is checked by the matcher via provenance).
  auto analyze_attr = [&](const TermAst& term) -> Result<AttrPattern> {
    if (!IsName(term)) {
      return HeadError(head, "attribute position must be a name");
    }
    const std::string& name = term.path.back();
    AttrPattern attr;
    // Literal iff some literal input collection has the attribute, or the
    // schema knows it anywhere (for free-collection patterns).
    std::optional<std::string> canonical;
    for (const InputPattern& in : pat.inputs) {
      if (in.is_literal) {
        canonical = schema.CanonicalAttribute(in.name, name);
        if (canonical.has_value()) break;
      }
    }
    if (!canonical.has_value()) canonical = schema.CanonicalAttributeOfAny(name);
    if (canonical.has_value()) {
      attr.is_literal = true;
      attr.name = *canonical;
      ++pat.specificity;
      pat.predicate_bound = true;
    } else {
      attr.is_literal = false;
      attr.name = name;
      attr.slot = slots.Intern(name, BindingKind::kAttribute);
    }
    return attr;
  };

  if (pat.op == algebra::OpKind::kSort) {
    // sort(C, A): a bare attribute position.
    if (parg.cmp.has_value()) {
      return HeadError(head, "sort takes an attribute, not a predicate");
    }
    DISCO_ASSIGN_OR_RETURN(pat.sort_attr, analyze_attr(parg.lhs));
    pat.pred_kind = CompiledPattern::PredKind::kSortAttr;
    return out;
  }

  if (!parg.cmp.has_value()) {
    // A bare name in predicate position: the whole-predicate variable P.
    if (!IsName(parg.lhs) || parg.lhs.path.size() != 1) {
      return HeadError(head, "predicate position must be a comparison or a "
                             "free variable");
    }
    pat.pred_kind = CompiledPattern::PredKind::kFree;
    pat.pred_slot = slots.Intern(parg.lhs.path[0], BindingKind::kPredicate);
    return out;
  }

  if (pat.op == algebra::OpKind::kProject ||
      pat.op == algebra::OpKind::kAggregate ||
      pat.op == algebra::OpKind::kUnion) {
    return HeadError(head, "this operator only accepts a free variable in "
                           "predicate position");
  }

  if (pat.op == algebra::OpKind::kJoin ||
      pat.op == algebra::OpKind::kBindJoin) {
    pat.pred_kind = CompiledPattern::PredKind::kJoin;
    DISCO_ASSIGN_OR_RETURN(pat.join_left, analyze_attr(parg.lhs));
    if (*parg.cmp != algebra::CmpOp::kEq) {
      return HeadError(head, "join patterns support only equi-joins");
    }
    if (!parg.rhs.has_value() || !IsName(*parg.rhs)) {
      return HeadError(head, "join pattern needs attribute = attribute");
    }
    DISCO_ASSIGN_OR_RETURN(pat.join_right, analyze_attr(*parg.rhs));
    return out;
  }

  // Selection predicate: attr cmp value.
  pat.pred_kind = CompiledPattern::PredKind::kSelect;
  DISCO_ASSIGN_OR_RETURN(pat.sel_attr, analyze_attr(parg.lhs));
  pat.sel_op = *parg.cmp;
  const TermAst& rhs = *parg.rhs;
  switch (rhs.kind) {
    case TermAst::Kind::kNumber:
      pat.sel_value.is_literal = true;
      pat.sel_value.value = Value(rhs.number);
      ++pat.specificity;
      pat.predicate_bound = true;
      break;
    case TermAst::Kind::kString:
      pat.sel_value.is_literal = true;
      pat.sel_value.value = Value(rhs.string_value);
      ++pat.specificity;
      pat.predicate_bound = true;
      break;
    case TermAst::Kind::kName:
      if (rhs.path.size() != 1) {
        return HeadError(head, "value position must be a simple name or "
                               "literal");
      }
      pat.sel_value.is_literal = false;
      pat.sel_value.name = rhs.path[0];
      pat.sel_value.slot = slots.Intern(rhs.path[0], BindingKind::kValue);
      break;
  }
  return out;
}

}  // namespace costlang
}  // namespace disco
