#include "costlang/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace disco {
namespace costlang {

const char* TokenTypeToString(TokenType t) {
  switch (t) {
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kComma: return ",";
    case TokenType::kSemicolon: return ";";
    case TokenType::kDot: return ".";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kStar: return "*";
    case TokenType::kSlash: return "/";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "!=";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kEof: return "<eof>";
  }
  return "?";
}

bool Token::IsIdent(const std::string& word) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, word);
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenType t, std::string text) {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.line = line;
    tokens.push_back(std::move(tok));
  };

  while (i < n) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < n && input[i + 1] == '/')) {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      push(TokenType::kIdentifier, input.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      std::string text = input.substr(start, i - start);
      char* end = nullptr;
      double value = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError(
            StringPrintf("cost rule line %d: bad number '%s'", line,
                         text.c_str()));
      }
      Token tok;
      tok.type = TokenType::kNumber;
      tok.text = std::move(text);
      tok.number = value;
      tok.line = line;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = ++i;
      while (i < n && input[i] != quote) {
        if (input[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) {
        return Status::ParseError(
            StringPrintf("cost rule line %d: unterminated string", line));
      }
      push(TokenType::kString, input.substr(start, i - start));
      ++i;
      continue;
    }
    switch (c) {
      case '(': push(TokenType::kLParen, "("); ++i; break;
      case ')': push(TokenType::kRParen, ")"); ++i; break;
      case '{': push(TokenType::kLBrace, "{"); ++i; break;
      case '}': push(TokenType::kRBrace, "}"); ++i; break;
      case ',': push(TokenType::kComma, ","); ++i; break;
      case ';': push(TokenType::kSemicolon, ";"); ++i; break;
      case '.': push(TokenType::kDot, "."); ++i; break;
      case '+': push(TokenType::kPlus, "+"); ++i; break;
      case '-': push(TokenType::kMinus, "-"); ++i; break;
      case '*': push(TokenType::kStar, "*"); ++i; break;
      case '/': push(TokenType::kSlash, "/"); ++i; break;
      case '=':
        if (i + 1 < n && input[i + 1] == '=') {  // accept == as =
          push(TokenType::kEq, "==");
          i += 2;
        } else {
          push(TokenType::kEq, "=");
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, "!=");
          i += 2;
        } else {
          return Status::ParseError(
              StringPrintf("cost rule line %d: stray '!'", line));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, "<=");
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, "<>");
          i += 2;
        } else {
          push(TokenType::kLt, "<");
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, ">=");
          i += 2;
        } else {
          push(TokenType::kGt, ">");
          ++i;
        }
        break;
      default:
        return Status::ParseError(StringPrintf(
            "cost rule line %d: unexpected character '%c'", line, c));
    }
  }
  push(TokenType::kEof, "");
  return tokens;
}

}  // namespace costlang
}  // namespace disco
