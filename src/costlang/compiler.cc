#include "costlang/compiler.h"

#include <map>

#include "common/str_util.h"
#include "costlang/builtin_functions.h"
#include "costlang/parser.h"
#include "costlang/vm.h"

namespace disco {
namespace costlang {

bool CompiledRule::Provides(CostVarId var) const {
  for (const CompiledFormula& f : formulas) {
    if (f.target == var) return true;
  }
  return false;
}

std::string CompiledRule::ToString() const {
  std::string out = pattern.ToString() + " -> {";
  std::vector<std::string> targets;
  for (const CompiledFormula& f : formulas) {
    targets.push_back(CostVarName(f.target));
  }
  out += JoinStrings(targets, ", ");
  out += "}";
  return out;
}

namespace {

/// Per-rule compilation environment shared by the expression compiler.
struct RuleEnv {
  const AnalyzedHead* head = nullptr;
  const CompileSchema* schema = nullptr;
  // Globals: lowercased name -> slot.
  const std::map<std::string, int>* globals = nullptr;
  // Locals defined so far in this rule: lowercased name -> slot.
  std::map<std::string, int> locals;
};

/// Compiles one expression into `program` (appends instructions; caller
/// adds kRet). Records input/self dependencies in the program metadata.
class ExprCompiler {
 public:
  ExprCompiler(const RuleEnv& env, Program* program)
      : env_(env), program_(program) {}

  Status Compile(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        Emit({OpCode::kPushConst, PoolConst(Value(e.number))});
        return Status::OK();
      case ExprKind::kString:
        Emit({OpCode::kPushConst, PoolConst(Value(e.string_value))});
        return Status::OK();
      case ExprKind::kBinary: {
        DISCO_RETURN_NOT_OK(Compile(*e.args[0]));
        DISCO_RETURN_NOT_OK(Compile(*e.args[1]));
        OpCode op = OpCode::kAdd;
        switch (e.bin_op) {
          case BinOp::kAdd: op = OpCode::kAdd; break;
          case BinOp::kSub: op = OpCode::kSub; break;
          case BinOp::kMul: op = OpCode::kMul; break;
          case BinOp::kDiv: op = OpCode::kDiv; break;
        }
        Emit({op});
        return Status::OK();
      }
      case ExprKind::kNeg:
        DISCO_RETURN_NOT_OK(Compile(*e.args[0]));
        Emit({OpCode::kNeg});
        return Status::OK();
      case ExprKind::kCall:
        return CompileCall(e);
      case ExprKind::kPathRef:
        return CompilePathRef(e);
    }
    return Status::Internal("bad expression kind");
  }

 private:
  Status CompileCall(const Expr& e) {
    if (EqualsIgnoreCase(e.callee, "selectivity")) {
      return CompileSelectivity(e);
    }
    Result<BuiltinFunction> fn = LookupBuiltin(e.callee);
    if (!fn.ok()) {
      return Err(e.line, "unknown function '" + e.callee + "'");
    }
    const int argc = static_cast<int>(e.args.size());
    if (argc < fn->min_arity ||
        (fn->max_arity >= 0 && argc > fn->max_arity)) {
      return Err(e.line,
                 StringPrintf("%s expects %d..%d arguments, got %d",
                              fn->name.c_str(), fn->min_arity, fn->max_arity,
                              argc));
    }
    for (const auto& a : e.args) DISCO_RETURN_NOT_OK(Compile(*a));
    Emit({OpCode::kCall, fn->id, argc});
    return Status::OK();
  }

  /// selectivity() / selectivity(V) / selectivity(A, V): the selectivity
  /// of the node's predicate (paper Figure 8). With no arguments both the
  /// attribute and the comparison value come from the matched node.
  Status CompileSelectivity(const Expr& e) {
    if (e.args.empty()) {
      Emit({OpCode::kSelectivity, 0});
      return Status::OK();
    }
    if (e.args.size() == 1) {
      DISCO_RETURN_NOT_OK(Compile(*e.args[0]));
      Emit({OpCode::kSelectivity, 2, kAttrImplied});
      return Status::OK();
    }
    if (e.args.size() != 2) {
      return Err(e.line, "selectivity takes at most 2 arguments");
    }
    DISCO_ASSIGN_OR_RETURN(int attr_operand, AttrOperandFor(*e.args[0]));
    DISCO_RETURN_NOT_OK(Compile(*e.args[1]));
    Emit({OpCode::kSelectivity, 2, attr_operand});
    return Status::OK();
  }

  /// Resolves an expression used in attribute position (first argument of
  /// selectivity) into an attribute operand.
  Result<int> AttrOperandFor(const Expr& e) {
    if (e.kind == ExprKind::kString) {
      return PoolConst(Value(e.string_value));
    }
    if (e.kind != ExprKind::kPathRef || e.path.size() != 1) {
      return Err(e.line, "selectivity's first argument must name an attribute");
    }
    const std::string key = ToLower(e.path[0]);
    // A head attribute variable?
    for (size_t i = 0; i < env_.head->slots.size(); ++i) {
      if (env_.head->slots[i].first == key &&
          env_.head->slots[i].second == BindingKind::kAttribute) {
        return EncodeAttrBinding(static_cast<int>(i));
      }
    }
    // A literal attribute name.
    return PoolConst(Value(e.path[0]));
  }

  Status CompilePathRef(const Expr& e) {
    const std::vector<std::string>& p = e.path;
    if (p.size() == 1) return CompileBareName(e);
    if (p.size() == 2) return CompileTwoPart(e);
    if (p.size() == 3) return CompileThreePart(e);
    return Err(e.line, "path '" + JoinStrings(p, ".") + "' has too many parts");
  }

  /// Bare name resolution order: rule-local, head binding, global, cost
  /// variable of this node, attribute statistic with implied attribute.
  Status CompileBareName(const Expr& e) {
    const std::string& name = e.path[0];
    const std::string key = ToLower(name);

    auto lit = env_.locals.find(key);
    if (lit != env_.locals.end()) {
      Emit({OpCode::kLoadLocal, lit->second});
      return Status::OK();
    }
    for (size_t i = 0; i < env_.head->slots.size(); ++i) {
      if (env_.head->slots[i].first == key) {
        Emit({OpCode::kLoadBinding, static_cast<int>(i)});
        return Status::OK();
      }
    }
    auto git = env_.globals->find(key);
    if (git != env_.globals->end()) {
      Emit({OpCode::kLoadGlobal, git->second});
      return Status::OK();
    }
    Result<CostVarId> var = CostVarFromName(name);
    if (var.ok()) {
      Emit({OpCode::kLoadSelfVar, static_cast<int>(*var)});
      program_->self_var_refs.push_back(*var);
      return Status::OK();
    }
    Result<AttrStatId> stat = AttrStatFromName(name);
    if (stat.ok()) {
      Emit({OpCode::kLoadInputAttr, 0, kAttrImplied, static_cast<int>(*stat)});
      return Status::OK();
    }
    return Err(e.line, "unknown name '" + name + "'");
  }

  /// `X.Y`: X an input (literal collection or collection variable), Y a
  /// cost variable or an attribute statistic with implied attribute; or
  /// X an attribute variable and Y a statistic.
  Status CompileTwoPart(const Expr& e) {
    const std::string xkey = ToLower(e.path[0]);
    const std::string& y = e.path[1];

    auto iit = env_.head->input_names.find(xkey);
    if (iit != env_.head->input_names.end()) {
      const int input = iit->second;
      Result<CostVarId> var = CostVarFromName(y);
      if (var.ok()) {
        Emit({OpCode::kLoadInputVar, input, static_cast<int>(*var)});
        program_->input_var_refs.emplace_back(input, *var);
        return Status::OK();
      }
      Result<AttrStatId> stat = AttrStatFromName(y);
      if (stat.ok()) {
        Emit({OpCode::kLoadInputAttr, input, kAttrImplied,
              static_cast<int>(*stat)});
        return Status::OK();
      }
      return Err(e.line, "'" + y + "' is neither a cost variable nor an "
                 "attribute statistic");
    }
    // X as attribute variable: A.CountDistinct et al., on input 0.
    for (size_t i = 0; i < env_.head->slots.size(); ++i) {
      if (env_.head->slots[i].first == xkey &&
          env_.head->slots[i].second == BindingKind::kAttribute) {
        DISCO_ASSIGN_OR_RETURN(AttrStatId stat, AttrStatFromName(y));
        Emit({OpCode::kLoadInputAttr, 0,
              EncodeAttrBinding(static_cast<int>(i)), static_cast<int>(stat)});
        return Status::OK();
      }
    }
    return Err(e.line, "'" + e.path[0] + "' does not name an input of this "
               "rule");
  }

  /// `X.A.Stat`: input X, attribute A (literal or attribute variable),
  /// statistic Stat.
  Status CompileThreePart(const Expr& e) {
    const std::string xkey = ToLower(e.path[0]);
    auto iit = env_.head->input_names.find(xkey);
    if (iit == env_.head->input_names.end()) {
      return Err(e.line, "'" + e.path[0] + "' does not name an input of this "
                 "rule");
    }
    const int input = iit->second;
    DISCO_ASSIGN_OR_RETURN(AttrStatId stat, AttrStatFromName(e.path[2]));

    const std::string akey = ToLower(e.path[1]);
    int attr_operand = 0;
    bool is_binding = false;
    for (size_t i = 0; i < env_.head->slots.size(); ++i) {
      if (env_.head->slots[i].first == akey &&
          env_.head->slots[i].second == BindingKind::kAttribute) {
        attr_operand = EncodeAttrBinding(static_cast<int>(i));
        is_binding = true;
        break;
      }
    }
    if (!is_binding) attr_operand = PoolConst(Value(e.path[1]));
    Emit({OpCode::kLoadInputAttr, input, attr_operand, static_cast<int>(stat)});
    return Status::OK();
  }

  int PoolConst(Value v) {
    for (size_t i = 0; i < program_->const_pool.size(); ++i) {
      if (program_->const_pool[i] == v &&
          program_->const_pool[i].type() == v.type()) {
        return static_cast<int>(i);
      }
    }
    program_->const_pool.push_back(std::move(v));
    return static_cast<int>(program_->const_pool.size()) - 1;
  }

  void Emit(Instr in) { program_->code.push_back(in); }

  Status Err(int line, const std::string& msg) {
    return Status::ParseError(
        StringPrintf("cost rule line %d: %s", line, msg.c_str()));
  }

  const RuleEnv& env_;
  Program* program_;
};

/// EvalContext that rejects all node-dependent accesses; used to evaluate
/// `define`s, which may only reference constants, earlier globals and
/// pure functions.
class GlobalEvalContext : public EvalContext {
 public:
  Result<double> InputVar(int, CostVarId) override { return Fail(); }
  Result<Value> InputAttrStat(int, const std::string&, AttrStatId) override {
    return Status::ExecutionError(kMsg);
  }
  Result<double> SelfVar(CostVarId) override { return Fail(); }
  Result<Value> Binding(int) override {
    return Status::ExecutionError(kMsg);
  }
  Result<std::string> ImpliedAttribute() override {
    return Status::ExecutionError(kMsg);
  }
  Result<double> Selectivity(int, const std::optional<std::string>&,
                             const std::optional<Value>&) override {
    return Fail();
  }

 private:
  static constexpr const char* kMsg =
      "global definitions may not reference operators or statistics";
  Result<double> Fail() { return Status::ExecutionError(kMsg); }
};

}  // namespace

Result<CompiledRuleSet> Compile(const RuleSetAst& ast,
                                const CompileSchema& schema) {
  CompiledRuleSet out;
  std::map<std::string, int> globals;  // lowercased -> slot

  // Globals evaluate at compile (= registration) time, in order; each may
  // reference the ones before it.
  for (const VarDefAst& def : ast.defs) {
    const std::string key = ToLower(def.name);
    if (globals.count(key) > 0) {
      return Status::ParseError(StringPrintf(
          "cost rule line %d: duplicate definition of '%s'", def.line,
          def.name.c_str()));
    }
    RuleEnv env;
    AnalyzedHead empty_head;
    env.head = &empty_head;
    env.schema = &schema;
    env.globals = &globals;
    Program program;
    ExprCompiler ec(env, &program);
    DISCO_RETURN_NOT_OK(ec.Compile(*def.expr));
    program.code.push_back({OpCode::kRet});
    GlobalEvalContext gctx;
    DISCO_ASSIGN_OR_RETURN(
        double v, Execute(program, &gctx, {}, out.global_values));
    globals[key] = static_cast<int>(out.global_values.size());
    out.global_names.push_back(def.name);
    out.global_values.push_back(Value(v));
  }

  for (const RuleAst& rule_ast : ast.rules) {
    DISCO_ASSIGN_OR_RETURN(AnalyzedHead head,
                           AnalyzeHead(rule_ast.head, schema));
    CompiledRule rule;
    rule.pattern = head.pattern;
    rule.binding_slots = head.slots;
    rule.line = rule_ast.line;

    RuleEnv env;
    env.head = &head;
    env.schema = &schema;
    env.globals = &globals;

    for (const FormulaAst& f : rule_ast.formulas) {
      Program program;
      ExprCompiler ec(env, &program);
      DISCO_RETURN_NOT_OK(ec.Compile(*f.expr));
      program.code.push_back({OpCode::kRet});

      Result<CostVarId> var = CostVarFromName(f.target);
      if (var.ok()) {
        if (rule.Provides(*var)) {
          return Status::ParseError(StringPrintf(
              "cost rule line %d: '%s' is computed twice in one rule", f.line,
              f.target.c_str()));
        }
        rule.formulas.push_back(CompiledFormula{*var, std::move(program)});
      } else {
        const std::string key = ToLower(f.target);
        if (env.locals.count(key) > 0) {
          return Status::ParseError(StringPrintf(
              "cost rule line %d: duplicate local '%s'", f.line,
              f.target.c_str()));
        }
        env.locals[key] = static_cast<int>(rule.locals.size());
        rule.locals.push_back(CompiledLocal{f.target, std::move(program)});
      }
    }
    if (rule.formulas.empty()) {
      return Status::ParseError(StringPrintf(
          "cost rule line %d: rule computes no cost variable", rule_ast.line));
    }
    out.rules.push_back(std::move(rule));
  }
  return out;
}

Result<CompiledRuleSet> CompileRuleText(const std::string& text,
                                        const CompileSchema& schema) {
  DISCO_ASSIGN_OR_RETURN(RuleSetAst ast, ParseRuleSet(text));
  return Compile(ast, schema);
}

}  // namespace costlang
}  // namespace disco
