// The stack VM that evaluates compiled cost formulas, and the evaluation
// context interface through which it reaches node inputs, statistics and
// head-variable bindings.

#ifndef DISCO_COSTLANG_VM_H_
#define DISCO_COSTLANG_VM_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "costlang/bytecode.h"

namespace disco {
namespace costlang {

/// Everything a formula can observe about the node it is costing. The
/// estimator (costmodel/estimator.cc) implements this against the plan
/// tree, the catalog, and the partially-computed cost vectors.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// Cost variable `var` of input `input` (a child operator's computed
  /// cost, or a base collection's extent statistic for leaf inputs).
  virtual Result<double> InputVar(int input, CostVarId var) = 0;

  /// Statistic `stat` of attribute `attr` of input `input`, resolved via
  /// the input's provenance collection. Min/Max may be non-numeric.
  virtual Result<Value> InputAttrStat(int input, const std::string& attr,
                                      AttrStatId stat) = 0;

  /// Cost variable of the node being estimated, computed earlier in the
  /// evaluation order (kCountObject .. kTotalTime).
  virtual Result<double> SelfVar(CostVarId var) = 0;

  /// Value bound to head-variable slot `slot` during rule matching:
  /// predicate constants bind as themselves, attribute/collection
  /// variables bind as their name (a string Value).
  virtual Result<Value> Binding(int slot) = 0;

  /// The attribute of the node's own select predicate, for implied
  /// attribute references (`C.CountDistinct` without naming an
  /// attribute, or `selectivity()` with no arguments).
  virtual Result<std::string> ImpliedAttribute() = 0;

  /// Selectivity of a comparison on input `input`'s attribute `attr`
  /// against `value` (both default to the node's own predicate when
  /// unset). Uses histograms when exported, else min/max/count-distinct
  /// (paper Sections 2.3 and 3.3.2).
  virtual Result<double> Selectivity(int input,
                                     const std::optional<std::string>& attr,
                                     const std::optional<Value>& value) = 0;
};

/// Executes `program` against `ctx`.
/// `locals` holds the rule-local variable slots (already evaluated);
/// `globals` holds the rule set's `define`d values.
Result<double> Execute(const Program& program, EvalContext* ctx,
                       std::span<const Value> locals,
                       std::span<const Value> globals);

/// Resolves an attribute operand (literal pool index / implied / binding
/// slot; see bytecode.h) to an attribute name. Shared between the VM and
/// the estimator's matcher.
Result<std::string> ResolveAttrOperand(int operand, const Program& program,
                                       EvalContext* ctx);

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_VM_H_
