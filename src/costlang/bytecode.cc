#include "costlang/bytecode.h"

#include "common/str_util.h"

namespace disco {
namespace costlang {

const char* CostVarName(CostVarId id) {
  switch (id) {
    case CostVarId::kCountObject: return "CountObject";
    case CostVarId::kObjectSize: return "ObjectSize";
    case CostVarId::kTotalSize: return "TotalSize";
    case CostVarId::kTimeFirst: return "TimeFirst";
    case CostVarId::kTimeNext: return "TimeNext";
    case CostVarId::kTotalTime: return "TotalTime";
  }
  return "?";
}

Result<CostVarId> CostVarFromName(const std::string& name) {
  for (int i = 0; i < kNumCostVars; ++i) {
    CostVarId id = static_cast<CostVarId>(i);
    if (EqualsIgnoreCase(name, CostVarName(id))) return id;
  }
  return Status::NotFound("'" + name + "' is not a cost variable");
}

bool IsCostVarName(const std::string& name) {
  return CostVarFromName(name).ok();
}

const char* AttrStatName(AttrStatId id) {
  switch (id) {
    case AttrStatId::kIndexed: return "Indexed";
    case AttrStatId::kClustered: return "Clustered";
    case AttrStatId::kCountDistinct: return "CountDistinct";
    case AttrStatId::kMin: return "Min";
    case AttrStatId::kMax: return "Max";
  }
  return "?";
}

Result<AttrStatId> AttrStatFromName(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(AttrStatId::kMax); ++i) {
    AttrStatId id = static_cast<AttrStatId>(i);
    if (EqualsIgnoreCase(name, AttrStatName(id))) return id;
  }
  return Status::NotFound("'" + name + "' is not an attribute statistic");
}

bool IsAttrStatName(const std::string& name) {
  return AttrStatFromName(name).ok();
}

namespace {
const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kPushConst: return "push_const";
    case OpCode::kLoadInputVar: return "load_input_var";
    case OpCode::kLoadInputAttr: return "load_input_attr";
    case OpCode::kLoadSelfVar: return "load_self_var";
    case OpCode::kLoadLocal: return "load_local";
    case OpCode::kLoadGlobal: return "load_global";
    case OpCode::kLoadBinding: return "load_binding";
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kDiv: return "div";
    case OpCode::kNeg: return "neg";
    case OpCode::kCall: return "call";
    case OpCode::kSelectivity: return "selectivity";
    case OpCode::kRet: return "ret";
  }
  return "?";
}
}  // namespace

std::string Program::Disassemble() const {
  std::string out;
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    out += StringPrintf("%3zu  %-16s", i, OpCodeName(in.op));
    switch (in.op) {
      case OpCode::kPushConst:
        out += const_pool[static_cast<size_t>(in.a)].ToString();
        break;
      case OpCode::kLoadInputVar:
        out += StringPrintf("input=%d var=%s", in.a,
                            CostVarName(static_cast<CostVarId>(in.b)));
        break;
      case OpCode::kLoadInputAttr:
        out += StringPrintf("input=%d attr=%d stat=%s", in.a, in.b,
                            AttrStatName(static_cast<AttrStatId>(in.c)));
        break;
      case OpCode::kLoadSelfVar:
        out += CostVarName(static_cast<CostVarId>(in.a));
        break;
      case OpCode::kLoadLocal:
      case OpCode::kLoadGlobal:
      case OpCode::kLoadBinding:
        out += StringPrintf("slot=%d", in.a);
        break;
      case OpCode::kCall:
        out += StringPrintf("fn=%d argc=%d", in.a, in.b);
        break;
      case OpCode::kSelectivity:
        out += StringPrintf("argc=%d attr=%d", in.a, in.b);
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace costlang
}  // namespace disco
