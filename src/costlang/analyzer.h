// Semantic analysis of rule heads: deciding literal vs free-variable
// terms against the registering wrapper's schema, assigning binding
// slots, and deriving pattern specificity.
//
// The paper's examples rely on context to distinguish `employee` (a
// collection of the source) from `C` (a free variable). We make that
// precise: a name in a pattern position is a literal iff the compile-time
// schema knows it (as a collection, or as an attribute of a relevant
// collection); otherwise it is a free variable that binds during
// matching.

#ifndef DISCO_COSTLANG_ANALYZER_H_
#define DISCO_COSTLANG_ANALYZER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "algebra/predicate.h"
#include "common/result.h"
#include "common/value.h"
#include "costlang/ast.h"

namespace disco {
namespace costlang {

/// What the compiler knows about the registering source's schema. All
/// lookups are case-insensitive (the paper itself writes `employee` in a
/// head and `Employee` in the body).
class CompileSchema {
 public:
  /// Declares `collection` with its attribute names.
  void AddCollection(const std::string& collection,
                     const std::vector<std::string>& attributes);

  bool IsCollection(const std::string& name) const;
  bool IsAttributeOf(const std::string& collection,
                     const std::string& attribute) const;
  bool IsAttributeOfAny(const std::string& attribute) const;

  /// Canonical (as-declared) spelling of a collection name.
  std::optional<std::string> CanonicalCollection(const std::string& name) const;
  /// Canonical spelling of an attribute of `collection`.
  std::optional<std::string> CanonicalAttribute(
      const std::string& collection, const std::string& attribute) const;
  /// Canonical spelling of an attribute in any collection.
  std::optional<std::string> CanonicalAttributeOfAny(
      const std::string& attribute) const;

 private:
  struct Coll {
    std::string canonical;
    std::map<std::string, std::string> attrs;  // lower -> canonical
  };
  std::map<std::string, Coll> colls_;  // lower -> Coll
};

/// How a head variable may be used in the body (for diagnostics and for
/// what gets bound at match time).
enum class BindingKind {
  kCollection,  ///< bound to an input's provenance collection name
  kAttribute,   ///< bound to an attribute name
  kValue,       ///< bound to a predicate constant
  kPredicate,   ///< whole-predicate variable (bound to its rendering)
};

/// A pattern term in collection position: literal name or variable slot.
struct InputPattern {
  bool is_literal = false;
  std::string name;  ///< canonical literal name, or the variable's name
  int slot = -1;     ///< binding slot when !is_literal
};

/// A pattern term in attribute position.
struct AttrPattern {
  bool is_literal = false;
  std::string name;
  int slot = -1;
};

/// A pattern term in value position.
struct ValuePattern {
  bool is_literal = false;
  Value value;
  std::string name;  ///< variable name when !is_literal
  int slot = -1;
};

/// Fully analyzed rule head, ready for matching.
struct CompiledPattern {
  algebra::OpKind op = algebra::OpKind::kScan;
  std::vector<InputPattern> inputs;

  enum class PredKind { kNone, kFree, kSelect, kJoin, kSortAttr } pred_kind =
      PredKind::kNone;
  int pred_slot = -1;  ///< kFree: slot of the whole-predicate variable

  // kSelect
  AttrPattern sel_attr;
  algebra::CmpOp sel_op = algebra::CmpOp::kEq;
  ValuePattern sel_value;

  // kJoin
  AttrPattern join_left;
  AttrPattern join_right;

  // kSortAttr (sort rules)
  AttrPattern sort_attr;

  /// Number of literal (bound) parameters; the paper's "more bound
  /// parameters" ordering (Section 3.3.2).
  int specificity = 0;

  /// True if any part of the predicate position is literal -- this makes
  /// the rule predicate-scope in the Figure 10 hierarchy.
  bool predicate_bound = false;
  /// True if any input is a literal collection -- collection-scope.
  bool collection_bound = false;

  std::string ToString() const;
};

/// Analysis result for one head: the pattern plus the binding-slot table
/// the body compiler resolves variables against.
struct AnalyzedHead {
  CompiledPattern pattern;
  /// slot -> (name lowercased, kind); slot i of the Bindings vector.
  std::vector<std::pair<std::string, BindingKind>> slots;
  /// lowercased literal input names / collection-variable names -> input
  /// index, for resolving `Employee.TotalSize` or `C.TotalTime`.
  std::map<std::string, int> input_names;
};

/// Analyzes a rule head against `schema`.
Result<AnalyzedHead> AnalyzeHead(const RuleHeadAst& head,
                                 const CompileSchema& schema);

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_ANALYZER_H_
