#include "costlang/ast.h"

#include "common/str_util.h"

namespace disco {
namespace costlang {

namespace {
const char* BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kNumber: {
      Value v(number);
      return v.ToString();
    }
    case ExprKind::kString:
      return "'" + string_value + "'";
    case ExprKind::kPathRef:
      return JoinStrings(path, ".");
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + BinOpToString(bin_op) + " " +
             args[1]->ToString() + ")";
    case ExprKind::kNeg:
      return "(-" + args[0]->ToString() + ")";
    case ExprKind::kCall: {
      std::string out = callee + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

std::unique_ptr<Expr> MakeNumber(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = v;
  return e;
}

std::unique_ptr<Expr> MakeString(std::string s) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kString;
  e->string_value = std::move(s);
  return e;
}

std::unique_ptr<Expr> MakePathRef(std::vector<std::string> path) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kPathRef;
  e->path = std::move(path);
  return e;
}

std::unique_ptr<Expr> MakeBinary(BinOp op, std::unique_ptr<Expr> l,
                                 std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->args.push_back(std::move(l));
  e->args.push_back(std::move(r));
  return e;
}

std::unique_ptr<Expr> MakeNeg(std::unique_ptr<Expr> inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNeg;
  e->args.push_back(std::move(inner));
  return e;
}

std::unique_ptr<Expr> MakeCall(std::string callee,
                               std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->callee = std::move(callee);
  e->args = std::move(args);
  return e;
}

std::string TermAst::ToString() const {
  switch (kind) {
    case Kind::kName:
      return JoinStrings(path, ".");
    case Kind::kNumber: {
      Value v(number);
      return v.ToString();
    }
    case Kind::kString:
      return "'" + string_value + "'";
  }
  return "?";
}

std::string RuleHeadAst::ToString() const {
  std::string out = op_name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].lhs.ToString();
    if (args[i].cmp.has_value()) {
      out += " ";
      out += algebra::CmpOpToString(*args[i].cmp);
      out += " ";
      out += args[i].rhs->ToString();
    }
  }
  return out + ")";
}

std::string RuleAst::ToString() const {
  std::string out = head.ToString() + " {\n";
  for (const FormulaAst& f : formulas) {
    out += "  " + f.target + " = " + f.expr->ToString() + ";\n";
  }
  return out + "}";
}

}  // namespace costlang
}  // namespace disco
