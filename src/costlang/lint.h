// Lint checks for wrapper cost-rule files.
//
// The paper's framework succeeds or fails with the wrapper implementor's
// rules; this linter catches the mistakes that compile fine but behave
// surprisingly: misspelled attributes (silently falling back to default
// statistics), duplicated patterns, unused defines, and rules that never
// contribute a time estimate.

#ifndef DISCO_COSTLANG_LINT_H_
#define DISCO_COSTLANG_LINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "costlang/analyzer.h"

namespace disco {
namespace costlang {

enum class LintKind {
  kDuplicatePattern,   ///< identical head seen earlier in the file
  kUnknownAttribute,   ///< literal attribute not in the collection's schema
  kSizeOnlyRule,       ///< rule contributes no time variable
  kUnusedDefine,       ///< global never referenced by any rule
};

const char* LintKindToString(LintKind kind);

struct LintWarning {
  LintKind kind;
  int line = 0;        ///< source line of the offending rule/define
  std::string message;

  std::string ToString() const;
};

/// Compiles `text` against `schema` and reports warnings. Returns the
/// compile error if the text does not even compile.
Result<std::vector<LintWarning>> LintRuleText(const std::string& text,
                                              const CompileSchema& schema);

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_LINT_H_
