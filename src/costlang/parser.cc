#include "costlang/parser.h"

#include "common/str_util.h"
#include "costlang/lexer.h"

namespace disco {
namespace costlang {

namespace {

/// Expression precedence: additive < multiplicative < unary < primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<RuleSetAst> ParseRuleSet() {
    RuleSetAst out;
    while (!Peek().Is(TokenType::kEof)) {
      if (Peek().IsIdent("define") || Peek().IsIdent("let")) {
        DISCO_ASSIGN_OR_RETURN(VarDefAst def, ParseVarDef());
        out.defs.push_back(std::move(def));
      } else {
        DISCO_ASSIGN_OR_RETURN(RuleAst rule, ParseRule());
        out.rules.push_back(std::move(rule));
      }
    }
    return out;
  }

  Result<std::unique_ptr<Expr>> ParseWholeExpr() {
    DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    if (!Peek().Is(TokenType::kEof)) {
      return Err("trailing input after expression");
    }
    return e;
  }

 private:
  Result<VarDefAst> ParseVarDef() {
    VarDefAst def;
    def.line = Peek().line;
    Advance();  // 'define'
    DISCO_ASSIGN_OR_RETURN(def.name, ExpectName());
    DISCO_RETURN_NOT_OK(Expect(TokenType::kEq, "="));
    DISCO_ASSIGN_OR_RETURN(def.expr, ParseExpr());
    if (Peek().Is(TokenType::kSemicolon)) Advance();
    return def;
  }

  Result<RuleAst> ParseRule() {
    RuleAst rule;
    rule.line = Peek().line;
    DISCO_ASSIGN_OR_RETURN(rule.head, ParseHead());
    // Body: `{ formulas }` or the paper's `( formulas )`.
    TokenType open, close;
    if (Peek().Is(TokenType::kLBrace)) {
      open = TokenType::kLBrace;
      close = TokenType::kRBrace;
    } else if (Peek().Is(TokenType::kLParen)) {
      open = TokenType::kLParen;
      close = TokenType::kRParen;
    } else {
      return Err("expected '{' or '(' to open a rule body");
    }
    (void)open;
    Advance();
    while (!Peek().Is(close)) {
      if (Peek().Is(TokenType::kEof)) {
        return Err("unexpected end of input inside a rule body");
      }
      DISCO_ASSIGN_OR_RETURN(FormulaAst f, ParseFormula());
      rule.formulas.push_back(std::move(f));
    }
    Advance();  // close
    if (Peek().Is(TokenType::kSemicolon)) Advance();
    if (rule.formulas.empty()) {
      return Status::ParseError(
          StringPrintf("cost rule line %d: rule body is empty", rule.line));
    }
    return rule;
  }

  Result<RuleHeadAst> ParseHead() {
    RuleHeadAst head;
    head.line = Peek().line;
    DISCO_ASSIGN_OR_RETURN(head.op_name, ExpectName());
    DISCO_RETURN_NOT_OK(Expect(TokenType::kLParen, "("));
    while (!Peek().Is(TokenType::kRParen)) {
      DISCO_ASSIGN_OR_RETURN(HeadArgAst arg, ParseHeadArg());
      head.args.push_back(std::move(arg));
      if (Peek().Is(TokenType::kComma)) {
        Advance();
        continue;
      }
      if (!Peek().Is(TokenType::kRParen)) {
        return Err("expected ',' or ')' in rule head");
      }
    }
    Advance();  // ')'
    if (head.args.empty()) {
      return Status::ParseError(StringPrintf(
          "cost rule line %d: rule head needs at least one argument",
          head.line));
    }
    return head;
  }

  Result<HeadArgAst> ParseHeadArg() {
    HeadArgAst arg;
    DISCO_ASSIGN_OR_RETURN(arg.lhs, ParseTerm());
    std::optional<algebra::CmpOp> cmp = PeekCmp();
    if (cmp.has_value()) {
      Advance();
      arg.cmp = cmp;
      DISCO_ASSIGN_OR_RETURN(TermAst rhs, ParseTerm());
      arg.rhs = std::move(rhs);
    }
    return arg;
  }

  Result<TermAst> ParseTerm() {
    TermAst term;
    term.line = Peek().line;
    if (Peek().Is(TokenType::kNumber)) {
      term.kind = TermAst::Kind::kNumber;
      term.number = Peek().number;
      Advance();
      return term;
    }
    if (Peek().Is(TokenType::kString)) {
      term.kind = TermAst::Kind::kString;
      term.string_value = Peek().text;
      Advance();
      return term;
    }
    if (Peek().Is(TokenType::kMinus)) {  // negative literal in a pattern
      Advance();
      if (!Peek().Is(TokenType::kNumber)) {
        return Err("expected number after '-' in pattern");
      }
      term.kind = TermAst::Kind::kNumber;
      term.number = -Peek().number;
      Advance();
      return term;
    }
    term.kind = TermAst::Kind::kName;
    DISCO_ASSIGN_OR_RETURN(std::string first, ExpectName());
    term.path.push_back(std::move(first));
    while (Peek().Is(TokenType::kDot)) {
      Advance();
      DISCO_ASSIGN_OR_RETURN(std::string next, ExpectName());
      term.path.push_back(std::move(next));
    }
    return term;
  }

  Result<FormulaAst> ParseFormula() {
    FormulaAst f;
    f.line = Peek().line;
    DISCO_ASSIGN_OR_RETURN(f.target, ExpectName());
    DISCO_RETURN_NOT_OK(Expect(TokenType::kEq, "="));
    DISCO_ASSIGN_OR_RETURN(f.expr, ParseExpr());
    if (Peek().Is(TokenType::kSemicolon)) Advance();
    return f;
  }

  // expr := mul (('+'|'-') mul)*
  Result<std::unique_ptr<Expr>> ParseExpr() {
    DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMul());
    while (Peek().Is(TokenType::kPlus) || Peek().Is(TokenType::kMinus)) {
      BinOp op = Peek().Is(TokenType::kPlus) ? BinOp::kAdd : BinOp::kSub;
      int line = Peek().line;
      Advance();
      DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMul());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
      lhs->line = line;
    }
    return lhs;
  }

  // mul := unary (('*'|'/') unary)*
  Result<std::unique_ptr<Expr>> ParseMul() {
    DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (Peek().Is(TokenType::kStar) || Peek().Is(TokenType::kSlash)) {
      BinOp op = Peek().Is(TokenType::kStar) ? BinOp::kMul : BinOp::kDiv;
      int line = Peek().line;
      Advance();
      DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
      lhs->line = line;
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Peek().Is(TokenType::kMinus)) {
      int line = Peek().line;
      Advance();
      DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseUnary());
      std::unique_ptr<Expr> e = MakeNeg(std::move(inner));
      e->line = line;
      return e;
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    int line = Peek().line;
    if (Peek().Is(TokenType::kNumber)) {
      std::unique_ptr<Expr> e = MakeNumber(Peek().number);
      e->line = line;
      Advance();
      return e;
    }
    if (Peek().Is(TokenType::kString)) {
      std::unique_ptr<Expr> e = MakeString(Peek().text);
      e->line = line;
      Advance();
      return e;
    }
    if (Peek().Is(TokenType::kLParen)) {
      Advance();
      DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      DISCO_RETURN_NOT_OK(Expect(TokenType::kRParen, ")"));
      return e;
    }
    if (Peek().Is(TokenType::kIdentifier)) {
      std::string first = Peek().text;
      Advance();
      if (Peek().Is(TokenType::kLParen)) {  // function call
        Advance();
        std::vector<std::unique_ptr<Expr>> args;
        while (!Peek().Is(TokenType::kRParen)) {
          DISCO_ASSIGN_OR_RETURN(std::unique_ptr<Expr> a, ParseExpr());
          args.push_back(std::move(a));
          if (Peek().Is(TokenType::kComma)) Advance();
        }
        Advance();  // ')'
        std::unique_ptr<Expr> e = MakeCall(std::move(first), std::move(args));
        e->line = line;
        return e;
      }
      std::vector<std::string> path{std::move(first)};
      while (Peek().Is(TokenType::kDot)) {
        Advance();
        DISCO_ASSIGN_OR_RETURN(std::string next, ExpectName());
        path.push_back(std::move(next));
      }
      std::unique_ptr<Expr> e = MakePathRef(std::move(path));
      e->line = line;
      return e;
    }
    return Err("expected an expression, got '" + Peek().text + "'");
  }

  std::optional<algebra::CmpOp> PeekCmp() const {
    switch (Peek().type) {
      case TokenType::kEq: return algebra::CmpOp::kEq;
      case TokenType::kNe: return algebra::CmpOp::kNe;
      case TokenType::kLt: return algebra::CmpOp::kLt;
      case TokenType::kLe: return algebra::CmpOp::kLe;
      case TokenType::kGt: return algebra::CmpOp::kGt;
      case TokenType::kGe: return algebra::CmpOp::kGe;
      default: return std::nullopt;
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Expect(TokenType t, const char* what) {
    if (!Peek().Is(t)) {
      return Err(std::string("expected '") + what + "', got '" + Peek().text +
                 "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectName() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Err("expected identifier, got '" + Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("cost rule line %d: %s", Peek().line, msg.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<RuleSetAst> ParseRuleSet(const std::string& input) {
  DISCO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseRuleSet();
}

Result<std::unique_ptr<Expr>> ParseExpr(const std::string& input) {
  DISCO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(std::move(tokens));
  return p.ParseWholeExpr();
}

}  // namespace costlang
}  // namespace disco
