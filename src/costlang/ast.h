// AST of the cost-rule language (paper Section 3.3, Figure 9).
//
// Surface syntax accepted (a superset of Figure 9; bodies may use `{}` or
// the paper's `()`, formula separators `;` are optional at line ends):
//
//   rule_set  ::= (var_def | rule)*
//   var_def   ::= "define" name "=" expr ";"
//   rule      ::= head "{" formula* "}"
//   head      ::= op_name "(" arg ("," arg)* ")"
//   arg       ::= term                      -- collection position
//               | term cmp term             -- predicate position
//   term      ::= name ("." name)*  | number | string
//   formula   ::= target "=" expr ";"
//   target    ::= TimeFirst | TimeNext | TotalTime
//               | CountObject | TotalSize | ObjectSize
//               | name                      -- rule-local variable
//   expr      ::= standard arithmetic over numbers, strings, path
//                 references (Figure 7 naming scheme) and function calls
//
// Whether a name in a pattern position is a *literal* (a known collection
// or attribute of the registering wrapper) or a *free variable* is decided
// by the analyzer against the wrapper's schema, mirroring how the paper's
// examples use `employee` (literal) vs `C`, `A`, `V` (variables).

#ifndef DISCO_COSTLANG_AST_H_
#define DISCO_COSTLANG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "algebra/predicate.h"
#include "common/value.h"

namespace disco {
namespace costlang {

// ---- Expressions ------------------------------------------------------

enum class ExprKind {
  kNumber,   ///< numeric literal
  kString,   ///< string literal
  kPathRef,  ///< dotted name, e.g. Employee.Id.Min or CountObject
  kBinary,   ///< lhs op rhs
  kNeg,      ///< unary minus
  kCall,     ///< function call f(args...)
};

enum class BinOp { kAdd, kSub, kMul, kDiv };

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  int line = 0;

  double number = 0;                     // kNumber
  std::string string_value;              // kString
  std::vector<std::string> path;         // kPathRef: 1-3 components
  BinOp bin_op = BinOp::kAdd;            // kBinary
  std::string callee;                    // kCall
  std::vector<std::unique_ptr<Expr>> args;  // kBinary(2), kNeg(1), kCall(n)

  std::string ToString() const;
};

std::unique_ptr<Expr> MakeNumber(double v);
std::unique_ptr<Expr> MakeString(std::string s);
std::unique_ptr<Expr> MakePathRef(std::vector<std::string> path);
std::unique_ptr<Expr> MakeBinary(BinOp op, std::unique_ptr<Expr> l,
                                 std::unique_ptr<Expr> r);
std::unique_ptr<Expr> MakeNeg(std::unique_ptr<Expr> e);
std::unique_ptr<Expr> MakeCall(std::string callee,
                               std::vector<std::unique_ptr<Expr>> args);

// ---- Rule heads -------------------------------------------------------

/// One term of a head pattern before analysis. Literal-vs-variable is not
/// yet decided, except for numbers/strings which are always literals.
struct TermAst {
  enum class Kind { kName, kNumber, kString } kind = Kind::kName;
  std::vector<std::string> path;  ///< kName: possibly qualified (x1.id)
  double number = 0;
  std::string string_value;
  int line = 0;

  std::string ToString() const;
};

/// One argument of a head: either a plain term (collection position or a
/// free predicate variable) or a comparison `lhs cmp rhs` (predicate).
struct HeadArgAst {
  TermAst lhs;
  std::optional<algebra::CmpOp> cmp;  ///< set iff this is a predicate arg
  std::optional<TermAst> rhs;
};

struct RuleHeadAst {
  std::string op_name;  ///< scan | select | ... (validated by analyzer)
  std::vector<HeadArgAst> args;
  int line = 0;

  std::string ToString() const;
};

// ---- Rules and rule sets ---------------------------------------------

struct FormulaAst {
  std::string target;  ///< cost-var name or rule-local variable
  std::unique_ptr<Expr> expr;
  int line = 0;
};

struct RuleAst {
  RuleHeadAst head;
  std::vector<FormulaAst> formulas;
  int line = 0;

  std::string ToString() const;
};

struct VarDefAst {
  std::string name;
  std::unique_ptr<Expr> expr;
  int line = 0;
};

/// A full parsed rule file: global variable definitions plus rules, in
/// source order (order is the paper's tiebreak between equally specific
/// rules).
struct RuleSetAst {
  std::vector<VarDefAst> defs;
  std::vector<RuleAst> rules;
};

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_AST_H_
