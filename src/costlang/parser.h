// Recursive-descent parser for the cost-rule language.

#ifndef DISCO_COSTLANG_PARSER_H_
#define DISCO_COSTLANG_PARSER_H_

#include <string>

#include "common/result.h"
#include "costlang/ast.h"

namespace disco {
namespace costlang {

/// Parses a rule file (global `define`s plus rules) into an AST.
Result<RuleSetAst> ParseRuleSet(const std::string& input);

/// Parses a standalone expression (used by tests and the VarDef path).
Result<std::unique_ptr<Expr>> ParseExpr(const std::string& input);

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_PARSER_H_
