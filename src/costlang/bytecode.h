// Bytecode representation of compiled cost formulas.
//
// The paper (Section 2.4) ships cost formulas as compiled code to the
// mediator at registration "yield[ing] fast evaluation time ... during
// query optimization". This module is that target: a small stack machine
// whose programs are produced once by the compiler and executed many
// times by the VM while the optimizer costs candidate plans.

#ifndef DISCO_COSTLANG_BYTECODE_H_
#define DISCO_COSTLANG_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace disco {
namespace costlang {

/// The cost/statistic variables a formula can compute or reference,
/// ordered by evaluation dependency: sizes first, then times (paper
/// Section 2.3 time parameters + Section 3.3 size rules).
enum class CostVarId {
  kCountObject = 0,
  kObjectSize,
  kTotalSize,
  kTimeFirst,
  kTimeNext,
  kTotalTime,
};
constexpr int kNumCostVars = 6;

const char* CostVarName(CostVarId id);
/// Case-insensitive lookup; NotFound for non-cost-var names.
Result<CostVarId> CostVarFromName(const std::string& name);
bool IsCostVarName(const std::string& name);

/// Per-attribute statistics addressable from formulas (Figure 7).
enum class AttrStatId {
  kIndexed = 0,     ///< 1.0 if an index exists, else 0.0
  kClustered,       ///< 1.0 if data is clustered on the attribute
  kCountDistinct,
  kMin,             ///< polymorphic: may be a string
  kMax,
};

const char* AttrStatName(AttrStatId id);
Result<AttrStatId> AttrStatFromName(const std::string& name);
bool IsAttrStatName(const std::string& name);

/// Stack-machine opcodes. Operands live in Instr::a/b/c; the meaning of
/// each operand is documented per opcode.
enum class OpCode : uint8_t {
  kPushConst,      ///< a: constant-pool index
  kLoadInputVar,   ///< a: input index; b: CostVarId
  kLoadInputAttr,  ///< a: input index; b: attr operand (see below); c: AttrStatId
  kLoadSelfVar,    ///< a: CostVarId of this node (already computed)
  kLoadLocal,      ///< a: rule-local slot
  kLoadGlobal,     ///< a: rule-set global slot
  kLoadBinding,    ///< a: head-variable binding slot
  kAdd,            ///< pop rhs, lhs; push lhs + rhs
  kSub,
  kMul,
  kDiv,            ///< division by zero is an ExecutionError
  kNeg,
  kCall,           ///< a: builtin id; b: argc (args popped left-to-right)
  kSelectivity,    ///< a: argc (0 or 2); b: attr operand when argc == 2.
                   ///< argc == 2 additionally pops the comparison value.
  kRet,            ///< result is top of stack
};

/// Attribute operands of kLoadInputAttr / kSelectivity:
///   >= 0            constant-pool index of a literal attribute name
///   kAttrImplied    the attribute of the node's own select predicate
///   <= -2           binding slot s encoded as -(s + 2)
constexpr int kAttrImplied = -1;
inline int EncodeAttrBinding(int slot) { return -(slot + 2); }
inline int DecodeAttrBinding(int operand) { return -operand - 2; }

struct Instr {
  OpCode op;
  int a = 0;
  int b = 0;
  int c = 0;
};

/// A compiled formula: straight-line code ending in kRet, plus the
/// dependency metadata the estimator's phase 1 uses to propagate required
/// variables to children (paper Section 4.2 optimization (i)).
struct Program {
  std::vector<Instr> code;
  std::vector<Value> const_pool;

  /// (input index, variable) pairs this formula reads from its inputs.
  std::vector<std::pair<int, CostVarId>> input_var_refs;
  /// Variables of the same node this formula reads (cross-rule refs).
  std::vector<CostVarId> self_var_refs;

  std::string Disassemble() const;
};

}  // namespace costlang
}  // namespace disco

#endif  // DISCO_COSTLANG_BYTECODE_H_
