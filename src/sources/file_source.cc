#include "sources/data_source.h"

namespace disco {
namespace sources {

std::unique_ptr<DataSource> MakeFileSource(std::string name, double parse_ms) {
  storage::SourceCostParams params;
  params.ms_startup = 20.0;             // opening a file is cheap
  params.ms_per_page_read = 10.0;       // sequential read-ahead
  params.ms_per_object = 2.0;           // emit a parsed record
  params.ms_parse_per_object = parse_ms;  // decoding text per record
  params.ms_per_cmp = 0.01;             // interpreting predicates on text
  EngineOptions engine;
  engine.allow_index = false;           // flat files have no indexes
  return std::make_unique<DataSource>(std::move(name), /*pool_pages=*/256,
                                      params, engine);
}

}  // namespace sources
}  // namespace disco
