// A simulated heterogeneous data source: a named set of tables over one
// StorageEnv, executing algebraic subqueries through a SourceEngine and
// reporting *measured* (simulated-clock) costs.
//
// Source families differ in their engine options and timing constants --
// the heterogeneity the paper's cost-model problem is about:
//   file sources        no indexes, per-object parse overhead;
//   relational sources  indexes + page-ordered fetching;
//   object db sources   indexes with unclustered per-object fetching
//                       (the ObjectStore behaviour of Figure 12).

#ifndef DISCO_SOURCES_DATA_SOURCE_H_
#define DISCO_SOURCES_DATA_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "common/result.h"
#include "sources/source_engine.h"
#include "storage/table.h"

namespace disco {
namespace sources {

class DataSource {
 public:
  DataSource(std::string name, size_t pool_pages,
             storage::SourceCostParams params, EngineOptions engine_options);

  const std::string& name() const { return name_; }
  storage::StorageEnv* env() { return &env_; }
  const EngineOptions& engine_options() const { return engine_options_; }

  /// Creates (and owns) a table.
  storage::Table* CreateTable(CollectionSchema schema,
                              storage::TableOptions options = {});

  /// Table by name; nullptr if absent.
  storage::Table* table(const std::string& name);
  const storage::Table* table(const std::string& name) const;
  std::vector<storage::Table*> tables();
  std::vector<const storage::Table*> tables() const;

  /// Executes an algebraic subquery against this source's tables,
  /// charging the simulated clock. The subquery must not contain submit.
  Result<ExecutionResult> Execute(const algebra::Operator& plan);

 private:
  std::string name_;
  storage::StorageEnv env_;
  EngineOptions engine_options_;
  std::vector<std::unique_ptr<storage::Table>> tables_;
};

/// File-family source: scan-only access (no indexes), with a per-object
/// parse overhead of `parse_ms`.
std::unique_ptr<DataSource> MakeFileSource(std::string name,
                                           double parse_ms = 1.0);

/// Relational-family source: indexes available; record fetches after an
/// index lookup happen in page order (rid-sorted), like a disk-based
/// RDBMS.
std::unique_ptr<DataSource> MakeRelationalSource(std::string name);

/// Object-database-family source: indexes available; objects are fetched
/// one by one in index order through the buffer pool (ObjectStore-style
/// unclustered behaviour -- the regime where Yao's formula applies).
std::unique_ptr<DataSource> MakeObjectDbSource(std::string name,
                                               size_t pool_pages = 4096);

}  // namespace sources
}  // namespace disco

#endif  // DISCO_SOURCES_DATA_SOURCE_H_
