#include "sources/data_source.h"

namespace disco {
namespace sources {

std::unique_ptr<DataSource> MakeObjectDbSource(std::string name,
                                               size_t pool_pages) {
  // The ObjectStore-like configuration of the paper's Section 5: 25 ms
  // per page fault, 9 ms to produce an object, objects fetched one by one
  // in index-key order (unclustered pointer chasing).
  storage::SourceCostParams params;
  params.ms_startup = 120.0;
  params.ms_per_page_read = 25.0;
  params.ms_per_object = 9.0;
  params.ms_per_cmp = 0.005;
  EngineOptions engine;
  engine.allow_index = true;
  engine.sort_rids_before_fetch = false;
  return std::make_unique<DataSource>(std::move(name), pool_pages, params,
                                      engine);
}

}  // namespace sources
}  // namespace disco
