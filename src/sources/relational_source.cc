#include "sources/data_source.h"

namespace disco {
namespace sources {

std::unique_ptr<DataSource> MakeRelationalSource(std::string name) {
  storage::SourceCostParams params;
  params.ms_startup = 60.0;        // SQL session + plan overhead
  params.ms_per_page_read = 12.0;  // page-server style I/O
  params.ms_per_object = 1.5;      // tuple copy-out
  params.ms_per_cmp = 0.003;
  EngineOptions engine;
  engine.allow_index = true;
  engine.sort_rids_before_fetch = true;  // fetch in page order, like a RDBMS
  return std::make_unique<DataSource>(std::move(name), /*pool_pages=*/2048,
                                      params, engine);
}

}  // namespace sources
}  // namespace disco
