#include "sources/data_source.h"

#include "common/str_util.h"

namespace disco {
namespace sources {

DataSource::DataSource(std::string name, size_t pool_pages,
                       storage::SourceCostParams params,
                       EngineOptions engine_options)
    : name_(std::move(name)),
      env_(pool_pages, params),
      engine_options_(engine_options) {}

storage::Table* DataSource::CreateTable(CollectionSchema schema,
                                        storage::TableOptions options) {
  tables_.push_back(
      std::make_unique<storage::Table>(std::move(schema), &env_, options));
  return tables_.back().get();
}

storage::Table* DataSource::table(const std::string& name) {
  for (auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return nullptr;
}

const storage::Table* DataSource::table(const std::string& name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return nullptr;
}

std::vector<storage::Table*> DataSource::tables() {
  std::vector<storage::Table*> out;
  for (auto& t : tables_) out.push_back(t.get());
  return out;
}

std::vector<const storage::Table*> DataSource::tables() const {
  std::vector<const storage::Table*> out;
  for (const auto& t : tables_) out.push_back(t.get());
  return out;
}

Result<ExecutionResult> DataSource::Execute(const algebra::Operator& plan) {
  std::map<std::string, storage::Table*> by_name;
  for (auto& t : tables_) by_name[t->name()] = t.get();
  SourceEngine engine(&env_, std::move(by_name), engine_options_);
  return engine.Execute(plan);
}

}  // namespace sources
}  // namespace disco
