#include "sources/source_engine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/str_util.h"

namespace disco {
namespace sources {

namespace {

using algebra::CmpOp;
using algebra::OpKind;
using algebra::Operator;
using storage::Table;
using storage::Tuple;

double Log2N(size_t n) { return std::log2(static_cast<double>(std::max<size_t>(n, 2))); }

/// Lexicographic tuple comparison over all columns (for dedup).
bool TupleLess(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    Result<int> c = a[i].Compare(b[i]);
    if (!c.ok()) continue;
    if (*c != 0) return *c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

Result<int> Rel::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i], name)) return static_cast<int>(i);
  }
  // Unqualified suffix match ("salary" finds "Employee.salary" and vice
  // versa).
  auto suffix = [](const std::string& s) {
    size_t pos = s.rfind('.');
    return pos == std::string::npos ? std::string_view(s)
                                    : std::string_view(s).substr(pos + 1);
  };
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(suffix(columns[i]), suffix(name))) {
      return static_cast<int>(i);
    }
  }
  return Status::NotFound("no column named '" + name + "'");
}

SourceEngine::SourceEngine(storage::StorageEnv* env,
                           std::map<std::string, Table*> tables,
                           EngineOptions options)
    : env_(env), tables_(std::move(tables)), options_(options) {}

Result<Table*> SourceEngine::TableFor(const std::string& collection) const {
  auto it = tables_.find(collection);
  if (it != tables_.end()) return it->second;
  for (const auto& [name, table] : tables_) {
    if (EqualsIgnoreCase(name, collection)) return table;
  }
  return Status::NotFound("source has no collection '" + collection + "'");
}

void SourceEngine::ChargeOutput(int64_t n) {
  env_->clock.Advance(static_cast<double>(n) *
                      (env_->params.ms_per_object +
                       env_->params.ms_parse_per_object));
  objects_produced_ += n;
  if (n > 0) NoteFirstTuple();
}

void SourceEngine::NoteFirstTuple() {
  if (!first_tuple_at_.has_value()) first_tuple_at_ = env_->clock.now_ms();
}

void SourceEngine::MarkBlockingBarrier() {
  first_tuple_at_ = env_->clock.now_ms();
}

Result<ExecutionResult> SourceEngine::Execute(const Operator& plan) {
  DISCO_RETURN_NOT_OK(plan.CheckWellFormed());
  first_tuple_at_.reset();
  objects_produced_ = 0;
  const int64_t misses_before = env_->pool.misses();
  const double t0 = env_->clock.now_ms();
  env_->clock.Advance(env_->params.ms_startup);

  DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(plan));

  ExecutionResult out;
  out.columns = std::move(rel.columns);
  out.tuples = std::move(rel.tuples);
  out.total_ms = env_->clock.now_ms() - t0;
  out.first_tuple_ms =
      first_tuple_at_.has_value() ? *first_tuple_at_ - t0 : out.total_ms;
  out.pages_read = env_->pool.misses() - misses_before;
  out.objects_produced = objects_produced_;
  return out;
}

Result<Rel> SourceEngine::Eval(const Operator& op) {
  switch (op.kind) {
    case OpKind::kScan: {
      DISCO_ASSIGN_OR_RETURN(Table * table, TableFor(op.collection));
      return EvalAccessPath(*table, {});
    }

    case OpKind::kSelect: {
      // Fuse a chain of selects over a scan into one access path.
      std::vector<algebra::SelectPredicate> preds{*op.select_pred};
      const Operator* cur = &op.child(0);
      while (cur->kind == OpKind::kSelect) {
        preds.push_back(*cur->select_pred);
        cur = &cur->child(0);
      }
      if (cur->kind == OpKind::kScan) {
        DISCO_ASSIGN_OR_RETURN(Table * table, TableFor(cur->collection));
        return EvalAccessPath(*table, std::move(preds));
      }
      // General case: filter a materialized input.
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(int col,
                             rel.ColumnIndex(op.select_pred->attribute));
      Rel out;
      out.columns = rel.columns;
      for (Tuple& t : rel.tuples) {
        env_->clock.Advance(env_->params.ms_per_cmp);
        DISCO_ASSIGN_OR_RETURN(
            bool keep, algebra::EvalPredicate(t[static_cast<size_t>(col)],
                                              *op.select_pred));
        if (keep) {
          out.tuples.push_back(std::move(t));
          NoteFirstTuple();
        }
      }
      return out;
    }

    case OpKind::kProject: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      std::vector<int> cols;
      for (const std::string& a : op.project_attrs) {
        DISCO_ASSIGN_OR_RETURN(int c, rel.ColumnIndex(a));
        cols.push_back(c);
      }
      Rel out;
      out.columns = op.project_attrs;
      out.tuples.reserve(rel.tuples.size());
      env_->clock.Advance(static_cast<double>(rel.tuples.size()) *
                          env_->params.ms_per_cmp);
      for (const Tuple& t : rel.tuples) {
        Tuple nt;
        nt.reserve(cols.size());
        for (int c : cols) nt.push_back(t[static_cast<size_t>(c)]);
        out.tuples.push_back(std::move(nt));
      }
      if (!out.tuples.empty()) NoteFirstTuple();
      return out;
    }

    case OpKind::kSort: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(int col, rel.ColumnIndex(op.sort_attr));
      return SortRel(std::move(rel), col, op.sort_ascending);
    }

    case OpKind::kDedup: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      env_->clock.Advance(static_cast<double>(rel.tuples.size()) *
                          Log2N(rel.tuples.size()) * env_->params.ms_per_cmp);
      MarkBlockingBarrier();
      std::stable_sort(rel.tuples.begin(), rel.tuples.end(), TupleLess);
      Rel out;
      out.columns = rel.columns;
      for (Tuple& t : rel.tuples) {
        env_->clock.Advance(env_->params.ms_per_cmp);
        if (out.tuples.empty() || !(out.tuples.back() == t)) {
          out.tuples.push_back(std::move(t));
        }
      }
      if (!out.tuples.empty()) NoteFirstTuple();
      return out;
    }

    case OpKind::kAggregate: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      int agg_col = -1;
      if (!op.agg_attr.empty()) {
        DISCO_ASSIGN_OR_RETURN(agg_col, rel.ColumnIndex(op.agg_attr));
      }
      std::vector<int> group_cols;
      for (const std::string& g : op.group_by) {
        DISCO_ASSIGN_OR_RETURN(int c, rel.ColumnIndex(g));
        group_cols.push_back(c);
      }
      env_->clock.Advance(static_cast<double>(rel.tuples.size()) *
                          env_->params.ms_per_cmp);

      struct Acc {
        int64_t count = 0;
        double sum = 0;
        std::optional<Value> min, max;
      };
      std::map<std::string, std::pair<Tuple, Acc>> groups;
      for (const Tuple& t : rel.tuples) {
        std::string key;
        Tuple group_vals;
        for (int c : group_cols) {
          key += t[static_cast<size_t>(c)].ToString();
          key += '\x1f';
          group_vals.push_back(t[static_cast<size_t>(c)]);
        }
        auto& [vals, acc] = groups[key];
        vals = group_vals;
        ++acc.count;
        if (agg_col >= 0) {
          const Value& v = t[static_cast<size_t>(agg_col)];
          if (v.is_numeric()) acc.sum += v.AsDouble();
          if (!acc.min.has_value()) {
            acc.min = v;
            acc.max = v;
          } else {
            Result<int> lo = v.Compare(*acc.min);
            Result<int> hi = v.Compare(*acc.max);
            if (lo.ok() && *lo < 0) acc.min = v;
            if (hi.ok() && *hi > 0) acc.max = v;
          }
        }
      }
      if (groups.empty() && op.group_by.empty()) {
        groups[""] = {Tuple{}, Acc{}};  // scalar aggregate over empty input
      }
      MarkBlockingBarrier();
      Rel out;
      out.columns = op.group_by;
      std::string agg_name = algebra::AggFuncToString(op.agg_func);
      agg_name += "(" + (op.agg_attr.empty() ? std::string("*") : op.agg_attr) +
                  ")";
      out.columns.push_back(agg_name);
      for (auto& [key, entry] : groups) {
        auto& [vals, acc] = entry;
        Tuple t = vals;
        switch (op.agg_func) {
          case algebra::AggFunc::kCount:
            t.push_back(Value(acc.count));
            break;
          case algebra::AggFunc::kSum:
            t.push_back(Value(acc.sum));
            break;
          case algebra::AggFunc::kAvg:
            t.push_back(Value(acc.count > 0
                                  ? acc.sum / static_cast<double>(acc.count)
                                  : 0.0));
            break;
          case algebra::AggFunc::kMin:
            t.push_back(acc.min.value_or(Value::Null()));
            break;
          case algebra::AggFunc::kMax:
            t.push_back(acc.max.value_or(Value::Null()));
            break;
        }
        out.tuples.push_back(std::move(t));
      }
      ChargeOutput(static_cast<int64_t>(out.tuples.size()));
      return out;
    }

    case OpKind::kJoin:
      return EvalJoin(op);

    case OpKind::kUnion: {
      DISCO_ASSIGN_OR_RETURN(Rel left, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(Rel right, Eval(op.child(1)));
      if (left.columns.size() != right.columns.size()) {
        return Status::ExecutionError("union inputs have different arity");
      }
      env_->clock.Advance(static_cast<double>(right.tuples.size()) *
                          env_->params.ms_per_cmp);
      Rel out = std::move(left);
      for (Tuple& t : right.tuples) out.tuples.push_back(std::move(t));
      if (!out.tuples.empty()) NoteFirstTuple();
      return out;
    }

    case OpKind::kSubmit:
    case OpKind::kBindJoin:
      return Status::NotSupported(
          "data sources do not execute mediator operators");
  }
  return Status::Internal("bad operator kind");
}

Result<Rel> SourceEngine::EvalAccessPath(
    const Table& table, std::vector<algebra::SelectPredicate> preds) {
  Rel out;
  for (const AttributeDef& a : table.schema().attributes()) {
    out.columns.push_back(a.name);
  }

  // Resolve predicate columns up front.
  struct BoundPred {
    int col;
    algebra::SelectPredicate pred;
  };
  std::vector<BoundPred> bound;
  for (const algebra::SelectPredicate& p : preds) {
    std::optional<int> col = table.schema().AttributeIndex(p.attribute);
    if (!col.has_value()) {
      // Attribute names may arrive qualified; retry with the suffix.
      size_t pos = p.attribute.rfind('.');
      if (pos != std::string::npos) {
        col = table.schema().AttributeIndex(p.attribute.substr(pos + 1));
      }
    }
    if (!col.has_value()) {
      return Status::NotFound("collection '" + table.name() +
                              "' has no attribute '" + p.attribute + "'");
    }
    bound.push_back(BoundPred{*col, p});
  }

  // Pick an index predicate if allowed: first equality (or IN set, which
  // unions per-value equality lookups), else first range.
  int index_pred = -1;
  if (options_.allow_index) {
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i].op == CmpOp::kNe) continue;
      std::string attr =
          out.columns[static_cast<size_t>(bound[i].col)];
      if (!table.HasIndex(attr)) continue;
      if (preds[i].op == CmpOp::kEq || preds[i].op == CmpOp::kIn) {
        index_pred = static_cast<int>(i);
        break;
      }
      if (index_pred < 0) index_pred = static_cast<int>(i);
    }
  }

  auto passes_residual = [&](const Tuple& t, int skip) -> Result<bool> {
    for (size_t i = 0; i < bound.size(); ++i) {
      if (static_cast<int>(i) == skip) continue;
      env_->clock.Advance(env_->params.ms_per_cmp);
      DISCO_ASSIGN_OR_RETURN(
          bool keep,
          algebra::EvalPredicate(t[static_cast<size_t>(bound[i].col)],
                                 bound[i].pred));
      if (!keep) return false;
    }
    return true;
  };

  if (index_pred >= 0) {
    const BoundPred& ip = bound[static_cast<size_t>(index_pred)];
    const std::string& attr = out.columns[static_cast<size_t>(ip.col)];
    DISCO_ASSIGN_OR_RETURN(const storage::BTree* index, table.Index(attr));
    std::vector<storage::RID> rids;
    storage::BTree::Bound b{ip.pred.value, true};
    switch (ip.pred.op) {
      case CmpOp::kEq: {
        DISCO_ASSIGN_OR_RETURN(rids, index->SearchEq(ip.pred.value));
        break;
      }
      case CmpOp::kIn: {
        // Union of per-value equality lookups, in the deterministic
        // order of the IN set (the executor ships distinct keys).
        for (const Value& v : ip.pred.in_values) {
          DISCO_ASSIGN_OR_RETURN(std::vector<storage::RID> part,
                                 index->SearchEq(v));
          rids.insert(rids.end(), part.begin(), part.end());
        }
        break;
      }
      case CmpOp::kLt:
        b.inclusive = false;
        [[fallthrough]];
      case CmpOp::kLe: {
        DISCO_ASSIGN_OR_RETURN(rids, index->SearchRange(std::nullopt, b));
        break;
      }
      case CmpOp::kGt:
        b.inclusive = false;
        [[fallthrough]];
      case CmpOp::kGe: {
        DISCO_ASSIGN_OR_RETURN(rids, index->SearchRange(b, std::nullopt));
        break;
      }
      default:
        return Status::Internal("bad index predicate");
    }
    if (options_.sort_rids_before_fetch) {
      std::sort(rids.begin(), rids.end());
    }
    for (const storage::RID& rid : rids) {
      DISCO_ASSIGN_OR_RETURN(Tuple t, table.Fetch(rid));
      DISCO_ASSIGN_OR_RETURN(bool keep, passes_residual(t, index_pred));
      if (keep) {
        ChargeOutput(1);
        out.tuples.push_back(std::move(t));
      }
    }
    return out;
  }

  // Sequential scan with inline filtering.
  Status inner = Status::OK();
  DISCO_RETURN_NOT_OK(table.Scan([&](const storage::RID&, const Tuple& t) {
    Result<bool> keep = passes_residual(t, -1);
    if (!keep.ok()) {
      inner = keep.status();
      return false;
    }
    if (*keep) {
      ChargeOutput(1);
      out.tuples.push_back(t);
    }
    return true;
  }));
  DISCO_RETURN_NOT_OK(inner);
  return out;
}

Result<Rel> SourceEngine::EvalJoin(const Operator& op) {
  const algebra::JoinPredicate& pred = *op.join_pred;

  // Index nested loop: right child is a bare scan with an index on the
  // join attribute.
  const Operator& right_op = op.child(1);
  if (options_.allow_index && right_op.kind == OpKind::kScan) {
    Result<Table*> rt = TableFor(right_op.collection);
    if (rt.ok()) {
      std::string right_attr = pred.right_attribute;
      size_t pos = right_attr.rfind('.');
      if (pos != std::string::npos &&
          !(*rt)->schema().HasAttribute(right_attr)) {
        right_attr = right_attr.substr(pos + 1);
      }
      if ((*rt)->HasIndex(right_attr)) {
        DISCO_ASSIGN_OR_RETURN(Rel left, Eval(op.child(0)));
        DISCO_ASSIGN_OR_RETURN(int lcol,
                               left.ColumnIndex(pred.left_attribute));
        DISCO_ASSIGN_OR_RETURN(const storage::BTree* index,
                               (*rt)->Index(right_attr));
        Rel out;
        out.columns = left.columns;
        for (const AttributeDef& a : (*rt)->schema().attributes()) {
          out.columns.push_back(a.name);
        }
        for (const Tuple& lt : left.tuples) {
          env_->clock.Advance(env_->params.ms_per_cmp);
          DISCO_ASSIGN_OR_RETURN(
              std::vector<storage::RID> rids,
              index->SearchEq(lt[static_cast<size_t>(lcol)]));
          for (const storage::RID& rid : rids) {
            DISCO_ASSIGN_OR_RETURN(Tuple rtuple, (*rt)->Fetch(rid));
            Tuple joined = lt;
            joined.insert(joined.end(), rtuple.begin(), rtuple.end());
            ChargeOutput(1);
            out.tuples.push_back(std::move(joined));
          }
        }
        return out;
      }
    }
  }

  DISCO_ASSIGN_OR_RETURN(Rel left, Eval(op.child(0)));
  DISCO_ASSIGN_OR_RETURN(Rel right, Eval(op.child(1)));
  DISCO_ASSIGN_OR_RETURN(int lcol, left.ColumnIndex(pred.left_attribute));
  DISCO_ASSIGN_OR_RETURN(int rcol, right.ColumnIndex(pred.right_attribute));

  Rel out;
  out.columns = left.columns;
  out.columns.insert(out.columns.end(), right.columns.begin(),
                     right.columns.end());

  const size_t ln = left.tuples.size(), rn = right.tuples.size();
  if (std::min(ln, rn) < static_cast<size_t>(options_.nested_loop_threshold)) {
    // Nested loops.
    for (const Tuple& lt : left.tuples) {
      for (const Tuple& rt : right.tuples) {
        env_->clock.Advance(env_->params.ms_per_cmp);
        if (lt[static_cast<size_t>(lcol)] == rt[static_cast<size_t>(rcol)]) {
          Tuple joined = lt;
          joined.insert(joined.end(), rt.begin(), rt.end());
          ChargeOutput(1);
          out.tuples.push_back(std::move(joined));
        }
      }
    }
    return out;
  }

  // Sort-merge.
  DISCO_ASSIGN_OR_RETURN(left, SortRel(std::move(left), lcol, true));
  DISCO_ASSIGN_OR_RETURN(right, SortRel(std::move(right), rcol, true));
  size_t i = 0, j = 0;
  while (i < left.tuples.size() && j < right.tuples.size()) {
    env_->clock.Advance(env_->params.ms_per_cmp);
    DISCO_ASSIGN_OR_RETURN(
        int c, left.tuples[i][static_cast<size_t>(lcol)].Compare(
                   right.tuples[j][static_cast<size_t>(rcol)]));
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Emit the cross product of the equal runs.
      size_t j2 = j;
      while (j2 < right.tuples.size()) {
        DISCO_ASSIGN_OR_RETURN(
            int c2, left.tuples[i][static_cast<size_t>(lcol)].Compare(
                        right.tuples[j2][static_cast<size_t>(rcol)]));
        if (c2 != 0) break;
        Tuple joined = left.tuples[i];
        joined.insert(joined.end(), right.tuples[j2].begin(),
                      right.tuples[j2].end());
        ChargeOutput(1);
        out.tuples.push_back(std::move(joined));
        ++j2;
      }
      ++i;
    }
  }
  return out;
}

Result<Rel> SourceEngine::SortRel(Rel rel, int column, bool ascending) {
  env_->clock.Advance(static_cast<double>(rel.tuples.size()) *
                      Log2N(rel.tuples.size()) * env_->params.ms_per_cmp);
  MarkBlockingBarrier();
  Status status = Status::OK();
  std::stable_sort(
      rel.tuples.begin(), rel.tuples.end(),
      [&](const Tuple& a, const Tuple& b) {
        Result<int> c = a[static_cast<size_t>(column)].Compare(
            b[static_cast<size_t>(column)]);
        if (!c.ok()) {
          if (status.ok()) status = c.status();
          return false;
        }
        return ascending ? *c < 0 : *c > 0;
      });
  DISCO_RETURN_NOT_OK(status);
  return rel;
}

}  // namespace sources
}  // namespace disco
