// SourceEngine: executes algebraic subqueries against a set of tables,
// charging the simulated clock for page I/O (through the buffer pool),
// per-comparison CPU and per-object output work.

#ifndef DISCO_SOURCES_SOURCE_ENGINE_H_
#define DISCO_SOURCES_SOURCE_ENGINE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "common/result.h"
#include "storage/table.h"

namespace disco {
namespace sources {

struct EngineOptions {
  /// Use indexes for selections/joins when available (file sources: no).
  bool allow_index = true;
  /// Sort rids by page before fetching after an index lookup (relational
  /// behaviour); object databases chase references in key order instead.
  bool sort_rids_before_fetch = false;
  /// Inputs smaller than this use nested loops instead of sort-merge.
  int nested_loop_threshold = 64;
};

/// A materialized intermediate result.
struct Rel {
  std::vector<std::string> columns;
  std::vector<storage::Tuple> tuples;

  /// Column index for `name`: exact, then case-insensitive, then by
  /// unqualified suffix. NotFound if absent or ambiguous rules find none.
  Result<int> ColumnIndex(const std::string& name) const;
};

/// What a source reports back for one executed subquery.
struct ExecutionResult {
  std::vector<std::string> columns;
  std::vector<storage::Tuple> tuples;
  double total_ms = 0;        ///< simulated wall time of the subquery
  double first_tuple_ms = 0;  ///< time until the first result tuple
  int64_t pages_read = 0;     ///< buffer-pool misses during execution
  int64_t objects_produced = 0;
};

class SourceEngine {
 public:
  SourceEngine(storage::StorageEnv* env,
               std::map<std::string, storage::Table*> tables,
               EngineOptions options);

  /// Executes `plan` (no submit nodes). Charges startup, then evaluates.
  Result<ExecutionResult> Execute(const algebra::Operator& plan);

 private:
  Result<Rel> Eval(const algebra::Operator& op);
  Result<Rel> EvalAccessPath(const storage::Table& table,
                             std::vector<algebra::SelectPredicate> preds);
  Result<Rel> EvalJoin(const algebra::Operator& op);
  Result<Rel> SortRel(Rel rel, int column, bool ascending);
  Result<storage::Table*> TableFor(const std::string& collection) const;

  void ChargeOutput(int64_t n);
  void NoteFirstTuple();
  /// Blocking operators (sort, dedup, aggregate, merge) deliver their
  /// first tuple only once the barrier completes: reset the first-tuple
  /// mark to "now".
  void MarkBlockingBarrier();

  storage::StorageEnv* env_;
  std::map<std::string, storage::Table*> tables_;
  EngineOptions options_;
  std::optional<double> first_tuple_at_;
  int64_t objects_produced_ = 0;
};

}  // namespace sources
}  // namespace disco

#endif  // DISCO_SOURCES_SOURCE_ENGINE_H_
