#include "mediator/mediator.h"

#include "algebra/plan_printer.h"
#include "common/logging.h"
#include "common/str_util.h"

namespace disco {
namespace mediator {

Mediator::Mediator(MediatorOptions options)
    : options_(std::move(options)),
      history_(options_.history_alpha),
      estimator_(&registry_, &catalog_,
                 options_.record_history ? &history_ : nullptr),
      optimizer_(&estimator_, &caps_),
      health_(options_.breaker) {
  Status s = costmodel::InstallGenericModel(&registry_, options_.calibration);
  DISCO_CHECK(s.ok()) << "generic cost model failed to install: "
                      << s.ToString();
}

Status Mediator::RegisterWrapper(std::unique_ptr<wrapper::Wrapper> w) {
  DISCO_ASSIGN_OR_RETURN(
      wrapper::RegistrationReport report,
      wrapper::RegisterWrapper(w.get(), &catalog_, &registry_, &caps_));
  (void)report;
  wrappers_.push_back(std::move(w));
  return Status::OK();
}

Status Mediator::ReRegisterWrapper(const std::string& name) {
  wrapper::Wrapper* w = wrapper(name);
  if (w == nullptr) {
    return Status::NotFound("no registered wrapper named '" + name + "'");
  }
  DISCO_RETURN_NOT_OK(wrapper::RefreshStatistics(w, &catalog_));
  registry_.RemoveWrapperRules(w->name());
  const std::string rule_text = w->ExportCostRules();
  if (!rule_text.empty()) {
    // Recompile against the wrapper's current schema.
    costlang::CompileSchema schema;
    for (const std::string& coll : catalog_.CollectionsOf(w->name())) {
      Result<CatalogEntry> entry = catalog_.Collection(coll);
      if (!entry.ok()) continue;
      std::vector<std::string> attrs;
      for (const AttributeDef& a : entry->schema.attributes()) {
        attrs.push_back(a.name);
      }
      schema.AddCollection(coll, attrs);
    }
    DISCO_ASSIGN_OR_RETURN(costlang::CompiledRuleSet rules,
                           costlang::CompileRuleText(rule_text, schema));
    DISCO_RETURN_NOT_OK(registry_.AddWrapperRules(w->name(), std::move(rules)));
  }
  caps_.Set(w->name(), w->ExportCapabilities());
  // An administrative refresh is a statement that the source is (again)
  // trustworthy: forget its breaker state.
  health_.Reset(w->name());
  return Status::OK();
}

Status Mediator::DeclareEquivalent(const std::string& collection_a,
                                   const std::string& collection_b) {
  return catalog_.DeclareEquivalent(collection_a, collection_b);
}

wrapper::Wrapper* Mediator::wrapper(const std::string& name) {
  for (auto& w : wrappers_) {
    if (EqualsIgnoreCase(w->name(), name)) return w.get();
  }
  return nullptr;
}

Result<query::BoundQuery> Mediator::Analyze(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::ParsedQuery parsed, query::ParseSql(sql));
  return query::Bind(parsed, catalog_);
}

optimizer::OptimizerOptions Mediator::PlanningOptions(
    const std::vector<std::string>& extra_avoid) const {
  optimizer::OptimizerOptions opts = options_.optimizer;
  opts.catalog = &catalog_;
  opts.avoid_sources = health_.OpenSources(sim_now_ms_);
  for (const std::string& s : extra_avoid) {
    opts.avoid_sources.push_back(s);
  }
  return opts;
}

Result<optimizer::OptimizedPlan> Mediator::Plan(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::BoundQuery bound, Analyze(sql));
  return optimizer_.Optimize(bound, PlanningOptions({}));
}

Result<std::string> Mediator::Explain(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(optimizer::OptimizedPlan plan, Plan(sql));
  costmodel::EstimateOptions options = options_.optimizer.estimate;
  options.collect_explain = true;
  DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate estimate,
                         estimator_.Estimate(*plan.plan, options));
  return costmodel::FormatExplain(estimate);
}

namespace {

/// Does `op` (or any descendant) submit to one of `sources`?
bool PlanUsesAnySource(const algebra::Operator& op,
                       const std::vector<std::string>& sources) {
  if (op.kind == algebra::OpKind::kSubmit ||
      op.kind == algebra::OpKind::kBindJoin) {
    for (const std::string& s : sources) {
      if (EqualsIgnoreCase(s, op.source)) return true;
    }
  }
  for (int i = 0; i < op.num_children(); ++i) {
    if (PlanUsesAnySource(op.child(i), sources)) return true;
  }
  return false;
}

/// Surfaces replica rerouting decisions as structured warnings.
void AddReplicaWarnings(const optimizer::OptimizedPlan& plan,
                        const Catalog& catalog, QueryResult* out) {
  for (const auto& [original, replica] : plan.replica_substitutions) {
    Result<std::string> source = catalog.SourceOf(replica);
    out->warnings.push_back(ExecWarning{
        source.ok() ? ToLower(*source) : std::string(),
        "rerouted '" + original + "' to replica '" + replica + "'", 0});
  }
}

}  // namespace

Result<QueryResult> Mediator::Query(const std::string& sql) {
  DISCO_ASSIGN_OR_RETURN(query::BoundQuery bound, Analyze(sql));
  DISCO_ASSIGN_OR_RETURN(optimizer::OptimizedPlan plan,
                         optimizer_.Optimize(bound, PlanningOptions({})));
  std::vector<std::string> failed;
  double first_attempt_ms = 0;
  Result<QueryResult> result =
      ExecuteInternal(*plan.plan, &failed, &first_attempt_ms);
  if (result.ok()) {
    result->estimated_ms = plan.estimated_ms;
    result->optimizer_stats = plan.stats;
    AddReplicaWarnings(plan, catalog_, &*result);
    return result;
  }
  if (!options_.replan_on_source_failure || failed.empty() ||
      !result.status().IsUnavailable()) {
    return result;
  }
  // A source died mid-execution: replan once around it. Only worth
  // re-executing when the new plan actually avoids every dead source.
  Result<optimizer::OptimizedPlan> replanned =
      optimizer_.Optimize(bound, PlanningOptions(failed));
  if (!replanned.ok() || PlanUsesAnySource(*replanned->plan, failed)) {
    return result;
  }
  Result<QueryResult> second =
      ExecuteInternal(*replanned->plan, nullptr, nullptr);
  if (!second.ok()) return result;  // report the original failure
  second->estimated_ms = replanned->estimated_ms;
  second->optimizer_stats = replanned->stats;
  // The failed first execution still happened: charge its time.
  second->measured_ms += first_attempt_ms;
  second->warnings.insert(
      second->warnings.begin(),
      ExecWarning{failed[0],
                  "replanned around unavailable source(s): " +
                      JoinStrings(failed, ", "),
                  0});
  AddReplicaWarnings(*replanned, catalog_, &*second);
  return second;
}

Result<QueryResult> Mediator::Execute(const algebra::Operator& plan) {
  return ExecuteInternal(plan, nullptr, nullptr);
}

Result<QueryResult> Mediator::ExecuteInternal(
    const algebra::Operator& plan, std::vector<std::string>* failed_sources,
    double* elapsed_ms) {
  std::map<std::string, wrapper::Wrapper*> by_name;
  for (auto& w : wrappers_) by_name[ToLower(w->name())] = w.get();
  MediatorExecutor exec(std::move(by_name), options_.exec, &catalog_,
                        options_.fault_tolerance, &health_, sim_now_ms_);
  Result<ExecResult> raw = exec.Execute(plan);
  // Time passed even if the query failed: advance the mediator clock so
  // breaker cooldowns keep running.
  sim_now_ms_ += exec.elapsed_ms();
  if (failed_sources != nullptr) *failed_sources = exec.failed_sources();
  if (elapsed_ms != nullptr) *elapsed_ms = exec.elapsed_ms();
  if (!raw.ok()) return raw.status();

  // Feed measured subquery costs back into the history mechanism: the
  // query scope records the exact cost; the adjustment factor tracks
  // observed/estimated per (source, operator kind).
  if (options_.record_history) {
    for (const SubqueryRecord& record : raw->subqueries) {
      costmodel::EstimateOptions no_history;
      no_history.use_history = false;
      double estimated = 0;
      Result<costmodel::PlanEstimate> est = estimator_.EstimateAt(
          *record.subplan, record.source, no_history);
      if (est.ok()) estimated = est->root.total_time();
      history_.RecordExecution(&registry_, record.source, *record.subplan,
                               estimated, record.measured);
    }
  }

  QueryResult out;
  out.columns = std::move(raw->columns);
  out.tuples = std::move(raw->tuples);
  out.plan_text = algebra::PrintPlan(plan);
  out.measured_ms = raw->measured_ms;
  out.warnings = std::move(raw->warnings);
  return out;
}

}  // namespace mediator
}  // namespace disco
