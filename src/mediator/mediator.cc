#include "mediator/mediator.h"

#include "algebra/plan_printer.h"
#include "common/logging.h"
#include "common/str_util.h"

namespace disco {
namespace mediator {

Mediator::Mediator(MediatorOptions options)
    : options_(std::move(options)),
      history_(options_.history_alpha),
      estimator_(&registry_, &catalog_,
                 options_.record_history ? &history_ : nullptr),
      optimizer_(&estimator_, &caps_) {
  Status s = costmodel::InstallGenericModel(&registry_, options_.calibration);
  DISCO_CHECK(s.ok()) << "generic cost model failed to install: "
                      << s.ToString();
}

Status Mediator::RegisterWrapper(std::unique_ptr<wrapper::Wrapper> w) {
  DISCO_ASSIGN_OR_RETURN(
      wrapper::RegistrationReport report,
      wrapper::RegisterWrapper(w.get(), &catalog_, &registry_, &caps_));
  (void)report;
  wrappers_.push_back(std::move(w));
  return Status::OK();
}

Status Mediator::ReRegisterWrapper(const std::string& name) {
  wrapper::Wrapper* w = wrapper(name);
  if (w == nullptr) {
    return Status::NotFound("no registered wrapper named '" + name + "'");
  }
  DISCO_RETURN_NOT_OK(wrapper::RefreshStatistics(w, &catalog_));
  registry_.RemoveWrapperRules(w->name());
  const std::string rule_text = w->ExportCostRules();
  if (!rule_text.empty()) {
    // Recompile against the wrapper's current schema.
    costlang::CompileSchema schema;
    for (const std::string& coll : catalog_.CollectionsOf(w->name())) {
      Result<CatalogEntry> entry = catalog_.Collection(coll);
      if (!entry.ok()) continue;
      std::vector<std::string> attrs;
      for (const AttributeDef& a : entry->schema.attributes()) {
        attrs.push_back(a.name);
      }
      schema.AddCollection(coll, attrs);
    }
    DISCO_ASSIGN_OR_RETURN(costlang::CompiledRuleSet rules,
                           costlang::CompileRuleText(rule_text, schema));
    DISCO_RETURN_NOT_OK(registry_.AddWrapperRules(w->name(), std::move(rules)));
  }
  caps_.Set(w->name(), w->ExportCapabilities());
  return Status::OK();
}

wrapper::Wrapper* Mediator::wrapper(const std::string& name) {
  for (auto& w : wrappers_) {
    if (EqualsIgnoreCase(w->name(), name)) return w.get();
  }
  return nullptr;
}

Result<query::BoundQuery> Mediator::Analyze(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::ParsedQuery parsed, query::ParseSql(sql));
  return query::Bind(parsed, catalog_);
}

Result<optimizer::OptimizedPlan> Mediator::Plan(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::BoundQuery bound, Analyze(sql));
  return optimizer_.Optimize(bound, options_.optimizer);
}

Result<std::string> Mediator::Explain(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(optimizer::OptimizedPlan plan, Plan(sql));
  costmodel::EstimateOptions options = options_.optimizer.estimate;
  options.collect_explain = true;
  DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate estimate,
                         estimator_.Estimate(*plan.plan, options));
  return costmodel::FormatExplain(estimate);
}

Result<QueryResult> Mediator::Query(const std::string& sql) {
  DISCO_ASSIGN_OR_RETURN(optimizer::OptimizedPlan plan, Plan(sql));
  DISCO_ASSIGN_OR_RETURN(QueryResult result, Execute(*plan.plan));
  result.estimated_ms = plan.estimated_ms;
  result.optimizer_stats = plan.stats;
  return result;
}

Result<QueryResult> Mediator::Execute(const algebra::Operator& plan) {
  std::map<std::string, wrapper::Wrapper*> by_name;
  for (auto& w : wrappers_) by_name[ToLower(w->name())] = w.get();
  MediatorExecutor exec(std::move(by_name), options_.exec, &catalog_);
  DISCO_ASSIGN_OR_RETURN(ExecResult raw, exec.Execute(plan));

  // Feed measured subquery costs back into the history mechanism: the
  // query scope records the exact cost; the adjustment factor tracks
  // observed/estimated per (source, operator kind).
  if (options_.record_history) {
    for (const SubqueryRecord& record : raw.subqueries) {
      costmodel::EstimateOptions no_history;
      no_history.use_history = false;
      double estimated = 0;
      Result<costmodel::PlanEstimate> est = estimator_.EstimateAt(
          *record.subplan, record.source, no_history);
      if (est.ok()) estimated = est->root.total_time();
      history_.RecordExecution(&registry_, record.source, *record.subplan,
                               estimated, record.measured);
    }
  }

  QueryResult out;
  out.columns = std::move(raw.columns);
  out.tuples = std::move(raw.tuples);
  out.plan_text = algebra::PrintPlan(plan);
  out.measured_ms = raw.measured_ms;
  return out;
}

}  // namespace mediator
}  // namespace disco
