#include "mediator/mediator.h"

#include <algorithm>
#include <limits>

#include "algebra/plan_printer.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "mediator/explain_analyze.h"

namespace disco {
namespace mediator {

namespace {

/// 16-hex structural hash identifying a plan shape in the query log.
std::string PlanFingerprint(const algebra::Operator& plan) {
  return StringPrintf("%016llx",
                      static_cast<unsigned long long>(plan.Hash()));
}

}  // namespace

Mediator::Mediator(MediatorOptions options)
    : options_(std::move(options)),
      history_(options_.history_alpha),
      estimator_(&registry_, &catalog_,
                 options_.record_history ? &history_ : nullptr),
      optimizer_(&estimator_, &caps_),
      health_(options_.breaker),
      drift_(options_.drift),
      query_log_(options_.query_log_capacity),
      planning_pool_(options_.planning_threads > 1
                         ? std::make_unique<ThreadPool>(
                               options_.planning_threads)
                         : nullptr),
      federation_pool_(options_.fault_tolerance.federation.threads > 1
                           ? std::make_unique<ThreadPool>(
                                 options_.fault_tolerance.federation.threads)
                           : nullptr),
      latency_profile_(options_.fault_tolerance.federation.hedge_quantile),
      plan_cache_(options_.plan_cache_capacity) {
  // The cost model prices bind joins the way the executor will run
  // them, so the probe-batching knobs mirror the federation options
  // unconditionally (a calibration override here could only make the
  // model disagree with execution).
  options_.calibration.bind_batch_size =
      options_.fault_tolerance.federation.bind_batch_size;
  options_.calibration.bind_parallelism =
      options_.fault_tolerance.federation.bind_parallelism;
  Status s = costmodel::InstallGenericModel(&registry_, options_.calibration);
  DISCO_CHECK(s.ok()) << "generic cost model failed to install: "
                      << s.ToString();
  // Pre-create the per-operator execution metrics family so metric
  // expositions list the whole catalog before the first query runs.
  RegisterOperatorMetrics(&metrics_);
  RegisterCritpathMetrics(&metrics_);
  // Result-guard family (docs/OBSERVABILITY.md): pre-created so metric
  // expositions list it even before the first malformed answer.
  metrics_.counter("disco.guard.batches");
  metrics_.counter("disco.guard.malformed_batches");
  metrics_.counter("disco.guard.quarantined_rows");
  metrics_.counter("disco.guard.truncated_streams");
  metrics_.counter("disco.breaker.lying_opens");
  // Observability: breaker state changes become counters and, during an
  // execution, instant trace events.
  health_.SetTransitionListener([this](const std::string& source,
                                       BreakerState from, BreakerState to,
                                       double now_ms) {
    // A breaker transition changes which sources planning may use:
    // templates touching the source are stale in both directions
    // (open: the plan submits to a dead source; close: a degraded
    // workaround plan is no longer the best choice).
    InvalidateCachedPlansFor(source);
    metrics_.counter("disco.breaker.transitions")->Increment();
    FlapCount& flaps = breaker_flaps_[source];
    ++flaps.transitions;
    if (to == BreakerState::kOpen) ++flaps.opens;
    if (to == BreakerState::kOpen) {
      metrics_.counter("disco.breaker.opens")->Increment();
      // A lying source opened because its answers could not be trusted,
      // not because it stopped answering -- distinct signal, distinct
      // counter (the result guard set the flag before transitioning).
      const bool lying = health_.Health(source).lying;
      if (lying) metrics_.counter("disco.breaker.lying_opens")->Increment();
      DISCO_LOG(Warning)
          << "circuit breaker for source '" << source << "' opened at "
          << now_ms << " ms"
          << (lying ? " (lying source: persistent malformed responses)"
                    : "");
    }
    metrics_.gauge("disco.breaker.state." + source)
        ->Set(static_cast<double>(to));
    if (active_trace_ != nullptr) {
      int mark = active_trace_->Instant(
          StringPrintf("breaker %s: %s -> %s", source.c_str(),
                       BreakerStateToString(from), BreakerStateToString(to)),
          "breaker");
      active_trace_->AddArg(mark, "source", source);
    }
  });
  // Drift breaches become a counter, a warning log line, and -- during
  // an execution -- an instant trace event carrying the recommendation.
  drift_.SetListener([this](const costmodel::DriftEvent& event) {
    // The cost knowledge the cached template was chosen under has
    // drifted past its threshold: replan this source's shapes fresh.
    InvalidateCachedPlansFor(event.source);
    metrics_.counter("disco.costmodel.drift_events")->Increment();
    DISCO_LOG(Warning) << "cost-model drift: " << event.ToString();
    if (active_trace_ != nullptr) {
      int mark = active_trace_->Instant(
          StringPrintf("cost-model drift @%s", event.source.c_str()),
          "drift");
      active_trace_->AddArg(mark, "source", event.source);
      active_trace_->AddArg(mark, "recommendation", event.recommendation);
    }
  });
}

tracing::TraceHandle Mediator::NewTrace() const {
  if (!options_.collect_traces) return nullptr;
  auto trace = std::make_shared<tracing::Trace>(sim_now_ms_);
  // Perfetto renders these "M" metadata names on the process header and
  // the serial lane; the scatter phase names its own lanes per group.
  trace->SetProcessName("disco mediator");
  trace->SetLaneName(0, "mediator");
  return trace;
}

void Mediator::InvalidateCachedPlansFor(const std::string& source) {
  const int64_t before = plan_cache_.stats().invalidations;
  plan_cache_.InvalidateSource(source);
  const int64_t dropped = plan_cache_.stats().invalidations - before;
  if (dropped > 0) {
    metrics_.counter("disco.plancache.invalidations")->Increment(dropped);
  }
}

Status Mediator::RegisterWrapper(std::unique_ptr<wrapper::Wrapper> w) {
  DISCO_ASSIGN_OR_RETURN(
      wrapper::RegistrationReport report,
      wrapper::RegisterWrapper(w.get(), &catalog_, &registry_, &caps_));
  (void)report;
  wrappers_.push_back(std::move(w));
  return Status::OK();
}

Status Mediator::ReRegisterWrapper(const std::string& name) {
  wrapper::Wrapper* w = wrapper(name);
  if (w == nullptr) {
    return Status::NotFound("no registered wrapper named '" + name + "'");
  }
  DISCO_RETURN_NOT_OK(wrapper::RefreshStatistics(w, &catalog_));
  registry_.RemoveWrapperRules(w->name());
  const std::string rule_text = w->ExportCostRules();
  if (!rule_text.empty()) {
    // Recompile against the wrapper's current schema.
    costlang::CompileSchema schema;
    for (const std::string& coll : catalog_.CollectionsOf(w->name())) {
      Result<CatalogEntry> entry = catalog_.Collection(coll);
      if (!entry.ok()) continue;
      std::vector<std::string> attrs;
      for (const AttributeDef& a : entry->schema.attributes()) {
        attrs.push_back(a.name);
      }
      schema.AddCollection(coll, attrs);
    }
    DISCO_ASSIGN_OR_RETURN(costlang::CompiledRuleSet rules,
                           costlang::CompileRuleText(rule_text, schema));
    DISCO_RETURN_NOT_OK(registry_.AddWrapperRules(w->name(), std::move(rules)));
  }
  caps_.Set(w->name(), w->ExportCapabilities());
  // An administrative refresh is a statement that the source is (again)
  // trustworthy: forget its breaker state, and let the drift monitor
  // re-freeze its baselines against the refreshed cost knowledge.
  health_.Reset(w->name());
  drift_.ResetBaseline(w->name());
  // Plans chosen under the old rules/statistics must not be replayed.
  InvalidateCachedPlansFor(w->name());
  return Status::OK();
}

Status Mediator::DeclareEquivalent(const std::string& collection_a,
                                   const std::string& collection_b) {
  DISCO_RETURN_NOT_OK(catalog_.DeclareEquivalent(collection_a, collection_b));
  // A new equivalence changes the plan space for every shape touching
  // the class (replica routing becomes possible), so drop everything.
  const int64_t dropped = static_cast<int64_t>(plan_cache_.size());
  plan_cache_.InvalidateAll();
  if (dropped > 0) {
    metrics_.counter("disco.plancache.invalidations")->Increment(dropped);
  }
  return Status::OK();
}

wrapper::Wrapper* Mediator::wrapper(const std::string& name) {
  for (auto& w : wrappers_) {
    if (EqualsIgnoreCase(w->name(), name)) return w.get();
  }
  return nullptr;
}

Mediator::PlanCacheKeyParts Mediator::MakePlanCacheKey(
    const query::BoundQuery& bound) const {
  PlanCacheKeyParts parts;
  parts.canon = Canonicalize(bound);
  std::vector<std::string> avoid = health_.OpenSources(sim_now_ms_);
  for (std::string& s : avoid) s = ToLower(s);
  std::sort(avoid.begin(), avoid.end());
  avoid.erase(std::unique(avoid.begin(), avoid.end()), avoid.end());
  parts.avoid_key = JoinStrings(avoid, ",");
  return parts;
}

Result<query::BoundQuery> Mediator::Analyze(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::ParsedQuery parsed, query::ParseSql(sql));
  return query::Bind(parsed, catalog_);
}

optimizer::OptimizerOptions Mediator::PlanningOptions(
    const std::vector<std::string>& extra_avoid,
    tracing::Trace* trace) const {
  optimizer::OptimizerOptions opts = options_.optimizer;
  opts.catalog = &catalog_;
  opts.trace = trace;
  // Fast planning path: the cross-query subplan memo and (when
  // configured) the deterministic planning pool.
  opts.memo = &cost_memo_;
  opts.pool = planning_pool_.get();
  opts.avoid_sources = health_.OpenSources(sim_now_ms_);
  for (const std::string& s : extra_avoid) {
    opts.avoid_sources.push_back(s);
  }
  return opts;
}

Result<optimizer::OptimizedPlan> Mediator::Plan(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::BoundQuery bound, Analyze(sql));
  return optimizer_.Optimize(bound, PlanningOptions({}));
}

Result<std::string> Mediator::Explain(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(optimizer::OptimizedPlan plan, Plan(sql));
  costmodel::EstimateOptions options = options_.optimizer.estimate;
  options.collect_explain = true;
  DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate estimate,
                         estimator_.Estimate(*plan.plan, options));
  return costmodel::FormatExplain(estimate);
}

Result<std::string> Mediator::ExplainAnalyze(const std::string& sql) {
  metrics_.counter("disco.explain_analyze.count")->Increment();
  tracing::TraceHandle trace = NewTrace();
  tracing::ScopedSpan ea_span(trace.get(), "explain-analyze");
  ea_span.Arg("sql", sql);

  DISCO_ASSIGN_OR_RETURN(query::BoundQuery bound, Analyze(sql));
  optimizer::OptimizedPlan plan;
  {
    tracing::ScopedSpan span(trace.get(), "optimize");
    DISCO_ASSIGN_OR_RETURN(
        plan, optimizer_.Optimize(bound, PlanningOptions({}, trace.get())));
  }

  // Snapshot the estimate the optimizer believed, per node, BEFORE
  // executing: execution feeds history, which would contaminate a
  // post-hoc estimate. Visit every node so the rendering can pair each
  // plan node with its explain record.
  costmodel::EstimateOptions full = options_.optimizer.estimate;
  full.collect_explain = true;
  full.propagate_required_vars = false;
  full.prune_bound = std::numeric_limits<double>::infinity();
  DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate estimate,
                         estimator_.Estimate(*plan.plan, full));

  NodeMeasureMap measures;
  const double start_ms = sim_now_ms_;
  DISCO_ASSIGN_OR_RETURN(
      QueryResult executed,
      ExecuteInternal(*plan.plan, nullptr, nullptr, trace.get(), &measures));
  executed.estimated_ms = plan.estimated_ms;
  executed.plan_fingerprint = PlanFingerprint(*plan.plan);
  RecordQueryLog(sql, start_ms, executed);

  ExplainAnalyzeReport report;
  report.plan = plan.plan.get();
  report.estimate = &estimate;
  report.measures = &measures;
  report.estimated_total_ms = plan.estimated_ms;
  report.measured_total_ms = executed.measured_ms;
  report.warnings = &executed.warnings;
  report.profile = executed.profile.get();
  report.critical_path = executed.critical_path.get();
  report.scoreboard = accuracy_.FormatScoreboard();
  return RenderExplainAnalyze(report);
}

namespace {

/// Does `op` (or any descendant) submit to one of `sources`?
bool PlanUsesAnySource(const algebra::Operator& op,
                       const std::vector<std::string>& sources) {
  if (op.kind == algebra::OpKind::kSubmit ||
      op.kind == algebra::OpKind::kBindJoin) {
    for (const std::string& s : sources) {
      if (EqualsIgnoreCase(s, op.source)) return true;
    }
  }
  for (int i = 0; i < op.num_children(); ++i) {
    if (PlanUsesAnySource(op.child(i), sources)) return true;
  }
  return false;
}

/// Surfaces replica rerouting decisions as structured warnings.
void AddReplicaWarnings(const optimizer::OptimizedPlan& plan,
                        const Catalog& catalog,
                        const SourceHealthRegistry& health, double now_ms,
                        metrics::Registry* metrics, QueryResult* out) {
  for (const auto& [original, replica] : plan.replica_substitutions) {
    Result<std::string> source = catalog.SourceOf(replica);
    const std::string source_lower =
        source.ok() ? ToLower(*source) : std::string();
    metrics->counter("disco.exec.warnings")->Increment();
    out->warnings.push_back(ExecWarning{
        source_lower,
        "rerouted '" + original + "' to replica '" + replica + "'", 0,
        source_lower.empty()
            ? std::string()
            : BreakerStateToString(health.StateAt(source_lower, now_ms))});
  }
}

}  // namespace

Result<QueryResult> Mediator::Query(const std::string& sql) {
  metrics_.counter("disco.query.count")->Increment();
  const double start_ms = sim_now_ms_;
  tracing::TraceHandle trace = NewTrace();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    tracing::ScopedSpan query_span(trace.get(), "query");
    query_span.Arg("sql", sql);
    // The flight-recorder seq doubles as the trace id: stamping it on
    // the root span ties a trace file back to its JSONL log line.
    if (query_log_.enabled()) {
      query_span.Arg("trace_id", query_log_.next_seq());
    }
    Result<QueryResult> r = QueryWithTrace(sql, trace.get());
    if (!r.ok()) query_span.Arg("error", r.status().ToString());
    return r;
  }();
  if (result.ok()) {
    result->trace = trace;
    metrics_.histogram("disco.query.ms")->Record(result->measured_ms);
  } else {
    metrics_.counter("disco.query.errors")->Increment();
  }
  RecordQueryLog(sql, start_ms, result);
  return result;
}

void Mediator::RecordQueryLog(const std::string& sql, double start_ms,
                              const Result<QueryResult>& result) {
  std::vector<QueryLogSubmit> submits = std::move(last_submits_);
  last_submits_.clear();
  if (!query_log_.enabled()) return;
  QueryLogEntry entry;
  entry.sql = sql;
  entry.start_ms = start_ms;
  if (result.ok()) {
    entry.plan_fingerprint = result->plan_fingerprint;
    entry.estimated_ms = result->estimated_ms;
    entry.measured_ms = result->measured_ms;
    entry.replans = result->replans;
    if (result->profile != nullptr) {
      entry.profile_nodes =
          static_cast<int>(result->profile->nodes.size());
      entry.profile_cpu_ms = result->profile->total_cpu_ms();
      entry.profile_wait_ms = result->profile->total_wait_ms();
    }
    if (result->critical_path != nullptr) {
      const CriticalSegment* top = result->critical_path->dominant();
      if (top != nullptr) {
        entry.critpath_subject = top->subject();
        entry.critpath_kind = top->kind;
        entry.critpath_ms = top->ms;
        entry.critpath_share = result->measured_ms > 0
                                   ? top->ms / result->measured_ms
                                   : 0;
      }
    }
    entry.guard_batches = result->guard.batches_checked;
    entry.guard_malformed = result->guard.malformed_batches;
    entry.guard_quarantined_rows = result->guard.rows_quarantined;
    entry.guard_truncated = result->guard.truncated_streams;
    for (const ExecWarning& w : result->warnings) {
      entry.warnings.push_back(w.ToString());
    }
  } else {
    entry.ok = false;
    entry.error = result.status().ToString();
  }
  entry.submits = std::move(submits);
  query_log_.Record(std::move(entry));
}

Result<QueryResult> Mediator::QueryWithTrace(const std::string& sql,
                                             tracing::Trace* trace) {
  query::ParsedQuery parsed;
  {
    tracing::ScopedSpan span(trace, "parse");
    DISCO_ASSIGN_OR_RETURN(parsed, query::ParseSql(sql));
  }
  query::BoundQuery bound;
  {
    tracing::ScopedSpan span(trace, "bind");
    DISCO_ASSIGN_OR_RETURN(bound, query::Bind(parsed, catalog_));
    span.Arg("relations", static_cast<int64_t>(bound.relations.size()));
  }
  // Parameterized plan cache: canonicalize the bound query (constants
  // lifted into slots) and try to replay a cached winning plan under the
  // same catalog version and avoid-set (docs/PERFORMANCE.md).
  optimizer::OptimizedPlan plan;
  bool cache_hit = false;
  PlanCacheKeyParts cache_key;
  if (plan_cache_.enabled()) {
    tracing::ScopedSpan span(trace, "plan-cache", "plan");
    cache_key = MakePlanCacheKey(bound);
    std::unique_ptr<algebra::Operator> cached = plan_cache_.Lookup(
        cache_key.canon, catalog_.version(), cache_key.avoid_key);
    span.Arg("hit", int64_t{cached != nullptr ? 1 : 0});
    span.Arg("entries", static_cast<int64_t>(plan_cache_.size()));
    if (cached != nullptr) {
      metrics_.counter("disco.plancache.hits")->Increment();
      // Re-estimate the instantiated plan so estimated_ms reflects the
      // *current* constants and cost knowledge, not the cached run's.
      DISCO_ASSIGN_OR_RETURN(
          plan.final_estimate,
          estimator_.Estimate(*cached, options_.optimizer.estimate));
      plan.plan = std::move(cached);
      plan.estimated_ms = plan.final_estimate.root.total_time();
      span.Arg("estimated_ms", plan.estimated_ms);
      cache_hit = true;
    } else {
      metrics_.counter("disco.plancache.misses")->Increment();
    }
  }
  if (!cache_hit) {
    // The optimizer nests rewrite/enumerate spans below this one.
    tracing::ScopedSpan span(trace, "optimize");
    DISCO_ASSIGN_OR_RETURN(
        plan, optimizer_.Optimize(bound, PlanningOptions({}, trace)));
    span.Arg("estimated_ms", plan.estimated_ms);
    metrics_.counter("disco.optimizer.plans_costed")
        ->Increment(plan.stats.plans_costed);
    metrics_.counter("disco.optimizer.plans_pruned")
        ->Increment(plan.stats.plans_pruned);
    metrics_.counter("disco.optimizer.formulas_evaluated")
        ->Increment(plan.stats.formulas_evaluated);
    metrics_.counter("disco.optimizer.nodes_visited")
        ->Increment(plan.stats.nodes_visited);
    metrics_.counter("disco.optimizer.match_attempts")
        ->Increment(plan.stats.match_attempts);
    metrics_.counter("disco.costmemo.hits")->Increment(plan.stats.memo_hits);
    metrics_.counter("disco.costmemo.misses")
        ->Increment(plan.stats.memo_misses);
    // Cache the winner for the next query of this shape. Plans that were
    // rerouted to replicas are not cached: their warnings describe a
    // routing decision a replay would silently repeat.
    if (plan_cache_.enabled() && plan.replica_substitutions.empty()) {
      const int64_t before = plan_cache_.stats().insertions;
      plan_cache_.Insert(cache_key.canon, catalog_.version(),
                         cache_key.avoid_key, *plan.plan);
      if (plan_cache_.stats().insertions > before) {
        metrics_.counter("disco.plancache.insertions")->Increment();
      }
    }
  }
  std::vector<std::string> failed;
  double first_attempt_ms = 0;
  Result<QueryResult> result =
      ExecuteInternal(*plan.plan, &failed, &first_attempt_ms, trace);
  if (result.ok()) {
    result->estimated_ms = plan.estimated_ms;
    result->optimizer_stats = plan.stats;
    result->plan_fingerprint = PlanFingerprint(*plan.plan);
    result->plan_cache_hit = cache_hit;
    AddReplicaWarnings(plan, catalog_, health_, sim_now_ms_, &metrics_,
                       &*result);
    return result;
  }
  if (!options_.replan_on_source_failure || failed.empty() ||
      !result.status().IsUnavailable()) {
    return result;
  }
  // A source died mid-execution: replan once around it. Only worth
  // re-executing when the new plan actually avoids every dead source.
  // The whole recovery (re-optimize + re-execute) gets its own span so
  // the replan's cost is visible in the timeline.
  metrics_.counter("disco.mediator.replans")->Increment();
  DISCO_LOG(Info) << "replanning around unavailable source(s): "
                  << JoinStrings(failed, ", ");
  tracing::ScopedSpan replan_span(trace, "replan");
  replan_span.Arg("failed_sources", JoinStrings(failed, ","));
  Result<optimizer::OptimizedPlan> replanned = [&] {
    tracing::ScopedSpan span(trace, "replan-optimize");
    return optimizer_.Optimize(bound, PlanningOptions(failed, trace));
  }();
  if (!replanned.ok() || PlanUsesAnySource(*replanned->plan, failed)) {
    replan_span.Arg("outcome", "no-alternative-plan");
    return result;
  }
  Result<QueryResult> second =
      ExecuteInternal(*replanned->plan, nullptr, nullptr, trace);
  if (!second.ok()) {
    replan_span.Arg("outcome", "re-execution-failed");
    return result;  // report the original failure
  }
  replan_span.Arg("outcome", "recovered");
  second->estimated_ms = replanned->estimated_ms;
  second->optimizer_stats = replanned->stats;
  second->plan_fingerprint = PlanFingerprint(*replanned->plan);
  second->replans = 1;
  // The failed first execution still happened: charge its time.
  second->measured_ms += first_attempt_ms;
  metrics_.counter("disco.exec.warnings")->Increment();
  second->warnings.insert(
      second->warnings.begin(),
      ExecWarning{failed[0],
                  "replanned around unavailable source(s): " +
                      JoinStrings(failed, ", "),
                  0,
                  BreakerStateToString(
                      health_.StateAt(failed[0], sim_now_ms_))});
  AddReplicaWarnings(*replanned, catalog_, health_, sim_now_ms_, &metrics_,
                     &*second);
  return second;
}

Result<QueryResult> Mediator::Execute(const algebra::Operator& plan) {
  const double start_ms = sim_now_ms_;
  tracing::TraceHandle trace = NewTrace();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    tracing::ScopedSpan span(trace.get(), "execute-plan");
    return ExecuteInternal(plan, nullptr, nullptr, trace.get());
  }();
  if (result.ok()) {
    result->trace = trace;
    result->plan_fingerprint = PlanFingerprint(plan);
  }
  // Plan-level executions leave a fingerprint-only entry (empty SQL):
  // replay skips them, but the flight recorder stays complete.
  RecordQueryLog("", start_ms, result);
  return result;
}

Result<QueryResult> Mediator::ExecuteInternal(
    const algebra::Operator& plan, std::vector<std::string>* failed_sources,
    double* elapsed_ms, tracing::Trace* trace,
    NodeMeasureMap* node_measures) {
  std::map<std::string, wrapper::Wrapper*> by_name;
  for (auto& w : wrappers_) by_name[ToLower(w->name())] = w.get();
  // Profiling rides on the same per-node measures EXPLAIN ANALYZE uses;
  // when the caller did not ask for them, collect into a local map.
  NodeMeasureMap profile_measures;
  if (options_.profile_execution && node_measures == nullptr) {
    node_measures = &profile_measures;
  }
  MediatorExecutor exec(std::move(by_name), options_.exec, &catalog_,
                        options_.fault_tolerance, &health_, sim_now_ms_);
  exec.set_trace(trace);
  exec.set_metrics(&metrics_);
  exec.set_node_measures(node_measures);
  exec.set_federation_pool(federation_pool_.get());
  exec.set_latency_profile(&latency_profile_);
  // Breaker transitions and drift breaches land as instant events on
  // the active trace; drift fires from the feedback loop below, so the
  // trace stays active through it.
  active_trace_ = trace;
  last_submits_.clear();
  Result<ExecResult> raw = [&]() -> Result<ExecResult> {
    tracing::ScopedSpan span(trace, "execute");
    Result<ExecResult> r = exec.Execute(plan);
    if (!r.ok()) span.Arg("error", r.status().ToString());
    return r;
  }();
  // Time passed even if the query failed: advance the mediator clock so
  // breaker cooldowns keep running.
  sim_now_ms_ += exec.elapsed_ms();
  if (failed_sources != nullptr) *failed_sources = exec.failed_sources();
  if (elapsed_ms != nullptr) *elapsed_ms = exec.elapsed_ms();
  if (!raw.ok()) {
    active_trace_ = nullptr;
    return raw.status();
  }

  // Feed measured subquery costs back into the history mechanism (the
  // query scope records the exact cost; the adjustment factor tracks
  // observed/estimated per source x operator kind) and score the
  // estimate each subquery ran under against what was measured.
  if (options_.record_history) {
    tracing::ScopedSpan span(trace, "history-feedback");
    for (const SubqueryRecord& record : raw->subqueries) {
      // Score first: the estimate the optimizer believed (history and
      // all), attributed to the rule scope that produced its TotalTime.
      // Recording the execution below would make this subquery's own
      // measurement win the lookup and trivialize the comparison.
      costmodel::EstimateOptions scored = options_.optimizer.estimate;
      scored.collect_explain = true;
      Result<costmodel::PlanEstimate> believed =
          estimator_.EstimateAt(*record.subplan, record.source, scored);
      costmodel::Scope scope = costmodel::Scope::kDefault;
      if (believed.ok() && !believed->explain.empty()) {
        const costmodel::NodeExplain& root = believed->explain.front();
        if (root.from_query_scope) {
          scope = costmodel::Scope::kQuery;
        } else {
          for (const costmodel::VarExplain& v : root.vars) {
            if (v.var == costmodel::CostVarId::kTotalTime) scope = v.scope;
          }
        }
        accuracy_.Record(record.source, record.subplan->kind, scope,
                         believed->root.total_time(),
                         record.measured.total_time());
        // Same (estimate, measurement, scope) triple goes to the drift
        // monitor, stamped with the post-execution simulated clock.
        drift_.Observe(record.source, record.subplan->kind, scope,
                       believed->root.total_time(),
                       record.measured.total_time(), sim_now_ms_);
      }

      if (query_log_.enabled()) {
        QueryLogSubmit submit;
        submit.source = ToLower(record.source);
        submit.subplan = record.subplan->ToString();
        submit.scope = costmodel::ScopeToString(scope);
        submit.attempts = record.attempts;
        if (believed.ok()) submit.estimated = believed->root;
        submit.measured = record.measured;
        last_submits_.push_back(std::move(submit));
      }

      costmodel::EstimateOptions no_history;
      no_history.use_history = false;
      double estimated = 0;
      Result<costmodel::PlanEstimate> est = estimator_.EstimateAt(
          *record.subplan, record.source, no_history);
      if (est.ok()) estimated = est->root.total_time();
      history_.RecordExecution(&registry_, record.source, *record.subplan,
                               estimated, record.measured);
      metrics_.counter("disco.history.observations")->Increment();
    }
    span.Arg("subqueries", static_cast<int64_t>(raw->subqueries.size()));
  }
  // Re-evaluate drift latches against the post-execution clock: a cell
  // whose plan shape stopped executing (e.g. the plan cache pinned a
  // different winner after a drift-triggered invalidation) receives no
  // further observations, so its stale samples must age out of the
  // window here rather than at the next Observe().
  drift_.Refresh(sim_now_ms_);
  active_trace_ = nullptr;

  QueryResult out;
  out.columns = std::move(raw->columns);
  out.tuples = std::move(raw->tuples);
  out.plan_text = algebra::PrintPlan(plan);
  out.measured_ms = raw->measured_ms;
  out.warnings = std::move(raw->warnings);
  out.guard = exec.guard_stats();
  if (options_.profile_execution && node_measures != nullptr) {
    auto profile = std::make_shared<PlanProfile>(
        BuildPlanProfile(plan, *node_measures, raw->measured_ms,
                         exec.scatter_charged_ms(), PlanFingerprint(plan)));
    profiles_.Record(*profile);
    if (options_.critical_path_analysis) {
      // Critical path + ranked what-ifs: segment durations sum to
      // measured_ms exactly, byte-identical across pool sizes (like the
      // profile it derives from).
      const ScatterTimeline& timeline = exec.scatter_timeline();
      auto path = std::make_shared<CriticalPath>(
          BuildCriticalPath(*profile, timeline));
      path->what_ifs = RankWhatIfs(*profile, timeline);
      critpaths_.Record(*path);
      RecordCritpathMetrics(*path, &metrics_);
      HighlightCriticalPath(*path, *profile, trace);
      out.critical_path = std::move(path);
    }
    out.profile = std::move(profile);
  }
  return out;
}

MonitorSnapshot Mediator::MonitorReport(int top_k) const {
  MonitorSnapshot snap;
  snap.now_ms = sim_now_ms_;

  const metrics::RegistrySnapshot m = metrics_.TakeSnapshot();
  auto counter = [&m](const char* name) -> int64_t {
    auto it = m.counters.find(name);
    return it == m.counters.end() ? 0 : it->second;
  };
  snap.queries = counter("disco.query.count");
  snap.query_errors = counter("disco.query.errors");
  snap.replans = counter("disco.mediator.replans");
  snap.explain_analyzes = counter("disco.explain_analyze.count");
  snap.submits = counter("disco.exec.submits");
  snap.submit_retries = counter("disco.exec.submit_retries");
  snap.submit_failures = counter("disco.exec.submit_failures");
  snap.breaker_rejections = counter("disco.exec.breaker_rejections");
  snap.drift_events = counter("disco.costmodel.drift_events");
  snap.guard_batches = counter("disco.guard.batches");
  snap.guard_malformed_batches = counter("disco.guard.malformed_batches");
  snap.guard_quarantined_rows = counter("disco.guard.quarantined_rows");
  snap.guard_truncated_streams = counter("disco.guard.truncated_streams");
  snap.lying_opens = counter("disco.breaker.lying_opens");
  snap.retry_max_attempts = options_.fault_tolerance.retry.max_attempts;

  const FederationOptions& fed = options_.fault_tolerance.federation;
  snap.federation_threads = fed.threads;
  snap.deadline_ms = fed.deadline_ms;
  snap.hedging = fed.hedge;
  snap.query_retry_budget = options_.fault_tolerance.retry.query_retry_budget;
  snap.scatter_queries = counter("disco.mediator.scatter.queries");
  snap.scatter_submits = counter("disco.mediator.scatter.submits");
  snap.hedges_launched = counter("disco.mediator.hedges.launched");
  snap.hedges_won = counter("disco.mediator.hedges.won");
  snap.hedges_cancelled = counter("disco.mediator.hedges.cancelled");
  snap.deadline_expired_submits =
      counter("disco.mediator.deadline.expired_submits");
  snap.deadline_expired_queries =
      counter("disco.mediator.deadline.expired_queries");
  snap.cancellations = counter("disco.mediator.cancellations");
  snap.retry_budget_exhaustions =
      counter("disco.mediator.retry_budget.exhausted");

  snap.log_size = query_log_.size();
  snap.log_capacity = query_log_.capacity();
  snap.log_dropped = query_log_.dropped();
  snap.log_total = query_log_.total_recorded();

  snap.plan_cache_size = plan_cache_.size();
  snap.plan_cache_capacity = options_.plan_cache_capacity;
  snap.plan_cache_hits = plan_cache_.stats().hits;
  snap.plan_cache_misses = plan_cache_.stats().misses;
  snap.plan_cache_insertions = plan_cache_.stats().insertions;
  snap.plan_cache_invalidations = plan_cache_.stats().invalidations;
  snap.plan_cache_evictions = plan_cache_.stats().evictions;
  snap.cost_memo_entries = cost_memo_.size();
  snap.cost_memo_hits = cost_memo_.hits();
  snap.cost_memo_misses = cost_memo_.misses();
  snap.cost_memo_invalidations = cost_memo_.invalidations();

  // Execution-profile panels: hottest operators and worst cardinality
  // drops, aggregated across every profiled query by plan fingerprint.
  snap.profiled_queries = profiles_.total_queries();
  snap.profiled_plans = profiles_.plan_count();
  auto operator_row = [](const ProfileRegistry::OperatorStat& s) {
    MonitorOperatorRow row;
    row.fingerprint = s.fingerprint;
    row.node_id = s.node_id;
    row.label = s.label;
    row.op = algebra::OpKindToString(s.kind);
    row.execs = s.execs;
    row.cpu_ms = s.cpu_ms;
    row.wait_ms = s.wait_ms;
    row.rows_in = s.rows_in;
    row.rows_out = s.rows_out;
    row.drop_fraction = s.drop_fraction();
    return row;
  };
  const size_t k = top_k > 0 ? static_cast<size_t>(top_k) : 0;
  for (const ProfileRegistry::OperatorStat& s :
       profiles_.HottestOperators(k)) {
    snap.hottest_operators.push_back(operator_row(s));
  }
  for (const ProfileRegistry::OperatorStat& s : profiles_.WorstDrops(k)) {
    snap.worst_drops.push_back(operator_row(s));
  }

  // Critical-path panels: cumulative blame shares and what-if savings,
  // aggregated across every analyzed query.
  snap.critpath_queries = critpaths_.total_queries();
  snap.critpath_plans = critpaths_.plan_count();
  snap.critpath_total_ms = critpaths_.total_ms();
  for (const CriticalPathRegistry::Bottleneck& b :
       critpaths_.TopBottlenecks(k)) {
    MonitorBlameRow row;
    row.subject = b.subject;
    row.kind = b.kind;
    row.ms = b.ms;
    row.segments = b.segments;
    row.queries = b.queries;
    row.share = b.share;
    snap.top_bottlenecks.push_back(std::move(row));
  }
  for (const CriticalPathRegistry::Suggestion& s :
       critpaths_.TopSuggestions(k)) {
    MonitorSuggestionRow row;
    row.description = s.description;
    row.predicted_delta_ms = s.predicted_delta_ms;
    row.queries = s.queries;
    snap.top_suggestions.push_back(std::move(row));
  }

  // Worst drift cells first: highest windowed q-error, breached cells
  // breaking ties ahead of healthy ones (key order breaks the rest, so
  // the ranking is deterministic).
  std::vector<costmodel::DriftMonitor::CellStatus> cells =
      drift_.Cells(sim_now_ms_);
  std::stable_sort(cells.begin(), cells.end(),
                   [](const costmodel::DriftMonitor::CellStatus& a,
                      const costmodel::DriftMonitor::CellStatus& b) {
                     if (a.breached != b.breached) return a.breached;
                     return a.window_q > b.window_q;
                   });
  if (top_k > 0 && cells.size() > static_cast<size_t>(top_k)) {
    cells.resize(top_k);
  }
  for (const costmodel::DriftMonitor::CellStatus& c : cells) {
    MonitorDriftRow row;
    row.source = c.key.source;
    row.op = algebra::OpKindToString(c.key.kind);
    row.scope = costmodel::ScopeToString(c.key.scope);
    row.window_count = c.window_count;
    row.window_q = c.window_q;
    row.baseline_q = c.baseline_frozen ? c.baseline_q : 0;
    row.breached = c.breached;
    snap.worst_cells.push_back(std::move(row));
  }
  const std::vector<costmodel::DriftEvent>& events = drift_.events();
  const size_t first =
      top_k > 0 && events.size() > static_cast<size_t>(top_k)
          ? events.size() - static_cast<size_t>(top_k)
          : 0;
  for (size_t i = first; i < events.size(); ++i) {
    snap.recent_events.push_back(events[i].ToString());
  }

  std::vector<std::string> sources;
  for (const auto& w : wrappers_) sources.push_back(ToLower(w->name()));
  std::sort(sources.begin(), sources.end());
  for (const std::string& source : sources) {
    const SourceHealth h = health_.Health(source);
    MonitorBreakerRow row;
    row.source = source;
    row.state = BreakerStateToString(health_.StateAt(source, sim_now_ms_));
    auto it = breaker_flaps_.find(source);
    if (it != breaker_flaps_.end()) {
      row.transitions = it->second.transitions;
      row.opens = it->second.opens;
    }
    row.rejected_submits = h.rejected_submits;
    row.failures = h.total_failures;
    row.successes = h.total_successes;
    row.probe_failures = h.consecutive_probe_failures;
    row.effective_cooldown_ms = health_.EffectiveCooldownMs(source);
    row.malformed_batches = h.malformed_batches;
    row.quarantined_rows = h.quarantined_rows;
    row.lying = h.lying;
    snap.breakers.push_back(std::move(row));
  }
  return snap;
}

}  // namespace mediator
}  // namespace disco
