#include "mediator/mediator.h"

#include <limits>

#include "algebra/plan_printer.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "mediator/explain_analyze.h"

namespace disco {
namespace mediator {

Mediator::Mediator(MediatorOptions options)
    : options_(std::move(options)),
      history_(options_.history_alpha),
      estimator_(&registry_, &catalog_,
                 options_.record_history ? &history_ : nullptr),
      optimizer_(&estimator_, &caps_),
      health_(options_.breaker) {
  Status s = costmodel::InstallGenericModel(&registry_, options_.calibration);
  DISCO_CHECK(s.ok()) << "generic cost model failed to install: "
                      << s.ToString();
  // Observability: breaker state changes become counters and, during an
  // execution, instant trace events.
  health_.SetTransitionListener([this](const std::string& source,
                                       BreakerState from, BreakerState to,
                                       double now_ms) {
    metrics_.counter("disco.breaker.transitions")->Increment();
    if (to == BreakerState::kOpen) {
      metrics_.counter("disco.breaker.opens")->Increment();
      DISCO_LOG(Warning) << "circuit breaker for source '" << source
                         << "' opened at " << now_ms << " ms";
    }
    metrics_.gauge("disco.breaker.state." + source)
        ->Set(static_cast<double>(to));
    if (active_trace_ != nullptr) {
      int mark = active_trace_->Instant(
          StringPrintf("breaker %s: %s -> %s", source.c_str(),
                       BreakerStateToString(from), BreakerStateToString(to)),
          "breaker");
      active_trace_->AddArg(mark, "source", source);
    }
  });
}

tracing::TraceHandle Mediator::NewTrace() const {
  if (!options_.collect_traces) return nullptr;
  return std::make_shared<tracing::Trace>(sim_now_ms_);
}

Status Mediator::RegisterWrapper(std::unique_ptr<wrapper::Wrapper> w) {
  DISCO_ASSIGN_OR_RETURN(
      wrapper::RegistrationReport report,
      wrapper::RegisterWrapper(w.get(), &catalog_, &registry_, &caps_));
  (void)report;
  wrappers_.push_back(std::move(w));
  return Status::OK();
}

Status Mediator::ReRegisterWrapper(const std::string& name) {
  wrapper::Wrapper* w = wrapper(name);
  if (w == nullptr) {
    return Status::NotFound("no registered wrapper named '" + name + "'");
  }
  DISCO_RETURN_NOT_OK(wrapper::RefreshStatistics(w, &catalog_));
  registry_.RemoveWrapperRules(w->name());
  const std::string rule_text = w->ExportCostRules();
  if (!rule_text.empty()) {
    // Recompile against the wrapper's current schema.
    costlang::CompileSchema schema;
    for (const std::string& coll : catalog_.CollectionsOf(w->name())) {
      Result<CatalogEntry> entry = catalog_.Collection(coll);
      if (!entry.ok()) continue;
      std::vector<std::string> attrs;
      for (const AttributeDef& a : entry->schema.attributes()) {
        attrs.push_back(a.name);
      }
      schema.AddCollection(coll, attrs);
    }
    DISCO_ASSIGN_OR_RETURN(costlang::CompiledRuleSet rules,
                           costlang::CompileRuleText(rule_text, schema));
    DISCO_RETURN_NOT_OK(registry_.AddWrapperRules(w->name(), std::move(rules)));
  }
  caps_.Set(w->name(), w->ExportCapabilities());
  // An administrative refresh is a statement that the source is (again)
  // trustworthy: forget its breaker state.
  health_.Reset(w->name());
  return Status::OK();
}

Status Mediator::DeclareEquivalent(const std::string& collection_a,
                                   const std::string& collection_b) {
  return catalog_.DeclareEquivalent(collection_a, collection_b);
}

wrapper::Wrapper* Mediator::wrapper(const std::string& name) {
  for (auto& w : wrappers_) {
    if (EqualsIgnoreCase(w->name(), name)) return w.get();
  }
  return nullptr;
}

Result<query::BoundQuery> Mediator::Analyze(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::ParsedQuery parsed, query::ParseSql(sql));
  return query::Bind(parsed, catalog_);
}

optimizer::OptimizerOptions Mediator::PlanningOptions(
    const std::vector<std::string>& extra_avoid,
    tracing::Trace* trace) const {
  optimizer::OptimizerOptions opts = options_.optimizer;
  opts.catalog = &catalog_;
  opts.trace = trace;
  opts.avoid_sources = health_.OpenSources(sim_now_ms_);
  for (const std::string& s : extra_avoid) {
    opts.avoid_sources.push_back(s);
  }
  return opts;
}

Result<optimizer::OptimizedPlan> Mediator::Plan(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(query::BoundQuery bound, Analyze(sql));
  return optimizer_.Optimize(bound, PlanningOptions({}));
}

Result<std::string> Mediator::Explain(const std::string& sql) const {
  DISCO_ASSIGN_OR_RETURN(optimizer::OptimizedPlan plan, Plan(sql));
  costmodel::EstimateOptions options = options_.optimizer.estimate;
  options.collect_explain = true;
  DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate estimate,
                         estimator_.Estimate(*plan.plan, options));
  return costmodel::FormatExplain(estimate);
}

Result<std::string> Mediator::ExplainAnalyze(const std::string& sql) {
  metrics_.counter("disco.explain_analyze.count")->Increment();
  tracing::TraceHandle trace = NewTrace();
  tracing::ScopedSpan ea_span(trace.get(), "explain-analyze");
  ea_span.Arg("sql", sql);

  DISCO_ASSIGN_OR_RETURN(query::BoundQuery bound, Analyze(sql));
  optimizer::OptimizedPlan plan;
  {
    tracing::ScopedSpan span(trace.get(), "optimize");
    DISCO_ASSIGN_OR_RETURN(
        plan, optimizer_.Optimize(bound, PlanningOptions({}, trace.get())));
  }

  // Snapshot the estimate the optimizer believed, per node, BEFORE
  // executing: execution feeds history, which would contaminate a
  // post-hoc estimate. Visit every node so the rendering can pair each
  // plan node with its explain record.
  costmodel::EstimateOptions full = options_.optimizer.estimate;
  full.collect_explain = true;
  full.propagate_required_vars = false;
  full.prune_bound = std::numeric_limits<double>::infinity();
  DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate estimate,
                         estimator_.Estimate(*plan.plan, full));

  NodeMeasureMap measures;
  DISCO_ASSIGN_OR_RETURN(
      QueryResult executed,
      ExecuteInternal(*plan.plan, nullptr, nullptr, trace.get(), &measures));

  ExplainAnalyzeReport report;
  report.plan = plan.plan.get();
  report.estimate = &estimate;
  report.measures = &measures;
  report.estimated_total_ms = plan.estimated_ms;
  report.measured_total_ms = executed.measured_ms;
  report.warnings = &executed.warnings;
  report.scoreboard = accuracy_.FormatScoreboard();
  return RenderExplainAnalyze(report);
}

namespace {

/// Does `op` (or any descendant) submit to one of `sources`?
bool PlanUsesAnySource(const algebra::Operator& op,
                       const std::vector<std::string>& sources) {
  if (op.kind == algebra::OpKind::kSubmit ||
      op.kind == algebra::OpKind::kBindJoin) {
    for (const std::string& s : sources) {
      if (EqualsIgnoreCase(s, op.source)) return true;
    }
  }
  for (int i = 0; i < op.num_children(); ++i) {
    if (PlanUsesAnySource(op.child(i), sources)) return true;
  }
  return false;
}

/// Surfaces replica rerouting decisions as structured warnings.
void AddReplicaWarnings(const optimizer::OptimizedPlan& plan,
                        const Catalog& catalog,
                        const SourceHealthRegistry& health, double now_ms,
                        metrics::Registry* metrics, QueryResult* out) {
  for (const auto& [original, replica] : plan.replica_substitutions) {
    Result<std::string> source = catalog.SourceOf(replica);
    const std::string source_lower =
        source.ok() ? ToLower(*source) : std::string();
    metrics->counter("disco.exec.warnings")->Increment();
    out->warnings.push_back(ExecWarning{
        source_lower,
        "rerouted '" + original + "' to replica '" + replica + "'", 0,
        source_lower.empty()
            ? std::string()
            : BreakerStateToString(health.StateAt(source_lower, now_ms))});
  }
}

}  // namespace

Result<QueryResult> Mediator::Query(const std::string& sql) {
  metrics_.counter("disco.query.count")->Increment();
  tracing::TraceHandle trace = NewTrace();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    tracing::ScopedSpan query_span(trace.get(), "query");
    query_span.Arg("sql", sql);
    Result<QueryResult> r = QueryWithTrace(sql, trace.get());
    if (!r.ok()) query_span.Arg("error", r.status().ToString());
    return r;
  }();
  if (result.ok()) {
    result->trace = trace;
    metrics_.histogram("disco.query.ms")->Record(result->measured_ms);
  } else {
    metrics_.counter("disco.query.errors")->Increment();
  }
  return result;
}

Result<QueryResult> Mediator::QueryWithTrace(const std::string& sql,
                                             tracing::Trace* trace) {
  query::ParsedQuery parsed;
  {
    tracing::ScopedSpan span(trace, "parse");
    DISCO_ASSIGN_OR_RETURN(parsed, query::ParseSql(sql));
  }
  query::BoundQuery bound;
  {
    tracing::ScopedSpan span(trace, "bind");
    DISCO_ASSIGN_OR_RETURN(bound, query::Bind(parsed, catalog_));
    span.Arg("relations", static_cast<int64_t>(bound.relations.size()));
  }
  optimizer::OptimizedPlan plan;
  {
    // The optimizer nests rewrite/enumerate spans below this one.
    tracing::ScopedSpan span(trace, "optimize");
    DISCO_ASSIGN_OR_RETURN(
        plan, optimizer_.Optimize(bound, PlanningOptions({}, trace)));
    span.Arg("estimated_ms", plan.estimated_ms);
    metrics_.counter("disco.optimizer.plans_costed")
        ->Increment(plan.stats.plans_costed);
    metrics_.counter("disco.optimizer.plans_pruned")
        ->Increment(plan.stats.plans_pruned);
    metrics_.counter("disco.optimizer.formulas_evaluated")
        ->Increment(plan.stats.formulas_evaluated);
    metrics_.counter("disco.optimizer.nodes_visited")
        ->Increment(plan.stats.nodes_visited);
    metrics_.counter("disco.optimizer.match_attempts")
        ->Increment(plan.stats.match_attempts);
  }
  std::vector<std::string> failed;
  double first_attempt_ms = 0;
  Result<QueryResult> result =
      ExecuteInternal(*plan.plan, &failed, &first_attempt_ms, trace);
  if (result.ok()) {
    result->estimated_ms = plan.estimated_ms;
    result->optimizer_stats = plan.stats;
    AddReplicaWarnings(plan, catalog_, health_, sim_now_ms_, &metrics_,
                       &*result);
    return result;
  }
  if (!options_.replan_on_source_failure || failed.empty() ||
      !result.status().IsUnavailable()) {
    return result;
  }
  // A source died mid-execution: replan once around it. Only worth
  // re-executing when the new plan actually avoids every dead source.
  metrics_.counter("disco.query.replans")->Increment();
  DISCO_LOG(Info) << "replanning around unavailable source(s): "
                  << JoinStrings(failed, ", ");
  Result<optimizer::OptimizedPlan> replanned = [&] {
    tracing::ScopedSpan span(trace, "replan-optimize");
    return optimizer_.Optimize(bound, PlanningOptions(failed, trace));
  }();
  if (!replanned.ok() || PlanUsesAnySource(*replanned->plan, failed)) {
    return result;
  }
  Result<QueryResult> second =
      ExecuteInternal(*replanned->plan, nullptr, nullptr, trace);
  if (!second.ok()) return result;  // report the original failure
  second->estimated_ms = replanned->estimated_ms;
  second->optimizer_stats = replanned->stats;
  // The failed first execution still happened: charge its time.
  second->measured_ms += first_attempt_ms;
  metrics_.counter("disco.exec.warnings")->Increment();
  second->warnings.insert(
      second->warnings.begin(),
      ExecWarning{failed[0],
                  "replanned around unavailable source(s): " +
                      JoinStrings(failed, ", "),
                  0,
                  BreakerStateToString(
                      health_.StateAt(failed[0], sim_now_ms_))});
  AddReplicaWarnings(*replanned, catalog_, health_, sim_now_ms_, &metrics_,
                     &*second);
  return second;
}

Result<QueryResult> Mediator::Execute(const algebra::Operator& plan) {
  tracing::TraceHandle trace = NewTrace();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    tracing::ScopedSpan span(trace.get(), "execute-plan");
    return ExecuteInternal(plan, nullptr, nullptr, trace.get());
  }();
  if (result.ok()) result->trace = trace;
  return result;
}

Result<QueryResult> Mediator::ExecuteInternal(
    const algebra::Operator& plan, std::vector<std::string>* failed_sources,
    double* elapsed_ms, tracing::Trace* trace,
    NodeMeasureMap* node_measures) {
  std::map<std::string, wrapper::Wrapper*> by_name;
  for (auto& w : wrappers_) by_name[ToLower(w->name())] = w.get();
  MediatorExecutor exec(std::move(by_name), options_.exec, &catalog_,
                        options_.fault_tolerance, &health_, sim_now_ms_);
  exec.set_trace(trace);
  exec.set_metrics(&metrics_);
  exec.set_node_measures(node_measures);
  Result<ExecResult> raw = [&]() -> Result<ExecResult> {
    tracing::ScopedSpan span(trace, "execute");
    active_trace_ = trace;  // breaker transitions land as instant events
    Result<ExecResult> r = exec.Execute(plan);
    active_trace_ = nullptr;
    if (!r.ok()) span.Arg("error", r.status().ToString());
    return r;
  }();
  // Time passed even if the query failed: advance the mediator clock so
  // breaker cooldowns keep running.
  sim_now_ms_ += exec.elapsed_ms();
  if (failed_sources != nullptr) *failed_sources = exec.failed_sources();
  if (elapsed_ms != nullptr) *elapsed_ms = exec.elapsed_ms();
  if (!raw.ok()) return raw.status();

  // Feed measured subquery costs back into the history mechanism (the
  // query scope records the exact cost; the adjustment factor tracks
  // observed/estimated per source x operator kind) and score the
  // estimate each subquery ran under against what was measured.
  if (options_.record_history) {
    tracing::ScopedSpan span(trace, "history-feedback");
    for (const SubqueryRecord& record : raw->subqueries) {
      // Score first: the estimate the optimizer believed (history and
      // all), attributed to the rule scope that produced its TotalTime.
      // Recording the execution below would make this subquery's own
      // measurement win the lookup and trivialize the comparison.
      costmodel::EstimateOptions scored = options_.optimizer.estimate;
      scored.collect_explain = true;
      Result<costmodel::PlanEstimate> believed =
          estimator_.EstimateAt(*record.subplan, record.source, scored);
      if (believed.ok() && !believed->explain.empty()) {
        const costmodel::NodeExplain& root = believed->explain.front();
        costmodel::Scope scope = costmodel::Scope::kDefault;
        if (root.from_query_scope) {
          scope = costmodel::Scope::kQuery;
        } else {
          for (const costmodel::VarExplain& v : root.vars) {
            if (v.var == costmodel::CostVarId::kTotalTime) scope = v.scope;
          }
        }
        accuracy_.Record(record.source, record.subplan->kind, scope,
                         believed->root.total_time(),
                         record.measured.total_time());
      }

      costmodel::EstimateOptions no_history;
      no_history.use_history = false;
      double estimated = 0;
      Result<costmodel::PlanEstimate> est = estimator_.EstimateAt(
          *record.subplan, record.source, no_history);
      if (est.ok()) estimated = est->root.total_time();
      history_.RecordExecution(&registry_, record.source, *record.subplan,
                               estimated, record.measured);
      metrics_.counter("disco.history.observations")->Increment();
    }
    span.Arg("subqueries", static_cast<int64_t>(raw->subqueries.size()));
  }

  QueryResult out;
  out.columns = std::move(raw->columns);
  out.tuples = std::move(raw->tuples);
  out.plan_text = algebra::PrintPlan(plan);
  out.measured_ms = raw->measured_ms;
  out.warnings = std::move(raw->warnings);
  return out;
}

}  // namespace mediator
}  // namespace disco
