// Critical-path analysis and what-if latency modeling over execution
// traces (docs/OBSERVABILITY.md).
//
// PR 6 made the scatter phase concurrent (the clock is charged
// max-not-sum) and PR 7 split every node's simulated time into CPU vs.
// wait; this module answers the operator question those two left open:
// *what actually bounds this query's response time, and what would
// change if a source were faster?*
//
// BuildCriticalPath() consumes a PlanProfile plus the executor's
// ScatterTimeline and extracts the exact critical path through the
// scatter/hedge/retry DAG on the simulated clock: a segment list whose
// durations sum to measured_ms exactly (the accounting identity of the
// profiler, asserted in tests) and which is byte-identical across
// federation pool sizes. On top of it:
//
//  - a what-if engine re-solves the DAG under hypothetical changes
//    ("source B 2x faster", "hedges disabled", "operator X free") and
//    reports the predicted response-time delta;
//  - a fingerprint-keyed CriticalPathRegistry aggregates blame shares
//    (which source / operator / wait-class bounds response time, and by
//    how much) across queries, feeding MonitorReport panels, the
//    disco.critpath.* metrics, and the tools/critpath CLI.

#ifndef DISCO_MEDIATOR_CRITICAL_PATH_H_
#define DISCO_MEDIATOR_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/tracing.h"
#include "mediator/exec.h"
#include "mediator/profiler.h"

namespace disco {
namespace mediator {

/// One contiguous stretch of the query's measured response time,
/// attributed to a single cause. Kinds:
///   cpu          - mediator per-row compare/merge/sort work
///   wait         - serially-charged communication (source time,
///                  latency, bytes, backoff, stalls)
///   scatter-wait - time on the slowest-lane chain of the concurrent
///                  scatter phase (the max-not-sum charge, decomposed)
///   hedge-wait   - the hedge-threshold wait on a primary before its
///                  winning replica was launched
///   stall        - scatter-phase time not covered by any submit on the
///                  critical lane (filler; keeps the tiling exact)
struct CriticalSegment {
  int node_id = -1;        ///< pre-order plan-node id (-1 = phase-level)
  std::string label;       ///< plan-node label or "submit @<source>" etc.
  std::string kind;        ///< see taxonomy above
  std::string source;      ///< source to blame ("" = mediator-side)
  double ms = 0;
  int subplan_index = -1;  ///< scatter segments: the submit's pre-order idx

  /// Who to blame in aggregations: the source when one is involved,
  /// otherwise the operator label (mediator-side CPU).
  const std::string& subject() const { return source.empty() ? label : source; }
};

/// A hypothetical change to re-solve the DAG under.
struct WhatIfScenario {
  enum class Kind {
    kSourceSpeedup,   ///< `source` executes `factor`x faster
    kDisableHedges,   ///< no hedged requests (winners revert to primary)
    kOperatorFree,    ///< plan node `node_id` costs nothing
  };
  Kind kind = Kind::kSourceSpeedup;
  std::string source;       ///< kSourceSpeedup
  double factor = 2.0;      ///< kSourceSpeedup: speedup factor (>= 1)
  int node_id = -1;         ///< kOperatorFree
  std::string node_label;   ///< kOperatorFree (for rendering)

  std::string ToString() const;
};

struct WhatIfResult {
  WhatIfScenario scenario;
  /// The model evaluated under the identity change -- equals measured_ms
  /// whenever the model's lane re-solve reproduces the actual schedule
  /// (it does for every schedule the executor emits today).
  double baseline_ms = 0;
  double predicted_ms = 0;

  double delta_ms() const { return baseline_ms - predicted_ms; }
  double speedup() const {
    return predicted_ms > 1e-12 ? baseline_ms / predicted_ms : 1.0;
  }
};

/// The critical path of one executed query. Identity (asserted in
/// tests/critical_path_test.cc, mirroring the profiler's):
///
///   sum(segment.ms) == measured_ms
///
/// and the segment list is byte-identical across federation pool sizes
/// (every input is pool-size invariant).
struct CriticalPath {
  std::string fingerprint;   ///< query-log plan fingerprint
  double measured_ms = 0;
  /// The scatter phase's max-not-sum charge; the scatter-wait /
  /// hedge-wait / stall segments tile exactly this much time.
  double scatter_ms = 0;
  /// Chronological scatter-chain segments first, then per-node serial
  /// segments in plan pre-order.
  std::vector<CriticalSegment> segments;
  /// Ranked what-if suggestions (filled by RankWhatIfs; optional).
  std::vector<WhatIfResult> what_ifs;

  double total_ms() const;
  /// Summed ms over segments of `kind`.
  double kind_ms(const std::string& kind) const;
  /// The largest segment (ties: earliest), nullptr when empty.
  const CriticalSegment* dominant() const;

  /// Human-readable block (appended to EXPLAIN ANALYZE).
  std::string ToText() const;
  /// One JSON object (segments + what-ifs).
  std::string ToJson() const;
};

/// Extracts the critical path from one query's profile + scatter
/// timeline. With an inactive timeline (serial execution) the path is
/// the serial CPU/wait decomposition alone.
CriticalPath BuildCriticalPath(const PlanProfile& profile,
                               const ScatterTimeline& timeline);

/// Re-solves the DAG under `scenario` and predicts the response time.
WhatIfResult EvaluateWhatIf(const PlanProfile& profile,
                            const ScatterTimeline& timeline,
                            const WhatIfScenario& scenario);

/// Generates the standard scenario sweep (every involved source 2x
/// faster, hedges disabled, each of the hottest operators free),
/// evaluates all of them, and returns the top_k by predicted delta
/// (descending; ties by rendered scenario, so the order is total).
std::vector<WhatIfResult> RankWhatIfs(const PlanProfile& profile,
                                      const ScatterTimeline& timeline,
                                      size_t top_k = 5);

/// Marks the spans on the query's critical path: matching submit/hedge
/// spans (by subplan_index arg) and plan-node spans (by creation order,
/// which is the profile's measured pre-order) gain `critical` (the
/// segment kind) and `critical_ms` args, so the Chrome export
/// highlights the path.
void HighlightCriticalPath(const CriticalPath& path,
                           const PlanProfile& profile,
                           tracing::Trace* trace);

/// Aggregates critical paths across queries, keyed by plan fingerprint.
/// Not thread-safe (owned by the single-threaded query path, like the
/// query log and the ProfileRegistry).
class CriticalPathRegistry {
 public:
  /// One (subject, kind) blame cell aggregated across every recorded
  /// query: how much critical-path time that source / operator /
  /// wait-class is responsible for.
  struct Bottleneck {
    std::string subject;  ///< source name or mediator operator label
    std::string kind;     ///< segment kind
    double ms = 0;        ///< summed critical-path ms
    int64_t segments = 0;
    int64_t queries = 0;  ///< queries in which this cell appeared
    double share = 0;     ///< ms / total critical-path ms recorded
  };

  /// One what-if scenario aggregated across queries by its rendering.
  struct Suggestion {
    std::string description;
    double predicted_delta_ms = 0;  ///< summed predicted saving
    int64_t queries = 0;
  };

  void Record(const CriticalPath& path);

  int64_t total_queries() const { return total_queries_; }
  size_t plan_count() const { return plans_.size(); }
  double total_ms() const { return total_ms_; }

  /// Top-k blame cells by summed ms, descending; ties broken by
  /// (subject, kind) so the order is total.
  std::vector<Bottleneck> TopBottlenecks(size_t top_k) const;
  /// Top-k what-if suggestions by summed predicted delta, descending;
  /// ties broken by description.
  std::vector<Suggestion> TopSuggestions(size_t top_k) const;

  /// Terminal rendering of both rankings (the tools/critpath report).
  std::string ToText(size_t top_k) const;

 private:
  struct BlameAgg {
    double ms = 0;
    int64_t segments = 0;
    int64_t queries = 0;
  };
  struct PlanAgg {
    int64_t queries = 0;
    double critical_ms = 0;
  };
  /// (subject, kind) -> aggregate, across all plans.
  std::map<std::pair<std::string, std::string>, BlameAgg> blame_;
  std::map<std::string, PlanAgg> plans_;  ///< by fingerprint
  std::map<std::string, std::pair<double, int64_t>> suggestions_;
  int64_t total_queries_ = 0;
  double total_ms_ = 0;
};

/// Pre-registers the disco.critpath.* family so expositions list the
/// whole catalog from the first scrape; `RecordCritpathMetrics` bumps
/// them per recorded query.
void RegisterCritpathMetrics(metrics::Registry* registry);
void RecordCritpathMetrics(const CriticalPath& path,
                           metrics::Registry* registry);

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_CRITICAL_PATH_H_
