#include "mediator/profiler.h"

#include <algorithm>
#include <cmath>

#include "algebra/plan_printer.h"
#include "common/str_util.h"

namespace disco {
namespace mediator {

namespace {

/// Folded-stack frames are ';'-separated, so labels must not contain
/// the separator (predicate values could); newlines would break the
/// one-line-per-stack format.
std::string FoldedFrame(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == ';') c = ',';
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

int64_t MsToUs(double ms) { return std::llround(ms * 1000.0); }

/// One folded line per nonzero self value, pre-order.
void CollectFolded(const PlanProfile& profile,
                   std::vector<std::pair<std::string, int64_t>>* out) {
  // Frame path of each node, built from the parent chain.
  std::vector<std::string> paths(profile.nodes.size());
  for (const NodeProfile& n : profile.nodes) {
    const std::string frame = FoldedFrame(n.label);
    paths[static_cast<size_t>(n.id)] =
        n.parent < 0 ? frame
                     : paths[static_cast<size_t>(n.parent)] + ";" + frame;
  }
  for (const NodeProfile& n : profile.nodes) {
    if (!n.measured) continue;
    const std::string& path = paths[static_cast<size_t>(n.id)];
    const int64_t cpu_us = MsToUs(n.cpu_ms);
    const int64_t wait_us = MsToUs(n.wait_ms);
    if (cpu_us > 0) out->emplace_back(path + ";[cpu]", cpu_us);
    if (wait_us > 0) {
      out->emplace_back(
          path + (n.concurrent ? ";[scatter-wait]" : ";[wait]"), wait_us);
    }
  }
}

}  // namespace

double PlanProfile::total_cpu_ms() const {
  double total = 0;
  for (const NodeProfile& n : nodes) total += n.cpu_ms;
  return total;
}

double PlanProfile::total_wait_ms() const {
  double total = 0;
  for (const NodeProfile& n : nodes) {
    if (!n.concurrent) total += n.wait_ms;
  }
  return total;
}

std::string PlanProfile::ToFolded() const {
  std::vector<std::pair<std::string, int64_t>> lines;
  CollectFolded(*this, &lines);
  std::string out;
  for (const auto& [stack, us] : lines) {
    out += StringPrintf("%s %lld\n", stack.c_str(),
                        static_cast<long long>(us));
  }
  return out;
}

void PlanProfile::AccumulateFolded(std::map<std::string, int64_t>* acc) const {
  std::vector<std::pair<std::string, int64_t>> lines;
  CollectFolded(*this, &lines);
  for (const auto& [stack, us] : lines) (*acc)[stack] += us;
}

std::string PlanProfile::WaterfallText() const {
  std::string out = StringPrintf(
      "cardinality waterfall (fingerprint %s)\n", fingerprint.c_str());
  out += StringPrintf("%-38s %9s %9s %7s %10s %10s %10s\n", "node", "in",
                      "out", "drop", "ttfr ms", "cpu ms", "wait ms");
  for (const NodeProfile& n : nodes) {
    if (!n.measured) continue;  // subtrees under a submit run at the source
    std::string label(static_cast<size_t>(n.depth) * 2, ' ');
    label += n.label;
    const std::string in = StringPrintf("%lld",
                                        static_cast<long long>(n.rows_in));
    const std::string rows =
        n.rows_out >= 0
            ? StringPrintf("%lld", static_cast<long long>(n.rows_out))
            : std::string("-");
    const std::string drop =
        n.drop_fraction() > 0
            ? StringPrintf("%.1f%%", n.drop_fraction() * 100.0)
            : std::string("-");
    const std::string ttfr =
        n.kind == algebra::OpKind::kSubmit && n.ok
            ? StringPrintf("%.3f", n.first_row_ms)
            : std::string("-");
    out += StringPrintf("%-38s %9s %9s %7s %10s %10.3f %10.3f%s\n",
                        label.c_str(), in.c_str(), rows.c_str(), drop.c_str(),
                        ttfr.c_str(), n.cpu_ms, n.wait_ms,
                        n.concurrent ? " *" : "");
  }
  if (scatter_charged_ms > 0) {
    out += StringPrintf(
        "scatter phase: %.3f ms charged max-not-sum "
        "(* = concurrent lane, overlaps not additive)\n",
        scatter_charged_ms);
  }
  out += StringPrintf(
      "totals: cpu %.3f ms + wait %.3f ms + scatter %.3f ms "
      "= measured %.3f ms\n",
      total_cpu_ms(), total_wait_ms(), scatter_charged_ms, measured_ms);
  return out;
}

PlanProfile BuildPlanProfile(const algebra::Operator& plan,
                             const NodeMeasureMap& measures,
                             double measured_ms, double scatter_charged_ms,
                             const std::string& fingerprint) {
  PlanProfile profile;
  profile.fingerprint = fingerprint;
  profile.measured_ms = measured_ms;
  profile.scatter_charged_ms = scatter_charged_ms;

  // Pre-order walk. NodeMeasure's cpu_ms/wait_ms are *inclusive* over
  // the subtree (running-counter deltas), so a node's self values are
  // its inclusive values minus its direct children's.
  struct Walk {
    const NodeMeasureMap& measures;
    std::vector<NodeProfile>* nodes;

    void Visit(const algebra::Operator& op, int parent, int depth) {
      const int id = static_cast<int>(nodes->size());
      {
        NodeProfile n;
        n.id = id;
        n.parent = parent;
        n.depth = depth;
        n.kind = op.kind;
        n.label = algebra::NodeLabel(op);
        nodes->push_back(std::move(n));
      }
      double child_cpu = 0, child_wait = 0;
      int64_t child_rows = 0;
      bool any_measured_child = false;
      for (const auto& child : op.children) {
        Visit(*child, id, depth + 1);
        auto cit = measures.find(child.get());
        if (cit == measures.end()) continue;
        any_measured_child = true;
        child_cpu += cit->second.cpu_ms;
        child_wait += cit->second.wait_ms;
        if (cit->second.rows >= 0) child_rows += cit->second.rows;
      }
      auto it = measures.find(&op);
      if (it == measures.end()) return;
      const NodeMeasure& m = it->second;
      NodeProfile& n = (*nodes)[static_cast<size_t>(id)];
      n.measured = true;
      n.ok = m.ok;
      n.rows_out = m.rows;
      n.attempts = m.attempts;
      n.inclusive_ms = m.inclusive_ms;
      n.first_row_ms = m.first_row_ms;
      n.source_ms = m.source_ms;
      n.concurrent = m.concurrent;
      n.cpu_ms = m.cpu_ms - child_cpu;
      // Serial self wait plus (for scattered submits) the concurrent
      // timeline duration the scatter phase attributed to this node.
      n.wait_ms = (m.wait_ms - child_wait) + m.scatter_wait_ms;
      n.rows_in = any_measured_child ? child_rows
                                     : (n.rows_out > 0 ? n.rows_out : 0);
    }
  };
  Walk walk{measures, &profile.nodes};
  walk.Visit(plan, -1, 0);
  return profile;
}

void ProfileRegistry::Record(const PlanProfile& profile) {
  ++total_queries_;
  PlanAgg& agg = plans_[profile.fingerprint];
  ++agg.queries;
  if (agg.nodes.size() < profile.nodes.size()) {
    agg.nodes.resize(profile.nodes.size());
  }
  for (const NodeProfile& n : profile.nodes) {
    OperatorStat& stat = agg.nodes[static_cast<size_t>(n.id)];
    if (stat.execs == 0) {
      stat.fingerprint = profile.fingerprint;
      stat.node_id = n.id;
      stat.label = n.label;
      stat.kind = n.kind;
    }
    if (!n.measured) continue;
    ++stat.execs;
    stat.cpu_ms += n.cpu_ms;
    stat.wait_ms += n.wait_ms;
    stat.rows_in += n.rows_in;
    if (n.rows_out > 0) stat.rows_out += n.rows_out;
  }
  profile.AccumulateFolded(&folded_us_);
}

std::vector<ProfileRegistry::OperatorStat> ProfileRegistry::HottestOperators(
    size_t top_k) const {
  std::vector<OperatorStat> all;
  for (const auto& [fp, agg] : plans_) {
    for (const OperatorStat& stat : agg.nodes) {
      if (stat.execs > 0) all.push_back(stat);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const OperatorStat& a, const OperatorStat& b) {
                     if (a.total_ms() != b.total_ms()) {
                       return a.total_ms() > b.total_ms();
                     }
                     if (a.fingerprint != b.fingerprint) {
                       return a.fingerprint < b.fingerprint;
                     }
                     return a.node_id < b.node_id;
                   });
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

std::vector<ProfileRegistry::OperatorStat> ProfileRegistry::WorstDrops(
    size_t top_k) const {
  std::vector<OperatorStat> all;
  for (const auto& [fp, agg] : plans_) {
    for (const OperatorStat& stat : agg.nodes) {
      if (stat.execs > 0 && stat.rows_dropped() > 0) all.push_back(stat);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const OperatorStat& a, const OperatorStat& b) {
                     if (a.rows_dropped() != b.rows_dropped()) {
                       return a.rows_dropped() > b.rows_dropped();
                     }
                     if (a.fingerprint != b.fingerprint) {
                       return a.fingerprint < b.fingerprint;
                     }
                     return a.node_id < b.node_id;
                   });
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

std::string ProfileRegistry::ToFolded() const {
  std::string out;
  for (const auto& [stack, us] : folded_us_) {
    out += StringPrintf("%s %lld\n", stack.c_str(),
                        static_cast<long long>(us));
  }
  return out;
}

void RegisterOperatorMetrics(metrics::Registry* registry) {
  if (registry == nullptr) return;
  for (int k = 0; k < algebra::kNumOpKinds; ++k) {
    const std::string family =
        std::string("disco.exec.operator.") +
        algebra::OpKindToString(static_cast<algebra::OpKind>(k));
    registry->counter(family + ".evals");
    registry->histogram(family + ".rows");
  }
}

}  // namespace mediator
}  // namespace disco
