#include "mediator/plan_cache.h"

#include <algorithm>

#include "common/str_util.h"

namespace disco {
namespace mediator {

namespace {

using algebra::Operator;

/// Unqualified attribute name ("e.salary" -> "salary").
std::string AttrSuffix(const std::string& attr) {
  size_t pos = attr.rfind('.');
  return pos == std::string::npos ? attr : attr.substr(pos + 1);
}

bool SameAttr(const std::string& a, const std::string& b) {
  return EqualsIgnoreCase(AttrSuffix(a), AttrSuffix(b));
}

/// Pre-order search for the first unclaimed select node carrying the
/// slot's (collection, attribute, op, value). `path` accumulates child
/// indices from the root.
bool FindSlotNode(const Operator& node, const CanonicalQuery::Slot& slot,
                  const Value& constant,
                  const std::vector<const Operator*>& claimed,
                  std::vector<int>* path, const Operator** found) {
  if (node.kind == algebra::OpKind::kSelect && node.select_pred.has_value() &&
      SameAttr(node.select_pred->attribute, slot.attribute) &&
      node.select_pred->op == slot.op && node.select_pred->value == constant &&
      EqualsIgnoreCase(node.FirstBaseCollection(), slot.collection) &&
      std::find(claimed.begin(), claimed.end(), &node) == claimed.end()) {
    *found = &node;
    return true;
  }
  for (int i = 0; i < node.num_children(); ++i) {
    path->push_back(i);
    if (FindSlotNode(node.child(i), slot, constant, claimed, path, found)) {
      return true;
    }
    path->pop_back();
  }
  return false;
}

void CollectSources(const Operator& node, std::vector<std::string>* out) {
  if (node.kind == algebra::OpKind::kSubmit ||
      node.kind == algebra::OpKind::kBindJoin) {
    std::string lower = ToLower(node.source);
    if (std::find(out->begin(), out->end(), lower) == out->end()) {
      out->push_back(std::move(lower));
    }
  }
  for (int i = 0; i < node.num_children(); ++i) {
    CollectSources(node.child(i), out);
  }
}

Operator* Navigate(Operator* node, const std::vector<int>& path) {
  for (int step : path) {
    if (step < 0 || step >= node->num_children()) return nullptr;
    node = node->children[static_cast<size_t>(step)].get();
  }
  return node;
}

}  // namespace

CanonicalQuery Canonicalize(const query::BoundQuery& q) {
  CanonicalQuery canon;
  std::string& text = canon.text;
  for (const query::BoundRelation& rel : q.relations) {
    text += "rel " + ToLower(rel.collection) + "@" + ToLower(rel.source);
    for (const algebra::SelectPredicate& p : rel.predicates) {
      const int slot = static_cast<int>(canon.constants.size());
      text += StringPrintf(" [%s %s ?%d]", ToLower(p.attribute).c_str(),
                           algebra::CmpOpToString(p.op), slot);
      canon.constants.push_back(p.value);
      canon.slots.push_back(
          CanonicalQuery::Slot{rel.collection, p.attribute, p.op});
    }
    text += ";";
  }
  for (const query::BoundJoin& j : q.joins) {
    text += StringPrintf("join %d.%s=%d.%s;", j.left_rel,
                         ToLower(j.left_attr).c_str(), j.right_rel,
                         ToLower(j.right_attr).c_str());
  }
  if (q.aggregate.has_value()) {
    text += StringPrintf("agg %s(%s);",
                         algebra::AggFuncToString(q.aggregate->func),
                         ToLower(q.aggregate->attribute).c_str());
  }
  if (!q.group_by.empty()) {
    text += "group";
    for (const std::string& g : q.group_by) text += " " + ToLower(g);
    text += ";";
  }
  if (!q.projections.empty()) {
    text += "proj";
    for (const std::string& p : q.projections) text += " " + ToLower(p);
    text += ";";
  }
  if (q.distinct) text += "distinct;";
  if (q.order_by.has_value()) {
    text += StringPrintf("order %s %s;", ToLower(*q.order_by).c_str(),
                         q.order_ascending ? "asc" : "desc");
  }
  return canon;
}

std::string PlanCache::MakeKey(const std::string& text,
                               int64_t catalog_version,
                               const std::string& avoid_key) {
  return StringPrintf("v%lld|%s|", static_cast<long long>(catalog_version),
                      avoid_key.c_str()) +
         text;
}

std::unique_ptr<Operator> PlanCache::Lookup(const CanonicalQuery& canon,
                                            int64_t catalog_version,
                                            const std::string& avoid_key) {
  if (!enabled()) return nullptr;
  const std::string key = MakeKey(canon.text, catalog_version, avoid_key);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& entry = *it->second;
  std::unique_ptr<Operator> plan = entry.plan->Clone();
  // Substitute the current constants into the template's select nodes.
  for (size_t i = 0; i < canon.slots.size(); ++i) {
    Operator* node = Navigate(plan.get(), entry.slot_paths[i]);
    if (node == nullptr || node->kind != algebra::OpKind::kSelect ||
        !node->select_pred.has_value()) {
      // The template no longer matches its own slot map (should not
      // happen); treat as a miss and drop the entry defensively.
      lru_.erase(it->second);
      index_.erase(it);
      stats_.size = index_.size();
      ++stats_.misses;
      return nullptr;
    }
    node->select_pred->value = canon.constants[i];
  }
  // Freshen LRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return plan;
}

void PlanCache::Insert(const CanonicalQuery& canon, int64_t catalog_version,
                       const std::string& avoid_key, const Operator& plan) {
  if (!enabled()) return;
  Entry entry;
  entry.key = MakeKey(canon.text, catalog_version, avoid_key);
  if (index_.find(entry.key) != index_.end()) return;  // already cached
  // Locate every slot's select node now; a template that cannot be
  // re-parameterized is not cached.
  std::vector<const Operator*> claimed;
  for (size_t i = 0; i < canon.slots.size(); ++i) {
    std::vector<int> path;
    const Operator* found = nullptr;
    if (!FindSlotNode(plan, canon.slots[i], canon.constants[i], claimed,
                      &path, &found)) {
      return;
    }
    claimed.push_back(found);
    entry.slot_paths.push_back(std::move(path));
  }
  entry.plan = plan.Clone();
  CollectSources(plan, &entry.sources);
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  ++stats_.insertions;
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.size = index_.size();
}

void PlanCache::InvalidateSource(const std::string& source) {
  const std::string lower = ToLower(source);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (std::find(it->sources.begin(), it->sources.end(), lower) !=
        it->sources.end()) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  stats_.size = index_.size();
}

void PlanCache::InvalidateAll() {
  stats_.invalidations += static_cast<int64_t>(index_.size());
  index_.clear();
  lru_.clear();
  stats_.size = 0;
}

}  // namespace mediator
}  // namespace disco
