#include "mediator/monitor_report.h"

#include "common/str_util.h"

namespace disco {
namespace mediator {

std::string MonitorSnapshot::ToText() const {
  std::string out = StringPrintf("== mediator monitor @ %.1f ms\n", now_ms);
  out += StringPrintf(
      "queries: %lld (%lld errors, %lld replans, %lld explain-analyze)\n",
      static_cast<long long>(queries), static_cast<long long>(query_errors),
      static_cast<long long>(replans),
      static_cast<long long>(explain_analyzes));
  out += StringPrintf(
      "submits: %lld (%lld retries, %lld exhausted, %lld breaker-rejected; "
      "budget %d attempts/submit)\n",
      static_cast<long long>(submits), static_cast<long long>(submit_retries),
      static_cast<long long>(submit_failures),
      static_cast<long long>(breaker_rejections), retry_max_attempts);
  out += StringPrintf(
      "federation: %d thread%s, deadline %s, hedging %s, retry budget %s\n",
      federation_threads, federation_threads == 1 ? "" : "s",
      deadline_ms > 0 ? StringPrintf("%.1f ms", deadline_ms).c_str() : "off",
      hedging ? "on" : "off",
      query_retry_budget > 0
          ? StringPrintf("%d/query", query_retry_budget).c_str()
          : "unlimited");
  out += StringPrintf(
      "  scatter: %lld quer%s, %lld submits; hedges %lld launched / %lld "
      "won / %lld cancelled; deadline expiries %lld submits / %lld queries; "
      "%lld cancellations, %lld budget exhaustions\n",
      static_cast<long long>(scatter_queries),
      scatter_queries == 1 ? "y" : "ies",
      static_cast<long long>(scatter_submits),
      static_cast<long long>(hedges_launched),
      static_cast<long long>(hedges_won),
      static_cast<long long>(hedges_cancelled),
      static_cast<long long>(deadline_expired_submits),
      static_cast<long long>(deadline_expired_queries),
      static_cast<long long>(cancellations),
      static_cast<long long>(retry_budget_exhaustions));
  out += StringPrintf(
      "query log: %zu/%zu entries (%lld recorded, %lld dropped)\n", log_size,
      log_capacity, static_cast<long long>(log_total),
      static_cast<long long>(log_dropped));
  out += StringPrintf(
      "plan cache: %zu/%zu entries (%lld hits, %lld misses, %lld inserted, "
      "%lld invalidated, %lld evicted)\n",
      plan_cache_size, plan_cache_capacity,
      static_cast<long long>(plan_cache_hits),
      static_cast<long long>(plan_cache_misses),
      static_cast<long long>(plan_cache_insertions),
      static_cast<long long>(plan_cache_invalidations),
      static_cast<long long>(plan_cache_evictions));
  out += StringPrintf(
      "cost memo: %zu entries (%lld hits, %lld misses, %lld invalidations)\n",
      cost_memo_entries, static_cast<long long>(cost_memo_hits),
      static_cast<long long>(cost_memo_misses),
      static_cast<long long>(cost_memo_invalidations));

  out += StringPrintf(
      "result guard: %lld batches (%lld malformed, %lld rows quarantined, "
      "%lld truncated streams, %lld lying-source opens)\n",
      static_cast<long long>(guard_batches),
      static_cast<long long>(guard_malformed_batches),
      static_cast<long long>(guard_quarantined_rows),
      static_cast<long long>(guard_truncated_streams),
      static_cast<long long>(lying_opens));

  out += StringPrintf("breakers (%zu sources):\n", breakers.size());
  for (const MonitorBreakerRow& b : breakers) {
    out += StringPrintf(
        "  %-12s %-9s flaps=%lld opens=%lld rejected=%lld ok=%lld fail=%lld "
        "probe-fails=%d cooldown=%.0fms malformed=%lld quarantined=%lld%s\n",
        b.source.c_str(), b.state.c_str(),
        static_cast<long long>(b.transitions), static_cast<long long>(b.opens),
        static_cast<long long>(b.rejected_submits),
        static_cast<long long>(b.successes),
        static_cast<long long>(b.failures), b.probe_failures,
        b.effective_cooldown_ms,
        static_cast<long long>(b.malformed_batches),
        static_cast<long long>(b.quarantined_rows),
        b.lying ? " LYING" : "");
  }

  out += StringPrintf("profiles: %lld quer%s over %zu plan shape%s\n",
                      static_cast<long long>(profiled_queries),
                      profiled_queries == 1 ? "y" : "ies", profiled_plans,
                      profiled_plans == 1 ? "" : "s");
  if (!hottest_operators.empty()) {
    out += "  hottest operators (summed self time):\n";
    out += StringPrintf("  %-28s %-10s %6s %10s %10s %10s\n", "operator",
                        "plan", "execs", "cpu ms", "wait ms", "rows out");
    for (const MonitorOperatorRow& r : hottest_operators) {
      out += StringPrintf(
          "  %-28s %-10.10s %6lld %10.3f %10.3f %10lld\n", r.label.c_str(),
          r.fingerprint.c_str(), static_cast<long long>(r.execs), r.cpu_ms,
          r.wait_ms, static_cast<long long>(r.rows_out));
    }
  }
  if (!worst_drops.empty()) {
    out += "  worst waterfall drops (rows in -> out):\n";
    out += StringPrintf("  %-28s %-10s %10s %10s %7s\n", "operator", "plan",
                        "rows in", "rows out", "drop");
    for (const MonitorOperatorRow& r : worst_drops) {
      out += StringPrintf("  %-28s %-10.10s %10lld %10lld %6.1f%%\n",
                          r.label.c_str(), r.fingerprint.c_str(),
                          static_cast<long long>(r.rows_in),
                          static_cast<long long>(r.rows_out),
                          100.0 * r.drop_fraction);
    }
  }

  out += StringPrintf("critical paths: %lld quer%s over %zu plan shape%s, "
                      "%.3f ms on the path\n",
                      static_cast<long long>(critpath_queries),
                      critpath_queries == 1 ? "y" : "ies", critpath_plans,
                      critpath_plans == 1 ? "" : "s", critpath_total_ms);
  if (!top_bottlenecks.empty()) {
    out += "  top bottlenecks (summed critical-path time):\n";
    out += StringPrintf("  %-28s %-13s %10s %6s %8s %7s\n", "subject", "kind",
                        "ms", "segs", "queries", "share");
    for (const MonitorBlameRow& b : top_bottlenecks) {
      out += StringPrintf("  %-28s %-13s %10.3f %6lld %8lld %6.1f%%\n",
                          b.subject.c_str(), b.kind.c_str(), b.ms,
                          static_cast<long long>(b.segments),
                          static_cast<long long>(b.queries), 100.0 * b.share);
    }
  }
  if (!top_suggestions.empty()) {
    out += "  what-if suggestions (summed predicted savings):\n";
    for (const MonitorSuggestionRow& s : top_suggestions) {
      out += StringPrintf("  %-44s saves %10.3f ms over %lld quer%s\n",
                          s.description.c_str(), s.predicted_delta_ms,
                          static_cast<long long>(s.queries),
                          s.queries == 1 ? "y" : "ies");
    }
  }

  out += StringPrintf("drift: %lld event%s raised\n",
                      static_cast<long long>(drift_events),
                      drift_events == 1 ? "" : "s");
  if (!worst_cells.empty()) {
    out += StringPrintf("  %-12s %-10s %-10s %8s %10s %10s  %s\n", "source",
                        "operator", "scope", "n(win)", "window_q",
                        "baseline_q", "status");
    for (const MonitorDriftRow& c : worst_cells) {
      out += StringPrintf("  %-12s %-10s %-10s %8lld %10.3f %10.3f  %s\n",
                          c.source.c_str(), c.op.c_str(), c.scope.c_str(),
                          static_cast<long long>(c.window_count), c.window_q,
                          c.baseline_q,
                          c.breached ? "BREACHED" : "ok");
    }
  }
  for (const std::string& e : recent_events) {
    out += "  event: " + e + "\n";
  }
  return out;
}

std::string MonitorSnapshot::ToJson() const {
  std::string out = StringPrintf(
      "{\"now_ms\":%.3f,\"queries\":%lld,\"query_errors\":%lld,"
      "\"replans\":%lld,\"explain_analyzes\":%lld,"
      "\"submits\":%lld,\"submit_retries\":%lld,\"submit_failures\":%lld,"
      "\"breaker_rejections\":%lld,\"retry_max_attempts\":%d,"
      "\"federation\":{\"threads\":%d,\"deadline_ms\":%.3f,"
      "\"hedging\":%s,\"query_retry_budget\":%d,"
      "\"scatter_queries\":%lld,\"scatter_submits\":%lld,"
      "\"hedges_launched\":%lld,\"hedges_won\":%lld,"
      "\"hedges_cancelled\":%lld,\"deadline_expired_submits\":%lld,"
      "\"deadline_expired_queries\":%lld,\"cancellations\":%lld,"
      "\"retry_budget_exhaustions\":%lld},"
      "\"query_log\":{\"size\":%zu,\"capacity\":%zu,\"recorded\":%lld,"
      "\"dropped\":%lld},"
      "\"plan_cache\":{\"size\":%zu,\"capacity\":%zu,\"hits\":%lld,"
      "\"misses\":%lld,\"insertions\":%lld,\"invalidations\":%lld,"
      "\"evictions\":%lld},"
      "\"cost_memo\":{\"entries\":%zu,\"hits\":%lld,\"misses\":%lld,"
      "\"invalidations\":%lld},",
      now_ms, static_cast<long long>(queries),
      static_cast<long long>(query_errors), static_cast<long long>(replans),
      static_cast<long long>(explain_analyzes),
      static_cast<long long>(submits), static_cast<long long>(submit_retries),
      static_cast<long long>(submit_failures),
      static_cast<long long>(breaker_rejections), retry_max_attempts,
      federation_threads, deadline_ms, hedging ? "true" : "false",
      query_retry_budget, static_cast<long long>(scatter_queries),
      static_cast<long long>(scatter_submits),
      static_cast<long long>(hedges_launched),
      static_cast<long long>(hedges_won),
      static_cast<long long>(hedges_cancelled),
      static_cast<long long>(deadline_expired_submits),
      static_cast<long long>(deadline_expired_queries),
      static_cast<long long>(cancellations),
      static_cast<long long>(retry_budget_exhaustions),
      log_size, log_capacity, static_cast<long long>(log_total),
      static_cast<long long>(log_dropped), plan_cache_size,
      plan_cache_capacity, static_cast<long long>(plan_cache_hits),
      static_cast<long long>(plan_cache_misses),
      static_cast<long long>(plan_cache_insertions),
      static_cast<long long>(plan_cache_invalidations),
      static_cast<long long>(plan_cache_evictions), cost_memo_entries,
      static_cast<long long>(cost_memo_hits),
      static_cast<long long>(cost_memo_misses),
      static_cast<long long>(cost_memo_invalidations));
  auto operator_row = [](const MonitorOperatorRow& r) {
    return StringPrintf(
        "{\"fingerprint\":\"%s\",\"node_id\":%d,\"label\":\"%s\","
        "\"op\":\"%s\",\"execs\":%lld,\"cpu_ms\":%.3f,\"wait_ms\":%.3f,"
        "\"rows_in\":%lld,\"rows_out\":%lld,\"drop_fraction\":%.4f}",
        JsonEscape(r.fingerprint).c_str(), r.node_id,
        JsonEscape(r.label).c_str(), JsonEscape(r.op).c_str(),
        static_cast<long long>(r.execs), r.cpu_ms, r.wait_ms,
        static_cast<long long>(r.rows_in),
        static_cast<long long>(r.rows_out), r.drop_fraction);
  };
  out += StringPrintf(
      "\"profiles\":{\"queries\":%lld,\"plans\":%zu,\"hottest_operators\":[",
      static_cast<long long>(profiled_queries), profiled_plans);
  for (size_t i = 0; i < hottest_operators.size(); ++i) {
    out += (i == 0 ? "" : ",") + operator_row(hottest_operators[i]);
  }
  out += "],\"worst_drops\":[";
  for (size_t i = 0; i < worst_drops.size(); ++i) {
    out += (i == 0 ? "" : ",") + operator_row(worst_drops[i]);
  }
  out += "]},";
  out += StringPrintf(
      "\"critical_paths\":{\"queries\":%lld,\"plans\":%zu,"
      "\"total_ms\":%.3f,\"top_bottlenecks\":[",
      static_cast<long long>(critpath_queries), critpath_plans,
      critpath_total_ms);
  for (size_t i = 0; i < top_bottlenecks.size(); ++i) {
    const MonitorBlameRow& b = top_bottlenecks[i];
    out += StringPrintf(
        "%s{\"subject\":\"%s\",\"kind\":\"%s\",\"ms\":%.3f,"
        "\"segments\":%lld,\"queries\":%lld,\"share\":%.4f}",
        i == 0 ? "" : ",", JsonEscape(b.subject).c_str(),
        JsonEscape(b.kind).c_str(), b.ms,
        static_cast<long long>(b.segments),
        static_cast<long long>(b.queries), b.share);
  }
  out += "],\"top_suggestions\":[";
  for (size_t i = 0; i < top_suggestions.size(); ++i) {
    const MonitorSuggestionRow& s = top_suggestions[i];
    out += StringPrintf(
        "%s{\"description\":\"%s\",\"predicted_delta_ms\":%.3f,"
        "\"queries\":%lld}",
        i == 0 ? "" : ",", JsonEscape(s.description).c_str(),
        s.predicted_delta_ms, static_cast<long long>(s.queries));
  }
  out += "]},";
  out += StringPrintf(
      "\"guard\":{\"batches\":%lld,\"malformed_batches\":%lld,"
      "\"quarantined_rows\":%lld,\"truncated_streams\":%lld,"
      "\"lying_opens\":%lld},",
      static_cast<long long>(guard_batches),
      static_cast<long long>(guard_malformed_batches),
      static_cast<long long>(guard_quarantined_rows),
      static_cast<long long>(guard_truncated_streams),
      static_cast<long long>(lying_opens));
  out += StringPrintf("\"drift_events\":%lld,\"worst_cells\":[",
                      static_cast<long long>(drift_events));
  for (size_t i = 0; i < worst_cells.size(); ++i) {
    const MonitorDriftRow& c = worst_cells[i];
    out += StringPrintf(
        "%s{\"source\":\"%s\",\"op\":\"%s\",\"scope\":\"%s\","
        "\"window_count\":%lld,\"window_q\":%.3f,\"baseline_q\":%.3f,"
        "\"breached\":%s}",
        i == 0 ? "" : ",", JsonEscape(c.source).c_str(),
        JsonEscape(c.op).c_str(), JsonEscape(c.scope).c_str(),
        static_cast<long long>(c.window_count), c.window_q, c.baseline_q,
        c.breached ? "true" : "false");
  }
  out += "],\"recent_events\":[";
  for (size_t i = 0; i < recent_events.size(); ++i) {
    out += StringPrintf("%s\"%s\"", i == 0 ? "" : ",",
                        JsonEscape(recent_events[i]).c_str());
  }
  out += "],\"breakers\":[";
  for (size_t i = 0; i < breakers.size(); ++i) {
    const MonitorBreakerRow& b = breakers[i];
    out += StringPrintf(
        "%s{\"source\":\"%s\",\"state\":\"%s\",\"transitions\":%lld,"
        "\"opens\":%lld,\"rejected_submits\":%lld,\"failures\":%lld,"
        "\"successes\":%lld,\"probe_failures\":%d,"
        "\"effective_cooldown_ms\":%.3f,\"malformed_batches\":%lld,"
        "\"quarantined_rows\":%lld,\"lying\":%s}",
        i == 0 ? "" : ",", JsonEscape(b.source).c_str(),
        JsonEscape(b.state).c_str(), static_cast<long long>(b.transitions),
        static_cast<long long>(b.opens),
        static_cast<long long>(b.rejected_submits),
        static_cast<long long>(b.failures),
        static_cast<long long>(b.successes), b.probe_failures,
        b.effective_cooldown_ms,
        static_cast<long long>(b.malformed_batches),
        static_cast<long long>(b.quarantined_rows),
        b.lying ? "true" : "false");
  }
  out += "]}";
  return out;
}

}  // namespace mediator
}  // namespace disco
