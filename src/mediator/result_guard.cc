#include "mediator/result_guard.h"

#include <cmath>
#include <utility>

#include "catalog/schema.h"
#include "common/str_util.h"

namespace disco {
namespace mediator {

namespace {

using algebra::OpKind;
using algebra::Operator;

/// Derives the output columns of `op`, or nullopt for underivable
/// shapes. Mirrors sources/source_engine.cc's column propagation.
std::optional<std::vector<GuardColumn>> DeriveColumns(
    const Operator& op, const Catalog& catalog) {
  switch (op.kind) {
    case OpKind::kScan: {
      auto entry = catalog.Collection(op.collection);
      if (!entry.ok()) return std::nullopt;
      std::vector<GuardColumn> cols;
      cols.reserve(entry->schema.attributes().size());
      for (const AttributeDef& a : entry->schema.attributes()) {
        cols.push_back({a.name, AttrTypeToValueType(a.type)});
      }
      return cols;
    }
    case OpKind::kSelect:
    case OpKind::kSort:
    case OpKind::kDedup:
      return DeriveColumns(op.child(0), catalog);
    case OpKind::kProject: {
      auto child = DeriveColumns(op.child(0), catalog);
      if (!child.has_value()) return std::nullopt;
      std::vector<GuardColumn> cols;
      cols.reserve(op.project_attrs.size());
      for (const std::string& attr : op.project_attrs) {
        GuardColumn col{attr, std::nullopt};
        for (const GuardColumn& c : *child) {
          if (EqualsIgnoreCase(c.name, attr)) {
            col.type = c.type;
            break;
          }
        }
        cols.push_back(std::move(col));
      }
      return cols;
    }
    case OpKind::kUnion:
      // The engine takes the left arm's columns; declared replicas must
      // agree anyway.
      return DeriveColumns(op.child(0), catalog);
    case OpKind::kJoin: {
      auto left = DeriveColumns(op.child(0), catalog);
      auto right = DeriveColumns(op.child(1), catalog);
      if (!left.has_value() || !right.has_value()) return std::nullopt;
      left->insert(left->end(), right->begin(), right->end());
      return left;
    }
    case OpKind::kAggregate: {
      auto child = DeriveColumns(op.child(0), catalog);
      if (!child.has_value()) return std::nullopt;
      auto type_of = [&](const std::string& attr) -> std::optional<ValueType> {
        for (const GuardColumn& c : *child) {
          if (EqualsIgnoreCase(c.name, attr)) return c.type;
        }
        return std::nullopt;
      };
      std::vector<GuardColumn> cols;
      for (const std::string& g : op.group_by) {
        cols.push_back({g, type_of(g)});
      }
      GuardColumn agg{"agg", std::nullopt};
      switch (op.agg_func) {
        case algebra::AggFunc::kCount:
          agg.type = ValueType::kInt64;
          break;
        case algebra::AggFunc::kSum:
        case algebra::AggFunc::kAvg:
          agg.type = ValueType::kDouble;
          break;
        case algebra::AggFunc::kMin:
        case algebra::AggFunc::kMax:
          agg.type = op.agg_attr.empty() ? std::nullopt
                                         : type_of(op.agg_attr);
          break;
      }
      cols.push_back(std::move(agg));
      return cols;
    }
    default:
      return std::nullopt;
  }
}

/// True when the engine's `objects_produced` provably equals the
/// delivered row count for this shape: only then is a shortfall a
/// truncated stream rather than an operator legitimately charging
/// intermediate outputs (joins, dedup, aggregates).
bool TruncationDetectable(const Operator& op) {
  switch (op.kind) {
    case OpKind::kScan:
      return true;
    case OpKind::kSelect: {
      // A select chain over a scan fuses into one access path that
      // charges exactly the kept rows; over anything else the filter
      // drops rows the child already charged.
      const Operator* cur = &op.child(0);
      while (cur->kind == OpKind::kSelect) cur = &cur->child(0);
      return cur->kind == OpKind::kScan;
    }
    case OpKind::kProject:
    case OpKind::kSort:
      return TruncationDetectable(op.child(0));
    case OpKind::kUnion:
      return TruncationDetectable(op.child(0)) &&
             TruncationDetectable(op.child(1));
    default:
      return false;
  }
}

}  // namespace

GuardExpectation MakeGuardExpectation(const algebra::Operator& subplan,
                                      const Catalog& catalog) {
  GuardExpectation exp;
  exp.columns = DeriveColumns(subplan, catalog);
  exp.truncation_detectable = TruncationDetectable(subplan);
  return exp;
}

GuardReport ValidateSubanswer(const GuardExpectation& expectation,
                              sources::ExecutionResult* result) {
  GuardReport rep;
  rep.delivered_rows = static_cast<int64_t>(result->tuples.size());
  rep.declared_rows = result->objects_produced;

  const bool have_schema = expectation.columns.has_value();
  const size_t arity = have_schema ? expectation.columns->size()
                                   : result->columns.size();

  std::vector<storage::Tuple> kept;
  kept.reserve(result->tuples.size());
  for (storage::Tuple& row : result->tuples) {
    ++rep.rows_checked;
    bool bad = false;
    if (row.size() != arity) {
      ++rep.arity_mismatches;
      bad = true;
    } else {
      for (size_t i = 0; i < row.size(); ++i) {
        const Value& v = row[i];
        if (v.is_double() && !std::isfinite(v.AsDouble())) {
          ++rep.non_finite_values;
          bad = true;
          continue;
        }
        if (have_schema && (*expectation.columns)[i].type.has_value() &&
            !v.is_null() && v.type() != *(*expectation.columns)[i].type) {
          ++rep.type_mismatches;
          bad = true;
        }
      }
    }
    if (bad) {
      ++rep.rows_quarantined;
    } else {
      kept.push_back(std::move(row));
    }
  }
  result->tuples = std::move(kept);

  if (expectation.truncation_detectable &&
      rep.declared_rows > rep.delivered_rows) {
    rep.truncated = true;
  }
  return rep;
}

std::string GuardReport::Message() const {
  std::string out;
  if (rows_quarantined > 0) {
    out = StringPrintf("result guard quarantined %lld/%lld rows (",
                       static_cast<long long>(rows_quarantined),
                       static_cast<long long>(rows_checked));
    bool first = true;
    auto piece = [&](const char* label, int64_t n) {
      if (n <= 0) return;
      if (!first) out += ", ";
      out += StringPrintf("%s %lld", label, static_cast<long long>(n));
      first = false;
    };
    piece("arity", arity_mismatches);
    piece("type", type_mismatches);
    piece("non-finite", non_finite_values);
    out += ")";
  }
  if (truncated) {
    if (!out.empty()) out += "; ";
    out += StringPrintf(
        "truncated stream (%lld declared, %lld delivered)",
        static_cast<long long>(declared_rows),
        static_cast<long long>(delivered_rows));
  }
  if (out.empty()) out = "result guard: well-formed";
  return out;
}

}  // namespace mediator
}  // namespace disco
