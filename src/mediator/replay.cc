#include "mediator/replay.h"

#include <cmath>

#include "common/str_util.h"
#include "costmodel/accuracy.h"
#include "mediator/query_log.h"

namespace disco {
namespace mediator {

std::string ReplayReport::ToText() const {
  std::string out = StringPrintf(
      "# replay: %lld line%s, %lld replayed, %lld skipped, %lld failed\n",
      static_cast<long long>(lines), lines == 1 ? "" : "s",
      static_cast<long long>(queries.size()),
      static_cast<long long>(skipped), static_cast<long long>(failed));
  out += StringPrintf("%6s %10s %10s %10s %8s %8s  %s\n", "seq", "est_ms",
                      "meas_ms", "logged_ms", "q", "vs_log", "outcome");
  for (const ReplayedQuery& q : queries) {
    if (q.ok) {
      out += StringPrintf("%6lld %10.1f %10.1f %10.1f %8.2f %8.2f  ok\n",
                          static_cast<long long>(q.logged_seq),
                          q.estimated_ms, q.measured_ms, q.logged_measured_ms,
                          q.q_error, q.vs_logged_ratio);
    } else {
      out += StringPrintf("%6lld %10s %10s %10.1f %8s %8s  error: %s\n",
                          static_cast<long long>(q.logged_seq), "-", "-",
                          q.logged_measured_ms, "-", "-", q.error.c_str());
    }
  }
  out += StringPrintf("# calibration: geo-mean q %.3f, max q %.3f\n",
                      geo_mean_q, max_q);
  return out;
}

Result<ReplayReport> ReplayQueryLog(Mediator* med, const std::string& jsonl,
                                    ReplayOptions options) {
  if (med == nullptr) return Status::InvalidArgument("null mediator");
  ReplayReport report;
  double sum_log_q = 0;
  int64_t q_count = 0;
  for (const std::string& line : SplitString(jsonl, '\n')) {
    if (StripWhitespace(line).empty()) continue;
    ++report.lines;
    std::optional<ParsedLogEntry> parsed = QueryLog::ParseJsonLine(line);
    if (!parsed.has_value() || parsed->sql.empty()) {
      ++report.skipped;
      continue;
    }
    ReplayedQuery out;
    out.logged_seq = parsed->seq;
    out.sql = parsed->sql;
    out.logged_measured_ms = parsed->measured_ms;
    Result<QueryResult> r = med->Query(parsed->sql);
    if (!r.ok()) {
      out.ok = false;
      out.error = r.status().ToString();
      ++report.failed;
      report.queries.push_back(std::move(out));
      if (options.stop_on_error) return r.status();
      continue;
    }
    out.ok = true;
    out.estimated_ms = r->estimated_ms;
    out.measured_ms = r->measured_ms;
    out.q_error =
        costmodel::AccuracyTracker::QError(r->estimated_ms, r->measured_ms);
    out.vs_logged_ratio = parsed->measured_ms > 0
                              ? r->measured_ms / parsed->measured_ms
                              : 0;
    sum_log_q += std::log(out.q_error);
    ++q_count;
    if (out.q_error > report.max_q) report.max_q = out.q_error;
    report.queries.push_back(std::move(out));
  }
  if (q_count > 0) {
    report.geo_mean_q = std::exp(sum_log_q / static_cast<double>(q_count));
  }
  return report;
}

}  // namespace mediator
}  // namespace disco
