#include "mediator/explain_analyze.h"

#include <algorithm>
#include <functional>

#include "algebra/plan_printer.h"
#include "common/str_util.h"
#include "costmodel/accuracy.h"

namespace disco {
namespace mediator {

namespace {

using algebra::Operator;
using costmodel::CostVarId;
using costmodel::NodeExplain;

/// Widest indented node label in the tree (for column alignment).
int LabelWidth(const Operator& op, int depth) {
  int w = depth * 2 + static_cast<int>(algebra::NodeLabel(op).size());
  for (int i = 0; i < op.num_children(); ++i) {
    w = std::max(w, LabelWidth(op.child(i), depth + 1));
  }
  return w;
}

std::string Cell(const char* fmt, double v) { return StringPrintf(fmt, v); }

}  // namespace

std::string RenderExplainAnalyze(const ExplainAnalyzeReport& report) {
  const int label_w = std::max(24, LabelWidth(*report.plan, 0) + 2);
  std::string out = "EXPLAIN ANALYZE\n";
  out += StringPrintf("%-*s %10s %12s | %10s %12s %8s\n", label_w, "plan",
                      "est rows", "est ms", "act rows", "act ms", "q-err");

  // Pre-order walk in lockstep with the estimate's explain records.
  // `consume` mirrors the estimator: a query-scope hit recorded no
  // records for its children, so their estimate columns render as "-".
  size_t idx = 0;
  const std::vector<NodeExplain>& explain = report.estimate->explain;
  std::function<void(const Operator&, int, bool, bool)> walk =
      [&](const Operator& op, int depth, bool consume, bool under_submit) {
        const NodeExplain* ne = nullptr;
        if (consume && idx < explain.size()) {
          ne = &explain[idx];
          ++idx;
        }

        std::string est_rows = "-";
        std::string est_ms = "-";
        double est_tt = -1;
        if (ne != nullptr) {
          if (ne->cost.IsComputed(CostVarId::kCountObject)) {
            est_rows = Cell("%.0f", ne->cost.count_object());
          }
          if (ne->cost.IsComputed(CostVarId::kTotalTime)) {
            est_tt = ne->cost.total_time();
            est_ms = Cell("%.1f", est_tt);
          }
        }

        std::string act_rows = under_submit ? "@source" : "-";
        std::string act_ms = under_submit ? "@source" : "-";
        std::string qerr = "-";
        std::string notes;
        const NodeMeasure* m = nullptr;
        if (report.measures != nullptr) {
          auto it = report.measures->find(&op);
          if (it != report.measures->end()) m = &it->second;
        }
        if (m != nullptr) {
          if (m->ok) {
            act_rows = StringPrintf("%lld", static_cast<long long>(m->rows));
            act_ms = Cell("%.1f", m->inclusive_ms);
            if (est_tt >= 0) {
              qerr = Cell("%.2f", costmodel::AccuracyTracker::QError(
                                      est_tt, m->inclusive_ms));
            }
          } else {
            act_rows = "-";
            act_ms = "-";
            notes += "  !dropped";
          }
          if (m->attempts > 1) {
            notes += StringPrintf("  attempts=%d", m->attempts);
          }
          if (op.kind == algebra::OpKind::kSubmit && m->ok) {
            notes += StringPrintf("  source_ms=%.1f", m->source_ms);
          }
        }
        if (ne != nullptr && ne->from_query_scope) {
          notes += "  [query-scope record]";
        }

        out += StringPrintf(
            "%-*s %10s %12s | %10s %12s %8s%s\n", label_w,
            (std::string(static_cast<size_t>(depth) * 2, ' ') +
             algebra::NodeLabel(op))
                .c_str(),
            est_rows.c_str(), est_ms.c_str(), act_rows.c_str(),
            act_ms.c_str(), qerr.c_str(), notes.c_str());

        const bool child_consume =
            consume && (ne == nullptr || !ne->from_query_scope);
        const bool child_under_submit =
            under_submit || op.kind == algebra::OpKind::kSubmit;
        for (int i = 0; i < op.num_children(); ++i) {
          walk(op.child(i), depth + 1, child_consume, child_under_submit);
        }
      };
  walk(*report.plan, 0, true, false);

  out += StringPrintf(
      "\ntotal: estimated %.1f ms, measured %.1f ms, q-error %.2f\n",
      report.estimated_total_ms, report.measured_total_ms,
      costmodel::AccuracyTracker::QError(report.estimated_total_ms,
                                         report.measured_total_ms));

  if (report.warnings != nullptr && !report.warnings->empty()) {
    out += "warnings:\n";
    for (const ExecWarning& w : *report.warnings) {
      out += "  " + w.ToString() + "\n";
    }
  }

  if (report.profile != nullptr) {
    out += "\n" + report.profile->WaterfallText();
  }

  if (report.critical_path != nullptr) {
    out += "\n" + report.critical_path->ToText();
  }

  out += "\n" + report.scoreboard;
  return out;
}

}  // namespace mediator
}  // namespace disco
