#include "mediator/query_log.h"

#include <cstdlib>

#include "common/str_util.h"

namespace disco {
namespace mediator {

namespace {

/// Compact JSON rendering of the six cost variables.
std::string CostVectorJson(const costmodel::CostVector& v) {
  return StringPrintf(
      "{\"total_ms\":%.3f,\"first_ms\":%.3f,\"next_ms\":%.3f,"
      "\"rows\":%.1f,\"bytes\":%.1f,\"obj_bytes\":%.1f}",
      v.total_time(), v.time_first(), v.time_next(), v.count_object(),
      v.total_size(), v.object_size());
}

}  // namespace

std::string QueryLogEntry::ToJson() const {
  // Field order matters for the tolerant parser in ParseJsonLine: the
  // replay-critical numeric fields and "sql" come before any
  // free-form string content (error text, warnings), so a hostile
  // query string cannot shadow them.
  std::string out = StringPrintf(
      "{\"seq\":%lld,\"trace_id\":%lld,\"start_ms\":%.3f,"
      "\"estimated_ms\":%.3f,\"measured_ms\":%.3f,\"ok\":%s,\"replans\":%d,",
      static_cast<long long>(seq), static_cast<long long>(seq), start_ms,
      estimated_ms, measured_ms, ok ? "true" : "false", replans);
  if (profile_nodes > 0) {
    out += StringPrintf(
        "\"profile\":{\"nodes\":%d,\"cpu_ms\":%.3f,\"wait_ms\":%.3f},",
        profile_nodes, profile_cpu_ms, profile_wait_ms);
  }
  if (guard_malformed > 0 || guard_truncated > 0) {
    out += StringPrintf(
        "\"guard\":{\"batches\":%lld,\"malformed\":%lld,"
        "\"quarantined_rows\":%lld,\"truncated\":%lld},",
        static_cast<long long>(guard_batches),
        static_cast<long long>(guard_malformed),
        static_cast<long long>(guard_quarantined_rows),
        static_cast<long long>(guard_truncated));
  }
  out += StringPrintf("\"sql\":\"%s\",\"plan_fingerprint\":\"%s\",",
                      JsonEscape(sql).c_str(),
                      JsonEscape(plan_fingerprint).c_str());
  // After "sql" like every free-form string: the subject can be an
  // operator label rendered from the query text.
  if (!critpath_subject.empty()) {
    out += StringPrintf(
        "\"critpath\":{\"ms\":%.3f,\"share\":%.3f,\"subject\":\"%s\","
        "\"kind\":\"%s\"},",
        critpath_ms, critpath_share, JsonEscape(critpath_subject).c_str(),
        JsonEscape(critpath_kind).c_str());
  }
  out += StringPrintf("\"error\":\"%s\",\"warnings\":[",
                      JsonEscape(error).c_str());
  for (size_t i = 0; i < warnings.size(); ++i) {
    out += StringPrintf("%s\"%s\"", i == 0 ? "" : ",",
                        JsonEscape(warnings[i]).c_str());
  }
  out += "],\"submits\":[";
  for (size_t i = 0; i < submits.size(); ++i) {
    const QueryLogSubmit& s = submits[i];
    out += StringPrintf(
        "%s{\"source\":\"%s\",\"subplan\":\"%s\",\"scope\":\"%s\","
        "\"attempts\":%d,\"estimated\":%s,\"measured\":%s}",
        i == 0 ? "" : ",", JsonEscape(s.source).c_str(),
        JsonEscape(s.subplan).c_str(), JsonEscape(s.scope).c_str(),
        s.attempts, CostVectorJson(s.estimated).c_str(),
        CostVectorJson(s.measured).c_str());
  }
  out += "]}";
  return out;
}

QueryLog::QueryLog(size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) entries_.reserve(capacity_);
}

int64_t QueryLog::Record(QueryLogEntry entry) {
  if (capacity_ == 0) return 0;
  entry.seq = ++total_recorded_;
  const int64_t seq = entry.seq;
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
  } else {
    // Overwrite the oldest slot; head_ chases the ring.
    entries_[head_] = std::move(entry);
    head_ = (head_ + 1) % capacity_;
  }
  return seq;
}

std::vector<QueryLogEntry> QueryLog::Entries() const {
  std::vector<QueryLogEntry> out;
  out.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    out.push_back(entries_[(head_ + i) % entries_.size()]);
  }
  return out;
}

const QueryLogEntry* QueryLog::Last() const {
  if (entries_.empty()) return nullptr;
  const size_t newest =
      (head_ + entries_.size() - 1) % entries_.size();
  return &entries_[newest];
}

std::string QueryLog::ToJsonl() const {
  std::string out;
  for (const QueryLogEntry& e : Entries()) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

void QueryLog::Clear() {
  entries_.clear();
  head_ = 0;
}

namespace internal {

namespace {

/// Position just past `"key":`, or npos.
size_t FindKey(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

}  // namespace

std::optional<std::string> JsonStringField(const std::string& line,
                                           const std::string& key) {
  size_t at = FindKey(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return std::nullopt;
  }
  ++at;
  std::string out;
  while (at < line.size()) {
    const char c = line[at];
    if (c == '"') return out;
    if (c == '\\' && at + 1 < line.size()) {
      const char esc = line[at + 1];
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (at + 5 < line.size()) {
            const std::string hex = line.substr(at + 2, 4);
            const long cp = std::strtol(hex.c_str(), nullptr, 16);
            if (cp > 0 && cp < 0x80) out += static_cast<char>(cp);
            at += 4;
          }
          break;
        }
        default:
          out += esc;  // \" \\ \/ and anything else: literal
      }
      at += 2;
    } else {
      out += c;
      ++at;
    }
  }
  return std::nullopt;  // unterminated string
}

std::optional<double> JsonNumberField(const std::string& line,
                                      const std::string& key) {
  const size_t at = FindKey(line, key);
  if (at == std::string::npos) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(line.c_str() + at, &end);
  if (end == line.c_str() + at) return std::nullopt;
  return v;
}

std::optional<bool> JsonBoolField(const std::string& line,
                                  const std::string& key) {
  const size_t at = FindKey(line, key);
  if (at == std::string::npos) return std::nullopt;
  if (line.compare(at, 4, "true") == 0) return true;
  if (line.compare(at, 5, "false") == 0) return false;
  return std::nullopt;
}

}  // namespace internal

std::optional<ParsedLogEntry> QueryLog::ParseJsonLine(
    const std::string& line) {
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty() || stripped[0] == '#') return std::nullopt;
  std::optional<std::string> sql = internal::JsonStringField(line, "sql");
  if (!sql.has_value()) return std::nullopt;
  ParsedLogEntry out;
  out.sql = std::move(*sql);
  out.seq = static_cast<int64_t>(
      internal::JsonNumberField(line, "seq").value_or(0));
  out.estimated_ms =
      internal::JsonNumberField(line, "estimated_ms").value_or(0);
  out.measured_ms =
      internal::JsonNumberField(line, "measured_ms").value_or(0);
  out.ok = internal::JsonBoolField(line, "ok").value_or(true);
  return out;
}

}  // namespace mediator
}  // namespace disco
