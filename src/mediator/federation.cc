#include "mediator/federation.h"

#include "common/str_util.h"

namespace disco {
namespace mediator {

void SubmitLatencyProfile::Observe(const std::string& source_lower,
                                   double duration_ms) {
  auto it = sketches_.find(source_lower);
  if (it == sketches_.end()) {
    it = sketches_.emplace(source_lower, P2Quantile(quantile_)).first;
  }
  it->second.Add(duration_ms);
}

int64_t SubmitLatencyProfile::count(const std::string& source_lower) const {
  auto it = sketches_.find(source_lower);
  return it == sketches_.end() ? 0 : it->second.count();
}

double SubmitLatencyProfile::QuantileMs(
    const std::string& source_lower) const {
  auto it = sketches_.find(source_lower);
  return it == sketches_.end() ? 0 : it->second.Value();
}

namespace {

/// Rewrites every scan in `op` per `replacement` (old collection ->
/// equivalent collection, keys lower-cased).
void RewriteScans(algebra::Operator* op,
                  const std::map<std::string, std::string>& replacement) {
  if (op->kind == algebra::OpKind::kScan) {
    auto it = replacement.find(ToLower(op->collection));
    if (it != replacement.end()) op->collection = it->second;
  }
  for (auto& child : op->children) RewriteScans(child.get(), replacement);
}

}  // namespace

HedgePlan MakeHedgePlan(
    const algebra::Operator& subplan, const Catalog& catalog,
    const std::string& primary_source_lower,
    const std::function<bool(const std::string&)>& source_ok) {
  HedgePlan none;
  const std::vector<std::string> collections = subplan.BaseCollections();
  if (collections.empty()) return none;

  // Candidate replica sources, in the declaration order of the first
  // collection's equivalence class (deterministic).
  std::vector<std::string> candidates;
  for (const std::string& equiv : catalog.EquivalentsOf(collections[0])) {
    Result<std::string> src = catalog.SourceOf(equiv);
    if (!src.ok()) continue;
    const std::string src_lower = ToLower(*src);
    if (src_lower == primary_source_lower) continue;
    bool seen = false;
    for (const std::string& c : candidates) seen = seen || c == src_lower;
    if (!seen) candidates.push_back(src_lower);
  }

  for (const std::string& candidate : candidates) {
    if (!source_ok(candidate)) continue;
    // The candidate must carry an equivalent of EVERY scanned collection.
    std::map<std::string, std::string> replacement;
    bool complete = true;
    for (const std::string& coll : collections) {
      std::string found;
      for (const std::string& equiv : catalog.EquivalentsOf(coll)) {
        Result<std::string> src = catalog.SourceOf(equiv);
        if (src.ok() && ToLower(*src) == candidate) {
          found = equiv;
          break;
        }
      }
      if (found.empty()) {
        complete = false;
        break;
      }
      replacement[ToLower(coll)] = found;
    }
    if (!complete) continue;
    HedgePlan out;
    out.source = candidate;
    out.subplan = subplan.Clone();
    RewriteScans(out.subplan.get(), replacement);
    return out;
  }
  return none;
}

namespace {

void CollectSubmits(const algebra::Operator& op, bool allow_partial,
                    bool under_union, int* next_index,
                    std::vector<ScatterSubmit>* out) {
  if (op.kind == algebra::OpKind::kSubmit) {
    ScatterSubmit s;
    s.op = &op;
    s.index = (*next_index)++;
    s.droppable = allow_partial && under_union;
    out->push_back(s);
    return;  // submit subplans run at the source; nothing to collect below
  }
  const bool child_under_union =
      under_union || op.kind == algebra::OpKind::kUnion;
  for (int i = 0; i < op.num_children(); ++i) {
    CollectSubmits(op.child(i), allow_partial, child_under_union, next_index,
                   out);
  }
}

}  // namespace

std::vector<ScatterSubmit> CollectScatterSubmits(
    const algebra::Operator& plan, bool allow_partial) {
  std::vector<ScatterSubmit> out;
  int next_index = 0;
  CollectSubmits(plan, allow_partial, /*under_union=*/false, &next_index,
                 &out);
  return out;
}

}  // namespace mediator
}  // namespace disco
