// MonitorSnapshot: the dashboard-style operational report behind
// Mediator::MonitorReport() -- one deterministic picture of query
// volume, retry-budget consumption, breaker flapping, query-log
// occupancy, and the worst cost-model drift cells, renderable as text
// or JSON (field catalog in docs/OBSERVABILITY.md).
//
// Everything in the snapshot derives from simulated-clock state, so two
// same-seed runs render byte-identical reports.

#ifndef DISCO_MEDIATOR_MONITOR_REPORT_H_
#define DISCO_MEDIATOR_MONITOR_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace disco {
namespace mediator {

/// One registered source's breaker line.
struct MonitorBreakerRow {
  std::string source;       ///< lower-cased
  std::string state;        ///< effective state at snapshot time
  int64_t transitions = 0;  ///< lifetime state changes ("flaps")
  int64_t opens = 0;        ///< transitions into open
  int64_t rejected_submits = 0;
  int64_t failures = 0;
  int64_t successes = 0;
  /// Flap damping: consecutive failed half-open probes, and the cooldown
  /// the next re-probe must wait (base * 2^probes, capped).
  int probe_failures = 0;
  double effective_cooldown_ms = 0;
  /// Result-guard history: batches with quarantined/truncated answers,
  /// rows removed, and whether the current open was a lying-source trip.
  int64_t malformed_batches = 0;
  int64_t quarantined_rows = 0;
  bool lying = false;
};

/// One aggregated plan operator from the execution-profile registry:
/// either a "hottest operator" (by summed self CPU + wait) or a "worst
/// waterfall drop" (by rows_in - rows_out) row.
struct MonitorOperatorRow {
  std::string fingerprint;  ///< query-log plan fingerprint
  int node_id = 0;          ///< pre-order node index within the plan
  std::string label;        ///< algebra::NodeLabel of the node
  std::string op;           ///< operator kind
  int64_t execs = 0;        ///< queries that measured this node
  double cpu_ms = 0;        ///< summed self mediator-CPU ms
  double wait_ms = 0;       ///< summed self communication/wait ms
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double drop_fraction = 0;  ///< (rows_in - rows_out) / rows_in
};

/// One aggregated blame subject from the critical-path registry: a
/// source or operator label plus the wait-class kind it was blamed
/// under, with its summed critical-path milliseconds.
struct MonitorBlameRow {
  std::string subject;  ///< source name or operator label
  std::string kind;     ///< cpu | wait | scatter-wait | hedge-wait | stall
  double ms = 0;        ///< summed critical-path ms across queries
  int64_t segments = 0;
  int64_t queries = 0;  ///< queries where this subject appeared
  double share = 0;     ///< ms / registry total critical-path ms
};

/// One aggregated what-if suggestion from the critical-path registry.
struct MonitorSuggestionRow {
  std::string description;       ///< WhatIfScenario::ToString()
  double predicted_delta_ms = 0; ///< summed predicted savings
  int64_t queries = 0;           ///< queries that ranked this scenario
};

/// One (source, operator, rule scope) drift cell, worst first.
struct MonitorDriftRow {
  std::string source;
  std::string op;     ///< root operator kind of the subquery
  std::string scope;  ///< winning rule scope behind the estimates
  int64_t window_count = 0;
  double window_q = 0;    ///< windowed q-error quantile
  double baseline_q = 0;  ///< frozen baseline quantile (0 = not frozen)
  bool breached = false;  ///< currently latched past the drift threshold
};

struct MonitorSnapshot {
  double now_ms = 0;  ///< simulated clock at snapshot time

  // Query volume.
  int64_t queries = 0;
  int64_t query_errors = 0;
  int64_t replans = 0;
  int64_t explain_analyzes = 0;

  // Retry-budget consumption across all submits.
  int retry_max_attempts = 0;  ///< configured per-submit budget
  int64_t submits = 0;
  int64_t submit_retries = 0;
  int64_t submit_failures = 0;  ///< submits that exhausted the budget
  int64_t breaker_rejections = 0;

  // Scatter-gather federation (docs/ROBUSTNESS.md).
  int federation_threads = 1;   ///< configured scatter pool size
  double deadline_ms = 0;       ///< configured per-query deadline (0 = off)
  bool hedging = false;         ///< hedged requests enabled
  int query_retry_budget = 0;   ///< per-query retry budget (0 = unlimited)
  int64_t scatter_queries = 0;  ///< queries that took the scatter path
  int64_t scatter_submits = 0;  ///< submits executed by the scatter phase
  int64_t hedges_launched = 0;
  int64_t hedges_won = 0;
  int64_t hedges_cancelled = 0;
  int64_t deadline_expired_submits = 0;
  int64_t deadline_expired_queries = 0;
  int64_t cancellations = 0;  ///< sibling submits aborted after a fatality
  int64_t retry_budget_exhaustions = 0;

  // Flight-recorder occupancy.
  size_t log_size = 0;
  size_t log_capacity = 0;
  int64_t log_dropped = 0;
  int64_t log_total = 0;

  // Fast planning path (docs/PERFORMANCE.md).
  size_t plan_cache_size = 0;
  size_t plan_cache_capacity = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_insertions = 0;
  int64_t plan_cache_invalidations = 0;
  int64_t plan_cache_evictions = 0;
  size_t cost_memo_entries = 0;
  int64_t cost_memo_hits = 0;
  int64_t cost_memo_misses = 0;
  int64_t cost_memo_invalidations = 0;

  // Execution profiling (docs/OBSERVABILITY.md, "Execution profiling").
  int64_t profiled_queries = 0;  ///< queries that recorded a PlanProfile
  size_t profiled_plans = 0;     ///< distinct plan fingerprints profiled
  /// Top-K operators by summed self time (CPU + wait), hottest first.
  std::vector<MonitorOperatorRow> hottest_operators;
  /// Top-K operators by rows dropped (rows_in - rows_out), worst first.
  std::vector<MonitorOperatorRow> worst_drops;

  // Critical-path analysis (docs/OBSERVABILITY.md, "Critical-path
  // analysis").
  int64_t critpath_queries = 0;  ///< queries with a critical path
  size_t critpath_plans = 0;     ///< distinct fingerprints analyzed
  double critpath_total_ms = 0;  ///< summed critical-path ms
  /// Top-K blame subjects by summed critical-path ms, worst first.
  std::vector<MonitorBlameRow> top_bottlenecks;
  /// Top-K what-if scenarios by summed predicted savings, best first.
  std::vector<MonitorSuggestionRow> top_suggestions;

  // Result guard (docs/ROBUSTNESS.md, "Malformed-response defense").
  int64_t guard_batches = 0;            ///< subanswers validated
  int64_t guard_malformed_batches = 0;  ///< with quarantine/truncation
  int64_t guard_quarantined_rows = 0;
  int64_t guard_truncated_streams = 0;
  int64_t lying_opens = 0;  ///< breaker opens caused by malformation

  // Cost-model drift.
  int64_t drift_events = 0;
  /// Top-K cells by windowed q-error (worst first).
  std::vector<MonitorDriftRow> worst_cells;
  /// ToString() of the most recent drift events (each names the cell
  /// and carries a recalibration recommendation), oldest first.
  std::vector<std::string> recent_events;

  /// One row per registered source, name order.
  std::vector<MonitorBreakerRow> breakers;

  std::string ToText() const;
  std::string ToJson() const;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_MONITOR_REPORT_H_
