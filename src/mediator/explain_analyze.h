// Rendering of EXPLAIN ANALYZE: the chosen plan, per node, with the
// optimizer's estimated cost next to what execution actually measured,
// and the q-error between them -- the per-query view of how well the
// blended cost model (paper §4.1-4.3) is predicting reality.
//
// Estimates come from a full-tree CostEstimator pass (collect_explain
// on, required-variable propagation off so every node is visited);
// measurements come from the executor's NodeMeasureMap. Nodes inside a
// submit execute at the source, which reports only the whole
// subquery's cost -- their measured columns render as "@source".

#ifndef DISCO_MEDIATOR_EXPLAIN_ANALYZE_H_
#define DISCO_MEDIATOR_EXPLAIN_ANALYZE_H_

#include <string>
#include <vector>

#include "algebra/operator.h"
#include "costmodel/estimator.h"
#include "mediator/critical_path.h"
#include "mediator/exec.h"
#include "mediator/profiler.h"

namespace disco {
namespace mediator {

struct ExplainAnalyzeReport {
  const algebra::Operator* plan = nullptr;
  /// Full-tree estimate of `plan` taken *before* execution (explain
  /// records in pre-order; a query-scope hit ends its subtree's
  /// records, mirroring the estimator's short-circuit).
  const costmodel::PlanEstimate* estimate = nullptr;
  const NodeMeasureMap* measures = nullptr;
  double estimated_total_ms = 0;
  double measured_total_ms = 0;
  const std::vector<ExecWarning>* warnings = nullptr;  ///< may be null
  /// Execution profile of the run (may be null when profiling is off);
  /// appends the cardinality-waterfall block to the rendering.
  const PlanProfile* profile = nullptr;
  /// Critical path of the run (may be null when analysis is off);
  /// appends the critical-path + what-if block to the rendering.
  const CriticalPath* critical_path = nullptr;
  /// Cumulative AccuracyTracker::FormatScoreboard() output.
  std::string scoreboard;
};

std::string RenderExplainAnalyze(const ExplainAnalyzeReport& report);

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_EXPLAIN_ANALYZE_H_
