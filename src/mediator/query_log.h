// QueryLog: a bounded flight recorder of executed queries.
//
// Every Query() / ExplainAnalyze() / Execute() leaves one entry: the
// SQL text, the chosen plan's fingerprint, per-submit estimated vs.
// measured cost vectors (with the winning rule scope and retry count),
// the structured warnings, and the trace id. The buffer is a fixed-size
// ring -- old entries fall off, `dropped()` counts them -- so the log
// is safe to leave on in production-style runs.
//
// The log exports as JSONL (one JSON object per line, schema in
// docs/OBSERVABILITY.md) and parses back just enough of a line to
// *replay* it: mediator/replay.h re-runs a JSONL log against the
// current catalog to regression-check calibration.

#ifndef DISCO_MEDIATOR_QUERY_LOG_H_
#define DISCO_MEDIATOR_QUERY_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "costmodel/cost_vector.h"

namespace disco {
namespace mediator {

/// One submitted subquery inside a logged query: what the optimizer
/// believed it would cost vs. what the wrapper measured.
struct QueryLogSubmit {
  std::string source;      ///< lower-cased
  std::string subplan;     ///< canonical Operator::ToString rendering
  std::string scope;       ///< rule scope behind the TotalTime estimate
  int attempts = 0;        ///< submit attempts (retries included)
  costmodel::CostVector estimated;
  costmodel::CostVector measured;
};

struct QueryLogEntry {
  int64_t seq = 0;       ///< assigned by QueryLog::Record; doubles as
                         ///< the trace id of the query's span tree
  double start_ms = 0;   ///< simulated clock when the query began
  std::string sql;       ///< "" for plan-level Execute()
  std::string plan_fingerprint;  ///< 16-hex structural hash of the plan
  double estimated_ms = 0;
  double measured_ms = 0;
  bool ok = true;
  std::string error;     ///< status string when !ok
  int replans = 0;       ///< mid-query replans (0 or 1)
  /// Execution-profile roll-up (0s when profiling was off): plan node
  /// count and the query's serial CPU/wait split. The full per-node
  /// breakdown lives in QueryResult::profile, not the log.
  int profile_nodes = 0;
  double profile_cpu_ms = 0;
  double profile_wait_ms = 0;
  /// Critical-path roll-up (empty subject when analysis was off): the
  /// dominant segment's blame subject (source or operator label), its
  /// wait-class kind, its ms, and its share of the measured time. The
  /// full segment list lives in QueryResult::critical_path, not the log.
  std::string critpath_subject;
  std::string critpath_kind;
  double critpath_ms = 0;
  double critpath_share = 0;
  /// Result-guard roll-up (mediator/result_guard.h); the "guard" JSON
  /// object is emitted only when something was malformed.
  int64_t guard_batches = 0;
  int64_t guard_malformed = 0;
  int64_t guard_quarantined_rows = 0;
  int64_t guard_truncated = 0;
  /// Rendered ExecWarning lines: retry recoveries, dropped branches,
  /// replica rerouting, breaker states.
  std::vector<std::string> warnings;
  std::vector<QueryLogSubmit> submits;

  /// One JSONL line (no trailing newline).
  std::string ToJson() const;
};

/// What replay needs back out of a JSONL line.
struct ParsedLogEntry {
  int64_t seq = 0;
  std::string sql;
  double estimated_ms = 0;
  double measured_ms = 0;
  bool ok = true;
};

class QueryLog {
 public:
  /// `capacity` = 0 disables recording entirely.
  explicit QueryLog(size_t capacity = 256);

  /// Appends `entry`, assigning its `seq` (1-based, monotonically
  /// increasing across drops). Returns the assigned seq (0 when the log
  /// is disabled).
  int64_t Record(QueryLogEntry entry);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }
  /// Entries evicted by the ring so far.
  int64_t dropped() const { return total_recorded_ - static_cast<int64_t>(entries_.size()); }
  int64_t total_recorded() const { return total_recorded_; }
  /// The seq the next Record() will assign (0 when disabled) -- lets the
  /// caller stamp the trace id before the entry is complete.
  int64_t next_seq() const { return enabled() ? total_recorded_ + 1 : 0; }

  /// Retained entries, oldest first.
  std::vector<QueryLogEntry> Entries() const;
  /// Newest retained entry, or nullptr when empty.
  const QueryLogEntry* Last() const;

  /// JSONL export of Entries() (one line per entry, trailing newline).
  std::string ToJsonl() const;

  /// Extracts the replayable fields from one JSONL line. Returns
  /// nullopt for lines that are blank, comments (#), or missing "sql".
  static std::optional<ParsedLogEntry> ParseJsonLine(const std::string& line);

  void Clear();

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< index of the oldest entry once the ring wrapped
  std::vector<QueryLogEntry> entries_;
  int64_t total_recorded_ = 0;
};

namespace internal {
/// Minimal field extraction from a flat JSON object line (no nested
/// lookup): the value of `"key":"..."` with escapes decoded, or the
/// number after `"key":`. Shared by ParseJsonLine and its tests.
std::optional<std::string> JsonStringField(const std::string& line,
                                           const std::string& key);
std::optional<double> JsonNumberField(const std::string& line,
                                      const std::string& key);
std::optional<bool> JsonBoolField(const std::string& line,
                                  const std::string& key);
}  // namespace internal

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_QUERY_LOG_H_
