// The DISCO-style mediator: the public facade of this library.
//
//   Mediator med;                       // generic cost model installed
//   med.RegisterWrapper(std::move(w));  // registration phase (Figure 1)
//   auto result = med.Query("SELECT ... FROM ... WHERE ...");  // Figure 2
//
// Query() parses the declarative query, rewrites it over the local
// schemas, optimizes it with the blended cost model, executes the best
// plan (submitting subqueries to wrappers), and feeds measured subquery
// costs back into the history mechanism.

#ifndef DISCO_MEDIATOR_MEDIATOR_H_
#define DISCO_MEDIATOR_MEDIATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "costmodel/accuracy.h"
#include "costmodel/cost_memo.h"
#include "costmodel/drift.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/history.h"
#include "costmodel/registry.h"
#include "mediator/critical_path.h"
#include "mediator/exec.h"
#include "mediator/monitor_report.h"
#include "mediator/plan_cache.h"
#include "mediator/profiler.h"
#include "mediator/query_log.h"
#include "mediator/source_health.h"
#include "optimizer/optimizer.h"
#include "query/binder.h"
#include "query/sql_parser.h"
#include "wrapper/registration.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace mediator {

struct MediatorOptions {
  costmodel::CalibrationParams calibration;
  MediatorCostParams exec;
  optimizer::OptimizerOptions optimizer;
  /// Record measured subquery costs as query-scope rules + adjustment
  /// factors (§4.3.1).
  bool record_history = true;
  double history_alpha = 0.3;
  /// Fault tolerance (docs/ROBUSTNESS.md): retry policy, partial-answer
  /// mode, and jitter seed for the executor.
  ExecOptions fault_tolerance;
  /// Circuit-breaker thresholds of the per-source health registry.
  SourceHealthOptions breaker;
  /// When a source dies mid-execution, replan once around it (using
  /// declared-equivalent collections) and re-execute before giving up.
  bool replan_on_source_failure = true;
  /// Collect a per-query span tree (QueryResult::trace). Driven entirely
  /// by the simulated clock, so traces are bit-identical across runs;
  /// see docs/OBSERVABILITY.md.
  bool collect_traces = true;
  /// Cost-model drift monitoring thresholds (costmodel/drift.h); set
  /// drift.enabled = false to turn the monitor off.
  costmodel::DriftOptions drift;
  /// Entries retained by the query-log flight recorder (0 disables it).
  size_t query_log_capacity = 256;
  /// Collect a per-query operator profile (QueryResult::profile) and
  /// aggregate it in the process-wide ProfileRegistry. Simulated-clock
  /// driven like traces, so profiles are byte-identical across runs and
  /// federation pool sizes (docs/OBSERVABILITY.md).
  bool profile_execution = true;
  /// Extract the per-query critical path (QueryResult::critical_path)
  /// from the profile + scatter timeline, rank what-if scenarios, and
  /// aggregate blame shares in the CriticalPathRegistry. Requires
  /// profile_execution; byte-identical across pool sizes like profiles
  /// (docs/OBSERVABILITY.md, "Critical-path analysis").
  bool critical_path_analysis = true;
  /// Fast planning path (docs/PERFORMANCE.md): parameterized plan cache
  /// capacity (0 disables caching)...
  size_t plan_cache_capacity = 64;
  /// ...and the planning thread-pool size. 1 plans inline; N > 1 prices
  /// independent join-enumeration candidates on N threads with a
  /// deterministic reduction, so answers, traces, and metrics stay
  /// byte-identical across pool sizes.
  int planning_threads = 1;
  // Scatter-gather federation (docs/ROBUSTNESS.md) is configured via
  // fault_tolerance.federation: threads, per-query deadline, hedging.
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<storage::Tuple> tuples;
  std::string plan_text;   ///< pretty-printed chosen plan
  /// 16-hex structural hash of the executed plan (the replanned one if a
  /// mid-query replan happened); also the query log's fingerprint.
  std::string plan_fingerprint;
  double estimated_ms = 0; ///< optimizer's estimate of the chosen plan
  double measured_ms = 0;  ///< simulated execution time
  int replans = 0;         ///< mid-query replans that happened (0 or 1)
  /// The plan came from the parameterized plan cache (join enumeration
  /// was skipped; optimizer_stats is empty in that case).
  bool plan_cache_hit = false;
  optimizer::EnumStats optimizer_stats;
  /// Degradations survived while answering (retries that recovered,
  /// dropped union branches, replica rerouting). Empty on a clean run.
  std::vector<ExecWarning> warnings;
  /// Result-guard roll-up (mediator/result_guard.h): subanswers checked
  /// against the catalog schema, malformed batches, quarantined rows,
  /// truncated streams. All zeros on a clean run.
  GuardStats guard;
  /// The query's span tree (null when MediatorOptions::collect_traces is
  /// off). Export with trace->ToChromeJson() for chrome://tracing.
  tracing::TraceHandle trace;
  /// Per-operator CPU/wait profile of the executed plan (null when
  /// MediatorOptions::profile_execution is off or execution failed).
  std::shared_ptr<const PlanProfile> profile;
  /// The query's critical path with ranked what-if suggestions (null
  /// when critical_path_analysis or profiling is off, or execution
  /// failed). Segment durations sum to measured_ms exactly.
  std::shared_ptr<const CriticalPath> critical_path;
};

class Mediator {
 public:
  explicit Mediator(MediatorOptions options = {});

  /// Registration phase: pulls schema / statistics / cost rules /
  /// capabilities from the wrapper and takes ownership of it.
  Status RegisterWrapper(std::unique_ptr<wrapper::Wrapper> w);

  /// Re-registration (paper §2.1's administrative interface): refreshes
  /// an already registered wrapper's statistics and replaces its cost
  /// rules and capabilities -- "when the cost formulas are improved by
  /// the wrapper implementor, or the statistics become out of date".
  /// Recorded query-scope entries for the source are dropped (they may
  /// reflect the old behaviour).
  Status ReRegisterWrapper(const std::string& name);

  /// Parse + bind only.
  Result<query::BoundQuery> Analyze(const std::string& sql) const;

  /// Parse + bind + optimize (no execution).
  Result<optimizer::OptimizedPlan> Plan(const std::string& sql) const;

  /// EXPLAIN: the chosen plan plus, per node, the winning cost rule of
  /// each cost variable (rendered via costmodel::FormatExplain).
  Result<std::string> Explain(const std::string& sql) const;

  /// EXPLAIN ANALYZE: optimizes AND executes, then renders the chosen
  /// plan with estimated vs. measured TotalTime / CountObject and the
  /// q-error per node, followed by the cumulative cost-model accuracy
  /// scoreboard (which rule scope produced each estimate, and how far
  /// off it was). Execution side effects (history feedback, breaker
  /// updates, clock advance) happen exactly as in Query().
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Full query phase: returns the answer and updates history. When a
  /// source dies mid-execution, replans once around it (see
  /// MediatorOptions::replan_on_source_failure).
  Result<QueryResult> Query(const std::string& sql);

  /// Executes an already-built mediator plan.
  Result<QueryResult> Execute(const algebra::Operator& plan);

  /// Declares two registered collections to be replicas of the same
  /// logical data (forwarded to Catalog::DeclareEquivalent): the
  /// optimizer may then route around an unhealthy source.
  Status DeclareEquivalent(const std::string& collection_a,
                           const std::string& collection_b);

  // Component access (benches, tests, examples).
  const Catalog& catalog() const { return catalog_; }
  costmodel::RuleRegistry* registry() { return &registry_; }
  const costmodel::CostEstimator& estimator() const { return estimator_; }
  costmodel::HistoryManager* history() { return &history_; }
  const optimizer::CapabilityTable& capabilities() const { return caps_; }
  wrapper::Wrapper* wrapper(const std::string& name);
  const MediatorOptions& options() const { return options_; }
  SourceHealthRegistry* health() { return &health_; }
  const SourceHealthRegistry& health() const { return health_; }
  /// Process-lifetime metrics of this mediator (counters, histograms);
  /// the name catalog is in docs/OBSERVABILITY.md.
  metrics::Registry* metrics() { return &metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }
  /// Cumulative estimated-vs-measured scoreboard per (source, operator,
  /// winning rule scope).
  const costmodel::AccuracyTracker& accuracy() const { return accuracy_; }
  /// Windowed q-error drift monitor fed by the same measurement path as
  /// the history mechanism (docs/OBSERVABILITY.md).
  costmodel::DriftMonitor* drift() { return &drift_; }
  const costmodel::DriftMonitor& drift() const { return drift_; }
  /// Bounded flight recorder of executed queries (JSONL exportable,
  /// replayable via mediator/replay.h).
  QueryLog* query_log() { return &query_log_; }
  const QueryLog& query_log() const { return query_log_; }
  /// Per-operator execution profiles aggregated across queries, keyed
  /// by plan fingerprint (docs/OBSERVABILITY.md, "Execution profiling").
  const ProfileRegistry& profiles() const { return profiles_; }
  /// Critical-path blame shares and what-if suggestions aggregated
  /// across queries (docs/OBSERVABILITY.md, "Critical-path analysis").
  const CriticalPathRegistry& critical_paths() const { return critpaths_; }
  /// Parameterized plan cache consulted by Query()
  /// (docs/PERFORMANCE.md); empty when plan_cache_capacity is 0.
  PlanCache* plan_cache() { return &plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  /// Cross-query subplan cost memo handed to the optimizer; invalidated
  /// automatically against RuleRegistry::epoch().
  const costmodel::CostMemo& cost_memo() const { return cost_memo_; }
  /// Streaming per-source submit-latency quantiles feeding the hedge
  /// threshold (docs/ROBUSTNESS.md); spans queries.
  SubmitLatencyProfile* latency_profile() { return &latency_profile_; }
  const SubmitLatencyProfile& latency_profile() const {
    return latency_profile_;
  }
  /// Dashboard-style operational snapshot: query volume, retry-budget
  /// consumption, breaker flaps, query-log occupancy, and the `top_k`
  /// worst drift cells by windowed q-error. Deterministic: two same-seed
  /// runs render byte-identical reports.
  MonitorSnapshot MonitorReport(int top_k = 5) const;
  /// Cumulative simulated execution time across all queries -- the
  /// clock circuit-breaker cooldowns run on.
  double sim_now_ms() const { return sim_now_ms_; }

 private:
  /// Planning options with health-aware routing: avoid sources whose
  /// breaker is open, plus `extra_avoid` (sources that just failed).
  /// `trace` (may be null) receives the optimizer's rewrite/enumerate
  /// spans.
  optimizer::OptimizerOptions PlanningOptions(
      const std::vector<std::string>& extra_avoid,
      tracing::Trace* trace = nullptr) const;
  /// Query() body with phase spans emitted into `trace` (may be null).
  Result<QueryResult> QueryWithTrace(const std::string& sql,
                                     tracing::Trace* trace);
  /// Executes `plan`, advances the simulated clock (also on failure),
  /// feeds history + the accuracy tracker, and reports which sources
  /// exhausted their submits. `trace` and `node_measures` (both
  /// optional) receive per-node spans / measured costs.
  Result<QueryResult> ExecuteInternal(const algebra::Operator& plan,
                                      std::vector<std::string>* failed_sources,
                                      double* elapsed_ms,
                                      tracing::Trace* trace = nullptr,
                                      NodeMeasureMap* node_measures = nullptr);
  /// New trace anchored at the mediator clock, or null when disabled.
  tracing::TraceHandle NewTrace() const;
  /// Drops cached plan templates touching `source` and counts the drop
  /// in disco.plancache.invalidations.
  void InvalidateCachedPlansFor(const std::string& source);
  /// The plan-cache key of a bound query under the current health state:
  /// canonical shape plus the canonical avoid-set rendering.
  struct PlanCacheKeyParts {
    CanonicalQuery canon;
    std::string avoid_key;
  };
  PlanCacheKeyParts MakePlanCacheKey(const query::BoundQuery& bound) const;
  /// Files one flight-recorder entry for `result` (consumes the submits
  /// collected by the last ExecuteInternal). No-op when the log is off.
  void RecordQueryLog(const std::string& sql, double start_ms,
                      const Result<QueryResult>& result);

  MediatorOptions options_;
  Catalog catalog_;
  costmodel::RuleRegistry registry_;
  costmodel::HistoryManager history_;
  optimizer::CapabilityTable caps_;
  costmodel::CostEstimator estimator_;
  optimizer::Optimizer optimizer_;
  std::vector<std::unique_ptr<wrapper::Wrapper>> wrappers_;
  SourceHealthRegistry health_;
  double sim_now_ms_ = 0;
  metrics::Registry metrics_;
  /// Fast planning path (docs/PERFORMANCE.md). The memo and pool are
  /// mutable because const planning entry points (Plan, Explain) still
  /// warm the memo -- a cache, not observable state.
  mutable costmodel::CostMemo cost_memo_;
  std::unique_ptr<ThreadPool> planning_pool_;
  /// Scatter-gather pool (docs/ROBUSTNESS.md); null when
  /// fault_tolerance.federation.threads == 1 (groups run inline).
  std::unique_ptr<ThreadPool> federation_pool_;
  /// Per-source submit-latency quantile sketches driving hedge
  /// thresholds; fed by every successful submit across queries.
  SubmitLatencyProfile latency_profile_;
  PlanCache plan_cache_;
  costmodel::AccuracyTracker accuracy_;
  costmodel::DriftMonitor drift_;
  QueryLog query_log_;
  ProfileRegistry profiles_;
  CriticalPathRegistry critpaths_;
  /// Per-submit estimate-vs-measurement details of the most recent
  /// ExecuteInternal, consumed by RecordQueryLog.
  std::vector<QueryLogSubmit> last_submits_;
  /// Lifetime breaker flap counts per lower-cased source (MonitorReport).
  struct FlapCount {
    int64_t transitions = 0;
    int64_t opens = 0;
  };
  std::map<std::string, FlapCount> breaker_flaps_;
  /// Trace of the execution currently in flight (breaker transitions
  /// reported by the health registry and drift events land here as
  /// instant events).
  tracing::Trace* active_trace_ = nullptr;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_MEDIATOR_H_
