// The DISCO-style mediator: the public facade of this library.
//
//   Mediator med;                       // generic cost model installed
//   med.RegisterWrapper(std::move(w));  // registration phase (Figure 1)
//   auto result = med.Query("SELECT ... FROM ... WHERE ...");  // Figure 2
//
// Query() parses the declarative query, rewrites it over the local
// schemas, optimizes it with the blended cost model, executes the best
// plan (submitting subqueries to wrappers), and feeds measured subquery
// costs back into the history mechanism.

#ifndef DISCO_MEDIATOR_MEDIATOR_H_
#define DISCO_MEDIATOR_MEDIATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/history.h"
#include "costmodel/registry.h"
#include "mediator/exec.h"
#include "optimizer/optimizer.h"
#include "query/binder.h"
#include "query/sql_parser.h"
#include "wrapper/registration.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace mediator {

struct MediatorOptions {
  costmodel::CalibrationParams calibration;
  MediatorCostParams exec;
  optimizer::OptimizerOptions optimizer;
  /// Record measured subquery costs as query-scope rules + adjustment
  /// factors (§4.3.1).
  bool record_history = true;
  double history_alpha = 0.3;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<storage::Tuple> tuples;
  std::string plan_text;   ///< pretty-printed chosen plan
  double estimated_ms = 0; ///< optimizer's estimate of the chosen plan
  double measured_ms = 0;  ///< simulated execution time
  optimizer::EnumStats optimizer_stats;
};

class Mediator {
 public:
  explicit Mediator(MediatorOptions options = {});

  /// Registration phase: pulls schema / statistics / cost rules /
  /// capabilities from the wrapper and takes ownership of it.
  Status RegisterWrapper(std::unique_ptr<wrapper::Wrapper> w);

  /// Re-registration (paper §2.1's administrative interface): refreshes
  /// an already registered wrapper's statistics and replaces its cost
  /// rules and capabilities -- "when the cost formulas are improved by
  /// the wrapper implementor, or the statistics become out of date".
  /// Recorded query-scope entries for the source are dropped (they may
  /// reflect the old behaviour).
  Status ReRegisterWrapper(const std::string& name);

  /// Parse + bind only.
  Result<query::BoundQuery> Analyze(const std::string& sql) const;

  /// Parse + bind + optimize (no execution).
  Result<optimizer::OptimizedPlan> Plan(const std::string& sql) const;

  /// EXPLAIN: the chosen plan plus, per node, the winning cost rule of
  /// each cost variable (rendered via costmodel::FormatExplain).
  Result<std::string> Explain(const std::string& sql) const;

  /// Full query phase: returns the answer and updates history.
  Result<QueryResult> Query(const std::string& sql);

  /// Executes an already-built mediator plan.
  Result<QueryResult> Execute(const algebra::Operator& plan);

  // Component access (benches, tests, examples).
  const Catalog& catalog() const { return catalog_; }
  costmodel::RuleRegistry* registry() { return &registry_; }
  const costmodel::CostEstimator& estimator() const { return estimator_; }
  costmodel::HistoryManager* history() { return &history_; }
  const optimizer::CapabilityTable& capabilities() const { return caps_; }
  wrapper::Wrapper* wrapper(const std::string& name);
  const MediatorOptions& options() const { return options_; }

 private:
  MediatorOptions options_;
  Catalog catalog_;
  costmodel::RuleRegistry registry_;
  costmodel::HistoryManager history_;
  optimizer::CapabilityTable caps_;
  costmodel::CostEstimator estimator_;
  optimizer::Optimizer optimizer_;
  std::vector<std::unique_ptr<wrapper::Wrapper>> wrappers_;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_MEDIATOR_H_
