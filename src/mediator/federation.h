// Deadline-aware scatter-gather federation (docs/ROBUSTNESS.md).
//
// The paper's mediator submits independent subqueries serially, so the
// simulated clock charges their latencies as a *sum*. This module holds
// the knobs and helpers of the concurrent federation layer: independent
// kSubmit subplans of one query scatter onto a common/thread_pool and
// gather under a per-query deadline, with the clock charged max-not-sum
// for overlapping submits. On top of the scatter path ride hedged
// requests (a backup submit to a DeclareEquivalent replica once the
// primary exceeds an adaptive latency percentile), cancellation
// propagation (a fatal sibling failure or an expired deadline aborts
// in-flight submits), and a shared per-query retry budget.
//
// Everything is driven by the simulated clock and seeded RNGs: for a
// fixed configuration the answer, warnings, metrics, and trace are
// byte-identical for ANY federation pool size -- concurrency changes
// wall time, never results.

#ifndef DISCO_MEDIATOR_FEDERATION_H_
#define DISCO_MEDIATOR_FEDERATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "common/sketch.h"

namespace disco {
namespace mediator {

/// Knobs of the scatter-gather federation layer. The layer activates
/// when any knob departs from its default; with all defaults the
/// executor keeps the original serial submit loop, byte-for-byte.
struct FederationOptions {
  /// Source groups scattered concurrently. 1 still runs the scatter
  /// machinery inline when another knob is active (deadline, hedging),
  /// producing results identical to any larger pool.
  int threads = 1;
  /// Per-query budget (simulated ms, measured from execution start) for
  /// the scatter phase. Submits still in flight when it expires are
  /// abandoned; under allow_partial a union absorbs the loss as a
  /// partial answer with a warning. 0 = no deadline.
  double deadline_ms = 0;
  /// Hedged requests: when a primary submit exceeds the adaptive
  /// threshold (see hedge_quantile) and a DeclareEquivalent replica
  /// exists on a healthy source, launch a backup submit there and keep
  /// whichever answer arrives first, cancelling the loser.
  bool hedge = false;
  /// The per-source latency quantile used as the hedge threshold.
  double hedge_quantile = 0.95;
  /// Observed submits per source before its threshold is trusted.
  int hedge_min_samples = 8;
  /// Floor on the hedge threshold (guards against hedging on noise when
  /// the profile quantile is still tiny). 0 = no floor.
  double hedge_min_ms = 0;
  /// Bind-join probe batching: distinct outer keys per probe (shipped as
  /// one disjunctive IN-set select when the wrapper supports it,
  /// decomposed into per-key selects otherwise). 1 = the original
  /// one-equality-probe-per-key loop, byte-for-byte.
  int bind_batch_size = 1;
  /// Bind-join probe waves: batches issued per simulated-concurrent
  /// wave. The clock charges max-not-sum per wave; results are merged in
  /// outer-tuple order, so any value yields identical tuples for any
  /// federation pool size. 1 = batches run back to back.
  int bind_parallelism = 1;

  /// Does any knob require the scatter-gather path? The bind-join
  /// batching knobs deliberately stay out: they reshape probes inside
  /// EvalBindJoin and must not drag static submits onto the scatter
  /// path (with all other knobs default the serial submit loop must
  /// stay byte-identical).
  bool active() const { return threads > 1 || deadline_ms > 0 || hedge; }
};

/// Streaming per-source submit-latency quantiles (P^2 sketches from
/// common/sketch.h) feeding the adaptive hedge threshold. Owned by the
/// Mediator so the profile spans queries; fed with the total charged
/// duration of every successful submit, in subplan-index order, so the
/// profile -- and therefore every hedge decision -- is deterministic.
class SubmitLatencyProfile {
 public:
  explicit SubmitLatencyProfile(double quantile = 0.95)
      : quantile_(quantile) {}

  void Observe(const std::string& source_lower, double duration_ms);

  /// Observations recorded for the source (0 = never seen).
  int64_t count(const std::string& source_lower) const;

  /// Current quantile estimate for the source; 0 when unseen.
  double QuantileMs(const std::string& source_lower) const;

  double quantile() const { return quantile_; }

 private:
  double quantile_;
  std::map<std::string, P2Quantile> sketches_;
};

/// A hedge target: `subplan` is the primary's subplan with every scanned
/// collection rewritten to its declared-equivalent on `source`.
struct HedgePlan {
  std::string source;  ///< lower-cased replica source ("" = no replica)
  std::unique_ptr<algebra::Operator> subplan;

  bool viable() const { return !source.empty(); }
};

/// Builds the hedge plan for `subplan` (the operand of a submit to
/// `primary_source_lower`): finds a single OTHER source that carries a
/// declared-equivalent of every collection the subplan scans and for
/// which `source_ok` holds (registered wrapper, breaker not open), then
/// rewrites the scans. Candidate sources are tried in the deterministic
/// declaration order of Catalog::EquivalentsOf. Returns a non-viable
/// HedgePlan when no source qualifies.
HedgePlan MakeHedgePlan(const algebra::Operator& subplan,
                        const Catalog& catalog,
                        const std::string& primary_source_lower,
                        const std::function<bool(const std::string&)>&
                            source_ok);

/// One statically-known submit of a plan, in pre-order position.
struct ScatterSubmit {
  const algebra::Operator* op = nullptr;  ///< the kSubmit node
  int index = 0;        ///< pre-order subplan index (gather sort key)
  /// A failure here is absorbable: the node sits under a kUnion and the
  /// executor runs in allow_partial mode, so siblings need not be
  /// cancelled when it fails.
  bool droppable = false;
};

/// Collects every kSubmit node of `plan` in pre-order (bind-join probes
/// are dynamic: they batch and wave inside EvalBindJoin instead, see
/// FederationOptions::bind_batch_size). `allow_partial` determines
/// droppability.
std::vector<ScatterSubmit> CollectScatterSubmits(
    const algebra::Operator& plan, bool allow_partial);

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_FEDERATION_H_
