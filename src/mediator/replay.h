// Query-log replay: re-run a JSONL flight-recorder log (query_log.h)
// against the *current* catalog and cost model, and compare what the
// optimizer estimates now with what execution measures now -- a
// regression check for calibration. Everything is driven by the
// simulated clock, so a replay against a same-seed federation is
// byte-identical run to run (tools/replay.cc is the CLI entry).

#ifndef DISCO_MEDIATOR_REPLAY_H_
#define DISCO_MEDIATOR_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "mediator/mediator.h"

namespace disco {
namespace mediator {

struct ReplayOptions {
  /// Abort the replay on the first query that errors (default: keep
  /// going and report it).
  bool stop_on_error = false;
};

/// Outcome of re-running one logged query.
struct ReplayedQuery {
  int64_t logged_seq = 0;
  std::string sql;
  bool ok = false;
  std::string error;              ///< when !ok
  double logged_measured_ms = 0;  ///< what the log recorded back then
  double estimated_ms = 0;        ///< the optimizer's estimate now
  double measured_ms = 0;         ///< what execution measured now
  /// q-error of the current estimate vs. the current measurement: how
  /// well-calibrated the model is *today* on this query.
  double q_error = 1;
  /// measured-now / measured-then (1 = the source behaves as it did
  /// when the log was recorded); 0 when the log had no measurement.
  double vs_logged_ratio = 0;
};

struct ReplayReport {
  std::vector<ReplayedQuery> queries;
  int64_t lines = 0;    ///< input lines seen
  int64_t skipped = 0;  ///< blank/comment/unparseable/plan-only lines
  int64_t failed = 0;   ///< replayed queries that errored
  double geo_mean_q = 1;  ///< over successful replays
  double max_q = 1;

  /// Deterministic table: one line per replayed query plus a summary.
  std::string ToText() const;
};

/// Replays every parseable line of `jsonl` through `med->Query()`.
/// Mutates the mediator exactly like live traffic (history feedback,
/// breaker state, simulated clock).
Result<ReplayReport> ReplayQueryLog(Mediator* med, const std::string& jsonl,
                                    ReplayOptions options = {});

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_REPLAY_H_
