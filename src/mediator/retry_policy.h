// RetryPolicy: how the mediator re-submits a subquery after a source
// failure. Backoff is exponential with (seeded, deterministic) jitter
// and every failed attempt -- including the waiting time between
// attempts -- is charged against the simulated clock, so a query that
// survived a flaky source honestly shows the price in `measured_ms`.

#ifndef DISCO_MEDIATOR_RETRY_POLICY_H_
#define DISCO_MEDIATOR_RETRY_POLICY_H_

#include "common/rng.h"

namespace disco {
namespace mediator {

struct RetryPolicy {
  /// Total submits per subquery, including the first one. 1 = no retry.
  int max_attempts = 1;
  /// Wait before the second attempt; doubles (see multiplier) per retry.
  double backoff_base_ms = 100.0;
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff interval (before jitter).
  double backoff_cap_ms = 5000.0;
  /// Uniform jitter of +/- this fraction around the nominal backoff.
  /// Deterministic: drawn from the executor's seeded Rng.
  double jitter_fraction = 0.1;
  /// A submit whose simulated source time exceeds this budget counts as a
  /// failed attempt (the budget, not the overrun, is charged). 0 = off.
  double attempt_timeout_ms = 0.0;
  /// Per-QUERY cap on extra attempts: retries and hedge launches across
  /// all submits of one query share this budget, so a flap that touches
  /// several sources cannot multiply into a retry storm. 0 = unlimited.
  /// Under scatter-gather the budget is split optimistically: every
  /// concurrent source group sees the budget remaining when the scatter
  /// started, and consumption is reconciled at gather (the cap may be
  /// overshot by at most one in-flight retry per group).
  int query_retry_budget = 0;

  /// No retries at all (the pre-fault-tolerance behaviour).
  static RetryPolicy None() { return RetryPolicy{}; }

  /// A sensible default for flaky sources.
  static RetryPolicy Standard(int attempts = 3) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }

  /// Backoff charged after the `failures`-th consecutive failure
  /// (1-based) before the next attempt.
  double BackoffMs(int failures, Rng* rng) const;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_RETRY_POLICY_H_
