#include "mediator/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace disco {
namespace mediator {

double RetryPolicy::BackoffMs(int failures, Rng* rng) const {
  if (failures < 1) failures = 1;
  double nominal =
      backoff_base_ms * std::pow(backoff_multiplier, failures - 1);
  nominal = std::min(nominal, backoff_cap_ms);
  if (jitter_fraction > 0 && rng != nullptr) {
    nominal *= 1.0 + jitter_fraction * (2.0 * rng->NextDouble() - 1.0);
  }
  return std::max(nominal, 0.0);
}

}  // namespace mediator
}  // namespace disco
