// Per-submit response validation: the mediator's defensive layer
// against sources that answer *wrong* instead of not at all.
//
// The executor trusts wrappers to return rows matching the catalog
// schema of the subplan it submitted. A buggy or compromised source can
// instead return rows with the wrong arity, type-mismatched values,
// NaN/inf numerics, or a silently truncated stream -- and without a
// guard those rows flow into joins, aggregates, and the user's answer.
// The result guard validates every subanswer against the shape the
// catalog says the subplan must produce and **quarantines** offending
// rows: they are removed, counted, and reported as structured
// ExecWarnings, while surviving rows proceed. Persistent malformation
// feeds `SourceHealthRegistry::RecordMalformed`, which opens the
// breaker with the distinct "lying source" flag (source_health.h).
//
// Validation happens on deterministic paths only -- the serial submit
// loop, and the scatter gather/commit loop in subplan-index order -- so
// quarantine decisions, warnings, and `disco.guard.*` metrics are
// byte-identical for any federation pool size.
//
// Checks, per subanswer:
//   * arity     -- every row has exactly the expected column count;
//   * types     -- every non-null value matches the catalog attribute
//                  type (columns whose type is not derivable, e.g.
//                  min/max over an unknown attribute, are skipped);
//   * finiteness-- no NaN / infinity in double values (checked even
//                  when the schema is unknown);
//   * truncation-- the wrapper-declared `objects_produced` matches the
//                  delivered row count, for subplan shapes where the
//                  two provably coincide (scan / select-over-scan /
//                  project / sort / union chains; joins, dedup and
//                  aggregates legitimately produce more objects than
//                  final rows and are exempt).

#ifndef DISCO_MEDIATOR_RESULT_GUARD_H_
#define DISCO_MEDIATOR_RESULT_GUARD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "common/value.h"
#include "sources/source_engine.h"

namespace disco {
namespace mediator {

/// Expected shape of one output column of a subanswer. `type` is
/// nullopt when the catalog cannot pin it down -- such columns are
/// arity- and finiteness-checked only.
struct GuardColumn {
  std::string name;
  std::optional<ValueType> type;
};

/// Everything the guard knows in advance about one subplan's answer.
struct GuardExpectation {
  /// Expected columns, or nullopt when the shape is not derivable from
  /// the catalog (validation then falls back to the answer's own column
  /// count plus finiteness checks).
  std::optional<std::vector<GuardColumn>> columns;
  /// Whether `objects_produced` == delivered rows holds for this
  /// subplan shape, making silent truncation detectable.
  bool truncation_detectable = false;
};

/// Derives the expectation for `subplan` from the catalog. Never fails:
/// unknown shapes yield an expectation with `columns == nullopt`.
GuardExpectation MakeGuardExpectation(const algebra::Operator& subplan,
                                      const Catalog& catalog);

/// What ValidateSubanswer found -- and removed -- in one subanswer.
struct GuardReport {
  int64_t rows_checked = 0;
  int64_t rows_quarantined = 0;
  int64_t arity_mismatches = 0;    ///< offending values/rows, not batches
  int64_t type_mismatches = 0;
  int64_t non_finite_values = 0;
  bool truncated = false;
  int64_t declared_rows = 0;   ///< wrapper-declared objects_produced
  int64_t delivered_rows = 0;  ///< rows present before quarantine

  bool any() const { return rows_quarantined > 0 || truncated; }

  /// Compact warning text, e.g.
  /// `result guard quarantined 3/10 rows (arity 1, type 2) ;
  ///  truncated stream (12 declared, 6 delivered)`.
  std::string Message() const;
};

/// Validates `result` in place against `expectation`: malformed rows
/// are removed (quarantined) so downstream operators see only rows that
/// type-check, and the findings are returned. Deterministic: depends
/// only on the expectation and the result contents.
GuardReport ValidateSubanswer(const GuardExpectation& expectation,
                              sources::ExecutionResult* result);

/// Per-query roll-up, surfaced through QueryResult, the query log, and
/// MonitorReport.
struct GuardStats {
  int64_t batches_checked = 0;
  int64_t malformed_batches = 0;
  int64_t rows_quarantined = 0;
  int64_t truncated_streams = 0;

  void Absorb(const GuardReport& r) {
    ++batches_checked;
    if (r.any()) ++malformed_batches;
    rows_quarantined += r.rows_quarantined;
    if (r.truncated) ++truncated_streams;
  }
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_RESULT_GUARD_H_
