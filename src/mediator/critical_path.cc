#include "mediator/critical_path.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/str_util.h"

namespace disco {
namespace mediator {

namespace {

constexpr double kEps = 1e-9;

/// "Submit(@erp)" / "submit @erp" / "bindjoin(@parts.Part, ...)" ->
/// "erp" / "parts" ('.' separates the source from the collection).
std::string SourceFromLabel(const std::string& label) {
  const size_t at = label.find('@');
  if (at == std::string::npos) return "";
  size_t end = at + 1;
  while (end < label.size() && label[end] != ')' && label[end] != ',' &&
         label[end] != ' ' && label[end] != '.') {
    ++end;
  }
  return label.substr(at + 1, end - at - 1);
}

/// Is this concurrent node one of the scatter phase's submits (as
/// opposed to a bind join whose probe waves charged max-not-sum)?
bool IsScatterSubmitNode(const NodeProfile& n) {
  return n.label.rfind("submit", 0) == 0;
}

CriticalSegment MakeSegment(int node_id, std::string label, std::string kind,
                            std::string source, double ms,
                            int subplan_index) {
  CriticalSegment s;
  s.node_id = node_id;
  s.label = std::move(label);
  s.kind = std::move(kind);
  s.source = std::move(source);
  s.ms = ms;
  s.subplan_index = subplan_index;
  return s;
}

/// Events per lane in chronological (= subplan-index) order.
std::map<int, std::vector<const ScatterTimelineEvent*>> LaneEvents(
    const ScatterTimeline& timeline) {
  std::map<int, std::vector<const ScatterTimelineEvent*>> lanes;
  for (const ScatterTimelineEvent& e : timeline.events) {
    lanes[e.lane].push_back(&e);
  }
  return lanes;
}

/// The event on `e`'s lane immediately before it, nullptr for the first.
const ScatterTimelineEvent* LanePredecessor(
    const std::map<int, std::vector<const ScatterTimelineEvent*>>& lanes,
    const ScatterTimelineEvent* e) {
  const auto it = lanes.find(e->lane);
  if (it == lanes.end()) return nullptr;
  const auto& lane = it->second;
  for (size_t j = 0; j < lane.size(); ++j) {
    if (lane[j] == e) return j > 0 ? lane[j - 1] : nullptr;
  }
  return nullptr;
}

/// Walks the slowest-lane chain backward from charged_ms to 0 and tiles
/// it with segments. Emits chronologically (earliest first).
void AppendScatterSegments(const ScatterTimeline& timeline,
                           std::vector<CriticalSegment>* out) {
  if (!timeline.active() || timeline.charged_ms <= kEps) return;
  const auto lanes = LaneEvents(timeline);

  // Terminal: the event whose effective end is the phase's charge
  // (strict > keeps the lowest subplan_index on ties -- events arrive
  // in subplan-index order).
  const ScatterTimelineEvent* cur = nullptr;
  for (const ScatterTimelineEvent& e : timeline.events) {
    if (cur == nullptr || e.eff_end_rel > cur->eff_end_rel + kEps) cur = &e;
  }

  std::vector<CriticalSegment> rev;  // built back-to-front
  double cursor = timeline.charged_ms;
  while (cursor > kEps) {
    if (cur == nullptr) {
      // Nothing left on the chain: account the remainder as a stall so
      // the tiling stays exact (never hit by today's executor).
      rev.push_back(
          MakeSegment(-1, "scatter stall", "stall", "", cursor, -1));
      cursor = 0;
      break;
    }
    const double seg_start = std::max(0.0, std::min(cur->eff_start_rel, cursor));
    const double seg_end = cursor;
    if (cur->hedge_won) {
      // [seg_start, hs]: waiting out the hedge threshold on the primary;
      // [hs, seg_end]: the winning replica submit.
      const double hs =
          std::min(std::max(cur->hedge_start_rel, seg_start), seg_end);
      if (seg_end - hs > kEps) {
        rev.push_back(MakeSegment(-1, "hedge @" + cur->hedge_source,
                                  "scatter-wait", cur->hedge_source,
                                  seg_end - hs, cur->subplan_index));
      }
      if (hs - seg_start > kEps) {
        rev.push_back(MakeSegment(-1, "hedge threshold @" + cur->source,
                                  "hedge-wait", cur->source, hs - seg_start,
                                  cur->subplan_index));
      }
    } else if (seg_end - seg_start > kEps) {
      rev.push_back(MakeSegment(-1, "submit @" + cur->source, "scatter-wait",
                                cur->source, seg_end - seg_start,
                                cur->subplan_index));
    }
    cursor = seg_start;
    const ScatterTimelineEvent* pred = LanePredecessor(lanes, cur);
    if (pred == nullptr && cursor > kEps) {
      rev.push_back(MakeSegment(-1, "scatter stall", "stall", "", cursor,
                                cur->subplan_index));
      cursor = 0;
    }
    cur = pred;
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    out->push_back(std::move(*it));
  }
}

/// Ids of the concurrent submit nodes in plan pre-order -- the j-th one
/// corresponds to the j-th ScatterTimeline event (both are the plan's
/// submit pre-order). Concurrent bind-join nodes are excluded: their
/// probe waves never enter the scatter timeline.
std::vector<int> ConcurrentNodeIds(const PlanProfile& profile) {
  std::vector<int> ids;
  for (const NodeProfile& n : profile.nodes) {
    if (n.measured && n.concurrent && IsScatterSubmitNode(n)) {
      ids.push_back(n.id);
    }
  }
  return ids;
}

/// The per-query deadline clamp of the re-solved schedule.
double ClampDeadline(double end, double deadline_ms) {
  return deadline_ms > 0 ? std::min(end, deadline_ms) : end;
}

/// Re-solves the scatter phase's lane schedule under `scenario` and
/// returns the phase's max-not-sum charge. Each lane replays its events
/// serially with scenario-adjusted durations; the per-query deadline
/// still clips every submit.
double ResolveScatter(const ScatterTimeline& timeline,
                      const PlanProfile& profile,
                      const WhatIfScenario& sc) {
  if (!timeline.active()) return 0;

  int free_subplan = -1;
  if (sc.kind == WhatIfScenario::Kind::kOperatorFree) {
    const std::vector<int> ids = ConcurrentNodeIds(profile);
    for (size_t j = 0; j < ids.size() && j < timeline.events.size(); ++j) {
      if (ids[j] == sc.node_id) {
        free_subplan = timeline.events[j].subplan_index;
      }
    }
  }

  double max_end = 0;
  for (const auto& [lane, evs] : LaneEvents(timeline)) {
    (void)lane;
    double clock = evs.empty() ? 0 : std::max(0.0, evs.front()->eff_start_rel);
    for (const ScatterTimelineEvent* e : evs) {
      const double eff_dur = std::max(0.0, e->eff_end_rel - e->eff_start_rel);
      double dur = eff_dur;
      switch (sc.kind) {
        case WhatIfScenario::Kind::kSourceSpeedup: {
          if (e->hedge_won) {
            // Threshold wait is unchanged; the winning replica's source
            // share scales. A faster *primary* could win back instead:
            // model that as the primary's whole interval scaled.
            const double threshold =
                std::max(0.0, e->hedge_start_rel - e->eff_start_rel);
            double hedge_dur = std::max(0.0, eff_dur - threshold);
            if (EqualsIgnoreCase(e->hedge_source, sc.source)) {
              hedge_dur = std::max(
                  0.0, hedge_dur - e->source_ms + e->source_ms / sc.factor);
            }
            dur = threshold + hedge_dur;
            if (EqualsIgnoreCase(e->source, sc.source)) {
              const double prim_dur =
                  std::max(0.0, e->end_rel - e->start_rel) / sc.factor;
              dur = std::min(dur, prim_dur);
            }
          } else if (EqualsIgnoreCase(e->source, sc.source) &&
                     e->source_ms > 0) {
            // Only the source-execution share speeds up; latency, byte
            // shipping, and backoff stay.
            dur = std::max(0.0,
                           eff_dur - e->source_ms + e->source_ms / sc.factor);
          }
          break;
        }
        case WhatIfScenario::Kind::kDisableHedges:
          if (e->hedge_won) {
            // The primary would have run to its natural completion.
            dur = std::max(0.0, e->end_rel - e->start_rel);
          }
          break;
        case WhatIfScenario::Kind::kOperatorFree:
          if (e->subplan_index == free_subplan) dur = 0;
          break;
      }
      const double end = ClampDeadline(clock + dur, timeline.deadline_ms);
      clock = end;
      max_end = std::max(max_end, end);
    }
  }
  return max_end;
}

/// Serial (non-scatter) share of the response time under `scenario`.
double ResolveSerial(const PlanProfile& profile, const WhatIfScenario& sc) {
  double serial = 0;
  for (const NodeProfile& n : profile.nodes) {
    if (!n.measured) continue;
    double cpu = n.cpu_ms;
    // Scatter submits' wait re-solves in ResolveScatter; everything
    // else -- including a concurrent bind join's max-not-sum probe-wave
    // charge -- is serial relative to the rest of the plan.
    double wait = n.concurrent && IsScatterSubmitNode(n) ? 0 : n.wait_ms;
    switch (sc.kind) {
      case WhatIfScenario::Kind::kSourceSpeedup:
        if (wait > 0 &&
            EqualsIgnoreCase(SourceFromLabel(n.label), sc.source) &&
            n.source_ms > 0) {
          wait = std::max(0.0, wait - n.source_ms + n.source_ms / sc.factor);
        }
        break;
      case WhatIfScenario::Kind::kOperatorFree:
        if (n.id == sc.node_id) {
          cpu = 0;
          wait = 0;
        }
        break;
      case WhatIfScenario::Kind::kDisableHedges:
        break;
    }
    serial += cpu + wait;
  }
  return serial;
}

}  // namespace

std::string WhatIfScenario::ToString() const {
  switch (kind) {
    case Kind::kSourceSpeedup:
      return StringPrintf("source '%s' %.3gx faster", source.c_str(), factor);
    case Kind::kDisableHedges:
      return "hedging disabled";
    case Kind::kOperatorFree:
      return StringPrintf("operator %s (node %d) free", node_label.c_str(),
                          node_id);
  }
  return "?";
}

double CriticalPath::total_ms() const {
  double sum = 0;
  for (const CriticalSegment& s : segments) sum += s.ms;
  return sum;
}

double CriticalPath::kind_ms(const std::string& kind) const {
  double sum = 0;
  for (const CriticalSegment& s : segments) {
    if (s.kind == kind) sum += s.ms;
  }
  return sum;
}

const CriticalSegment* CriticalPath::dominant() const {
  const CriticalSegment* best = nullptr;
  for (const CriticalSegment& s : segments) {
    if (best == nullptr || s.ms > best->ms + kEps) best = &s;
  }
  return best;
}

std::string CriticalPath::ToText() const {
  std::string out = StringPrintf(
      "critical path: %zu segment%s, %.3f ms (measured %.3f ms)\n",
      segments.size(), segments.size() == 1 ? "" : "s", total_ms(),
      measured_ms);
  const double denom = measured_ms > kEps ? measured_ms : 1.0;
  for (const CriticalSegment& s : segments) {
    const std::string kind = "[" + s.kind + "]";
    out += StringPrintf("  %-15s %12.3f ms  %5.1f%%  %s\n", kind.c_str(),
                        s.ms, 100.0 * s.ms / denom, s.label.c_str());
  }
  if (!what_ifs.empty()) {
    out += "what-if (predicted response time):\n";
    for (const WhatIfResult& w : what_ifs) {
      out += StringPrintf("  %-38s %12.3f ms  (%+.1f%%)\n",
                          w.scenario.ToString().c_str(), w.predicted_ms,
                          100.0 * (w.predicted_ms - w.baseline_ms) /
                              (w.baseline_ms > kEps ? w.baseline_ms : 1.0));
    }
  }
  return out;
}

std::string CriticalPath::ToJson() const {
  std::string out = StringPrintf(
      "{\"fingerprint\":\"%s\",\"measured_ms\":%.3f,\"scatter_ms\":%.3f,"
      "\"segments\":[",
      JsonEscape(fingerprint).c_str(), measured_ms, scatter_ms);
  for (size_t i = 0; i < segments.size(); ++i) {
    const CriticalSegment& s = segments[i];
    out += StringPrintf(
        "%s{\"node\":%d,\"label\":\"%s\",\"kind\":\"%s\",\"source\":\"%s\","
        "\"ms\":%.3f,\"subplan\":%d}",
        i == 0 ? "" : ",", s.node_id, JsonEscape(s.label).c_str(),
        JsonEscape(s.kind).c_str(), JsonEscape(s.source).c_str(), s.ms,
        s.subplan_index);
  }
  out += "],\"what_ifs\":[";
  for (size_t i = 0; i < what_ifs.size(); ++i) {
    const WhatIfResult& w = what_ifs[i];
    out += StringPrintf(
        "%s{\"scenario\":\"%s\",\"baseline_ms\":%.3f,\"predicted_ms\":%.3f,"
        "\"delta_ms\":%.3f}",
        i == 0 ? "" : ",", JsonEscape(w.scenario.ToString()).c_str(),
        w.baseline_ms, w.predicted_ms, w.delta_ms());
  }
  out += "]}";
  return out;
}

CriticalPath BuildCriticalPath(const PlanProfile& profile,
                               const ScatterTimeline& timeline) {
  CriticalPath cp;
  cp.fingerprint = profile.fingerprint;
  cp.measured_ms = profile.measured_ms;
  cp.scatter_ms = profile.scatter_charged_ms;

  // The concurrent phase first (chronological), ...
  AppendScatterSegments(timeline, &cp.segments);

  // ... then the serial decomposition in plan pre-order. Serial
  // execution has no overlap, so every charge is on the critical path
  // by definition; with the scatter tiling above this reproduces the
  // profiler's accounting identity exactly.
  for (const NodeProfile& n : profile.nodes) {
    if (!n.measured) continue;
    if (std::abs(n.cpu_ms) > kEps) {
      cp.segments.push_back(
          MakeSegment(n.id, n.label, "cpu", "", n.cpu_ms, -1));
    }
    if (!n.concurrent && std::abs(n.wait_ms) > kEps) {
      cp.segments.push_back(MakeSegment(n.id, n.label, "wait",
                                        SourceFromLabel(n.label), n.wait_ms,
                                        -1));
    } else if (n.concurrent && !IsScatterSubmitNode(n) &&
               std::abs(n.wait_ms) > kEps) {
      // A concurrent bind join: its probe waves charged max-not-sum
      // onto this node (they are not in the scatter timeline), and the
      // whole charge blocks the rest of the plan -- on the path.
      cp.segments.push_back(MakeSegment(n.id, n.label, "probe-wait",
                                        SourceFromLabel(n.label), n.wait_ms,
                                        -1));
    }
  }
  return cp;
}

WhatIfResult EvaluateWhatIf(const PlanProfile& profile,
                            const ScatterTimeline& timeline,
                            const WhatIfScenario& scenario) {
  WhatIfResult r;
  r.scenario = scenario;
  // Evaluate the identity change through the same model so deltas are
  // self-consistent even if the model ever diverged from the schedule.
  WhatIfScenario identity;
  identity.kind = WhatIfScenario::Kind::kSourceSpeedup;
  identity.factor = 1.0;  // no source matches "" either
  r.baseline_ms =
      ResolveSerial(profile, identity) + ResolveScatter(timeline, profile,
                                                        identity);
  r.predicted_ms = ResolveSerial(profile, scenario) +
                   ResolveScatter(timeline, profile, scenario);
  return r;
}

std::vector<WhatIfResult> RankWhatIfs(const PlanProfile& profile,
                                      const ScatterTimeline& timeline,
                                      size_t top_k) {
  std::vector<WhatIfScenario> scenarios;

  // Every involved source, 2x faster. std::set iterates in name order.
  std::set<std::string> sources;
  for (const NodeProfile& n : profile.nodes) {
    if (!n.measured) continue;
    const std::string s = SourceFromLabel(n.label);
    if (!s.empty()) sources.insert(ToLower(s));
  }
  for (const ScatterTimelineEvent& e : timeline.events) {
    sources.insert(ToLower(e.source));
    if (e.hedge) sources.insert(ToLower(e.hedge_source));
  }
  for (const std::string& s : sources) {
    WhatIfScenario sc;
    sc.kind = WhatIfScenario::Kind::kSourceSpeedup;
    sc.source = s;
    sc.factor = 2.0;
    scenarios.push_back(std::move(sc));
  }

  for (const ScatterTimelineEvent& e : timeline.events) {
    if (e.hedge_won) {
      WhatIfScenario sc;
      sc.kind = WhatIfScenario::Kind::kDisableHedges;
      scenarios.push_back(std::move(sc));
      break;
    }
  }

  // The three hottest operators by self time, each made free.
  std::vector<const NodeProfile*> hot;
  for (const NodeProfile& n : profile.nodes) {
    if (n.measured && n.self_ms() > kEps) hot.push_back(&n);
  }
  std::stable_sort(hot.begin(), hot.end(),
                   [](const NodeProfile* a, const NodeProfile* b) {
                     if (a->self_ms() != b->self_ms()) {
                       return a->self_ms() > b->self_ms();
                     }
                     return a->id < b->id;
                   });
  for (size_t i = 0; i < hot.size() && i < 3; ++i) {
    WhatIfScenario sc;
    sc.kind = WhatIfScenario::Kind::kOperatorFree;
    sc.node_id = hot[i]->id;
    sc.node_label = hot[i]->label;
    scenarios.push_back(std::move(sc));
  }

  std::vector<WhatIfResult> results;
  results.reserve(scenarios.size());
  for (const WhatIfScenario& sc : scenarios) {
    results.push_back(EvaluateWhatIf(profile, timeline, sc));
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const WhatIfResult& a, const WhatIfResult& b) {
                     if (a.delta_ms() != b.delta_ms()) {
                       return a.delta_ms() > b.delta_ms();
                     }
                     return a.scenario.ToString() < b.scenario.ToString();
                   });
  if (results.size() > top_k) results.resize(top_k);
  return results;
}

void HighlightCriticalPath(const CriticalPath& path,
                           const PlanProfile& profile,
                           tracing::Trace* trace) {
  if (trace == nullptr) return;

  // Map pre-order plan-node ids to their "plan"-category spans: the
  // executor opens one span per evaluated node in pre-order DFS order,
  // so the k-th plan span is the k-th measured node. Scatter segments
  // match submit/hedge spans by their subplan_index arg.
  std::vector<int> plan_spans;
  for (const tracing::Span& s : trace->spans()) {
    if (s.category == "plan") plan_spans.push_back(s.id);
  }

  struct Mark {
    std::string kind;
    double ms = 0;
  };
  std::map<int, Mark> marks;  // span id -> annotation

  auto mark = [&marks](int span_id, const std::string& kind, double ms) {
    Mark& m = marks[span_id];
    if (ms > m.ms) m.kind = kind;
    m.ms += ms;
  };

  // Scatter segments match their submit/hedge span by subplan_index arg.
  for (const CriticalSegment& seg : path.segments) {
    if (seg.subplan_index < 0 ||
        (seg.kind != "scatter-wait" && seg.kind != "hedge-wait")) {
      continue;
    }
    const bool want_hedge = seg.label.rfind("hedge @", 0) == 0;
    const std::string want_category = want_hedge ? "hedge" : "submit";
    const std::string want_index = StringPrintf("%d", seg.subplan_index);
    for (const tracing::Span& s : trace->spans()) {
      if (s.category != want_category) continue;
      for (const auto& [key, value] : s.args) {
        if (key == "subplan_index" && value == want_index) {
          mark(s.id, seg.kind, seg.ms);
          break;
        }
      }
    }
  }

  // Serial segments: the k-th measured profile node (pre-order) is the
  // k-th plan span in creation order -- the executor opens one span per
  // node it evaluates, in pre-order DFS.
  std::map<int, size_t> node_to_span;  // node_id -> plan span index
  size_t next = 0;
  for (const NodeProfile& n : profile.nodes) {
    if (n.measured) node_to_span[n.id] = next++;
  }
  for (const CriticalSegment& seg : path.segments) {
    if (seg.node_id < 0) continue;
    const auto it = node_to_span.find(seg.node_id);
    if (it == node_to_span.end() || it->second >= plan_spans.size()) continue;
    mark(plan_spans[it->second], seg.kind, seg.ms);
  }

  for (const auto& [span_id, m] : marks) {
    trace->AddArg(span_id, "critical", m.kind);
    trace->AddArg(span_id, "critical_ms", m.ms);
  }
}

void CriticalPathRegistry::Record(const CriticalPath& path) {
  ++total_queries_;
  total_ms_ += path.total_ms();

  PlanAgg& plan = plans_[path.fingerprint];
  ++plan.queries;
  plan.critical_ms += path.total_ms();

  std::set<std::pair<std::string, std::string>> seen;
  for (const CriticalSegment& seg : path.segments) {
    const auto key = std::make_pair(seg.subject(), seg.kind);
    BlameAgg& agg = blame_[key];
    agg.ms += seg.ms;
    ++agg.segments;
    if (seen.insert(key).second) ++agg.queries;
  }

  for (const WhatIfResult& w : path.what_ifs) {
    auto& [delta, queries] = suggestions_[w.scenario.ToString()];
    delta += w.delta_ms();
    ++queries;
  }
}

std::vector<CriticalPathRegistry::Bottleneck>
CriticalPathRegistry::TopBottlenecks(size_t top_k) const {
  std::vector<Bottleneck> out;
  out.reserve(blame_.size());
  for (const auto& [key, agg] : blame_) {
    Bottleneck b;
    b.subject = key.first;
    b.kind = key.second;
    b.ms = agg.ms;
    b.segments = agg.segments;
    b.queries = agg.queries;
    b.share = total_ms_ > kEps ? agg.ms / total_ms_ : 0;
    out.push_back(std::move(b));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Bottleneck& a, const Bottleneck& b) {
                     if (a.ms != b.ms) return a.ms > b.ms;
                     if (a.subject != b.subject) return a.subject < b.subject;
                     return a.kind < b.kind;
                   });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<CriticalPathRegistry::Suggestion>
CriticalPathRegistry::TopSuggestions(size_t top_k) const {
  std::vector<Suggestion> out;
  out.reserve(suggestions_.size());
  for (const auto& [description, agg] : suggestions_) {
    Suggestion s;
    s.description = description;
    s.predicted_delta_ms = agg.first;
    s.queries = agg.second;
    out.push_back(std::move(s));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     if (a.predicted_delta_ms != b.predicted_delta_ms) {
                       return a.predicted_delta_ms > b.predicted_delta_ms;
                     }
                     return a.description < b.description;
                   });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::string CriticalPathRegistry::ToText(size_t top_k) const {
  std::string out = StringPrintf(
      "critical paths: %lld quer%s, %zu plan shape%s, %.3f ms total\n",
      static_cast<long long>(total_queries_),
      total_queries_ == 1 ? "y" : "ies", plans_.size(),
      plans_.size() == 1 ? "" : "s", total_ms_);
  out += "top bottlenecks (blame share of aggregated critical-path time):\n";
  const auto bottlenecks = TopBottlenecks(top_k);
  if (bottlenecks.empty()) out += "  (none)\n";
  for (const Bottleneck& b : bottlenecks) {
    const std::string kind = "[" + b.kind + "]";
    out += StringPrintf(
        "  %-15s %12.3f ms  %5.1f%%  %s  (%lld quer%s)\n", kind.c_str(),
        b.ms, 100.0 * b.share, b.subject.c_str(),
        static_cast<long long>(b.queries), b.queries == 1 ? "y" : "ies");
  }
  const auto suggestions = TopSuggestions(top_k);
  if (!suggestions.empty()) {
    out += "what-if suggestions (by predicted total saving):\n";
    for (const Suggestion& s : suggestions) {
      out += StringPrintf("  %-38s %12.3f ms saved  (%lld quer%s)\n",
                          s.description.c_str(), s.predicted_delta_ms,
                          static_cast<long long>(s.queries),
                          s.queries == 1 ? "y" : "ies");
    }
  }
  return out;
}

void RegisterCritpathMetrics(metrics::Registry* registry) {
  if (registry == nullptr) return;
  registry->counter("disco.critpath.queries");
  registry->counter("disco.critpath.segments");
  registry->histogram("disco.critpath.cpu_ms");
  registry->histogram("disco.critpath.wait_ms");
  registry->histogram("disco.critpath.scatter_ms");
  registry->histogram("disco.critpath.dominant_share");
}

void RecordCritpathMetrics(const CriticalPath& path,
                           metrics::Registry* registry) {
  if (registry == nullptr) return;
  registry->counter("disco.critpath.queries")->Increment();
  registry->counter("disco.critpath.segments")
      ->Increment(static_cast<int64_t>(path.segments.size()));
  registry->histogram("disco.critpath.cpu_ms")->Record(path.kind_ms("cpu"));
  registry->histogram("disco.critpath.wait_ms")->Record(path.kind_ms("wait"));
  registry->histogram("disco.critpath.scatter_ms")
      ->Record(path.kind_ms("scatter-wait") + path.kind_ms("hedge-wait") +
               path.kind_ms("probe-wait") + path.kind_ms("stall"));
  const CriticalSegment* top = path.dominant();
  if (top != nullptr && path.measured_ms > kEps) {
    registry->histogram("disco.critpath.dominant_share")
        ->Record(top->ms / path.measured_ms);
  }
}

}  // namespace mediator
}  // namespace disco
