// Parameterized plan cache (docs/PERFORMANCE.md).
//
// Most workloads re-issue the same query shapes with different constants
// ("SELECT ... WHERE salary = ?"). The cache canonicalizes a bound query
// by lifting every selection constant into a numbered slot, and keys the
// winning plan on (canonical form, catalog version, avoid-set). A hit
// clones the cached template, substitutes the current constants back
// into the corresponding select nodes, and skips join enumeration
// entirely -- the mediator re-estimates only the one instantiated plan.
//
// What a hit does NOT redo is the constant-sensitive plan *choice*:
// selectivities may differ between parameter values, so a cached shape
// can be mildly suboptimal for outlier constants. This is the standard
// parameterized-plan trade-off; the invalidation hooks (re-registration,
// equivalence declarations, breaker transitions, latched drift events)
// plus the catalog-version key bound how stale a template can get.
// Deliberately NOT keyed on RuleRegistry::epoch(): history feedback
// bumps the epoch after every execution, which would make the cache
// useless by design.

#ifndef DISCO_MEDIATOR_PLAN_CACHE_H_
#define DISCO_MEDIATOR_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator.h"
#include "common/hashing.h"
#include "common/value.h"
#include "query/binder.h"

namespace disco {
namespace mediator {

/// A bound query with its selection constants lifted out.
struct CanonicalQuery {
  /// Shape text: relations, predicates with `?N` placeholders, joins,
  /// and the query tail. Identical for queries differing only in
  /// constants.
  std::string text;
  /// The lifted constants, in slot order.
  std::vector<Value> constants;
  /// Slot identities used to locate the select node carrying each
  /// constant inside a plan (collection, attribute, comparison op).
  struct Slot {
    std::string collection;
    std::string attribute;
    algebra::CmpOp op = algebra::CmpOp::kEq;
  };
  std::vector<Slot> slots;
};

/// Lifts the constants out of `q`. Deterministic: slot order follows
/// relation order, then predicate order.
CanonicalQuery Canonicalize(const query::BoundQuery& q);

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t invalidations = 0;  ///< entries dropped by invalidation hooks
  int64_t evictions = 0;      ///< entries dropped by LRU capacity
  size_t size = 0;
};

/// LRU cache of winning plan templates. Single-threaded (mediator
/// control path); all iteration orders are deterministic.
class PlanCache {
 public:
  /// capacity 0 disables the cache (every call is a miss, nothing is
  /// stored).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Looks up the template for (canon.text, catalog_version, avoid_key)
  /// and instantiates it with canon.constants. Returns null on miss.
  /// `avoid_key` is the caller's canonical rendering of the avoided
  /// source set (sorted, lower-cased, comma-joined).
  std::unique_ptr<algebra::Operator> Lookup(const CanonicalQuery& canon,
                                            int64_t catalog_version,
                                            const std::string& avoid_key);

  /// Stores `plan` as the template for the key. The plan must be the
  /// winner for exactly `canon` (same constants); each slot's constant
  /// is located in the plan now so a later Lookup can substitute new
  /// values. Silently refuses when a slot cannot be located (never
  /// caches a template it could not re-parameterize).
  void Insert(const CanonicalQuery& canon, int64_t catalog_version,
              const std::string& avoid_key, const algebra::Operator& plan);

  /// Drops every template whose plan touches `source` (submit or bind
  /// join). Hook for re-registration, breaker transitions, and latched
  /// drift events.
  void InvalidateSource(const std::string& source);

  /// Drops everything (equivalence declarations change the shape of the
  /// answerable plan space).
  void InvalidateAll();

  const PlanCacheStats& stats() const { return stats_; }
  size_t size() const { return index_.size(); }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    std::string key;
    std::unique_ptr<algebra::Operator> plan;
    /// Child-index path from the root to the select node of each slot.
    std::vector<std::vector<int>> slot_paths;
    /// Lower-cased sources the plan submits to (for InvalidateSource).
    std::vector<std::string> sources;
  };

  static std::string MakeKey(const std::string& text, int64_t catalog_version,
                             const std::string& avoid_key);

  /// LRU list, most recent first; the map points into it.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator, StringHash,
                     StringEq>
      index_;
  size_t capacity_;
  PlanCacheStats stats_;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_PLAN_CACHE_H_
