#include "mediator/exec.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "algebra/plan_printer.h"
#include "common/str_util.h"

namespace disco {
namespace mediator {

namespace {

using algebra::OpKind;
using algebra::Operator;
using sources::Rel;
using storage::Tuple;

double Log2N(size_t n) {
  return std::log2(static_cast<double>(std::max<size_t>(n, 2)));
}

bool TupleLess(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    Result<int> c = a[i].Compare(b[i]);
    if (!c.ok()) continue;
    if (*c != 0) return *c < 0;
  }
  return a.size() < b.size();
}

/// Approximate wire size of a tuple in bytes (shared by the serial
/// submit loop and the scatter tasks).
int64_t TupleWireBytes(const Tuple& t) {
  int64_t bytes = 0;
  for (const Value& v : t) {
    switch (v.type()) {
      case ValueType::kNull:
        bytes += 1;
        break;
      case ValueType::kBool:
        bytes += 2;
        break;
      case ValueType::kInt64:
      case ValueType::kDouble:
        bytes += 9;
        break;
      case ValueType::kString:
        bytes += 5 + static_cast<int64_t>(v.AsString().size());
        break;
    }
  }
  return bytes;
}

}  // namespace

std::string ExecWarning::ToString() const {
  std::string out = "source '" + source + "': " + message;
  if (attempts > 0) {
    out += StringPrintf(" (%d attempt%s)", attempts, attempts == 1 ? "" : "s");
  }
  if (!breaker.empty()) {
    out += " [breaker " + breaker + "]";
  }
  return out;
}

int64_t MediatorExecutor::TupleBytes(const storage::Tuple& t) {
  return TupleWireBytes(t);
}

Result<ExecResult> MediatorExecutor::Execute(const Operator& plan) {
  elapsed_ms_ = 0;
  cpu_ms_ = 0;
  wait_ms_ = 0;
  scatter_charged_ms_ = 0;
  scatter_timeline_ = ScatterTimeline{};
  rows_emitted_ = 0;
  subqueries_.clear();
  warnings_.clear();
  failed_sources_.clear();
  guard_stats_ = GuardStats{};
  precomputed_.clear();
  retries_used_ = 0;
  precomputed_bonus_ms_ = 0;
  precomputed_concurrent_ = false;
  trace_lane_base_ = 0;
  bind_probe_lane_seq_ = 0;
  // Re-seed so repeated executions of the same plan are bit-identical.
  rng_ = Rng(exec_options_.jitter_seed);
  DISCO_RETURN_NOT_OK(plan.CheckWellFormed());

  // Scatter phase: when the federation layer is active, every
  // statically-known submit runs (conceptually) concurrently here, and
  // Eval below consumes the gathered outcomes instead of re-submitting.
  if (exec_options_.federation.active()) ScatterGather(plan);

  Result<Rel> eval = Eval(plan);
  precomputed_.clear();  // drop outcomes an aborted eval never consumed
  DISCO_RETURN_NOT_OK(eval.status());
  Rel rel = std::move(*eval);

  ExecResult out;
  out.columns = std::move(rel.columns);
  out.tuples = std::move(rel.tuples);
  out.measured_ms = elapsed_ms_;
  out.subqueries = std::move(subqueries_);
  out.warnings = std::move(warnings_);
  return out;
}

Result<wrapper::Wrapper*> MediatorExecutor::WrapperFor(
    const std::string& source) const {
  auto wit = wrappers_.find(ToLower(source));
  if (wit == wrappers_.end()) {
    for (const auto& [name, w] : wrappers_) {
      if (EqualsIgnoreCase(name, source)) return w;
    }
    return Status::NotFound("no registered wrapper named '" + source + "'");
  }
  return wit->second;
}

void MediatorExecutor::NoteFailedSource(const std::string& source_lower) {
  for (const std::string& s : failed_sources_) {
    if (s == source_lower) return;
  }
  failed_sources_.push_back(source_lower);
}

void MediatorExecutor::AddWarning(ExecWarning warning) {
  BumpCounter("disco.exec.warnings");
  warnings_.push_back(std::move(warning));
}

std::string MediatorExecutor::BreakerStateNow(
    const std::string& source_lower) const {
  if (health_ == nullptr) return "";
  return BreakerStateToString(health_->StateAt(source_lower, Now()));
}

void MediatorExecutor::BumpCounter(const char* name, int64_t delta) {
  if (metrics_ != nullptr) metrics_->counter(name)->Increment(delta);
}

void MediatorExecutor::ApplyGuardReport(const GuardReport& report,
                                        const std::string& source_lower,
                                        int attempts,
                                        const std::string& breaker,
                                        int subplan_index,
                                        std::vector<ExecWarning>* warning_sink) {
  guard_stats_.Absorb(report);
  BumpCounter("disco.guard.batches");
  if (!report.any()) return;
  BumpCounter("disco.guard.malformed_batches");
  if (report.rows_quarantined > 0) {
    BumpCounter("disco.guard.quarantined_rows", report.rows_quarantined);
  }
  if (report.truncated) BumpCounter("disco.guard.truncated_streams");
  if (trace_ != nullptr) {
    trace_->Instant("result guard quarantine @" + source_lower, "guard");
  }
  ExecWarning w{source_lower, report.Message(), attempts, breaker};
  w.subplan_index = subplan_index;
  if (warning_sink != nullptr) {
    warning_sink->push_back(std::move(w));
  } else {
    AddWarning(std::move(w));
  }
}

Result<sources::ExecutionResult> MediatorExecutor::SubmitToSource(
    const std::string& source, const Operator& subplan) {
  DISCO_ASSIGN_OR_RETURN(wrapper::Wrapper * w, WrapperFor(source));
  const std::string key = ToLower(source);
  const RetryPolicy& retry = exec_options_.retry;
  const int max_attempts = std::max(1, retry.max_attempts);

  BumpCounter("disco.exec.submits");
  tracing::ScopedSpan span(trace_, "submit @" + key, "submit");
  const std::string breaker_before = BreakerStateNow(key);
  if (!breaker_before.empty()) span.Arg("breaker_before", breaker_before);
  const double submit_start_ms = elapsed_ms_;

  Status last;
  int attempts = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (health_ != nullptr && !health_->AllowSubmit(key, Now())) {
      BumpCounter("disco.exec.breaker_rejections");
      if (trace_ != nullptr) {
        trace_->Instant("breaker rejected submit @" + key, "breaker");
      }
      if (last.ok()) {
        last = Status::Unavailable("source '" + source +
                                   "': circuit breaker open");
      }
      break;  // the breaker tripped: further retries are pointless
    }
    attempts = attempt;
    BumpCounter("disco.exec.submit_attempts");
    if (attempt > 1) BumpCounter("disco.exec.submit_retries");
    Result<sources::ExecutionResult> result = w->Execute(subplan);
    if (!result.ok() && !result.status().IsUnavailable() &&
        !result.status().IsExecutionError()) {
      // Not a source-availability failure (e.g. a malformed subplan):
      // retrying cannot help and the breaker must not trip.
      span.Arg("outcome", "error");
      return result.status().WithContext("source '" + source + "'");
    }
    const bool timed_out = result.ok() && retry.attempt_timeout_ms > 0 &&
                           result->total_ms > retry.attempt_timeout_ms;
    if (result.ok() && !timed_out) {
      // Communication: one round trip plus shipping the subanswer.
      int64_t bytes = 0;
      for (const Tuple& t : result->tuples) bytes += TupleBytes(t);
      ChargeWait(result->total_ms + params_.ms_msg_latency +
                 params_.ms_per_net_byte * static_cast<double>(bytes));
      if (health_ != nullptr) health_->RecordSuccess(key, Now());

      // Result guard: validate the subanswer against the catalog shape
      // *after* paying to ship it (corrupted bytes still crossed the
      // wire), quarantining malformed rows before anything downstream
      // sees them. Persistent malformation reaches the breaker as a
      // lying-source signal.
      if (exec_options_.guard_responses) {
        GuardExpectation expect;
        if (catalog_ != nullptr) {
          expect = MakeGuardExpectation(subplan, *catalog_);
        }
        const GuardReport guard = ValidateSubanswer(expect, &*result);
        ApplyGuardReport(guard, key, attempt, BreakerStateNow(key),
                         /*subplan_index=*/-1);
        if (health_ != nullptr) {
          if (guard.any()) {
            health_->RecordMalformed(key, Now(), guard.rows_quarantined);
          } else {
            health_->RecordWellFormed(key, Now());
          }
        }
      }

      SubqueryRecord record;
      record.source = source;
      record.subplan = subplan.Clone();
      record.source_ms = result->total_ms;
      record.attempts = attempt;
      const auto n = static_cast<double>(result->tuples.size());
      record.measured = costmodel::CostVector::Full(
          n, static_cast<double>(bytes),
          n > 0 ? static_cast<double>(bytes) / n : 0, result->first_tuple_ms,
          n > 1 ? (result->total_ms - result->first_tuple_ms) / (n - 1) : 0,
          result->total_ms);
      subqueries_.push_back(std::move(record));

      if (attempt > 1) {
        AddWarning(ExecWarning{
            key,
            StringPrintf("recovered after %d failed attempt%s", attempt - 1,
                         attempt == 2 ? "" : "s"),
            attempt, BreakerStateNow(key)});
      }
      last_submit_attempts_ = attempts;
      span.Arg("attempts", int64_t{attempts});
      span.Arg("rows", static_cast<int64_t>(result->tuples.size()));
      span.Arg("source_ms", result->total_ms);
      span.Arg("outcome", "ok");
      const std::string breaker_after = BreakerStateNow(key);
      if (!breaker_after.empty() && breaker_after != breaker_before) {
        span.Arg("breaker_after", breaker_after);
      }
      if (metrics_ != nullptr) {
        metrics_->histogram("disco.submit.ms")
            ->Record(elapsed_ms_ - submit_start_ms);
        metrics_->histogram("disco.submit.rows")
            ->Record(static_cast<double>(result->tuples.size()));
      }
      if (profile_ != nullptr) {
        profile_->Observe(key, elapsed_ms_ - submit_start_ms);
      }
      return result;
    }
    // Failed attempt: a timeout charges the budget it burned; an error
    // charges the round trip that discovered it.
    if (timed_out) {
      ChargeWait(params_.ms_msg_latency + retry.attempt_timeout_ms);
      last = Status::Unavailable(StringPrintf(
          "source '%s': attempt timed out (%.1f ms > %.1f ms budget)",
          source.c_str(), result->total_ms, retry.attempt_timeout_ms));
    } else {
      ChargeWait(params_.ms_msg_latency);
      last = result.status().WithContext("source '" + source + "'");
    }
    if (health_ != nullptr) health_->RecordFailure(key, Now());
    if (trace_ != nullptr) {
      int mark = trace_->Instant(
          timed_out ? "attempt timed out" : "attempt failed", "submit");
      trace_->AddArg(mark, "attempt", int64_t{attempt});
    }
    if (attempt < max_attempts) {
      // The per-query retry budget is shared across every submit (and
      // hedge) of this execution: once spent, no source gets another
      // attempt, so a multi-source flap cannot multiply into a storm.
      if (retry.query_retry_budget > 0 &&
          retries_used_ >= retry.query_retry_budget) {
        BumpCounter("disco.mediator.retry_budget.exhausted");
        last = Status::Unavailable(last.message() +
                                   " (query retry budget exhausted)");
        break;
      }
      ++retries_used_;
      ChargeWait(retry.BackoffMs(attempt, &rng_));
    }
  }

  BumpCounter("disco.exec.submit_failures");
  NoteFailedSource(key);
  std::string msg = last.message();
  if (attempts > 1) {
    msg += StringPrintf(" (gave up after %d attempts)", attempts);
  }
  last_submit_attempts_ = attempts;
  last_failure_ = ExecWarning{key, msg, attempts, BreakerStateNow(key)};
  span.Arg("attempts", int64_t{attempts});
  span.Arg("outcome", "unavailable");
  const std::string breaker_after = BreakerStateNow(key);
  if (!breaker_after.empty() && breaker_after != breaker_before) {
    span.Arg("breaker_after", breaker_after);
  }
  return Status::Unavailable(msg);
}

Result<Rel> MediatorExecutor::EvalBindJoin(const Operator& op) {
  // Fail fast on an unknown wrapper before evaluating the outer side.
  DISCO_ASSIGN_OR_RETURN(wrapper::Wrapper * w, WrapperFor(op.source));
  if (catalog_ == nullptr) {
    return Status::ExecutionError(
        "bind join needs a catalog for the probed collection's schema");
  }
  DISCO_ASSIGN_OR_RETURN(CatalogEntry entry,
                         catalog_->Collection(op.collection));

  DISCO_ASSIGN_OR_RETURN(Rel left, Eval(op.child(0)));
  DISCO_ASSIGN_OR_RETURN(int lcol,
                         left.ColumnIndex(op.join_pred->left_attribute));

  Rel out;
  out.columns = left.columns;
  for (const AttributeDef& a : entry.schema.attributes()) {
    out.columns.push_back(a.name);
  }

  // Deduplicate outer keys up front on *typed* Value equality -- the
  // string rendering would alias or miss numerically equal keys that
  // render differently (1 vs 1.0). One cache-lookup comparison is
  // charged per outer tuple.
  std::vector<Value> keys;                       // first-appearance order
  std::vector<size_t> key_of(left.tuples.size());
  {
    struct KeyHash {
      size_t operator()(const Value& v) const { return v.Hash(); }
    };
    struct KeyEq {
      bool operator()(const Value& a, const Value& b) const { return a == b; }
    };
    std::unordered_map<Value, size_t, KeyHash, KeyEq> index;
    ChargeCpu(static_cast<double>(left.tuples.size()) * params_.ms_med_cmp);
    for (size_t i = 0; i < left.tuples.size(); ++i) {
      const Value& key = left.tuples[i][static_cast<size_t>(lcol)];
      auto [it, inserted] = index.emplace(key, keys.size());
      if (inserted) keys.push_back(key);
      key_of[i] = it->second;
    }
  }
  const int64_t cache_hits = static_cast<int64_t>(left.tuples.size()) -
                             static_cast<int64_t>(keys.size());

  // Per-key probe answers, indexed like `keys`.
  std::vector<std::vector<Tuple>> answers(keys.size());
  const FederationOptions& fed = exec_options_.federation;
  int64_t probes = 0, batches = 0;

  if (fed.bind_batch_size <= 1 && fed.bind_parallelism <= 1) {
    // Original serial path, kept byte-identical at the default knobs:
    // one equality probe per distinct key, in first-appearance order.
    for (size_t k = 0; k < keys.size(); ++k) {
      std::unique_ptr<Operator> probe = algebra::Select(
          algebra::Scan(op.collection), op.join_pred->right_attribute,
          algebra::CmpOp::kEq, keys[k]);
      // Probe failures abort the query even under allow_partial: a
      // missing probe answer would silently change the join result.
      DISCO_ASSIGN_OR_RETURN(sources::ExecutionResult result,
                             SubmitToSource(op.source, *probe));
      answers[k] = std::move(result.tuples);
      ++probes;
      ++batches;
    }
  } else {
    DISCO_RETURN_NOT_OK(
        RunBindProbeWaves(op, w, keys, &answers, &probes, &batches));
  }

  // Merge in outer-tuple order; cache-hit rows pay the same per-row
  // merge comparison as freshly probed rows.
  int64_t emitted = 0;
  for (size_t i = 0; i < left.tuples.size(); ++i) {
    const Tuple& lt = left.tuples[i];
    for (const Tuple& rt : answers[key_of[i]]) {
      Tuple joined = lt;
      joined.insert(joined.end(), rt.begin(), rt.end());
      out.tuples.push_back(std::move(joined));
      ++emitted;
    }
  }
  ChargeCpu(static_cast<double>(emitted) * params_.ms_med_cmp);

  if (probes > 0) BumpCounter("disco.exec.bindjoin.probes", probes);
  if (batches > 0) BumpCounter("disco.exec.bindjoin.batches", batches);
  if (cache_hits > 0) {
    BumpCounter("disco.exec.bindjoin.cache_hits", cache_hits);
  }

  // The wave path charged its probes max-not-sum, like the scatter
  // phase: mark this node concurrent (with no extra bonus time -- the
  // waves already charged the clock inside this node's span) so the
  // profiler keeps its self-wait out of the serial wait total.
  if ((fed.bind_batch_size > 1 || fed.bind_parallelism > 1) &&
      !keys.empty()) {
    precomputed_bonus_ms_ = 0;
    precomputed_concurrent_ = true;
  }
  return out;
}

Result<Rel> MediatorExecutor::EvalSubmit(const Operator& op) {
  // Scatter-gather: this submit already ran during the scatter phase --
  // surface its gathered outcome (time was charged max-not-sum there,
  // so nothing is charged here).
  auto pre = precomputed_.find(&op);
  if (pre != precomputed_.end()) {
    PrecomputedSubmit pc = std::move(pre->second);
    precomputed_.erase(pre);
    for (ExecWarning& w : pc.warnings) AddWarning(std::move(w));
    last_submit_attempts_ = pc.attempts;
    precomputed_bonus_ms_ = pc.duration_ms;
    precomputed_concurrent_ = true;
    if (node_measures_ != nullptr) {
      NodeMeasure& m = (*node_measures_)[&op];
      m.attempts = pc.attempts;
      m.source_ms = pc.source_ms;
      m.first_row_ms = pc.first_tuple_ms;
    }
    if (!pc.status.ok()) {
      if (pc.note_failed_source) NoteFailedSource(pc.failure.source);
      last_failure_ = std::move(pc.failure);
      return pc.status;
    }
    return std::move(pc.rel);
  }

  Result<sources::ExecutionResult> result =
      SubmitToSource(op.source, op.child(0));
  if (node_measures_ != nullptr) {
    NodeMeasure& m = (*node_measures_)[&op];
    m.attempts = last_submit_attempts_;
    if (result.ok()) {
      m.source_ms = result->total_ms;
      m.first_row_ms = result->first_tuple_ms;
    }
  }
  DISCO_RETURN_NOT_OK(result.status());
  Rel rel;
  rel.columns = std::move(result->columns);
  rel.tuples = std::move(result->tuples);
  return rel;
}

Result<Rel> MediatorExecutor::Eval(const Operator& op) {
  // Instrumentation wrapper: one span per plan node, plus the node's
  // measured inclusive time and output cardinality.
  if (trace_ == nullptr && node_measures_ == nullptr &&
      metrics_ == nullptr) {
    return EvalNode(op);
  }
  const double start_ms = elapsed_ms_;
  const double start_cpu_ms = cpu_ms_;
  const double start_wait_ms = wait_ms_;
  tracing::ScopedSpan span(trace_, algebra::NodeLabel(op), "plan");
  Result<Rel> result = EvalNode(op);
  if (result.ok()) {
    span.Arg("rows", static_cast<int64_t>(result->tuples.size()));
  } else {
    span.Arg("outcome", "failed");
  }
  if (metrics_ != nullptr) {
    const std::string family = std::string("disco.exec.operator.") +
                               algebra::OpKindToString(op.kind);
    metrics_->counter(family + ".evals")->Increment();
    if (result.ok()) {
      metrics_->histogram(family + ".rows")
          ->Record(static_cast<double>(result->tuples.size()));
    }
  }
  if (node_measures_ != nullptr) {
    NodeMeasure& m = (*node_measures_)[&op];
    // A precomputed submit charged nothing during eval; its scatter-phase
    // response time is folded back in so EXPLAIN ANALYZE stays honest.
    m.inclusive_ms = elapsed_ms_ - start_ms + precomputed_bonus_ms_;
    m.cpu_ms = cpu_ms_ - start_cpu_ms;
    m.wait_ms = wait_ms_ - start_wait_ms;
    m.scatter_wait_ms = precomputed_bonus_ms_;
    m.concurrent = precomputed_concurrent_;
    m.ok = result.ok();
    m.rows = result.ok() ? static_cast<int64_t>(result->tuples.size()) : -1;
  }
  if (trace_ != nullptr) {
    // Counter-event tracks: cumulative CPU/wait split and rows produced,
    // sampled at every node completion (Perfetto renders "C" events as
    // counter tracks alongside the span lanes).
    trace_->CounterEvent("disco.exec.cpu_ms", cpu_ms_);
    trace_->CounterEvent("disco.exec.wait_ms", wait_ms_);
    if (result.ok()) {
      rows_emitted_ += static_cast<int64_t>(result->tuples.size());
      trace_->CounterEvent("disco.exec.rows",
                           static_cast<double>(rows_emitted_));
    }
  }
  precomputed_bonus_ms_ = 0;
  precomputed_concurrent_ = false;
  return result;
}

Result<Rel> MediatorExecutor::EvalNode(const Operator& op) {
  switch (op.kind) {
    case OpKind::kSubmit:
      return EvalSubmit(op);

    case OpKind::kBindJoin:
      return EvalBindJoin(op);

    case OpKind::kScan:
      return Status::ExecutionError(
          "scan(" + op.collection +
          ") reached the mediator executor outside a submit");

    case OpKind::kSelect: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(int col,
                             rel.ColumnIndex(op.select_pred->attribute));
      ChargeCpu(static_cast<double>(rel.tuples.size()) * params_.ms_med_cmp);
      Rel out;
      out.columns = rel.columns;
      for (Tuple& t : rel.tuples) {
        DISCO_ASSIGN_OR_RETURN(
            bool keep, algebra::EvalPredicate(t[static_cast<size_t>(col)],
                                              *op.select_pred));
        if (keep) out.tuples.push_back(std::move(t));
      }
      return out;
    }

    case OpKind::kProject: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      std::vector<int> cols;
      for (const std::string& a : op.project_attrs) {
        DISCO_ASSIGN_OR_RETURN(int c, rel.ColumnIndex(a));
        cols.push_back(c);
      }
      ChargeCpu(static_cast<double>(rel.tuples.size()) * params_.ms_med_cmp);
      Rel out;
      out.columns = op.project_attrs;
      for (const Tuple& t : rel.tuples) {
        Tuple nt;
        for (int c : cols) nt.push_back(t[static_cast<size_t>(c)]);
        out.tuples.push_back(std::move(nt));
      }
      return out;
    }

    case OpKind::kSort: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(int col, rel.ColumnIndex(op.sort_attr));
      ChargeCpu(static_cast<double>(rel.tuples.size()) *
                Log2N(rel.tuples.size()) * params_.ms_med_cmp);
      Status status = Status::OK();
      std::stable_sort(rel.tuples.begin(), rel.tuples.end(),
                       [&](const Tuple& a, const Tuple& b) {
                         Result<int> c = a[static_cast<size_t>(col)].Compare(
                             b[static_cast<size_t>(col)]);
                         if (!c.ok()) {
                           if (status.ok()) status = c.status();
                           return false;
                         }
                         return op.sort_ascending ? *c < 0 : *c > 0;
                       });
      DISCO_RETURN_NOT_OK(status);
      return rel;
    }

    case OpKind::kDedup: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      ChargeCpu(static_cast<double>(rel.tuples.size()) *
                Log2N(rel.tuples.size()) * params_.ms_med_cmp);
      std::stable_sort(rel.tuples.begin(), rel.tuples.end(), TupleLess);
      Rel out;
      out.columns = rel.columns;
      for (Tuple& t : rel.tuples) {
        if (out.tuples.empty() || !(out.tuples.back() == t)) {
          out.tuples.push_back(std::move(t));
        }
      }
      return out;
    }

    case OpKind::kAggregate: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      ChargeCpu(static_cast<double>(rel.tuples.size()) * params_.ms_med_cmp);
      int agg_col = -1;
      if (!op.agg_attr.empty()) {
        DISCO_ASSIGN_OR_RETURN(agg_col, rel.ColumnIndex(op.agg_attr));
      }
      std::vector<int> group_cols;
      for (const std::string& g : op.group_by) {
        DISCO_ASSIGN_OR_RETURN(int c, rel.ColumnIndex(g));
        group_cols.push_back(c);
      }
      struct Acc {
        int64_t count = 0;
        double sum = 0;
        std::optional<Value> min, max;
      };
      std::map<std::string, std::pair<Tuple, Acc>> groups;
      for (const Tuple& t : rel.tuples) {
        std::string key;
        Tuple vals;
        for (int c : group_cols) {
          key += t[static_cast<size_t>(c)].ToString();
          key += '\x1f';
          vals.push_back(t[static_cast<size_t>(c)]);
        }
        auto& [gvals, acc] = groups[key];
        gvals = vals;
        ++acc.count;
        if (agg_col >= 0) {
          const Value& v = t[static_cast<size_t>(agg_col)];
          if (v.is_numeric()) acc.sum += v.AsDouble();
          if (!acc.min.has_value()) {
            acc.min = v;
            acc.max = v;
          } else {
            Result<int> lo = v.Compare(*acc.min);
            Result<int> hi = v.Compare(*acc.max);
            if (lo.ok() && *lo < 0) acc.min = v;
            if (hi.ok() && *hi > 0) acc.max = v;
          }
        }
      }
      if (groups.empty() && op.group_by.empty()) {
        groups[""] = {Tuple{}, Acc{}};
      }
      Rel out;
      out.columns = op.group_by;
      std::string agg_name = algebra::AggFuncToString(op.agg_func);
      agg_name +=
          "(" + (op.agg_attr.empty() ? std::string("*") : op.agg_attr) + ")";
      out.columns.push_back(agg_name);
      for (auto& [key, entry] : groups) {
        auto& [vals, acc] = entry;
        Tuple t = vals;
        switch (op.agg_func) {
          case algebra::AggFunc::kCount:
            t.push_back(Value(acc.count));
            break;
          case algebra::AggFunc::kSum:
            t.push_back(Value(acc.sum));
            break;
          case algebra::AggFunc::kAvg:
            t.push_back(Value(
                acc.count > 0 ? acc.sum / static_cast<double>(acc.count)
                              : 0.0));
            break;
          case algebra::AggFunc::kMin:
            t.push_back(acc.min.value_or(Value::Null()));
            break;
          case algebra::AggFunc::kMax:
            t.push_back(acc.max.value_or(Value::Null()));
            break;
        }
        out.tuples.push_back(std::move(t));
      }
      return out;
    }

    case OpKind::kJoin: {
      DISCO_ASSIGN_OR_RETURN(Rel left, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(Rel right, Eval(op.child(1)));
      DISCO_ASSIGN_OR_RETURN(int lcol,
                             left.ColumnIndex(op.join_pred->left_attribute));
      DISCO_ASSIGN_OR_RETURN(int rcol,
                             right.ColumnIndex(op.join_pred->right_attribute));
      Rel out;
      out.columns = left.columns;
      out.columns.insert(out.columns.end(), right.columns.begin(),
                         right.columns.end());
      // Sort-merge (charging both sorts and the merge).
      ChargeCpu(static_cast<double>(left.tuples.size()) *
                    Log2N(left.tuples.size()) * params_.ms_med_cmp +
                static_cast<double>(right.tuples.size()) *
                    Log2N(right.tuples.size()) * params_.ms_med_cmp);
      auto sort_by = [&](Rel* rel, int col) {
        std::stable_sort(rel->tuples.begin(), rel->tuples.end(),
                         [col](const Tuple& a, const Tuple& b) {
                           Result<int> c = a[static_cast<size_t>(col)].Compare(
                               b[static_cast<size_t>(col)]);
                           return c.ok() && *c < 0;
                         });
      };
      sort_by(&left, lcol);
      sort_by(&right, rcol);
      size_t i = 0, j = 0;
      while (i < left.tuples.size() && j < right.tuples.size()) {
        ChargeCpu(params_.ms_med_cmp);
        DISCO_ASSIGN_OR_RETURN(
            int c, left.tuples[i][static_cast<size_t>(lcol)].Compare(
                       right.tuples[j][static_cast<size_t>(rcol)]));
        if (c < 0) {
          ++i;
        } else if (c > 0) {
          ++j;
        } else {
          for (size_t j2 = j; j2 < right.tuples.size(); ++j2) {
            DISCO_ASSIGN_OR_RETURN(
                int c2, left.tuples[i][static_cast<size_t>(lcol)].Compare(
                            right.tuples[j2][static_cast<size_t>(rcol)]));
            if (c2 != 0) break;
            Tuple joined = left.tuples[i];
            joined.insert(joined.end(), right.tuples[j2].begin(),
                          right.tuples[j2].end());
            out.tuples.push_back(std::move(joined));
          }
          ++i;
        }
      }
      return out;
    }

    case OpKind::kUnion: {
      // Graceful degradation: a union branch is the one place a source
      // failure does not change the semantics of what remains -- the
      // other branch is still a correct (partial) subanswer. Under
      // allow_partial a branch whose source stayed unavailable is
      // dropped with a warning; any other failure aborts as before.
      auto tolerable = [&](const Status& s) {
        return exec_options_.allow_partial && s.IsUnavailable();
      };
      Result<Rel> left = Eval(op.child(0));
      if (!left.ok() && !tolerable(left.status())) return left.status();
      Result<Rel> right = Eval(op.child(1));
      if (!right.ok() && !tolerable(right.status())) return right.status();
      if (!left.ok() && !right.ok()) {
        return left.status();  // nothing to degrade to
      }
      if (!left.ok() || !right.ok()) {
        const Status& dropped =
            left.ok() ? right.status() : left.status();
        AddWarning(ExecWarning{last_failure_.source,
                               "union branch dropped: " + dropped.message(),
                               last_failure_.attempts,
                               last_failure_.breaker,
                               last_failure_.subplan_index});
        return left.ok() ? std::move(*left) : std::move(*right);
      }
      if (left->columns.size() != right->columns.size()) {
        return Status::ExecutionError("union inputs have different arity");
      }
      ChargeCpu(static_cast<double>(right->tuples.size()) *
                params_.ms_med_cmp);
      Rel out = std::move(*left);
      for (Tuple& t : right->tuples) out.tuples.push_back(std::move(t));
      return out;
    }
  }
  return Status::Internal("bad operator kind");
}

namespace {

/// One breaker-relevant outcome observed inside a scatter task, replayed
/// into the shared registry at gather time in global timestamp order.
struct HealthEvent {
  /// kAllowed replays an AllowSubmit that returned true: the shared
  /// registry must take the same half-open probe admissions as the
  /// task's private copy, or probe bookkeeping (single-probe gating,
  /// flap-damped cooldowns) would drift between them.
  enum Kind { kSuccess, kFailure, kRejected, kAllowed, kMalformed,
              kWellFormed };
  Kind kind = kSuccess;
  double at_rel_ms = 0;  ///< relative to scatter start
  int64_t rows = 0;      ///< kMalformed: rows the guard quarantined
};

/// Everything one scatter (or hedge) task produced for one submit.
/// Written only by the owning task (the slot discipline of
/// common/thread_pool); read at gather on the main thread.
struct TaskOutcome {
  Status status;
  sources::ExecutionResult exec;  ///< valid when status is ok
  int64_t bytes = 0;              ///< wire size of the subanswer
  double start_rel_ms = 0;        ///< relative to scatter start
  double end_rel_ms = 0;
  int attempts = 0;
  int retries = 0;
  int rejections = 0;
  bool budget_exhausted = false;
  /// Genuine source-availability exhaustion (replan/breaker relevant);
  /// false for hard errors, which retrying cannot help.
  bool availability_failure = false;
  std::vector<ExecWarning> warnings;  ///< recovery warnings, task order
  ExecWarning failure;                ///< filled when status is not ok
  std::vector<HealthEvent> events;
  GuardReport guard;          ///< result-guard findings on `exec`
  bool guard_checked = false; ///< guard ran on this answer
};

/// The serial submit loop (MediatorExecutor::SubmitToSource) transplanted
/// onto task-local state: same breaker gate, retry policy, timeout
/// handling, charging rules, and message text, but clocked by the task's
/// relative clock and gated against a private health registry (null =
/// no gating, like a serial run without a registry).
TaskOutcome RunScatterSubmit(wrapper::Wrapper* w, const std::string& source,
                             const std::string& key,
                             const Operator& subplan,
                             const MediatorCostParams& params,
                             const RetryPolicy& retry,
                             SourceHealthRegistry* health, Rng* rng,
                             double* clock_rel_ms, double scatter_abs_ms,
                             int* budget_remaining,
                             int max_attempts_override,
                             const GuardExpectation* guard) {
  TaskOutcome out;
  out.start_rel_ms = *clock_rel_ms;
  const int max_attempts = max_attempts_override > 0
                               ? max_attempts_override
                               : std::max(1, retry.max_attempts);
  auto breaker_str = [&]() {
    return health != nullptr
               ? std::string(BreakerStateToString(
                     health->StateAt(key, scatter_abs_ms + *clock_rel_ms)))
               : std::string();
  };

  Status last;
  int attempts = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (health != nullptr &&
        !health->AllowSubmit(key, scatter_abs_ms + *clock_rel_ms)) {
      ++out.rejections;
      out.events.push_back({HealthEvent::kRejected, *clock_rel_ms});
      if (last.ok()) {
        last = Status::Unavailable("source '" + source +
                                   "': circuit breaker open");
      }
      break;  // the breaker tripped: further retries are pointless
    }
    if (health != nullptr) {
      out.events.push_back({HealthEvent::kAllowed, *clock_rel_ms});
    }
    attempts = attempt;
    Result<sources::ExecutionResult> result = w->Execute(subplan);
    if (!result.ok() && !result.status().IsUnavailable() &&
        !result.status().IsExecutionError()) {
      // Hard error (e.g. malformed subplan): no charge, no health
      // report, not replan-eligible -- mirror the serial early return.
      out.status = result.status().WithContext("source '" + source + "'");
      out.attempts = attempts;
      out.retries = attempts - 1;
      out.end_rel_ms = *clock_rel_ms;
      out.failure = ExecWarning{key, out.status.message(), attempts, ""};
      return out;
    }
    const bool timed_out = result.ok() && retry.attempt_timeout_ms > 0 &&
                           result->total_ms > retry.attempt_timeout_ms;
    if (result.ok() && !timed_out) {
      int64_t bytes = 0;
      for (const Tuple& t : result->tuples) bytes += TupleWireBytes(t);
      *clock_rel_ms += result->total_ms + params.ms_msg_latency +
                       params.ms_per_net_byte * static_cast<double>(bytes);
      if (health != nullptr) {
        health->RecordSuccess(key, scatter_abs_ms + *clock_rel_ms);
      }
      out.events.push_back({HealthEvent::kSuccess, *clock_rel_ms});
      if (guard != nullptr) {
        // Validate on the task (quarantine mutates the answer before it
        // is gathered); the private registry sees the malformation now,
        // the shared one at replay.
        out.guard = ValidateSubanswer(*guard, &*result);
        out.guard_checked = true;
        if (out.guard.any()) {
          if (health != nullptr) {
            health->RecordMalformed(key, scatter_abs_ms + *clock_rel_ms,
                                    out.guard.rows_quarantined);
          }
          out.events.push_back({HealthEvent::kMalformed, *clock_rel_ms,
                                out.guard.rows_quarantined});
        } else {
          if (health != nullptr) {
            health->RecordWellFormed(key, scatter_abs_ms + *clock_rel_ms);
          }
          out.events.push_back({HealthEvent::kWellFormed, *clock_rel_ms});
        }
      }
      if (attempt > 1) {
        out.warnings.push_back(ExecWarning{
            key,
            StringPrintf("recovered after %d failed attempt%s", attempt - 1,
                         attempt == 2 ? "" : "s"),
            attempt, breaker_str()});
      }
      out.exec = std::move(*result);
      out.bytes = bytes;
      out.attempts = attempt;
      out.retries = attempt - 1;
      out.end_rel_ms = *clock_rel_ms;
      return out;
    }
    if (timed_out) {
      *clock_rel_ms += params.ms_msg_latency + retry.attempt_timeout_ms;
      last = Status::Unavailable(StringPrintf(
          "source '%s': attempt timed out (%.1f ms > %.1f ms budget)",
          source.c_str(), result->total_ms, retry.attempt_timeout_ms));
    } else {
      *clock_rel_ms += params.ms_msg_latency;
      last = result.status().WithContext("source '" + source + "'");
    }
    if (health != nullptr) {
      health->RecordFailure(key, scatter_abs_ms + *clock_rel_ms);
    }
    out.events.push_back({HealthEvent::kFailure, *clock_rel_ms});
    if (attempt < max_attempts) {
      if (retry.query_retry_budget > 0 && *budget_remaining <= 0) {
        out.budget_exhausted = true;
        last = Status::Unavailable(last.message() +
                                   " (query retry budget exhausted)");
        break;
      }
      --*budget_remaining;
      ++out.retries;
      *clock_rel_ms += retry.BackoffMs(attempt, rng);
    }
  }

  out.availability_failure = true;
  std::string msg = last.message();
  if (attempts > 1) {
    msg += StringPrintf(" (gave up after %d attempts)", attempts);
  }
  out.status = Status::Unavailable(msg);
  out.attempts = attempts;
  out.end_rel_ms = *clock_rel_ms;
  out.failure = ExecWarning{key, msg, attempts, breaker_str()};
  return out;
}

}  // namespace

Status MediatorExecutor::RunBindProbeWaves(
    const Operator& op, wrapper::Wrapper* w, const std::vector<Value>& keys,
    std::vector<std::vector<Tuple>>* answers, int64_t* probes,
    int64_t* batches) {
  const FederationOptions& fed = exec_options_.federation;
  const RetryPolicy& retry = exec_options_.retry;
  const double kInf = std::numeric_limits<double>::infinity();
  const int batch_size = std::max(1, fed.bind_batch_size);
  const int parallelism = std::max(1, fed.bind_parallelism);
  const std::string key = ToLower(op.source);
  const std::string& right_attr = op.join_pred->right_attribute;
  // Capability gate: wrappers without in_select get each batch
  // decomposed into per-key equality selects (still one probe lane).
  const bool in_capable = w->ExportCapabilities().in_select;
  const bool guard_on = exec_options_.guard_responses;

  // ---- deterministic fixed-size batches over the distinct keys --------
  struct Batch {
    std::vector<size_t> key_slots;  ///< indices into `keys`
    std::vector<std::unique_ptr<Operator>> subplans;  ///< 1 (IN) or per-key
    std::vector<GuardExpectation> guards;
  };
  std::vector<Batch> all;
  for (size_t start = 0; start < keys.size();
       start += static_cast<size_t>(batch_size)) {
    Batch b;
    const size_t end =
        std::min(keys.size(), start + static_cast<size_t>(batch_size));
    for (size_t k = start; k < end; ++k) b.key_slots.push_back(k);
    if (in_capable && b.key_slots.size() > 1) {
      std::vector<Value> vals;
      vals.reserve(b.key_slots.size());
      for (size_t k : b.key_slots) vals.push_back(keys[k]);
      b.subplans.push_back(algebra::SelectIn(algebra::Scan(op.collection),
                                             right_attr, std::move(vals)));
    } else {
      for (size_t k : b.key_slots) {
        b.subplans.push_back(algebra::Select(algebra::Scan(op.collection),
                                             right_attr, algebra::CmpOp::kEq,
                                             keys[k]));
      }
    }
    if (guard_on) {
      for (const auto& p : b.subplans) {
        b.guards.push_back(MakeGuardExpectation(*p, *catalog_));
      }
    }
    all.push_back(std::move(b));
  }
  *batches = static_cast<int64_t>(all.size());

  const int lane_base = 1 + trace_lane_base_;
  int lanes_named = 0;
  const bool budgeted = retry.query_retry_budget > 0;
  int64_t waves = 0;

  size_t next = 0;
  while (next < all.size()) {
    // Per-query deadline: a wave never starts past the budget, and one
    // that runs past it aborts the whole bind join (below) -- never a
    // partial join.
    if (fed.deadline_ms > 0 && elapsed_ms_ >= fed.deadline_ms) {
      BumpCounter("disco.exec.bindjoin.deadline_aborts");
      const std::string msg = StringPrintf(
          "query deadline (%.1f ms) expired before bind-join probe wave",
          fed.deadline_ms);
      last_failure_ = ExecWarning{key, msg, 0, BreakerStateNow(key)};
      return Status::Unavailable("source '" + key + "': " + msg);
    }
    // Breaker single-probe rule: a breaker that is not fully closed
    // admits at most one probe per cooldown, so the wave collapses to a
    // single lane instead of racing several admissions at once.
    int width = parallelism;
    if (health_ != nullptr &&
        health_->StateAt(key, Now()) != BreakerState::kClosed) {
      width = 1;
    }
    const size_t wave_begin = next;
    const size_t wave_end =
        std::min(all.size(), wave_begin + static_cast<size_t>(width));
    next = wave_end;
    ++waves;

    // ---- run the wave's lanes -----------------------------------------
    // Every probe targets the one probed wrapper, which is not
    // thread-safe (same-wrapper submits stay serial on the scatter path
    // for the same reason), so lanes execute serially in batch order.
    // Concurrency is simulated: each lane starts at the wave epoch on
    // its own relative clock, and the wave charges max-not-sum.
    const double wave_start_ms = elapsed_ms_;
    const double wave_trace_ms = trace_ != nullptr ? trace_->now_ms() : 0;
    const double wave_abs_ms = Now();
    struct Lane {
      double clock_rel = 0;
      std::vector<TaskOutcome> outcomes;  ///< one per batch subplan
      int failed = -1;  ///< index of the failing subplan (-1 = none)
      int retries = 0;
      std::unique_ptr<SourceHealthRegistry> health;
    };
    std::vector<Lane> lanes(wave_end - wave_begin);
    for (size_t li = 0; li < lanes.size(); ++li) {
      Lane& lane = lanes[li];
      Batch& b = all[wave_begin + li];
      if (health_ != nullptr) {
        lane.health =
            std::make_unique<SourceHealthRegistry>(health_->options());
        lane.health->Adopt(key, health_->Health(key));
      }
      // Probe-lane RNG stream, disjoint from the scatter/hedge streams.
      Rng rng(exec_options_.jitter_seed ^
              (0xC2B2AE3D27D4EB4FULL * (++bind_probe_lane_seq_)));
      int budget_remaining =
          budgeted ? std::max(0, retry.query_retry_budget - retries_used_)
                   : std::numeric_limits<int>::max();
      for (size_t pi = 0; pi < b.subplans.size(); ++pi) {
        TaskOutcome o = RunScatterSubmit(
            w, op.source, key, *b.subplans[pi], params_, retry,
            lane.health.get(), &rng, &lane.clock_rel, wave_abs_ms,
            &budget_remaining, /*max_attempts_override=*/0,
            guard_on ? &b.guards[pi] : nullptr);
        lane.retries += o.retries;
        const bool failed = !o.status.ok();
        lane.outcomes.push_back(std::move(o));
        if (failed) {
          lane.failed = static_cast<int>(pi);
          break;  // the rest of this lane's keys are moot: the join aborts
        }
      }
    }

    // ---- resolve the wave: earliest failure clips its siblings --------
    double fatal_rel = kInf;
    int fatal_lane = -1;
    for (size_t li = 0; li < lanes.size(); ++li) {
      if (lanes[li].failed < 0) continue;
      if (lanes[li].clock_rel < fatal_rel) {
        fatal_rel = lanes[li].clock_rel;
        fatal_lane = static_cast<int>(li);
      }
    }
    double span = 0;
    for (const Lane& lane : lanes) {
      span = std::max(span, std::min(lane.clock_rel, fatal_rel));
    }
    // Deadline clipping: the wave stops charging at the budget and the
    // join aborts; work past the deadline (answers, health events) is
    // abandoned exactly like an expired scatter submit.
    bool deadline_hit = false;
    double cut = fatal_rel;
    if (fed.deadline_ms > 0 && wave_start_ms + span > fed.deadline_ms) {
      deadline_hit = true;
      span = std::max(0.0, fed.deadline_ms - wave_start_ms);
      cut = span;
    }
    ChargeWait(span);
    scatter_charged_ms_ += span;

    // Shared-registry replay in global timestamp order (stable on ties:
    // lane order), clipped at the cancellation/deadline cut.
    if (health_ != nullptr) {
      struct Replay {
        double at_rel;
        HealthEvent::Kind kind;
        int64_t rows;
      };
      std::vector<Replay> replays;
      for (size_t li = 0; li < lanes.size(); ++li) {
        double lane_cut = cut;
        if (!deadline_hit && static_cast<int>(li) == fatal_lane) {
          lane_cut = kInf;  // the fatal lane's own events all happened
        }
        for (const TaskOutcome& o : lanes[li].outcomes) {
          for (const HealthEvent& ev : o.events) {
            if (ev.at_rel_ms <= lane_cut) {
              replays.push_back({ev.at_rel_ms, ev.kind, ev.rows});
            }
          }
        }
      }
      std::stable_sort(replays.begin(), replays.end(),
                       [](const Replay& a, const Replay& b) {
                         return a.at_rel < b.at_rel;
                       });
      for (const Replay& r : replays) {
        const double at = wave_abs_ms + r.at_rel;
        switch (r.kind) {
          case HealthEvent::kSuccess:
            health_->RecordSuccess(key, at);
            break;
          case HealthEvent::kFailure:
            health_->RecordFailure(key, at);
            break;
          case HealthEvent::kRejected:
          case HealthEvent::kAllowed:
            (void)health_->AllowSubmit(key, at);
            break;
          case HealthEvent::kMalformed:
            health_->RecordMalformed(key, at, r.rows);
            break;
          case HealthEvent::kWellFormed:
            health_->RecordWellFormed(key, at);
            break;
        }
      }
    }

    // Reconcile the shared retry budget (optimistic split, like scatter).
    int64_t wave_submits = 0, wave_attempts = 0, wave_retries = 0;
    int64_t wave_rejections = 0, wave_budget_exhaustions = 0;
    for (Lane& lane : lanes) {
      retries_used_ += lane.retries;
      for (const TaskOutcome& o : lane.outcomes) {
        ++wave_submits;
        wave_attempts += o.attempts;
        wave_retries += o.retries;
        wave_rejections += o.rejections;
        if (o.budget_exhausted) ++wave_budget_exhaustions;
      }
    }
    BumpCounter("disco.exec.bindjoin.waves");
    BumpCounter("disco.exec.submits", wave_submits);
    BumpCounter("disco.exec.submit_attempts", wave_attempts);
    if (wave_retries > 0) {
      BumpCounter("disco.exec.submit_retries", wave_retries);
    }
    if (wave_rejections > 0) {
      BumpCounter("disco.exec.breaker_rejections", wave_rejections);
    }
    if (wave_budget_exhaustions > 0) {
      BumpCounter("disco.mediator.retry_budget.exhausted",
                  wave_budget_exhaustions);
    }

    // ---- commit, lane order (deterministic for any pool size) ---------
    Status fatal_status;
    ExecWarning fatal_warning;
    bool fatal_note = false;
    for (size_t li = 0; li < lanes.size(); ++li) {
      Lane& lane = lanes[li];
      Batch& b = all[wave_begin + li];
      if (trace_ != nullptr && static_cast<int>(li) >= lanes_named) {
        trace_->SetLaneName(lane_base + static_cast<int>(li),
                            "bindjoin @" + key);
        lanes_named = static_cast<int>(li) + 1;
      }
      for (size_t pi = 0; pi < lane.outcomes.size(); ++pi) {
        TaskOutcome& o = lane.outcomes[pi];
        const bool is_fatal = static_cast<int>(li) == fatal_lane &&
                              static_cast<int>(pi) == lane.failed;
        // A probe is committed only when it finished before the wave's
        // cut; later answers were cancelled/expired with the wave.
        const bool committed = o.status.ok() && o.end_rel_ms <= cut;
        if (trace_ != nullptr) {
          const double shown_end = std::min(o.end_rel_ms, cut);
          int sid = trace_->AddCompleteSpan(
              "probe @" + key, "bindjoin-probe",
              wave_trace_ms + std::min(o.start_rel_ms, shown_end),
              wave_trace_ms + shown_end, lane_base + static_cast<int>(li));
          trace_->AddArg(sid, "batch",
                         static_cast<int64_t>(wave_begin + li));
          trace_->AddArg(sid, "keys",
                         static_cast<int64_t>(b.key_slots.size()));
          trace_->AddArg(sid, "attempts", int64_t{o.attempts});
          const char* outcome =
              committed ? "ok"
                        : is_fatal && !deadline_hit
                              ? (o.availability_failure ? "unavailable"
                                                        : "error")
                              : deadline_hit ? "deadline-expired"
                                             : o.status.ok() ? "cancelled"
                                                             : "unavailable";
          trace_->AddArg(sid, "outcome", outcome);
          if (committed) {
            trace_->AddArg(sid, "rows",
                           static_cast<int64_t>(o.exec.tuples.size()));
          }
        }
        if (committed) {
          for (ExecWarning& wmsg : o.warnings) AddWarning(std::move(wmsg));
          if (o.guard_checked) {
            ApplyGuardReport(o.guard, key, o.attempts, BreakerStateNow(key),
                             /*subplan_index=*/-1);
          }
          if (metrics_ != nullptr) {
            metrics_->histogram("disco.submit.ms")
                ->Record(o.end_rel_ms - o.start_rel_ms);
            metrics_->histogram("disco.submit.rows")
                ->Record(static_cast<double>(o.exec.tuples.size()));
          }
          if (profile_ != nullptr) {
            profile_->Observe(key, o.end_rel_ms - o.start_rel_ms);
          }
          SubqueryRecord record;
          record.source = op.source;
          const Operator& subplan = *b.subplans[pi];
          record.subplan = subplan.Clone();
          record.source_ms = o.exec.total_ms;
          record.attempts = o.attempts;
          const auto n = static_cast<double>(o.exec.tuples.size());
          record.measured = costmodel::CostVector::Full(
              n, static_cast<double>(o.bytes),
              n > 0 ? static_cast<double>(o.bytes) / n : 0,
              o.exec.first_tuple_ms,
              n > 1 ? (o.exec.total_ms - o.exec.first_tuple_ms) / (n - 1)
                    : 0,
              o.exec.total_ms);
          subqueries_.push_back(std::move(record));
          ++*probes;

          // Distribute the batch answer onto its keys. An IN probe's
          // rows interleave keys, so each row is matched (typed
          // equality) against the batch's key set; a per-key probe maps
          // straight through.
          if (b.subplans.size() == 1 && b.key_slots.size() > 1) {
            Rel shape;
            shape.columns = o.exec.columns;
            DISCO_ASSIGN_OR_RETURN(int pcol, shape.ColumnIndex(right_attr));
            ChargeCpu(static_cast<double>(o.exec.tuples.size()) *
                      params_.ms_med_cmp);
            for (Tuple& t : o.exec.tuples) {
              const Value& v = t[static_cast<size_t>(pcol)];
              for (size_t k : b.key_slots) {
                if (v == keys[k]) {
                  (*answers)[k].push_back(std::move(t));
                  break;
                }
              }
            }
          } else {
            (*answers)[b.key_slots[pi]] = std::move(o.exec.tuples);
          }
        } else if (is_fatal && !deadline_hit) {
          BumpCounter("disco.exec.submit_failures");
          fatal_status = o.status;
          fatal_warning = o.failure;
          fatal_note = o.availability_failure;
        }
      }
    }

    if (deadline_hit) {
      BumpCounter("disco.exec.bindjoin.deadline_aborts");
      const std::string msg = StringPrintf(
          "query deadline (%.1f ms) expired with a bind-join probe wave "
          "in flight",
          fed.deadline_ms);
      last_failure_ = ExecWarning{key, msg, 0, BreakerStateNow(key)};
      return Status::Unavailable("source '" + key + "': " + msg);
    }
    if (fatal_lane >= 0) {
      // Probe failures abort the query even under allow_partial: a
      // missing probe answer would silently change the join result.
      if (fatal_note) NoteFailedSource(key);
      fatal_warning.breaker = BreakerStateNow(key);
      last_failure_ = fatal_warning;
      return fatal_status;
    }
  }
  (void)waves;
  return Status::OK();
}

void MediatorExecutor::ScatterGather(const Operator& plan) {
  const FederationOptions& fed = exec_options_.federation;
  const RetryPolicy& retry = exec_options_.retry;
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<ScatterSubmit> submits =
      CollectScatterSubmits(plan, exec_options_.allow_partial);
  if (submits.empty()) return;

  // ---- group submits by wrapper, first-appearance order ---------------
  // Submits to the same wrapper stay serial within one group (preserving
  // the wrapper's internal call order and fault-injection RNG stream);
  // distinct groups run concurrently.
  struct Group {
    std::string source;  ///< as written in the plan (for messages)
    std::string key;     ///< lower-cased wrapper key
    wrapper::Wrapper* w = nullptr;
    std::vector<size_t> slots;  ///< indices into submits/outcomes
  };
  std::vector<Group> groups;
  std::map<std::string, size_t> group_index;
  std::vector<int> group_of_slot(submits.size(), -1);
  for (size_t i = 0; i < submits.size(); ++i) {
    Result<wrapper::Wrapper*> w = WrapperFor(submits[i].op->source);
    if (!w.ok()) continue;  // EvalSubmit will surface the NotFound serially
    const std::string key = ToLower(submits[i].op->source);
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      it = group_index.emplace(key, groups.size()).first;
      Group g;
      g.source = submits[i].op->source;
      g.key = key;
      g.w = *w;
      groups.push_back(std::move(g));
    }
    groups[it->second].slots.push_back(i);
    group_of_slot[i] = static_cast<int>(it->second);
  }
  if (groups.empty()) return;

  // Guard expectations are derived on the main thread (catalog access
  // stays off the workers); the tasks only consume them.
  const bool guard_on = exec_options_.guard_responses;
  std::vector<GuardExpectation> slot_guard(guard_on ? submits.size() : 0);
  if (guard_on && catalog_ != nullptr) {
    for (size_t i = 0; i < submits.size(); ++i) {
      if (group_of_slot[i] < 0) continue;
      slot_guard[i] = MakeGuardExpectation(submits[i].op->child(0), *catalog_);
    }
  }

  const double scatter_abs_ms = Now();
  const double trace_start_ms = trace_ != nullptr ? trace_->now_ms() : 0;
  if (trace_ != nullptr) {
    // Name the concurrency lanes so Perfetto renders source groups
    // instead of bare tids (Chrome metadata events, tid = 1 + lane).
    for (size_t g = 0; g < groups.size(); ++g) {
      trace_->SetLaneName(1 + static_cast<int>(g),
                          "scatter @" + groups[g].key);
    }
  }

  // Private per-group breaker registries seeded from the shared one:
  // tasks gate and record against their own copy, and the shared
  // registry sees a deterministic timestamp-ordered replay at gather.
  std::vector<std::unique_ptr<SourceHealthRegistry>> private_health(
      groups.size());
  if (health_ != nullptr) {
    for (size_t g = 0; g < groups.size(); ++g) {
      private_health[g] =
          std::make_unique<SourceHealthRegistry>(health_->options());
      private_health[g]->Adopt(groups[g].key, health_->Health(groups[g].key));
    }
  }

  // Optimistic budget split: each group sees the budget remaining at
  // scatter start; consumption is reconciled below.
  const bool budgeted = retry.query_retry_budget > 0;
  const int budget_at_start =
      budgeted ? std::max(0, retry.query_retry_budget - retries_used_)
               : std::numeric_limits<int>::max();

  std::vector<TaskOutcome> outcomes(submits.size());
  auto run_group = [&](int gi) {
    Group& g = groups[static_cast<size_t>(gi)];
    SourceHealthRegistry* ph = private_health[static_cast<size_t>(gi)].get();
    // Per-group RNG: seeded from the jitter seed and the group's position
    // so backoff jitter is deterministic for any pool size.
    Rng rng(exec_options_.jitter_seed ^
            (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(gi + 1)));
    double clock_rel = 0;
    int budget_remaining = budget_at_start;
    for (size_t slot : g.slots) {
      outcomes[slot] = RunScatterSubmit(
          g.w, g.source, g.key, submits[slot].op->child(0), params_, retry,
          ph, &rng, &clock_rel, scatter_abs_ms, &budget_remaining,
          /*max_attempts_override=*/0,
          guard_on ? &slot_guard[slot] : nullptr);
    }
  };
  const bool concurrent = federation_pool_ != nullptr && fed.threads > 1 &&
                          groups.size() > 1;
  if (concurrent) {
    federation_pool_->ParallelFor(static_cast<int>(groups.size()), run_group);
  } else {
    for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
      run_group(gi);
    }
  }

  int phase_a_retries = 0;
  for (const TaskOutcome& o : outcomes) phase_a_retries += o.retries;

  // ---- hedge decisions (main thread, subplan-index order) -------------
  // A primary that ran longer than the adaptive threshold gets a backup
  // submit to a DeclareEquivalent replica; the earlier answer wins and
  // the loser is cancelled. Decisions are taken here, deterministically,
  // from the completed primary timeline.
  struct HedgeTask {
    size_t slot = 0;          ///< primary submit slot
    std::string source;       ///< replica source (lower-cased)
    wrapper::Wrapper* w = nullptr;
    std::unique_ptr<algebra::Operator> subplan;
    GuardExpectation guard;        ///< derived from `subplan`
    double nominal_start_rel = 0;  ///< primary start + threshold
    double threshold_ms = 0;
  };
  std::vector<HedgeTask> hedges;
  int hedge_budget = budgeted
                         ? std::max(0, budget_at_start - phase_a_retries)
                         : std::numeric_limits<int>::max();
  if (fed.hedge && profile_ != nullptr && catalog_ != nullptr) {
    for (size_t i = 0; i < submits.size(); ++i) {
      if (group_of_slot[i] < 0) continue;
      const Group& g = groups[static_cast<size_t>(group_of_slot[i])];
      const TaskOutcome& prim = outcomes[i];
      // Hard errors are about semantics, not latency: never hedge them.
      if (!prim.status.ok() && !prim.availability_failure) continue;
      if (profile_->count(g.key) < fed.hedge_min_samples) continue;
      const double threshold =
          std::max(profile_->QuantileMs(g.key), fed.hedge_min_ms);
      if (threshold <= 0) continue;
      if (prim.end_rel_ms - prim.start_rel_ms <= threshold) continue;
      if (hedge_budget <= 0) {
        BumpCounter("disco.mediator.retry_budget.exhausted");
        continue;  // hedges share the per-query retry budget
      }
      HedgePlan hp = MakeHedgePlan(
          submits[i].op->child(0), *catalog_, g.key,
          [&](const std::string& candidate) {
            if (wrappers_.find(candidate) == wrappers_.end()) return false;
            // Only fully-closed replicas may serve a hedge: a half-open
            // breaker admits exactly one probe per cooldown, and the
            // hedge path cannot coordinate with a concurrent primary
            // group that may be probing the same source.
            return health_ == nullptr ||
                   health_->StateAt(candidate, scatter_abs_ms) ==
                       BreakerState::kClosed;
          });
      if (!hp.viable()) continue;
      --hedge_budget;
      HedgeTask task;
      task.slot = i;
      task.source = hp.source;
      task.w = wrappers_.find(hp.source)->second;
      if (guard_on) task.guard = MakeGuardExpectation(*hp.subplan, *catalog_);
      task.subplan = std::move(hp.subplan);
      task.nominal_start_rel = prim.start_rel_ms + threshold;
      task.threshold_ms = threshold;
      hedges.push_back(std::move(task));
    }
  }

  // ---- hedge phase: backup submits, grouped by replica wrapper --------
  std::vector<TaskOutcome> hedge_outcomes(hedges.size());
  std::vector<std::vector<size_t>> hedge_groups;
  {
    std::map<std::string, size_t> hg_index;
    for (size_t h = 0; h < hedges.size(); ++h) {
      auto it = hg_index.find(hedges[h].source);
      if (it == hg_index.end()) {
        it = hg_index.emplace(hedges[h].source, hedge_groups.size()).first;
        hedge_groups.emplace_back();
      }
      hedge_groups[it->second].push_back(h);
    }
  }
  if (trace_ != nullptr) {
    for (size_t hg = 0; hg < hedge_groups.size(); ++hg) {
      trace_->SetLaneName(
          1 + static_cast<int>(groups.size()) + static_cast<int>(hg),
          "hedge @" + hedges[hedge_groups[hg][0]].source);
    }
  }
  if (!hedges.empty()) {
    std::vector<std::unique_ptr<SourceHealthRegistry>> hedge_health(
        hedge_groups.size());
    if (health_ != nullptr) {
      for (size_t g = 0; g < hedge_groups.size(); ++g) {
        const std::string& key = hedges[hedge_groups[g][0]].source;
        hedge_health[g] =
            std::make_unique<SourceHealthRegistry>(health_->options());
        hedge_health[g]->Adopt(key, health_->Health(key));
      }
    }
    auto run_hedge_group = [&](int gi) {
      // Seed domain offset by the primary group count so hedge jitter
      // never collides with a primary group's stream.
      Rng rng(exec_options_.jitter_seed ^
              (0x9E3779B97F4A7C15ULL *
               static_cast<uint64_t>(groups.size() + 1 +
                                     static_cast<size_t>(gi))));
      double clock_rel = 0;
      int unlimited = std::numeric_limits<int>::max();  // pre-paid at launch
      for (size_t h : hedge_groups[static_cast<size_t>(gi)]) {
        HedgeTask& t = hedges[h];
        if (clock_rel < t.nominal_start_rel) clock_rel = t.nominal_start_rel;
        hedge_outcomes[h] = RunScatterSubmit(
            t.w, t.source, t.source, *t.subplan, params_, retry,
            hedge_health[static_cast<size_t>(gi)].get(), &rng, &clock_rel,
            scatter_abs_ms, &unlimited, /*max_attempts_override=*/1,
            guard_on ? &t.guard : nullptr);
      }
    };
    if (concurrent && hedge_groups.size() > 1) {
      federation_pool_->ParallelFor(static_cast<int>(hedge_groups.size()),
                                    run_hedge_group);
    } else {
      for (int gi = 0; gi < static_cast<int>(hedge_groups.size()); ++gi) {
        run_hedge_group(gi);
      }
    }
  }

  // Bind-join probe lanes (if the plan has a bind join) render above
  // every scatter and hedge lane this execution used.
  trace_lane_base_ =
      static_cast<int>(groups.size() + hedge_groups.size());

  // ---- gather: combine, clip to the deadline, propagate cancellation --
  std::vector<int> hedge_for_slot(submits.size(), -1);
  for (size_t h = 0; h < hedges.size(); ++h) {
    hedge_for_slot[hedges[h].slot] = static_cast<int>(h);
  }

  /// The per-submit effective outcome after hedging/deadline/cancellation.
  struct Eff {
    bool ran = false;
    Status status;
    TaskOutcome* answer = nullptr;  ///< whose tuples to keep when ok
    double start_rel = 0, end_rel = 0;
    int attempts = 0;
    double source_ms = 0;
    int64_t bytes = 0;
    std::string answer_key;  ///< source that produced the kept answer
    const algebra::Operator* record_plan = nullptr;  ///< for SubqueryRecord
    std::vector<ExecWarning> warnings;
    ExecWarning failure;
    bool note_failed = false;
    bool expired = false;
    bool cancelled = false;
    bool hedge_won = false;
  };
  std::vector<Eff> eff(submits.size());
  // Replay cutoffs: health events after a submit was cancelled/expired
  // never happened as far as the shared registry is concerned.
  std::vector<double> prim_cut(submits.size(), kInf);
  std::vector<double> hedge_cut(submits.size(), kInf);
  int64_t hedges_won = 0, hedges_cancelled = 0;

  for (size_t i = 0; i < submits.size(); ++i) {
    if (group_of_slot[i] < 0) continue;
    const Group& g = groups[static_cast<size_t>(group_of_slot[i])];
    TaskOutcome& prim = outcomes[i];
    Eff& e = eff[i];
    e.ran = true;
    e.status = prim.status;
    e.answer = &prim;
    e.answer_key = g.key;
    e.start_rel = prim.start_rel_ms;
    e.end_rel = prim.end_rel_ms;
    e.attempts = prim.attempts;
    e.bytes = prim.bytes;
    e.record_plan = &submits[i].op->child(0);
    e.warnings = std::move(prim.warnings);
    e.failure = prim.failure;
    e.note_failed = prim.availability_failure;
    if (prim.status.ok()) e.source_ms = prim.exec.total_ms;

    const int h = hedge_for_slot[i];
    if (h < 0) continue;
    TaskOutcome& ho = hedge_outcomes[static_cast<size_t>(h)];
    const HedgeTask& task = hedges[static_cast<size_t>(h)];
    const bool prim_ok = prim.status.ok();
    const bool hedge_ok = ho.status.ok();
    if (prim_ok && (!hedge_ok || prim.end_rel_ms <= ho.end_rel_ms)) {
      // Primary answered first: cancel the hedge if it is still in
      // flight (its late answer -- and health events -- are discarded).
      if (ho.end_rel_ms > prim.end_rel_ms) {
        ++hedges_cancelled;
        hedge_cut[i] = prim.end_rel_ms;
      }
      e.warnings.push_back(ExecWarning{
          g.key,
          StringPrintf("hedged to replica '%s' after %.1f ms; "
                       "primary answered first",
                       task.source.c_str(), task.threshold_ms),
          0, ""});
    } else if (hedge_ok) {
      ++hedges_won;
      if (!prim_ok || prim.end_rel_ms > ho.end_rel_ms) {
        // The slower (or failed) primary is the cancelled loser.
        if (prim_ok) ++hedges_cancelled;
        prim_cut[i] = std::min(prim_cut[i], ho.end_rel_ms);
      }
      e.hedge_won = true;
      e.status = Status::OK();
      e.answer = &ho;
      e.answer_key = task.source;
      e.end_rel = ho.end_rel_ms;
      e.attempts = prim.attempts + ho.attempts;
      e.bytes = ho.bytes;
      e.source_ms = ho.exec.total_ms;
      e.record_plan = task.subplan.get();
      e.note_failed = false;
      e.warnings.push_back(ExecWarning{
          g.key,
          StringPrintf("hedged to replica '%s' after %.1f ms; replica "
                       "answered first (%.1f ms vs %.1f ms)",
                       task.source.c_str(), task.threshold_ms,
                       ho.end_rel_ms - prim.start_rel_ms,
                       prim.end_rel_ms - prim.start_rel_ms),
          0, ""});
    } else {
      // Both failed: the submit is over when the later of the two gave
      // up; the primary's failure is the one reported.
      e.end_rel = std::max(prim.end_rel_ms, ho.end_rel_ms);
      e.warnings.push_back(ExecWarning{task.source,
                                       "hedge submit failed: " +
                                           ho.status.message(),
                                       ho.attempts, ""});
    }
  }

  // Deadline pass: submits still unfinished when the per-query budget
  // expires are abandoned. Deadline expiry is the mediator's decision,
  // not the source's fault -- it records no breaker failure and does not
  // make the source replan-eligible.
  int64_t expired_submits = 0;
  if (fed.deadline_ms > 0) {
    for (size_t i = 0; i < submits.size(); ++i) {
      Eff& e = eff[i];
      if (!e.ran || e.end_rel <= fed.deadline_ms) continue;
      ++expired_submits;
      const bool started = e.start_rel < fed.deadline_ms;
      const std::string key =
          groups[static_cast<size_t>(group_of_slot[i])].key;
      const std::string msg = StringPrintf(
          "query deadline (%.1f ms) expired %s", fed.deadline_ms,
          started ? "with the submit in flight"
                  : "before the submit started");
      e.expired = true;
      e.status = Status::Unavailable("source '" + key + "': " + msg);
      e.failure = ExecWarning{key, msg, e.attempts, ""};
      e.answer = nullptr;  // a partial subanswer is discarded, not kept
      e.note_failed = false;
      e.start_rel = std::min(e.start_rel, fed.deadline_ms);
      e.end_rel = fed.deadline_ms;
      prim_cut[i] = std::min(prim_cut[i], fed.deadline_ms);
      hedge_cut[i] = std::min(hedge_cut[i], fed.deadline_ms);
    }
  }

  // Cancellation pass: the earliest non-droppable failure is fatal to
  // the whole query, so every submit still in flight at that moment is
  // cancelled -- no point finishing work the query can never use.
  double fatal_rel = kInf;
  size_t fatal_slot = submits.size();
  for (size_t i = 0; i < submits.size(); ++i) {
    if (!eff[i].ran || eff[i].status.ok()) continue;
    if (submits[i].droppable) continue;
    if (eff[i].end_rel < fatal_rel) {
      fatal_rel = eff[i].end_rel;
      fatal_slot = i;
    }
  }
  int64_t cancellations = 0;
  if (fatal_slot < submits.size()) {
    const std::string& fatal_key =
        groups[static_cast<size_t>(group_of_slot[fatal_slot])].key;
    // Make sure the true culprit reaches failed_sources_ even if eval
    // aborts on a cancelled sibling before consuming the fatal submit.
    if (eff[fatal_slot].note_failed) NoteFailedSource(fatal_key);
    for (size_t i = 0; i < submits.size(); ++i) {
      Eff& e = eff[i];
      if (!e.ran || i == fatal_slot || e.end_rel <= fatal_rel) continue;
      ++cancellations;
      const std::string key =
          groups[static_cast<size_t>(group_of_slot[i])].key;
      const std::string msg = StringPrintf(
          "cancelled at %.1f ms: submit to '%s' failed", fatal_rel,
          fatal_key.c_str());
      e.cancelled = true;
      e.expired = false;
      e.status = Status::Unavailable("source '" + key + "': " + msg);
      e.failure = ExecWarning{key, msg, e.attempts, ""};
      e.answer = nullptr;
      e.note_failed = false;
      e.start_rel = std::min(e.start_rel, fatal_rel);
      e.end_rel = fatal_rel;
      prim_cut[i] = std::min(prim_cut[i], fatal_rel);
      hedge_cut[i] = std::min(hedge_cut[i], fatal_rel);
    }
  }

  // ---- commit: trace, metrics, history, precomputed outcomes ----------
  // Satellite guarantee: everything below iterates submits in
  // subplan-index order, so gathered warnings, spans, and subquery
  // records come out in the same deterministic order for any pool size.
  std::vector<size_t> order(submits.size());
  for (size_t i = 0; i < submits.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return submits[a].index < submits[b].index;
  });

  double total_rel = 0;
  for (const Eff& e : eff) {
    if (e.ran) total_rel = std::max(total_rel, e.end_rel);
  }

  tracing::ScopedSpan scatter_span(trace_, "scatter", "federation");
  int64_t scattered = 0, total_attempts = 0, total_retries = 0;
  int64_t total_rejections = 0, failures = 0, budget_exhaustions = 0;
  for (size_t i : order) {
    if (group_of_slot[i] < 0) continue;
    ++scattered;
    Eff& e = eff[i];
    const int gi = group_of_slot[i];
    const int h = hedge_for_slot[i];
    const TaskOutcome& prim = outcomes[i];
    total_attempts += prim.attempts;
    total_retries += prim.retries;
    total_rejections += prim.rejections;
    if (prim.budget_exhausted) ++budget_exhaustions;
    if (h >= 0) {
      const TaskOutcome& ho = hedge_outcomes[static_cast<size_t>(h)];
      total_attempts += ho.attempts;
      total_rejections += ho.rejections;
    }
    if (!e.status.ok() && e.note_failed) ++failures;

    const char* outcome = e.status.ok()
                              ? (e.hedge_won ? "hedge-won" : "ok")
                              : e.cancelled
                                    ? "cancelled"
                                    : e.expired ? "deadline-expired"
                                                : e.note_failed
                                                      ? "unavailable"
                                                      : "error";

    // Lay the submit on the exported concurrent timeline (the input to
    // critical-path analysis). Relative clock, subplan-index order --
    // pool-size invariant like everything in this loop.
    {
      ScatterTimelineEvent tev;
      tev.subplan_index = submits[i].index;
      tev.source = groups[static_cast<size_t>(gi)].key;
      tev.lane = 1 + gi;
      tev.start_rel = prim.start_rel_ms;
      tev.end_rel = prim.end_rel_ms;
      tev.eff_start_rel = e.start_rel;
      tev.eff_end_rel = e.end_rel;
      tev.source_ms = e.source_ms;
      tev.attempts = e.attempts;
      tev.outcome = outcome;
      if (h >= 0) {
        const TaskOutcome& ho = hedge_outcomes[static_cast<size_t>(h)];
        const HedgeTask& task = hedges[static_cast<size_t>(h)];
        const double hedge_end = std::min(ho.end_rel_ms, hedge_cut[i]);
        tev.hedge = true;
        tev.hedge_source = task.source;
        tev.hedge_start_rel = std::min(ho.start_rel_ms, hedge_end);
        tev.hedge_end_rel = hedge_end;
        tev.hedge_won = e.hedge_won;
      }
      scatter_timeline_.events.push_back(std::move(tev));
    }

    if (trace_ != nullptr) {
      const Group& g = groups[static_cast<size_t>(gi)];
      int sid = trace_->AddCompleteSpan(
          "submit @" + g.key, "submit", trace_start_ms + e.start_rel,
          trace_start_ms + e.end_rel, /*lane=*/1 + gi);
      trace_->AddArg(sid, "subplan_index", int64_t{submits[i].index});
      trace_->AddArg(sid, "attempts", int64_t{e.attempts});
      trace_->AddArg(sid, "outcome", outcome);
      if (e.status.ok() && e.answer != nullptr) {
        trace_->AddArg(
            sid, "rows",
            static_cast<int64_t>(e.answer->exec.tuples.size()));
        trace_->AddArg(sid, "source_ms", e.source_ms);
      }
      if (h >= 0) {
        const TaskOutcome& ho = hedge_outcomes[static_cast<size_t>(h)];
        const HedgeTask& task = hedges[static_cast<size_t>(h)];
        const double hedge_end =
            std::min(ho.end_rel_ms, hedge_cut[i]);
        int hid = trace_->AddCompleteSpan(
            "hedge @" + task.source, "hedge",
            trace_start_ms + std::min(ho.start_rel_ms, hedge_end),
            trace_start_ms + hedge_end,
            /*lane=*/1 + static_cast<int>(groups.size()) +
                [&] {
                  for (size_t hg = 0; hg < hedge_groups.size(); ++hg) {
                    for (size_t hh : hedge_groups[hg]) {
                      if (hh == static_cast<size_t>(h)) {
                        return static_cast<int>(hg);
                      }
                    }
                  }
                  return 0;
                }());
        trace_->AddArg(hid, "subplan_index", int64_t{submits[i].index});
        trace_->AddArg(hid, "threshold_ms", task.threshold_ms);
        trace_->AddArg(hid, "outcome",
                       e.hedge_won ? "won"
                                   : ho.status.ok()
                                         ? "lost"
                                         : ho.end_rel_ms > hedge_cut[i]
                                               ? "cancelled"
                                               : "failed");
      }
    }

    // Winners feed the latency profile, the per-submit histograms, and
    // the history mechanism -- in subplan-index order, like everything
    // here, so the profile-driven hedge thresholds stay deterministic.
    if (e.status.ok() && e.answer != nullptr) {
      TaskOutcome& win = *e.answer;
      // Only the committed answer's guard report counts: a quarantine on
      // a discarded hedge loser never reached the query and stays out of
      // the per-query roll-up (its breaker effects replay below).
      if (win.guard_checked) {
        ApplyGuardReport(win.guard, e.answer_key, e.attempts,
                         /*breaker=*/"", submits[i].index, &e.warnings);
      }
      if (metrics_ != nullptr) {
        metrics_->histogram("disco.submit.ms")
            ->Record(e.end_rel - e.start_rel);
        metrics_->histogram("disco.submit.rows")
            ->Record(static_cast<double>(win.exec.tuples.size()));
      }
      if (profile_ != nullptr) {
        profile_->Observe(e.answer_key,
                          win.end_rel_ms - win.start_rel_ms);
      }
      SubqueryRecord record;
      record.source = e.answer_key;
      record.subplan = e.record_plan->Clone();
      record.source_ms = win.exec.total_ms;
      record.attempts = e.attempts;
      const auto n = static_cast<double>(win.exec.tuples.size());
      record.measured = costmodel::CostVector::Full(
          n, static_cast<double>(e.bytes),
          n > 0 ? static_cast<double>(e.bytes) / n : 0,
          win.exec.first_tuple_ms,
          n > 1 ? (win.exec.total_ms - win.exec.first_tuple_ms) / (n - 1)
                : 0,
          win.exec.total_ms);
      subqueries_.push_back(std::move(record));
    }

    PrecomputedSubmit pc;
    pc.status = e.status;
    pc.duration_ms = e.end_rel - e.start_rel;
    pc.source_ms = e.source_ms;
    if (e.status.ok() && e.answer != nullptr) {
      pc.first_tuple_ms = e.answer->exec.first_tuple_ms;
    }
    pc.attempts = e.attempts;
    pc.note_failed_source = e.note_failed;
    for (ExecWarning& w : e.warnings) {
      w.subplan_index = submits[i].index;
    }
    pc.warnings = std::move(e.warnings);
    e.failure.subplan_index = submits[i].index;
    pc.failure = std::move(e.failure);
    if (e.status.ok() && e.answer != nullptr) {
      pc.rel.columns = std::move(e.answer->exec.columns);
      pc.rel.tuples = std::move(e.answer->exec.tuples);
    }
    precomputed_[submits[i].op] = std::move(pc);
  }

  // The scatter phase charges max-not-sum: the whole concurrent phase
  // costs what its slowest surviving lane cost. It is communication
  // wait, but attributed to the phase rather than to any single submit
  // (PlanProfile::scatter_charged_ms keeps the accounting honest).
  ChargeWait(total_rel);
  scatter_charged_ms_ += total_rel;
  scatter_timeline_.charged_ms = total_rel;
  scatter_timeline_.deadline_ms = fed.deadline_ms > 0 ? fed.deadline_ms : 0;

  // Replay health events into the shared registry in global timestamp
  // order (stable on ties: subplan-index order), so breaker transitions
  // and their listeners fire identically for any pool size.
  if (health_ != nullptr) {
    struct Replay {
      double at_rel;
      HealthEvent::Kind kind;
      const std::string* key;
      int64_t rows;
    };
    std::vector<Replay> replays;
    for (size_t i : order) {
      if (group_of_slot[i] < 0) continue;
      const std::string& key =
          groups[static_cast<size_t>(group_of_slot[i])].key;
      for (const HealthEvent& ev : outcomes[i].events) {
        if (ev.at_rel_ms <= prim_cut[i]) {
          replays.push_back({ev.at_rel_ms, ev.kind, &key, ev.rows});
        }
      }
      const int h = hedge_for_slot[i];
      if (h >= 0) {
        for (const HealthEvent& ev :
             hedge_outcomes[static_cast<size_t>(h)].events) {
          if (ev.at_rel_ms <= hedge_cut[i]) {
            replays.push_back(
                {ev.at_rel_ms, ev.kind,
                 &hedges[static_cast<size_t>(h)].source, ev.rows});
          }
        }
      }
    }
    std::stable_sort(replays.begin(), replays.end(),
                     [](const Replay& a, const Replay& b) {
                       return a.at_rel < b.at_rel;
                     });
    for (const Replay& r : replays) {
      const double at = scatter_abs_ms + r.at_rel;
      switch (r.kind) {
        case HealthEvent::kSuccess:
          health_->RecordSuccess(*r.key, at);
          break;
        case HealthEvent::kFailure:
          health_->RecordFailure(*r.key, at);
          break;
        case HealthEvent::kRejected:
        case HealthEvent::kAllowed:
          (void)health_->AllowSubmit(*r.key, at);
          break;
        case HealthEvent::kMalformed:
          health_->RecordMalformed(*r.key, at, r.rows);
          break;
        case HealthEvent::kWellFormed:
          health_->RecordWellFormed(*r.key, at);
          break;
      }
    }
  }

  // Reconcile the shared budget: phase-A retries plus one unit per
  // launched hedge.
  retries_used_ += phase_a_retries + static_cast<int>(hedges.size());

  // Metrics (see docs/OBSERVABILITY.md for the catalog).
  BumpCounter("disco.mediator.scatter.queries");
  BumpCounter("disco.mediator.scatter.groups",
              static_cast<int64_t>(groups.size()));
  BumpCounter("disco.mediator.scatter.submits", scattered);
  BumpCounter("disco.exec.submits", scattered);
  BumpCounter("disco.exec.submit_attempts", total_attempts);
  if (total_retries > 0) {
    BumpCounter("disco.exec.submit_retries", total_retries);
  }
  if (total_rejections > 0) {
    BumpCounter("disco.exec.breaker_rejections", total_rejections);
  }
  if (failures > 0) BumpCounter("disco.exec.submit_failures", failures);
  if (budget_exhaustions > 0) {
    BumpCounter("disco.mediator.retry_budget.exhausted", budget_exhaustions);
  }
  if (!hedges.empty()) {
    BumpCounter("disco.mediator.hedges.launched",
                static_cast<int64_t>(hedges.size()));
  }
  if (hedges_won > 0) BumpCounter("disco.mediator.hedges.won", hedges_won);
  if (hedges_cancelled > 0) {
    BumpCounter("disco.mediator.hedges.cancelled", hedges_cancelled);
  }
  if (expired_submits > 0) {
    BumpCounter("disco.mediator.deadline.expired_submits", expired_submits);
    BumpCounter("disco.mediator.deadline.expired_queries");
  }
  if (cancellations > 0) {
    BumpCounter("disco.mediator.cancellations", cancellations);
  }

  scatter_span.Arg("groups", static_cast<int64_t>(groups.size()));
  scatter_span.Arg("submits", scattered);
  scatter_span.Arg("charged_ms", total_rel);
  if (!hedges.empty()) {
    scatter_span.Arg("hedges", static_cast<int64_t>(hedges.size()));
  }
}

}  // namespace mediator
}  // namespace disco
