#include "mediator/exec.h"

#include <algorithm>
#include <cmath>

#include "algebra/plan_printer.h"
#include "common/str_util.h"

namespace disco {
namespace mediator {

namespace {

using algebra::OpKind;
using algebra::Operator;
using sources::Rel;
using storage::Tuple;

double Log2N(size_t n) {
  return std::log2(static_cast<double>(std::max<size_t>(n, 2)));
}

bool TupleLess(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    Result<int> c = a[i].Compare(b[i]);
    if (!c.ok()) continue;
    if (*c != 0) return *c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

std::string ExecWarning::ToString() const {
  std::string out = "source '" + source + "': " + message;
  if (attempts > 0) {
    out += StringPrintf(" (%d attempt%s)", attempts, attempts == 1 ? "" : "s");
  }
  if (!breaker.empty()) {
    out += " [breaker " + breaker + "]";
  }
  return out;
}

int64_t MediatorExecutor::TupleBytes(const storage::Tuple& t) {
  int64_t bytes = 0;
  for (const Value& v : t) {
    switch (v.type()) {
      case ValueType::kNull:
        bytes += 1;
        break;
      case ValueType::kBool:
        bytes += 2;
        break;
      case ValueType::kInt64:
      case ValueType::kDouble:
        bytes += 9;
        break;
      case ValueType::kString:
        bytes += 5 + static_cast<int64_t>(v.AsString().size());
        break;
    }
  }
  return bytes;
}

Result<ExecResult> MediatorExecutor::Execute(const Operator& plan) {
  elapsed_ms_ = 0;
  subqueries_.clear();
  warnings_.clear();
  failed_sources_.clear();
  // Re-seed so repeated executions of the same plan are bit-identical.
  rng_ = Rng(exec_options_.jitter_seed);
  DISCO_RETURN_NOT_OK(plan.CheckWellFormed());

  DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(plan));

  ExecResult out;
  out.columns = std::move(rel.columns);
  out.tuples = std::move(rel.tuples);
  out.measured_ms = elapsed_ms_;
  out.subqueries = std::move(subqueries_);
  out.warnings = std::move(warnings_);
  return out;
}

Result<wrapper::Wrapper*> MediatorExecutor::WrapperFor(
    const std::string& source) const {
  auto wit = wrappers_.find(ToLower(source));
  if (wit == wrappers_.end()) {
    for (const auto& [name, w] : wrappers_) {
      if (EqualsIgnoreCase(name, source)) return w;
    }
    return Status::NotFound("no registered wrapper named '" + source + "'");
  }
  return wit->second;
}

void MediatorExecutor::NoteFailedSource(const std::string& source_lower) {
  for (const std::string& s : failed_sources_) {
    if (s == source_lower) return;
  }
  failed_sources_.push_back(source_lower);
}

void MediatorExecutor::AddWarning(ExecWarning warning) {
  BumpCounter("disco.exec.warnings");
  warnings_.push_back(std::move(warning));
}

std::string MediatorExecutor::BreakerStateNow(
    const std::string& source_lower) const {
  if (health_ == nullptr) return "";
  return BreakerStateToString(health_->StateAt(source_lower, Now()));
}

void MediatorExecutor::BumpCounter(const char* name, int64_t delta) {
  if (metrics_ != nullptr) metrics_->counter(name)->Increment(delta);
}

Result<sources::ExecutionResult> MediatorExecutor::SubmitToSource(
    const std::string& source, const Operator& subplan) {
  DISCO_ASSIGN_OR_RETURN(wrapper::Wrapper * w, WrapperFor(source));
  const std::string key = ToLower(source);
  const RetryPolicy& retry = exec_options_.retry;
  const int max_attempts = std::max(1, retry.max_attempts);

  BumpCounter("disco.exec.submits");
  tracing::ScopedSpan span(trace_, "submit @" + key, "submit");
  const std::string breaker_before = BreakerStateNow(key);
  if (!breaker_before.empty()) span.Arg("breaker_before", breaker_before);
  const double submit_start_ms = elapsed_ms_;

  Status last;
  int attempts = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (health_ != nullptr && !health_->AllowSubmit(key, Now())) {
      BumpCounter("disco.exec.breaker_rejections");
      if (trace_ != nullptr) {
        trace_->Instant("breaker rejected submit @" + key, "breaker");
      }
      if (last.ok()) {
        last = Status::Unavailable("source '" + source +
                                   "': circuit breaker open");
      }
      break;  // the breaker tripped: further retries are pointless
    }
    attempts = attempt;
    BumpCounter("disco.exec.submit_attempts");
    if (attempt > 1) BumpCounter("disco.exec.submit_retries");
    Result<sources::ExecutionResult> result = w->Execute(subplan);
    if (!result.ok() && !result.status().IsUnavailable() &&
        !result.status().IsExecutionError()) {
      // Not a source-availability failure (e.g. a malformed subplan):
      // retrying cannot help and the breaker must not trip.
      span.Arg("outcome", "error");
      return result.status().WithContext("source '" + source + "'");
    }
    const bool timed_out = result.ok() && retry.attempt_timeout_ms > 0 &&
                           result->total_ms > retry.attempt_timeout_ms;
    if (result.ok() && !timed_out) {
      // Communication: one round trip plus shipping the subanswer.
      int64_t bytes = 0;
      for (const Tuple& t : result->tuples) bytes += TupleBytes(t);
      Charge(result->total_ms + params_.ms_msg_latency +
             params_.ms_per_net_byte * static_cast<double>(bytes));
      if (health_ != nullptr) health_->RecordSuccess(key, Now());

      SubqueryRecord record;
      record.source = source;
      record.subplan = subplan.Clone();
      record.source_ms = result->total_ms;
      record.attempts = attempt;
      const auto n = static_cast<double>(result->tuples.size());
      record.measured = costmodel::CostVector::Full(
          n, static_cast<double>(bytes),
          n > 0 ? static_cast<double>(bytes) / n : 0, result->first_tuple_ms,
          n > 1 ? (result->total_ms - result->first_tuple_ms) / (n - 1) : 0,
          result->total_ms);
      subqueries_.push_back(std::move(record));

      if (attempt > 1) {
        AddWarning(ExecWarning{
            key,
            StringPrintf("recovered after %d failed attempt%s", attempt - 1,
                         attempt == 2 ? "" : "s"),
            attempt, BreakerStateNow(key)});
      }
      last_submit_attempts_ = attempts;
      span.Arg("attempts", int64_t{attempts});
      span.Arg("rows", static_cast<int64_t>(result->tuples.size()));
      span.Arg("source_ms", result->total_ms);
      span.Arg("outcome", "ok");
      const std::string breaker_after = BreakerStateNow(key);
      if (!breaker_after.empty() && breaker_after != breaker_before) {
        span.Arg("breaker_after", breaker_after);
      }
      if (metrics_ != nullptr) {
        metrics_->histogram("disco.submit.ms")
            ->Record(elapsed_ms_ - submit_start_ms);
        metrics_->histogram("disco.submit.rows")
            ->Record(static_cast<double>(result->tuples.size()));
      }
      return result;
    }
    // Failed attempt: a timeout charges the budget it burned; an error
    // charges the round trip that discovered it.
    if (timed_out) {
      Charge(params_.ms_msg_latency + retry.attempt_timeout_ms);
      last = Status::Unavailable(StringPrintf(
          "source '%s': attempt timed out (%.1f ms > %.1f ms budget)",
          source.c_str(), result->total_ms, retry.attempt_timeout_ms));
    } else {
      Charge(params_.ms_msg_latency);
      last = result.status().WithContext("source '" + source + "'");
    }
    if (health_ != nullptr) health_->RecordFailure(key, Now());
    if (trace_ != nullptr) {
      int mark = trace_->Instant(
          timed_out ? "attempt timed out" : "attempt failed", "submit");
      trace_->AddArg(mark, "attempt", int64_t{attempt});
    }
    if (attempt < max_attempts) {
      Charge(retry.BackoffMs(attempt, &rng_));
    }
  }

  BumpCounter("disco.exec.submit_failures");
  NoteFailedSource(key);
  std::string msg = last.message();
  if (attempts > 1) {
    msg += StringPrintf(" (gave up after %d attempts)", attempts);
  }
  last_submit_attempts_ = attempts;
  last_failure_ = ExecWarning{key, msg, attempts, BreakerStateNow(key)};
  span.Arg("attempts", int64_t{attempts});
  span.Arg("outcome", "unavailable");
  const std::string breaker_after = BreakerStateNow(key);
  if (!breaker_after.empty() && breaker_after != breaker_before) {
    span.Arg("breaker_after", breaker_after);
  }
  return Status::Unavailable(msg);
}

Result<Rel> MediatorExecutor::EvalBindJoin(const Operator& op) {
  // Fail fast on an unknown wrapper before evaluating the outer side.
  DISCO_RETURN_NOT_OK(WrapperFor(op.source).status());
  if (catalog_ == nullptr) {
    return Status::ExecutionError(
        "bind join needs a catalog for the probed collection's schema");
  }
  DISCO_ASSIGN_OR_RETURN(CatalogEntry entry,
                         catalog_->Collection(op.collection));

  DISCO_ASSIGN_OR_RETURN(Rel left, Eval(op.child(0)));
  DISCO_ASSIGN_OR_RETURN(int lcol,
                         left.ColumnIndex(op.join_pred->left_attribute));

  Rel out;
  out.columns = left.columns;
  for (const AttributeDef& a : entry.schema.attributes()) {
    out.columns.push_back(a.name);
  }

  // One probe per distinct outer key; results cached for reuse.
  std::map<std::string, std::vector<Tuple>> cache;
  Charge(static_cast<double>(left.tuples.size()) * params_.ms_med_cmp);
  for (const Tuple& lt : left.tuples) {
    const Value& key = lt[static_cast<size_t>(lcol)];
    std::string canon = key.ToString();
    auto it = cache.find(canon);
    if (it == cache.end()) {
      std::unique_ptr<Operator> probe = algebra::Select(
          algebra::Scan(op.collection), op.join_pred->right_attribute,
          algebra::CmpOp::kEq, key);
      // Probe failures abort the query even under allow_partial: a
      // missing probe answer would silently change the join result.
      DISCO_ASSIGN_OR_RETURN(sources::ExecutionResult result,
                             SubmitToSource(op.source, *probe));
      it = cache.emplace(canon, std::move(result.tuples)).first;
    }
    for (const Tuple& rt : it->second) {
      Tuple joined = lt;
      joined.insert(joined.end(), rt.begin(), rt.end());
      out.tuples.push_back(std::move(joined));
    }
  }
  return out;
}

Result<Rel> MediatorExecutor::EvalSubmit(const Operator& op) {
  Result<sources::ExecutionResult> result =
      SubmitToSource(op.source, op.child(0));
  if (node_measures_ != nullptr) {
    NodeMeasure& m = (*node_measures_)[&op];
    m.attempts = last_submit_attempts_;
    if (result.ok()) m.source_ms = result->total_ms;
  }
  DISCO_RETURN_NOT_OK(result.status());
  Rel rel;
  rel.columns = std::move(result->columns);
  rel.tuples = std::move(result->tuples);
  return rel;
}

Result<Rel> MediatorExecutor::Eval(const Operator& op) {
  // Instrumentation wrapper: one span per plan node, plus the node's
  // measured inclusive time and output cardinality.
  if (trace_ == nullptr && node_measures_ == nullptr) return EvalNode(op);
  const double start_ms = elapsed_ms_;
  tracing::ScopedSpan span(trace_, algebra::NodeLabel(op), "plan");
  Result<Rel> result = EvalNode(op);
  if (result.ok()) {
    span.Arg("rows", static_cast<int64_t>(result->tuples.size()));
  } else {
    span.Arg("outcome", "failed");
  }
  if (node_measures_ != nullptr) {
    NodeMeasure& m = (*node_measures_)[&op];
    m.inclusive_ms = elapsed_ms_ - start_ms;
    m.ok = result.ok();
    m.rows = result.ok() ? static_cast<int64_t>(result->tuples.size()) : -1;
  }
  return result;
}

Result<Rel> MediatorExecutor::EvalNode(const Operator& op) {
  switch (op.kind) {
    case OpKind::kSubmit:
      return EvalSubmit(op);

    case OpKind::kBindJoin:
      return EvalBindJoin(op);

    case OpKind::kScan:
      return Status::ExecutionError(
          "scan(" + op.collection +
          ") reached the mediator executor outside a submit");

    case OpKind::kSelect: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(int col,
                             rel.ColumnIndex(op.select_pred->attribute));
      Charge(static_cast<double>(rel.tuples.size()) * params_.ms_med_cmp);
      Rel out;
      out.columns = rel.columns;
      for (Tuple& t : rel.tuples) {
        DISCO_ASSIGN_OR_RETURN(
            bool keep, algebra::EvalCmp(t[static_cast<size_t>(col)],
                                        op.select_pred->op,
                                        op.select_pred->value));
        if (keep) out.tuples.push_back(std::move(t));
      }
      return out;
    }

    case OpKind::kProject: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      std::vector<int> cols;
      for (const std::string& a : op.project_attrs) {
        DISCO_ASSIGN_OR_RETURN(int c, rel.ColumnIndex(a));
        cols.push_back(c);
      }
      Charge(static_cast<double>(rel.tuples.size()) * params_.ms_med_cmp);
      Rel out;
      out.columns = op.project_attrs;
      for (const Tuple& t : rel.tuples) {
        Tuple nt;
        for (int c : cols) nt.push_back(t[static_cast<size_t>(c)]);
        out.tuples.push_back(std::move(nt));
      }
      return out;
    }

    case OpKind::kSort: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(int col, rel.ColumnIndex(op.sort_attr));
      Charge(static_cast<double>(rel.tuples.size()) *
             Log2N(rel.tuples.size()) * params_.ms_med_cmp);
      Status status = Status::OK();
      std::stable_sort(rel.tuples.begin(), rel.tuples.end(),
                       [&](const Tuple& a, const Tuple& b) {
                         Result<int> c = a[static_cast<size_t>(col)].Compare(
                             b[static_cast<size_t>(col)]);
                         if (!c.ok()) {
                           if (status.ok()) status = c.status();
                           return false;
                         }
                         return op.sort_ascending ? *c < 0 : *c > 0;
                       });
      DISCO_RETURN_NOT_OK(status);
      return rel;
    }

    case OpKind::kDedup: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      Charge(static_cast<double>(rel.tuples.size()) *
             Log2N(rel.tuples.size()) * params_.ms_med_cmp);
      std::stable_sort(rel.tuples.begin(), rel.tuples.end(), TupleLess);
      Rel out;
      out.columns = rel.columns;
      for (Tuple& t : rel.tuples) {
        if (out.tuples.empty() || !(out.tuples.back() == t)) {
          out.tuples.push_back(std::move(t));
        }
      }
      return out;
    }

    case OpKind::kAggregate: {
      DISCO_ASSIGN_OR_RETURN(Rel rel, Eval(op.child(0)));
      Charge(static_cast<double>(rel.tuples.size()) * params_.ms_med_cmp);
      int agg_col = -1;
      if (!op.agg_attr.empty()) {
        DISCO_ASSIGN_OR_RETURN(agg_col, rel.ColumnIndex(op.agg_attr));
      }
      std::vector<int> group_cols;
      for (const std::string& g : op.group_by) {
        DISCO_ASSIGN_OR_RETURN(int c, rel.ColumnIndex(g));
        group_cols.push_back(c);
      }
      struct Acc {
        int64_t count = 0;
        double sum = 0;
        std::optional<Value> min, max;
      };
      std::map<std::string, std::pair<Tuple, Acc>> groups;
      for (const Tuple& t : rel.tuples) {
        std::string key;
        Tuple vals;
        for (int c : group_cols) {
          key += t[static_cast<size_t>(c)].ToString();
          key += '\x1f';
          vals.push_back(t[static_cast<size_t>(c)]);
        }
        auto& [gvals, acc] = groups[key];
        gvals = vals;
        ++acc.count;
        if (agg_col >= 0) {
          const Value& v = t[static_cast<size_t>(agg_col)];
          if (v.is_numeric()) acc.sum += v.AsDouble();
          if (!acc.min.has_value()) {
            acc.min = v;
            acc.max = v;
          } else {
            Result<int> lo = v.Compare(*acc.min);
            Result<int> hi = v.Compare(*acc.max);
            if (lo.ok() && *lo < 0) acc.min = v;
            if (hi.ok() && *hi > 0) acc.max = v;
          }
        }
      }
      if (groups.empty() && op.group_by.empty()) {
        groups[""] = {Tuple{}, Acc{}};
      }
      Rel out;
      out.columns = op.group_by;
      std::string agg_name = algebra::AggFuncToString(op.agg_func);
      agg_name +=
          "(" + (op.agg_attr.empty() ? std::string("*") : op.agg_attr) + ")";
      out.columns.push_back(agg_name);
      for (auto& [key, entry] : groups) {
        auto& [vals, acc] = entry;
        Tuple t = vals;
        switch (op.agg_func) {
          case algebra::AggFunc::kCount:
            t.push_back(Value(acc.count));
            break;
          case algebra::AggFunc::kSum:
            t.push_back(Value(acc.sum));
            break;
          case algebra::AggFunc::kAvg:
            t.push_back(Value(
                acc.count > 0 ? acc.sum / static_cast<double>(acc.count)
                              : 0.0));
            break;
          case algebra::AggFunc::kMin:
            t.push_back(acc.min.value_or(Value::Null()));
            break;
          case algebra::AggFunc::kMax:
            t.push_back(acc.max.value_or(Value::Null()));
            break;
        }
        out.tuples.push_back(std::move(t));
      }
      return out;
    }

    case OpKind::kJoin: {
      DISCO_ASSIGN_OR_RETURN(Rel left, Eval(op.child(0)));
      DISCO_ASSIGN_OR_RETURN(Rel right, Eval(op.child(1)));
      DISCO_ASSIGN_OR_RETURN(int lcol,
                             left.ColumnIndex(op.join_pred->left_attribute));
      DISCO_ASSIGN_OR_RETURN(int rcol,
                             right.ColumnIndex(op.join_pred->right_attribute));
      Rel out;
      out.columns = left.columns;
      out.columns.insert(out.columns.end(), right.columns.begin(),
                         right.columns.end());
      // Sort-merge (charging both sorts and the merge).
      Charge(static_cast<double>(left.tuples.size()) *
                 Log2N(left.tuples.size()) * params_.ms_med_cmp +
             static_cast<double>(right.tuples.size()) *
                 Log2N(right.tuples.size()) * params_.ms_med_cmp);
      auto sort_by = [&](Rel* rel, int col) {
        std::stable_sort(rel->tuples.begin(), rel->tuples.end(),
                         [col](const Tuple& a, const Tuple& b) {
                           Result<int> c = a[static_cast<size_t>(col)].Compare(
                               b[static_cast<size_t>(col)]);
                           return c.ok() && *c < 0;
                         });
      };
      sort_by(&left, lcol);
      sort_by(&right, rcol);
      size_t i = 0, j = 0;
      while (i < left.tuples.size() && j < right.tuples.size()) {
        Charge(params_.ms_med_cmp);
        DISCO_ASSIGN_OR_RETURN(
            int c, left.tuples[i][static_cast<size_t>(lcol)].Compare(
                       right.tuples[j][static_cast<size_t>(rcol)]));
        if (c < 0) {
          ++i;
        } else if (c > 0) {
          ++j;
        } else {
          for (size_t j2 = j; j2 < right.tuples.size(); ++j2) {
            DISCO_ASSIGN_OR_RETURN(
                int c2, left.tuples[i][static_cast<size_t>(lcol)].Compare(
                            right.tuples[j2][static_cast<size_t>(rcol)]));
            if (c2 != 0) break;
            Tuple joined = left.tuples[i];
            joined.insert(joined.end(), right.tuples[j2].begin(),
                          right.tuples[j2].end());
            out.tuples.push_back(std::move(joined));
          }
          ++i;
        }
      }
      return out;
    }

    case OpKind::kUnion: {
      // Graceful degradation: a union branch is the one place a source
      // failure does not change the semantics of what remains -- the
      // other branch is still a correct (partial) subanswer. Under
      // allow_partial a branch whose source stayed unavailable is
      // dropped with a warning; any other failure aborts as before.
      auto tolerable = [&](const Status& s) {
        return exec_options_.allow_partial && s.IsUnavailable();
      };
      Result<Rel> left = Eval(op.child(0));
      if (!left.ok() && !tolerable(left.status())) return left.status();
      Result<Rel> right = Eval(op.child(1));
      if (!right.ok() && !tolerable(right.status())) return right.status();
      if (!left.ok() && !right.ok()) {
        return left.status();  // nothing to degrade to
      }
      if (!left.ok() || !right.ok()) {
        const Status& dropped =
            left.ok() ? right.status() : left.status();
        AddWarning(ExecWarning{last_failure_.source,
                               "union branch dropped: " + dropped.message(),
                               last_failure_.attempts,
                               last_failure_.breaker});
        return left.ok() ? std::move(*left) : std::move(*right);
      }
      if (left->columns.size() != right->columns.size()) {
        return Status::ExecutionError("union inputs have different arity");
      }
      Charge(static_cast<double>(right->tuples.size()) * params_.ms_med_cmp);
      Rel out = std::move(*left);
      for (Tuple& t : right->tuples) out.tuples.push_back(std::move(t));
      return out;
    }
  }
  return Status::Internal("bad operator kind");
}

}  // namespace mediator
}  // namespace disco
