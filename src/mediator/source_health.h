// Per-source health tracking: a circuit breaker over the simulated
// clock.
//
// Every submit outcome is reported here. After `failure_threshold`
// consecutive failures a source's breaker opens: further submits are
// rejected immediately (Status::Unavailable) instead of burning retries
// against a dead source, and the optimizer routes around the source
// when an equivalent collection exists elsewhere. After `cooldown_ms`
// of simulated time the breaker moves to half-open and lets exactly the
// next submit through as a probe: success re-closes the breaker,
// failure re-opens it for another cooldown.
//
//        K consecutive failures          cooldown elapses
//   closed ----------------------> open -----------------> half-open
//     ^                             ^                          |
//     |        probe succeeds       |      probe fails         |
//     +-----------------------------+--------------------------+
//
// All timestamps are simulated milliseconds (the mediator's cumulative
// execution clock), so breaker behaviour is deterministic and
// reproducible bit-for-bit.

#ifndef DISCO_MEDIATOR_SOURCE_HEALTH_H_
#define DISCO_MEDIATOR_SOURCE_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace disco {
namespace mediator {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState state);

struct SourceHealthOptions {
  /// Consecutive failures that open the breaker.
  int failure_threshold = 3;
  /// Simulated ms the breaker stays open before allowing a probe.
  double cooldown_ms = 60000.0;
};

/// Everything tracked for one source.
struct SourceHealth {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  int64_t total_failures = 0;
  int64_t total_successes = 0;
  int64_t rejected_submits = 0;  ///< submits refused while open
  double opened_at_ms = 0;
  double last_failure_ms = 0;
};

class SourceHealthRegistry {
 public:
  explicit SourceHealthRegistry(SourceHealthOptions options = {})
      : options_(options) {}

  /// Gate consulted before each submit. Open breakers whose cooldown has
  /// elapsed transition to half-open and admit the submit as a probe;
  /// open breakers still cooling down reject it (and count the
  /// rejection).
  bool AllowSubmit(const std::string& source, double now_ms);

  void RecordSuccess(const std::string& source, double now_ms);
  void RecordFailure(const std::string& source, double now_ms);

  /// Effective state at `now_ms` (an open breaker past its cooldown
  /// reads as half-open). Unknown sources are closed.
  BreakerState StateAt(const std::string& source, double now_ms) const;

  /// Raw counters (state as last recorded, without the cooldown view).
  SourceHealth Health(const std::string& source) const;

  /// Sources whose breaker is effectively open at `now_ms` -- what the
  /// optimizer should route around.
  std::vector<std::string> OpenSources(double now_ms) const;

  /// Forgets everything recorded about `source` (administrative reset,
  /// e.g. after re-registration).
  void Reset(const std::string& source);

  /// Installs `health` as the state of `source` verbatim (no listener
  /// notification). Scatter-gather execution seeds a private, per-task
  /// registry from a snapshot of the shared one with this, gates the
  /// task's submits against the private copy, and replays the recorded
  /// outcomes into the shared registry at gather time -- so breaker
  /// behaviour stays deterministic for any federation pool size.
  void Adopt(const std::string& source, const SourceHealth& health);

  const SourceHealthOptions& options() const { return options_; }

  /// Observer invoked on every breaker state change (closed -> open,
  /// open -> half-open probe, half-open -> closed/open), with the
  /// lower-cased source name and the simulated timestamp of the change.
  /// The observability layer hooks metrics counters and trace events
  /// here; pass nullptr to detach.
  using TransitionListener = std::function<void(
      const std::string& source, BreakerState from, BreakerState to,
      double now_ms)>;
  void SetTransitionListener(TransitionListener listener) {
    listener_ = std::move(listener);
  }

 private:
  /// Applies a state change and notifies the listener if it is a change.
  void Transition(const std::string& source_lower, SourceHealth* h,
                  BreakerState to, double now_ms);

  SourceHealthOptions options_;
  /// Keyed by lower-cased source name.
  std::map<std::string, SourceHealth> health_;
  TransitionListener listener_;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_SOURCE_HEALTH_H_
