// Per-source health tracking: a circuit breaker over the simulated
// clock.
//
// Every submit outcome is reported here. After `failure_threshold`
// consecutive failures a source's breaker opens: further submits are
// rejected immediately (Status::Unavailable) instead of burning retries
// against a dead source, and the optimizer routes around the source
// when an equivalent collection exists elsewhere. After `cooldown_ms`
// of simulated time the breaker moves to half-open and lets exactly
// *one* submit through as a probe (concurrent submits racing the probe
// are rejected until the probe resolves): success re-closes the
// breaker, failure re-opens it for another cooldown.
//
//        K consecutive failures          cooldown elapses
//   closed ----------------------> open -----------------> half-open
//     ^                             ^                          |
//     |        probe succeeds       |      probe fails         |
//     +-----------------------------+--------------------------+
//
// Two refinements on the textbook machine:
//
// * **Flap damping.** A source that keeps failing its probes gets an
//   exponentially growing cooldown: from the second consecutive failed
//   probe onward the effective cooldown doubles per failure, capped at
//   `cooldown_ms * 2^max_cooldown_doublings`. A successful probe
//   resets the damping.
// * **Lying sources.** The result guard (mediator/result_guard.h)
//   reports batches whose rows failed schema validation via
//   RecordMalformed. `malformed_threshold` consecutive malformed
//   batches open the breaker with `SourceHealth::lying = true` -- the
//   breaker distinguishes a source that is *down* from one that is
//   *answering garbage*, and both are routed around the same way.
//
// All timestamps are simulated milliseconds (the mediator's cumulative
// execution clock), so breaker behaviour is deterministic and
// reproducible bit-for-bit.

#ifndef DISCO_MEDIATOR_SOURCE_HEALTH_H_
#define DISCO_MEDIATOR_SOURCE_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace disco {
namespace mediator {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState state);

struct SourceHealthOptions {
  /// Consecutive failures that open the breaker.
  int failure_threshold = 3;
  /// Simulated ms the breaker stays open before allowing a probe.
  double cooldown_ms = 60000.0;
  /// Consecutive malformed (guard-quarantined) batches that open the
  /// breaker as a lying source.
  int malformed_threshold = 3;
  /// Flap-damping cap: the effective cooldown never exceeds
  /// `cooldown_ms * 2^max_cooldown_doublings`.
  int max_cooldown_doublings = 5;
};

/// Everything tracked for one source.
struct SourceHealth {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  int64_t total_failures = 0;
  int64_t total_successes = 0;
  int64_t rejected_submits = 0;  ///< submits refused while open or probing
  double opened_at_ms = 0;
  double last_failure_ms = 0;
  /// A half-open probe has been admitted and has not resolved yet;
  /// further submits are rejected until RecordSuccess/RecordFailure, or
  /// until a full cooldown passes with the probe unresolved (a lost
  /// probe must not wedge the breaker half-open).
  bool probe_in_flight = false;
  double probe_started_ms = 0;
  /// Failed half-open probes since the breaker last closed (drives the
  /// flap-damped cooldown).
  int consecutive_probe_failures = 0;
  /// The last open was caused by malformed responses, not failures.
  bool lying = false;
  int64_t malformed_batches = 0;    ///< batches with quarantined rows
  int64_t quarantined_rows = 0;     ///< rows dropped by the result guard
  int consecutive_malformed_batches = 0;  ///< reset by a well-formed batch
};

class SourceHealthRegistry {
 public:
  explicit SourceHealthRegistry(SourceHealthOptions options = {})
      : options_(options) {}

  /// Gate consulted before each submit. Open breakers whose (flap-
  /// damped) cooldown has elapsed transition to half-open and admit the
  /// submit as a probe; open breakers still cooling down, and half-open
  /// breakers whose single probe is already in flight, reject it (and
  /// count the rejection).
  bool AllowSubmit(const std::string& source, double now_ms);

  void RecordSuccess(const std::string& source, double now_ms);
  void RecordFailure(const std::string& source, double now_ms);

  /// Result-guard verdicts. A malformed batch (rows quarantined by
  /// mediator/result_guard.h) counts toward the lying-source threshold;
  /// a well-formed batch resets the consecutive count.
  void RecordMalformed(const std::string& source, double now_ms,
                       int64_t quarantined_rows);
  void RecordWellFormed(const std::string& source, double now_ms);

  /// Effective state at `now_ms` (an open breaker past its cooldown
  /// reads as half-open). Unknown sources are closed.
  BreakerState StateAt(const std::string& source, double now_ms) const;

  /// The flap-damped cooldown currently applied to `source`:
  /// `cooldown_ms * 2^min(max(0, consecutive_probe_failures - 1),
  /// max_cooldown_doublings)`. Unknown sources report the base cooldown.
  double EffectiveCooldownMs(const std::string& source) const;

  /// Raw counters (state as last recorded, without the cooldown view).
  SourceHealth Health(const std::string& source) const;

  /// Sources whose breaker is effectively open at `now_ms` -- what the
  /// optimizer should route around.
  std::vector<std::string> OpenSources(double now_ms) const;

  /// Forgets everything recorded about `source` (administrative reset,
  /// e.g. after re-registration).
  void Reset(const std::string& source);

  /// Installs `health` as the state of `source` verbatim (no listener
  /// notification). Scatter-gather execution seeds a private, per-task
  /// registry from a snapshot of the shared one with this, gates the
  /// task's submits against the private copy, and replays the recorded
  /// outcomes into the shared registry at gather time -- so breaker
  /// behaviour stays deterministic for any federation pool size.
  void Adopt(const std::string& source, const SourceHealth& health);

  const SourceHealthOptions& options() const { return options_; }

  /// Observer invoked on every breaker state change (closed -> open,
  /// open -> half-open probe, half-open -> closed/open), with the
  /// lower-cased source name and the simulated timestamp of the change.
  /// The observability layer hooks metrics counters and trace events
  /// here; pass nullptr to detach.
  using TransitionListener = std::function<void(
      const std::string& source, BreakerState from, BreakerState to,
      double now_ms)>;
  void SetTransitionListener(TransitionListener listener) {
    listener_ = std::move(listener);
  }

 private:
  /// Applies a state change and notifies the listener if it is a change.
  void Transition(const std::string& source_lower, SourceHealth* h,
                  BreakerState to, double now_ms);

  /// The flap-damped cooldown for one health record.
  double CooldownFor(const SourceHealth& h) const;

  SourceHealthOptions options_;
  /// Keyed by lower-cased source name.
  std::map<std::string, SourceHealth> health_;
  TransitionListener listener_;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_SOURCE_HEALTH_H_
