#include "mediator/source_health.h"

#include "common/str_util.h"

namespace disco {
namespace mediator {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void SourceHealthRegistry::Transition(const std::string& source_lower,
                                      SourceHealth* h, BreakerState to,
                                      double now_ms) {
  const BreakerState from = h->state;
  if (from == to) return;
  h->state = to;
  if (to == BreakerState::kOpen) h->opened_at_ms = now_ms;
  if (listener_) listener_(source_lower, from, to, now_ms);
}

bool SourceHealthRegistry::AllowSubmit(const std::string& source,
                                       double now_ms) {
  const std::string key = ToLower(source);
  SourceHealth& h = health_[key];
  switch (h.state) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      if (now_ms - h.opened_at_ms >= options_.cooldown_ms) {
        Transition(key, &h, BreakerState::kHalfOpen, now_ms);
        return true;  // the probe
      }
      ++h.rejected_submits;
      return false;
  }
  return true;
}

void SourceHealthRegistry::RecordSuccess(const std::string& source,
                                         double now_ms) {
  const std::string key = ToLower(source);
  SourceHealth& h = health_[key];
  h.consecutive_failures = 0;
  ++h.total_successes;
  Transition(key, &h, BreakerState::kClosed, now_ms);
}

void SourceHealthRegistry::RecordFailure(const std::string& source,
                                         double now_ms) {
  const std::string key = ToLower(source);
  SourceHealth& h = health_[key];
  ++h.consecutive_failures;
  ++h.total_failures;
  h.last_failure_ms = now_ms;
  // A failed half-open probe re-opens immediately; a closed breaker
  // opens once the threshold is reached.
  if (h.state == BreakerState::kHalfOpen ||
      (h.state == BreakerState::kClosed &&
       h.consecutive_failures >= options_.failure_threshold)) {
    Transition(key, &h, BreakerState::kOpen, now_ms);
  }
}

BreakerState SourceHealthRegistry::StateAt(const std::string& source,
                                           double now_ms) const {
  auto it = health_.find(ToLower(source));
  if (it == health_.end()) return BreakerState::kClosed;
  const SourceHealth& h = it->second;
  if (h.state == BreakerState::kOpen &&
      now_ms - h.opened_at_ms >= options_.cooldown_ms) {
    return BreakerState::kHalfOpen;
  }
  return h.state;
}

SourceHealth SourceHealthRegistry::Health(const std::string& source) const {
  auto it = health_.find(ToLower(source));
  if (it == health_.end()) return SourceHealth{};
  return it->second;
}

std::vector<std::string> SourceHealthRegistry::OpenSources(
    double now_ms) const {
  std::vector<std::string> out;
  for (const auto& [name, h] : health_) {
    (void)h;
    if (StateAt(name, now_ms) == BreakerState::kOpen) out.push_back(name);
  }
  return out;
}

void SourceHealthRegistry::Reset(const std::string& source) {
  health_.erase(ToLower(source));
}

void SourceHealthRegistry::Adopt(const std::string& source,
                                 const SourceHealth& health) {
  health_[ToLower(source)] = health;
}

}  // namespace mediator
}  // namespace disco
