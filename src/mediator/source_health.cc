#include "mediator/source_health.h"

#include "common/str_util.h"

namespace disco {
namespace mediator {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void SourceHealthRegistry::Transition(const std::string& source_lower,
                                      SourceHealth* h, BreakerState to,
                                      double now_ms) {
  const BreakerState from = h->state;
  if (from == to) return;
  h->state = to;
  if (to == BreakerState::kOpen) h->opened_at_ms = now_ms;
  if (listener_) listener_(source_lower, from, to, now_ms);
}

double SourceHealthRegistry::CooldownFor(const SourceHealth& h) const {
  // Damping starts on the *second* consecutive failed probe: a single
  // flap pays the base cooldown, persistent flapping doubles per
  // failure up to the cap.
  int doublings = h.consecutive_probe_failures - 1;
  if (doublings < 0) doublings = 0;
  if (doublings > options_.max_cooldown_doublings) {
    doublings = options_.max_cooldown_doublings;
  }
  return options_.cooldown_ms * static_cast<double>(int64_t{1} << doublings);
}

bool SourceHealthRegistry::AllowSubmit(const std::string& source,
                                       double now_ms) {
  const std::string key = ToLower(source);
  SourceHealth& h = health_[key];
  switch (h.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // One probe per cooldown: submits racing the in-flight probe are
      // rejected rather than piling onto a source that may still be
      // down. A probe that never resolves (cancelled, deadline-expired)
      // forfeits its slot after one cooldown, so the breaker cannot
      // wedge half-open forever.
      if (h.probe_in_flight &&
          now_ms - h.probe_started_ms < CooldownFor(h)) {
        ++h.rejected_submits;
        return false;
      }
      h.probe_in_flight = true;
      h.probe_started_ms = now_ms;
      return true;
    case BreakerState::kOpen:
      if (now_ms - h.opened_at_ms >= CooldownFor(h)) {
        Transition(key, &h, BreakerState::kHalfOpen, now_ms);
        h.probe_in_flight = true;
        h.probe_started_ms = now_ms;
        return true;  // the probe
      }
      ++h.rejected_submits;
      return false;
  }
  return true;
}

void SourceHealthRegistry::RecordSuccess(const std::string& source,
                                         double now_ms) {
  const std::string key = ToLower(source);
  SourceHealth& h = health_[key];
  h.consecutive_failures = 0;
  h.consecutive_probe_failures = 0;
  h.probe_in_flight = false;
  h.lying = false;
  ++h.total_successes;
  Transition(key, &h, BreakerState::kClosed, now_ms);
}

void SourceHealthRegistry::RecordFailure(const std::string& source,
                                         double now_ms) {
  const std::string key = ToLower(source);
  SourceHealth& h = health_[key];
  ++h.consecutive_failures;
  ++h.total_failures;
  h.last_failure_ms = now_ms;
  // A failed half-open probe re-opens immediately (growing the damped
  // cooldown); a closed breaker opens once the threshold is reached.
  if (h.state == BreakerState::kHalfOpen) {
    ++h.consecutive_probe_failures;
    h.probe_in_flight = false;
    Transition(key, &h, BreakerState::kOpen, now_ms);
  } else if (h.state == BreakerState::kClosed &&
             h.consecutive_failures >= options_.failure_threshold) {
    Transition(key, &h, BreakerState::kOpen, now_ms);
  }
}

void SourceHealthRegistry::RecordMalformed(const std::string& source,
                                           double now_ms,
                                           int64_t quarantined_rows) {
  const std::string key = ToLower(source);
  SourceHealth& h = health_[key];
  ++h.malformed_batches;
  h.quarantined_rows += quarantined_rows;
  ++h.consecutive_malformed_batches;
  // Persistent malformation trips the breaker as a *lying* source: it
  // answers, but the answers cannot be trusted, so it is routed around
  // exactly like a down source -- distinguishably flagged.
  if (h.consecutive_malformed_batches >= options_.malformed_threshold &&
      h.state == BreakerState::kClosed) {
    h.lying = true;
    Transition(key, &h, BreakerState::kOpen, now_ms);
  }
}

void SourceHealthRegistry::RecordWellFormed(const std::string& source,
                                            double now_ms) {
  (void)now_ms;
  auto it = health_.find(ToLower(source));
  if (it == health_.end()) return;
  it->second.consecutive_malformed_batches = 0;
}

BreakerState SourceHealthRegistry::StateAt(const std::string& source,
                                           double now_ms) const {
  auto it = health_.find(ToLower(source));
  if (it == health_.end()) return BreakerState::kClosed;
  const SourceHealth& h = it->second;
  if (h.state == BreakerState::kOpen &&
      now_ms - h.opened_at_ms >= CooldownFor(h)) {
    return BreakerState::kHalfOpen;
  }
  return h.state;
}

double SourceHealthRegistry::EffectiveCooldownMs(
    const std::string& source) const {
  auto it = health_.find(ToLower(source));
  if (it == health_.end()) return options_.cooldown_ms;
  return CooldownFor(it->second);
}

SourceHealth SourceHealthRegistry::Health(const std::string& source) const {
  auto it = health_.find(ToLower(source));
  if (it == health_.end()) return SourceHealth{};
  return it->second;
}

std::vector<std::string> SourceHealthRegistry::OpenSources(
    double now_ms) const {
  std::vector<std::string> out;
  for (const auto& [name, h] : health_) {
    (void)h;
    if (StateAt(name, now_ms) == BreakerState::kOpen) out.push_back(name);
  }
  return out;
}

void SourceHealthRegistry::Reset(const std::string& source) {
  health_.erase(ToLower(source));
}

void SourceHealthRegistry::Adopt(const std::string& source,
                                 const SourceHealth& health) {
  health_[ToLower(source)] = health;
}

}  // namespace mediator
}  // namespace disco
