// Operator-level execution profiling (docs/OBSERVABILITY.md).
//
// The paper's cost model prices plans per operator (TimeFirst /
// TimeNext / TotalTime, §2.3); this module gives the runtime the same
// granularity: a per-query PlanProfile that splits every plan node's
// simulated time into mediator CPU vs. communication wait, tracks the
// cardinality waterfall (rows in -> rows out), and renders both as a
// folded-stack flame graph and a waterfall text block. A process-wide
// ProfileRegistry aggregates profiles across queries keyed by the
// query-log plan fingerprint, feeding MonitorReport's "hottest
// operators" and "worst waterfall drops" panels.
//
// Everything is driven by the simulated clock, so profiles are
// byte-identical run to run and across federation pool sizes.

#ifndef DISCO_MEDIATOR_PROFILER_H_
#define DISCO_MEDIATOR_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "common/metrics.h"
#include "mediator/exec.h"

namespace disco {
namespace mediator {

/// One plan node's measured profile. `id` is the node's pre-order index
/// in the executed plan tree -- stable across runs of the same plan, so
/// aggregation by (fingerprint, id) is well defined.
struct NodeProfile {
  int id = 0;
  int parent = -1;  ///< pre-order index of the parent, -1 for the root
  int depth = 0;
  algebra::OpKind kind = algebra::OpKind::kScan;
  std::string label;  ///< algebra::NodeLabel of the node

  /// False for nodes the mediator never evaluated itself (subtrees under
  /// a submit execute at the source; dropped branches never produced).
  bool measured = false;
  bool ok = false;

  int64_t rows_in = 0;    ///< sum of the children's output cardinalities
  int64_t rows_out = -1;  ///< -1 = never produced
  int attempts = 0;       ///< submit/bind-join nodes

  /// Inclusive simulated time (the whole subtree), mirroring
  /// NodeMeasure::inclusive_ms.
  double inclusive_ms = 0;
  /// Self mediator-CPU ms: per-row compare/merge/sort work charged by
  /// this node itself (children excluded).
  double cpu_ms = 0;
  /// Self communication/wait ms: source execution, message latency,
  /// byte shipping, retry backoff, timeout stall -- attributed to the
  /// submit that caused them. For `concurrent` nodes this is the
  /// submit's response time on the scatter timeline (charged to the
  /// query max-not-sum, see PlanProfile::scatter_charged_ms).
  double wait_ms = 0;
  /// True for submits resolved by the concurrent scatter phase: their
  /// wait_ms overlapped other lanes and is NOT additive toward the
  /// query's measured time.
  bool concurrent = false;

  /// Submit nodes: the source's time to its first result row.
  double first_row_ms = 0;
  /// Submit nodes: total execution time at the source (excl. comm).
  double source_ms = 0;

  double self_ms() const { return cpu_ms + wait_ms; }
  /// Self time per output row (0 when the node produced no rows).
  double per_row_ms() const {
    return rows_out > 0 ? self_ms() / static_cast<double>(rows_out) : 0;
  }
  /// Fraction of input rows dropped by this node, in [0, 1].
  double drop_fraction() const {
    if (rows_in <= 0 || rows_out < 0 || rows_out >= rows_in) return 0;
    return static_cast<double>(rows_in - rows_out) /
           static_cast<double>(rows_in);
  }
};

/// The execution profile of one query: per-node CPU/wait attribution
/// plus the scatter phase's max-not-sum charge. Accounting identity
/// (asserted in tests):
///
///   measured_ms == scatter_charged_ms
///               + sum(node.cpu_ms)
///               + sum(node.wait_ms over non-concurrent nodes)
struct PlanProfile {
  std::string fingerprint;  ///< query-log plan fingerprint (plan.Hash())
  double measured_ms = 0;
  /// The single max-not-sum charge of the concurrent scatter phase
  /// (0 when the federation layer was inactive).
  double scatter_charged_ms = 0;
  std::vector<NodeProfile> nodes;  ///< pre-order

  /// Sum of self CPU over all nodes.
  double total_cpu_ms() const;
  /// Sum of self wait over serially-charged (non-concurrent) nodes.
  double total_wait_ms() const;

  /// Folded-stack flame-graph lines ("a;b;[cpu] 1234\n"), one line per
  /// nonzero self value, values in integer microseconds. Loadable in
  /// speedscope / flamegraph.pl. Concurrent scatter waits are emitted
  /// under a "[scatter-wait]" leaf: they overlap in wall time, so a
  /// flame graph of a scattered query is wider than measured_ms.
  std::string ToFolded() const;
  /// Accumulates this profile's folded stacks into `acc` (stack ->
  /// microseconds), the merge format ProfileRegistry exports.
  void AccumulateFolded(std::map<std::string, int64_t>* acc) const;

  /// The cardinality-waterfall text block appended to EXPLAIN ANALYZE:
  /// per node rows in -> out, drop %, time-to-first-row, self CPU/wait.
  std::string WaterfallText() const;
};

/// Builds the profile of one executed plan from the executor's per-node
/// measures. `scatter_charged_ms` is MediatorExecutor::scatter_charged_ms()
/// after the run.
PlanProfile BuildPlanProfile(const algebra::Operator& plan,
                             const NodeMeasureMap& measures,
                             double measured_ms, double scatter_charged_ms,
                             const std::string& fingerprint);

/// Aggregates PlanProfiles across queries, keyed by plan fingerprint.
/// Not thread-safe (owned by the single-threaded query path, like the
/// query log).
class ProfileRegistry {
 public:
  /// Per-(plan, node) aggregate across every recorded query.
  struct OperatorStat {
    std::string fingerprint;
    int node_id = 0;
    std::string label;
    algebra::OpKind kind = algebra::OpKind::kScan;
    int64_t execs = 0;  ///< queries in which this node was measured
    double cpu_ms = 0;  ///< summed self CPU
    double wait_ms = 0; ///< summed self wait (concurrent included)
    int64_t rows_in = 0;
    int64_t rows_out = 0;

    double total_ms() const { return cpu_ms + wait_ms; }
    int64_t rows_dropped() const {
      return rows_in > rows_out ? rows_in - rows_out : 0;
    }
    double drop_fraction() const {
      return rows_in > 0
                 ? static_cast<double>(rows_dropped()) /
                       static_cast<double>(rows_in)
                 : 0;
    }
  };

  void Record(const PlanProfile& profile);

  int64_t total_queries() const { return total_queries_; }
  size_t plan_count() const { return plans_.size(); }

  /// Top-k operators by summed self time (CPU + wait), descending;
  /// ties broken by (fingerprint, node id) so the order is total.
  std::vector<OperatorStat> HottestOperators(size_t top_k) const;
  /// Top-k operators by rows dropped (rows_in - rows_out), descending --
  /// the worst cardinality-waterfall drops; nodes that drop nothing are
  /// excluded.
  std::vector<OperatorStat> WorstDrops(size_t top_k) const;

  /// Folded stacks merged across every recorded profile, lines sorted
  /// lexicographically (deterministic merge order).
  std::string ToFolded() const;

 private:
  struct PlanAgg {
    int64_t queries = 0;
    std::vector<OperatorStat> nodes;  ///< by pre-order node id
  };
  std::map<std::string, PlanAgg> plans_;
  std::map<std::string, int64_t> folded_us_;  ///< stack -> microseconds
  int64_t total_queries_ = 0;
};

/// Pre-registers the disco.exec.operator.<kind>.{evals,rows} family (one
/// counter + one histogram per OpKind) so expositions list the whole
/// catalog from the first scrape. The executor bumps them per node.
void RegisterOperatorMetrics(metrics::Registry* registry);

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_PROFILER_H_
