// Mediator-side plan execution (paper Figure 2, steps 4-6): submits
// subqueries to wrappers, combines subanswers with mediator-local
// physical operators, and accounts simulated communication and mediator
// CPU time.
//
// Fault tolerance (docs/ROBUSTNESS.md): each submit is gated by the
// per-source circuit breaker, retried per the RetryPolicy (backoff
// charged to the simulated clock), and -- in allow_partial mode --
// a union branch whose source stayed unavailable is dropped with a
// structured warning instead of failing the query. Failures that would
// change answer semantics (join inputs, bind-join probes) still abort.

#ifndef DISCO_MEDIATOR_EXEC_H_
#define DISCO_MEDIATOR_EXEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "costmodel/cost_vector.h"
#include "mediator/federation.h"
#include "mediator/result_guard.h"
#include "mediator/retry_policy.h"
#include "mediator/source_health.h"
#include "sources/source_engine.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace mediator {

/// Communication and mediator-CPU constants (mirrors the local-scope
/// generic model; uniform communication per the paper's assumption).
struct MediatorCostParams {
  double ms_msg_latency = 50.0;
  double ms_per_net_byte = 0.01;
  double ms_med_cmp = 0.002;
};

/// Fault-tolerance knobs of the executor.
struct ExecOptions {
  RetryPolicy retry;
  /// Degrade instead of abort where semantics allow it: a submit that
  /// stays unavailable under a Union yields an empty subanswer plus a
  /// warning. Join inputs and bind-join probes still abort.
  bool allow_partial = false;
  /// Seed for retry backoff jitter; fixed seed => bit-identical runs.
  uint64_t jitter_seed = 0x5EED;
  /// Scatter-gather federation (docs/ROBUSTNESS.md): concurrent submits
  /// charged max-not-sum, per-query deadline, hedged requests. With the
  /// default (inactive) options the serial submit loop runs unchanged.
  FederationOptions federation;
  /// Validate every subanswer against the catalog schema
  /// (mediator/result_guard.h): malformed rows are quarantined with a
  /// warning and persistent malformation trips the breaker as a lying
  /// source. Needs a catalog for type and truncation checks; without
  /// one only finiteness/arity are checked.
  bool guard_responses = true;
};

/// A structured per-query warning: something was degraded but the query
/// still produced an answer.
struct ExecWarning {
  std::string source;   ///< lower-cased source name involved
  std::string message;
  int attempts = 0;     ///< submit attempts behind this warning (0 = n/a)
  /// Circuit-breaker state of `source` at warning time ("" = unknown).
  std::string breaker;
  /// Pre-order index of the submit this warning belongs to (-1 = not
  /// tied to a specific submit). Scatter-gather sorts gathered warnings
  /// by this key so concurrent execution cannot reorder them; not part
  /// of ToString().
  int subplan_index = -1;

  std::string ToString() const;
};

/// What actually happened at one plan node during execution -- the
/// measured side of EXPLAIN ANALYZE. Keyed by node identity (the
/// `algebra::Operator*` of the executed plan tree).
struct NodeMeasure {
  double inclusive_ms = 0;  ///< simulated time charged in this subtree
  int64_t rows = -1;        ///< output cardinality; -1 = never produced
  bool ok = false;          ///< false: failed or dropped branch
  int attempts = 0;         ///< submit/bind-join nodes: submit attempts
  double source_ms = 0;     ///< submit nodes: time at the source (excl. comm)
  /// Inclusive mediator-CPU ms charged in this subtree (per-row compare,
  /// sort, merge work) -- the ChargeCpu() side of the simulated clock.
  double cpu_ms = 0;
  /// Inclusive communication/wait ms charged *serially* in this subtree
  /// (source time, message latency, byte shipping, retry backoff,
  /// timeout stall -- the ChargeWait() side). Excludes scatter_wait_ms.
  double wait_ms = 0;
  /// Submits resolved by the concurrent scatter phase: the submit's
  /// response time on its scatter lane. That time was charged to the
  /// query once, max-not-sum, so it is kept apart from wait_ms.
  double scatter_wait_ms = 0;
  /// True when scatter_wait_ms is the relevant wait (concurrent lane).
  bool concurrent = false;
  /// Submit nodes: the source's time to its first result row.
  double first_row_ms = 0;
};
using NodeMeasureMap = std::map<const algebra::Operator*, NodeMeasure>;

/// What one submitted subquery cost -- the raw material of the history
/// mechanism (§4.3.1): first-answer time, all-answers time, cardinality.
struct SubqueryRecord {
  std::string source;
  std::unique_ptr<algebra::Operator> subplan;
  costmodel::CostVector measured;
  double source_ms = 0;  ///< execution time at the source (excl. comm)
  int attempts = 1;      ///< submit attempts this record took (retries incl.)
};

struct ExecResult {
  std::vector<std::string> columns;
  std::vector<storage::Tuple> tuples;
  double measured_ms = 0;  ///< total simulated time at the mediator
  std::vector<SubqueryRecord> subqueries;
  std::vector<ExecWarning> warnings;  ///< degradations survived
};

/// One scatter-phase submit on the concurrent timeline, exported for
/// critical-path analysis (mediator/critical_path.h). Times are ms on
/// the scatter phase's relative clock (0 = phase start). The *original*
/// interval is the primary submit as it ran; the *effective* interval is
/// what the query actually waited for after hedge resolution, deadline
/// clipping, and cancellation -- the phase's max-not-sum charge equals
/// the max effective end across events.
struct ScatterTimelineEvent {
  int subplan_index = -1;    ///< pre-order index of the submit node
  std::string source;        ///< primary source group key (lower-cased)
  int lane = 0;              ///< concurrency lane (1 + group index)
  double start_rel = 0;      ///< primary submit, original interval
  double end_rel = 0;
  double eff_start_rel = 0;  ///< effective interval (see above)
  double eff_end_rel = 0;
  double source_ms = 0;      ///< winner's execution time at the source
  int attempts = 0;          ///< primary + hedge attempts
  /// Same taxonomy as the trace span arg: ok, hedge-won, cancelled,
  /// deadline-expired, unavailable, error.
  std::string outcome;
  bool hedge = false;        ///< a hedged backup submit was launched
  std::string hedge_source;  ///< replica the hedge went to
  double hedge_start_rel = 0;
  double hedge_end_rel = 0;
  bool hedge_won = false;
};

/// The whole scatter phase on its concurrent clock -- everything the
/// critical-path analyzer needs to tile [0, charged_ms] exactly.
/// Depends only on the plan's submit order, never on the pool size.
struct ScatterTimeline {
  double charged_ms = 0;   ///< the single max-not-sum ChargeWait
  double deadline_ms = 0;  ///< per-query deadline (0 = none)
  std::vector<ScatterTimelineEvent> events;  ///< subplan-index order

  bool active() const { return !events.empty(); }
};

class MediatorExecutor {
 public:
  /// `catalog` supplies collection schemas for bind-join probing; it may
  /// be null if no plan contains bindjoin nodes. `health`, when given,
  /// is consulted before each submit (circuit breaker) and fed every
  /// submit outcome; `base_now_ms` anchors this execution on the
  /// mediator's cumulative simulated clock so breaker cooldowns span
  /// queries.
  MediatorExecutor(std::map<std::string, wrapper::Wrapper*> wrappers,
                   MediatorCostParams params, const Catalog* catalog = nullptr,
                   ExecOptions exec_options = {},
                   SourceHealthRegistry* health = nullptr,
                   double base_now_ms = 0)
      : wrappers_(std::move(wrappers)),
        params_(params),
        catalog_(catalog),
        exec_options_(exec_options),
        health_(health),
        base_now_ms_(base_now_ms),
        rng_(exec_options.jitter_seed) {}

  // Observability hooks (all optional; null = disabled).
  /// Span per plan node and per submit, timestamps driven by the charged
  /// simulated time. The trace's clock is advanced alongside Charge().
  void set_trace(tracing::Trace* trace) { trace_ = trace; }
  /// Counters/histograms for submits, retries, warnings (see
  /// docs/OBSERVABILITY.md for the name catalog).
  void set_metrics(metrics::Registry* metrics) { metrics_ = metrics; }
  /// Per-node measured time/cardinality, filled during Execute().
  void set_node_measures(NodeMeasureMap* measures) {
    node_measures_ = measures;
  }
  /// Pool the scatter phase fans source groups onto. Null (or
  /// federation.threads == 1) runs the groups inline -- byte-identical
  /// results either way (the determinism contract of common/thread_pool).
  void set_federation_pool(ThreadPool* pool) { federation_pool_ = pool; }
  /// Per-source latency quantiles feeding the hedge threshold. Also fed
  /// by this executor with every successful submit's charged duration.
  void set_latency_profile(SubmitLatencyProfile* profile) {
    profile_ = profile;
  }

  /// Executes a complete mediator plan. Every scan must sit under a
  /// submit to a registered wrapper.
  Result<ExecResult> Execute(const algebra::Operator& plan);

  /// Simulated time charged so far -- valid after Execute() even when it
  /// failed (honest accounting of work done before the failure).
  double elapsed_ms() const { return elapsed_ms_; }

  /// CPU/wait split of elapsed_ms(): mediator compare/sort/merge work
  /// vs. communication (source time, latency, backoff, stalls).
  double cpu_ms() const { return cpu_ms_; }
  double wait_ms() const { return wait_ms_; }
  /// The scatter phase's single max-not-sum charge during the last
  /// Execute() (0 when the federation layer was inactive). Included in
  /// wait_ms().
  double scatter_charged_ms() const { return scatter_charged_ms_; }

  /// The last Execute()'s scatter phase laid out on its concurrent
  /// clock (empty when the federation layer was inactive). Input to
  /// BuildCriticalPath (mediator/critical_path.h).
  const ScatterTimeline& scatter_timeline() const {
    return scatter_timeline_;
  }

  /// Sources whose submits exhausted all attempts during the last
  /// Execute() (lower-cased, in first-failure order).
  const std::vector<std::string>& failed_sources() const {
    return failed_sources_;
  }

  /// Result-guard roll-up of the last Execute(): subanswers checked,
  /// malformed batches, quarantined rows, truncated streams. Only
  /// committed answers count (discarded hedge losers do not).
  const GuardStats& guard_stats() const { return guard_stats_; }

 private:
  /// What the scatter phase decided for one kSubmit node; consumed by
  /// EvalSubmit instead of re-submitting. `duration_ms` is the submit's
  /// effective response time on the concurrent timeline (already part of
  /// the single max-not-sum scatter charge, so consumption charges 0).
  struct PrecomputedSubmit {
    Status status = Status::OK();
    sources::Rel rel;            ///< subanswer (valid when status is ok)
    double duration_ms = 0;
    double source_ms = 0;
    double first_tuple_ms = 0;   ///< source's time-to-first-row (ok only)
    int attempts = 0;
    /// Genuine submit exhaustion (replan-eligible); false for deadline
    /// expiry and cancellation, which are the mediator's doing.
    bool note_failed_source = false;
    /// Warnings surfaced when this submit is consumed (recoveries, hedge
    /// outcomes), in deterministic order.
    std::vector<ExecWarning> warnings;
    /// last_failure_ payload when status is not ok.
    ExecWarning failure;
  };

  /// Instrumented node dispatch: opens a span, runs EvalNode, records
  /// the node's measured time/cardinality.
  Result<sources::Rel> Eval(const algebra::Operator& op);
  Result<sources::Rel> EvalNode(const algebra::Operator& op);
  Result<sources::Rel> EvalSubmit(const algebra::Operator& op);
  Result<sources::Rel> EvalBindJoin(const algebra::Operator& op);
  /// Wave engine of the batched bind-join path (bind_batch_size or
  /// bind_parallelism > 1): partitions the distinct outer keys into
  /// fixed-size batches, ships each batch as one IN-set probe (or
  /// per-key selects for wrappers without in_select), and runs
  /// bind_parallelism batches per simulated-concurrent wave, the clock
  /// charged max-not-sum per wave. All probes target one wrapper, which
  /// is not thread-safe, so lanes execute serially in batch order --
  /// concurrency is simulated, keeping results byte-identical for any
  /// federation pool size. Fills `answers` (indexed like `keys`) and the
  /// probe/batch counts. A probe failure or deadline expiry aborts the
  /// whole bind join -- never a partial join.
  Status RunBindProbeWaves(const algebra::Operator& op, wrapper::Wrapper* w,
                           const std::vector<Value>& keys,
                           std::vector<std::vector<storage::Tuple>>* answers,
                           int64_t* probes, int64_t* batches);
  /// Breaker gate + retry loop + communication charging + health
  /// reporting + subquery record for one submitted subplan.
  Result<sources::ExecutionResult> SubmitToSource(
      const std::string& source, const algebra::Operator& subplan);
  /// Folds one guard report into the per-query roll-up, bumps the
  /// disco.guard.* counters, and surfaces a quarantine warning when the
  /// report found anything. The warning goes to `warning_sink` when
  /// given (scatter commit: surfaced later in subplan-index order),
  /// else straight to warnings_.
  void ApplyGuardReport(const GuardReport& report,
                        const std::string& source_lower, int attempts,
                        const std::string& breaker, int subplan_index,
                        std::vector<ExecWarning>* warning_sink = nullptr);
  Result<wrapper::Wrapper*> WrapperFor(const std::string& source) const;
  /// The scatter phase: runs every statically-known submit concurrently
  /// (grouped by wrapper, serial within a group), applies hedging,
  /// deadline clipping and cancellation, charges the clock max-not-sum,
  /// and stashes per-submit outcomes in precomputed_ for Eval to
  /// consume. No-op when the plan holds no submits.
  void ScatterGather(const algebra::Operator& plan);
  void Charge(double ms) {
    elapsed_ms_ += ms;
    if (trace_ != nullptr) trace_->Advance(ms);
  }
  /// Charge-site taxonomy behind the profiler's CPU/wait attribution:
  /// per-row mediator work charges CPU, everything a submit spends
  /// (source time, latency, bytes, backoff, stalls) charges wait.
  void ChargeCpu(double ms) {
    cpu_ms_ += ms;
    Charge(ms);
  }
  void ChargeWait(double ms) {
    wait_ms_ += ms;
    Charge(ms);
  }
  double Now() const { return base_now_ms_ + elapsed_ms_; }
  void NoteFailedSource(const std::string& source_lower);
  /// Appends a warning, mirroring it to the disco.exec.warnings counter.
  void AddWarning(ExecWarning warning);
  /// Breaker state of `source_lower` right now, "" without a registry.
  std::string BreakerStateNow(const std::string& source_lower) const;
  void BumpCounter(const char* name, int64_t delta = 1);

  /// Approximate wire size of a tuple in bytes.
  static int64_t TupleBytes(const storage::Tuple& t);

  std::map<std::string, wrapper::Wrapper*> wrappers_;
  MediatorCostParams params_;
  const Catalog* catalog_ = nullptr;
  ExecOptions exec_options_;
  SourceHealthRegistry* health_ = nullptr;
  double base_now_ms_ = 0;
  Rng rng_;
  tracing::Trace* trace_ = nullptr;
  metrics::Registry* metrics_ = nullptr;
  NodeMeasureMap* node_measures_ = nullptr;
  ThreadPool* federation_pool_ = nullptr;
  SubmitLatencyProfile* profile_ = nullptr;
  double elapsed_ms_ = 0;
  double cpu_ms_ = 0;
  double wait_ms_ = 0;
  double scatter_charged_ms_ = 0;
  ScatterTimeline scatter_timeline_;
  /// Cumulative rows produced by mediator-side nodes (trace counters).
  int64_t rows_emitted_ = 0;
  std::vector<SubqueryRecord> subqueries_;
  std::vector<ExecWarning> warnings_;
  std::vector<std::string> failed_sources_;
  /// Per-query result-guard roll-up (result_guard.h).
  GuardStats guard_stats_;
  /// Details of the most recent exhausted submit (for union warnings).
  ExecWarning last_failure_;
  /// Attempts of the most recent submit (for per-node measures).
  int last_submit_attempts_ = 0;
  /// Retry-budget units consumed this query (retries + hedge launches);
  /// see RetryPolicy::query_retry_budget.
  int retries_used_ = 0;
  /// Scatter-phase outcomes keyed by submit node, consumed by EvalSubmit.
  std::map<const algebra::Operator*, PrecomputedSubmit> precomputed_;
  /// Response time of the precomputed submit just consumed; folded into
  /// that node's NodeMeasure::inclusive_ms by Eval (the scatter phase
  /// charged the time globally, so the node itself charges 0).
  double precomputed_bonus_ms_ = 0;
  /// True while precomputed_bonus_ms_ refers to a scatter-phase submit
  /// (marks the node's NodeMeasure as concurrent).
  bool precomputed_concurrent_ = false;
  /// Trace lanes the scatter phase occupied (primary + hedge groups);
  /// bind-join probe lanes are allocated above this so the two
  /// concurrent phases never share a lane.
  int trace_lane_base_ = 0;
  /// Probe lanes started this execution; seeds each lane's backoff RNG
  /// stream apart from the scatter/hedge streams.
  uint64_t bind_probe_lane_seq_ = 0;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_EXEC_H_
