// Mediator-side plan execution (paper Figure 2, steps 4-6): submits
// subqueries to wrappers, combines subanswers with mediator-local
// physical operators, and accounts simulated communication and mediator
// CPU time.

#ifndef DISCO_MEDIATOR_EXEC_H_
#define DISCO_MEDIATOR_EXEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "costmodel/cost_vector.h"
#include "sources/source_engine.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace mediator {

/// Communication and mediator-CPU constants (mirrors the local-scope
/// generic model; uniform communication per the paper's assumption).
struct MediatorCostParams {
  double ms_msg_latency = 50.0;
  double ms_per_net_byte = 0.01;
  double ms_med_cmp = 0.002;
};

/// What one submitted subquery cost -- the raw material of the history
/// mechanism (§4.3.1): first-answer time, all-answers time, cardinality.
struct SubqueryRecord {
  std::string source;
  std::unique_ptr<algebra::Operator> subplan;
  costmodel::CostVector measured;
  double source_ms = 0;  ///< execution time at the source (excl. comm)
};

struct ExecResult {
  std::vector<std::string> columns;
  std::vector<storage::Tuple> tuples;
  double measured_ms = 0;  ///< total simulated time at the mediator
  std::vector<SubqueryRecord> subqueries;
};

class MediatorExecutor {
 public:
  /// `catalog` supplies collection schemas for bind-join probing; it may
  /// be null if no plan contains bindjoin nodes.
  MediatorExecutor(std::map<std::string, wrapper::Wrapper*> wrappers,
                   MediatorCostParams params, const Catalog* catalog = nullptr)
      : wrappers_(std::move(wrappers)), params_(params), catalog_(catalog) {}

  /// Executes a complete mediator plan. Every scan must sit under a
  /// submit to a registered wrapper.
  Result<ExecResult> Execute(const algebra::Operator& plan);

 private:
  Result<sources::Rel> Eval(const algebra::Operator& op);
  Result<sources::Rel> EvalSubmit(const algebra::Operator& op);
  Result<sources::Rel> EvalBindJoin(const algebra::Operator& op);
  Result<wrapper::Wrapper*> WrapperFor(const std::string& source) const;
  void Charge(double ms) { elapsed_ms_ += ms; }

  /// Approximate wire size of a tuple in bytes.
  static int64_t TupleBytes(const storage::Tuple& t);

  std::map<std::string, wrapper::Wrapper*> wrappers_;
  MediatorCostParams params_;
  const Catalog* catalog_ = nullptr;
  double elapsed_ms_ = 0;
  std::vector<SubqueryRecord> subqueries_;
};

}  // namespace mediator
}  // namespace disco

#endif  // DISCO_MEDIATOR_EXEC_H_
