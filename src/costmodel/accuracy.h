// Cost-model accuracy tracking: the evidence behind the paper's thesis.
//
// Every executed subquery yields an (estimated, measured) TotalTime
// pair, plus the rule scope that produced the estimate (default /
// wrapper / collection / predicate / query -- Figure 10's specificity
// hierarchy). The tracker accumulates the q-error
//
//   q(e, m) = max(e/m, m/e)   (>= 1; 1 = perfect)
//
// per (source, root operator, scope) cell, so the scoreboard rendered
// by Mediator::ExplainAnalyze quantifies how much each layer of cost
// information is actually helping: wrapper-exported rules should beat
// the calibrated default model, and query-scope history should drive
// q toward 1 on repeated subqueries (paper §4.1-4.3).

#ifndef DISCO_COSTMODEL_ACCURACY_H_
#define DISCO_COSTMODEL_ACCURACY_H_

#include <cstdint>
#include <map>
#include <string>

#include "algebra/operator.h"
#include "costmodel/rule.h"

namespace disco {
namespace costmodel {

class AccuracyTracker {
 public:
  /// q-error of one estimate; >= 1, robust to zero/negative inputs
  /// (clamped to a small epsilon).
  static double QError(double estimated, double measured);

  /// Records one executed subquery: rooted at `kind`, submitted to
  /// `source`, whose TotalTime estimate (produced by a rule at `scope`)
  /// was `estimated_ms` against `measured_ms` observed.
  void Record(const std::string& source, algebra::OpKind kind, Scope scope,
              double estimated_ms, double measured_ms);

  struct Cell {
    int64_t count = 0;
    double sum_log_q = 0;  ///< geometric mean = exp(sum_log_q / count)
    double max_q = 1;
    double sum_estimated_ms = 0;
    double sum_measured_ms = 0;

    double geo_mean_q() const;
  };

  struct Key {
    std::string source;  ///< lower-cased
    algebra::OpKind kind;
    Scope scope;
    bool operator<(const Key& o) const {
      if (source != o.source) return source < o.source;
      if (kind != o.kind) return kind < o.kind;
      return scope < o.scope;
    }
  };

  const std::map<Key, Cell>& cells() const { return cells_; }
  int64_t num_observations() const { return num_observations_; }

  /// The scoreboard: one line per (source, operator, scope) cell in key
  /// order, with observation count, geometric-mean and max q-error, and
  /// mean estimated/measured ms. Empty tracker renders a placeholder.
  std::string FormatScoreboard() const;

 private:
  std::map<Key, Cell> cells_;
  int64_t num_observations_ = 0;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_ACCURACY_H_
