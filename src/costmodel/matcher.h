// Rule-head matching (paper Section 3.3.2): unifies a compiled pattern
// against an operator node, producing variable bindings.

#ifndef DISCO_COSTMODEL_MATCHER_H_
#define DISCO_COSTMODEL_MATCHER_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "common/value.h"
#include "costlang/analyzer.h"

namespace disco {
namespace costmodel {

/// Bindings produced by a successful match: one Value per binding slot of
/// the rule (collection variables bind to provenance names, attribute
/// variables to attribute names, value variables to the predicate
/// constant, predicate variables to the predicate's rendering).
using Bindings = std::vector<Value>;

/// What the matcher needs to know about a node: the node itself plus the
/// provenance collection of each input (for a scan, the scanned
/// collection; otherwise each child subtree's first base collection).
struct MatchContext {
  const algebra::Operator* node = nullptr;
  std::vector<std::string> input_provenance;
};

/// Builds the MatchContext for `node`.
MatchContext MakeMatchContext(const algebra::Operator& node);

/// Attempts to unify `pattern` with the node. Returns bindings on
/// success, nullopt on mismatch. `num_slots` is the rule's binding-slot
/// count (pattern slots index into it).
std::optional<Bindings> MatchPattern(const costlang::CompiledPattern& pattern,
                                     int num_slots, const MatchContext& ctx);

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_MATCHER_H_
