#include "costmodel/cost_vector.h"

#include "common/str_util.h"

namespace disco {
namespace costmodel {

VarSet AllVars() {
  VarSet s;
  s.set();
  return s;
}

VarSet TotalTimeOnly() { return SingleVar(CostVarId::kTotalTime); }

VarSet SingleVar(CostVarId var) {
  VarSet s;
  s.set(static_cast<size_t>(var));
  return s;
}

Result<double> CostVector::Get(CostVarId var) const {
  if (!IsComputed(var)) {
    return Status::ExecutionError(
        std::string("cost variable ") + costlang::CostVarName(var) +
        " was not computed for this node");
  }
  return values_[static_cast<size_t>(var)];
}

CostVector CostVector::Full(double count_object, double total_size,
                            double object_size, double time_first,
                            double time_next, double total_time) {
  CostVector v;
  v.Set(CostVarId::kCountObject, count_object);
  v.Set(CostVarId::kTotalSize, total_size);
  v.Set(CostVarId::kObjectSize, object_size);
  v.Set(CostVarId::kTimeFirst, time_first);
  v.Set(CostVarId::kTimeNext, time_next);
  v.Set(CostVarId::kTotalTime, total_time);
  return v;
}

std::string CostVector::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < kNumCostVars; ++i) {
    CostVarId id = static_cast<CostVarId>(i);
    if (!IsComputed(id)) continue;
    if (!first) out += ", ";
    first = false;
    out += costlang::CostVarName(id);
    out += StringPrintf("=%.3f", GetOrZero(id));
  }
  out += "}";
  return out;
}

}  // namespace costmodel
}  // namespace disco
