#include "costmodel/accuracy.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace disco {
namespace costmodel {

double AccuracyTracker::QError(double estimated, double measured) {
  constexpr double kEps = 1e-6;  // ms; guards zero-cost corner cases
  const double e = std::max(estimated, kEps);
  const double m = std::max(measured, kEps);
  return std::max(e / m, m / e);
}

double AccuracyTracker::Cell::geo_mean_q() const {
  return count > 0 ? std::exp(sum_log_q / static_cast<double>(count)) : 1.0;
}

void AccuracyTracker::Record(const std::string& source, algebra::OpKind kind,
                             Scope scope, double estimated_ms,
                             double measured_ms) {
  const double q = QError(estimated_ms, measured_ms);
  Cell& cell = cells_[Key{ToLower(source), kind, scope}];
  ++cell.count;
  cell.sum_log_q += std::log(q);
  cell.max_q = std::max(cell.max_q, q);
  cell.sum_estimated_ms += estimated_ms;
  cell.sum_measured_ms += measured_ms;
  ++num_observations_;
}

std::string AccuracyTracker::FormatScoreboard() const {
  std::string out =
      "cost-model accuracy (per source x operator x winning scope):\n";
  out += StringPrintf("  %-10s %-10s %-12s %5s %8s %8s %12s %12s\n", "source",
                      "operator", "scope", "n", "geo-q", "max-q", "avg-est-ms",
                      "avg-meas-ms");
  if (cells_.empty()) {
    out += "  (no executions recorded yet)\n";
    return out;
  }
  for (const auto& [key, cell] : cells_) {
    const double n = static_cast<double>(cell.count);
    out += StringPrintf(
        "  %-10s %-10s %-12s %5lld %8.2f %8.2f %12.1f %12.1f\n",
        key.source.c_str(), algebra::OpKindToString(key.kind),
        ScopeToString(key.scope), static_cast<long long>(cell.count),
        cell.geo_mean_q(), cell.max_q, cell.sum_estimated_ms / n,
        cell.sum_measured_ms / n);
  }
  return out;
}

}  // namespace costmodel
}  // namespace disco
