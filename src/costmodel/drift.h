// Cost-model drift monitoring (the workload-over-time counterpart of
// accuracy.h).
//
// The paper's dynamic extensions (§4.3) assume that per-source cost
// knowledge goes stale: sources change load, data grows, wrappers get
// rewritten. AccuracyTracker answers "how good has each layer of cost
// information been since process start"; the DriftMonitor answers the
// operational question "has the blended model *recently* stopped
// tracking reality, and which rule scope should be recalibrated".
//
// Per (source, root operator, winning rule scope) cell it keeps
//   - a *frozen baseline*: the q-error quantile over the first
//     `baseline_observations` measurements (what "healthy" looked like
//     when the cell first produced estimates), and
//   - a *sliding window* of recent q-errors keyed on the simulated
//     clock (common/sketch.h).
// When the windowed quantile degrades beyond `degrade_ratio` times the
// frozen baseline, the cell is *breached*: exactly one DriftEvent fires
// (no alert storms) and the cell stays latched until the windowed
// quantile comes back under the threshold -- which happens when
// HistoryManager's adjustment factors re-converge, or after an
// administrative re-registration (ResetBaseline).

#ifndef DISCO_COSTMODEL_DRIFT_H_
#define DISCO_COSTMODEL_DRIFT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "common/sketch.h"
#include "costmodel/rule.h"

namespace disco {
namespace costmodel {

struct DriftOptions {
  /// Master switch; Observe() is a no-op when false.
  bool enabled = true;
  /// Quantile of the q-error distribution that is compared (0.9 = P90).
  double quantile = 0.9;
  /// Width of the sliding window, in simulated milliseconds.
  double window_ms = 60000.0;
  /// Sub-sketches the window is built from (granularity of expiry).
  int window_buckets = 6;
  /// Observations that freeze a cell's baseline.
  int baseline_observations = 20;
  /// Minimum observations inside the window before a breach can fire
  /// (suppresses single-outlier alerts).
  int min_window_observations = 5;
  /// Breach threshold: windowed quantile > degrade_ratio * baseline.
  double degrade_ratio = 2.0;
};

/// One raised drift alarm: the windowed q-error quantile of a cell
/// degraded past the configured ratio of its frozen baseline.
struct DriftEvent {
  int64_t seq = 0;  ///< 1-based event number, monotonically increasing
  std::string source;
  algebra::OpKind kind = algebra::OpKind::kScan;
  Scope scope = Scope::kDefault;
  double at_ms = 0;       ///< simulated timestamp of the breach
  double window_q = 0;    ///< windowed quantile at breach time
  double baseline_q = 0;  ///< frozen baseline quantile
  /// What to recalibrate, derived from the cell's scope: re-register
  /// the wrapper (wrapper-provided scopes) or let history re-converge
  /// (default/query scopes).
  std::string recommendation;

  std::string ToString() const;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftOptions options = {});

  /// Feeds one measured execution: the estimate `estimated_ms`
  /// (produced by a rule at `scope`) for a subquery rooted at `kind` on
  /// `source`, against the `measured_ms` observed, at simulated time
  /// `now_ms`. Same measurement path as HistoryManager::RecordExecution
  /// and AccuracyTracker::Record -- the mediator calls all three.
  void Observe(const std::string& source, algebra::OpKind kind, Scope scope,
               double estimated_ms, double measured_ms, double now_ms);

  /// Invoked synchronously from Observe() for each breach. The mediator
  /// hooks DISCO_LOG + the disco.costmodel.drift_events counter + a
  /// trace instant event here.
  using Listener = std::function<void(const DriftEvent&)>;
  void SetListener(Listener listener) { listener_ = std::move(listener); }

  /// Every event raised so far, in order.
  const std::vector<DriftEvent>& events() const { return events_; }

  struct Key {
    std::string source;  ///< lower-cased
    algebra::OpKind kind = algebra::OpKind::kScan;
    Scope scope = Scope::kDefault;
    bool operator<(const Key& o) const {
      if (source != o.source) return source < o.source;
      if (kind != o.kind) return kind < o.kind;
      return scope < o.scope;
    }
  };

  /// Point-in-time view of one cell (for MonitorReport and tests).
  struct CellStatus {
    Key key;
    int64_t total_observations = 0;
    int64_t window_count = 0;  ///< observations still inside the window
    double window_q = 0;       ///< windowed q-error quantile
    double baseline_q = 0;     ///< frozen (or still-accumulating) baseline
    bool baseline_frozen = false;
    bool breached = false;     ///< currently latched past the threshold
  };

  /// All cells in key order, with window state evaluated at `now_ms`.
  std::vector<CellStatus> Cells(double now_ms) const;

  /// Cells currently past the threshold, worst (highest
  /// window_q / baseline_q ratio) first: what to recalibrate next.
  std::vector<CellStatus> RecommendRecalibration(double now_ms) const;

  /// Forgets baselines, windows, and latches for `source` (case-
  /// insensitive) -- an administrative statement that the source was
  /// recalibrated (e.g. Mediator::ReRegisterWrapper). Fresh baselines
  /// re-freeze from subsequent observations. Raised events are kept.
  void ResetBaseline(const std::string& source);

  /// Re-evaluates latches at `now_ms` without adding an observation:
  /// cells whose windowed quantile fell back under the threshold
  /// (because old samples expired) un-latch. Returns cells un-latched.
  int Refresh(double now_ms);

  const DriftOptions& options() const { return options_; }
  int64_t num_observations() const { return num_observations_; }

  /// Human-readable table of Cells(now_ms), worst window_q first,
  /// capped at `top_k` rows (<= 0 = all).
  std::string FormatReport(double now_ms, int top_k = 0) const;

 private:
  struct Cell {
    P2Quantile baseline;
    double frozen_baseline_q = 0;
    bool frozen = false;
    bool breached = false;
    int64_t total = 0;
    SlidingWindowQuantile window;
    Cell(double quantile, double window_ms, int buckets)
        : baseline(quantile), window(quantile, window_ms, buckets) {}
  };

  /// Threshold the windowed quantile is compared against; 0 while the
  /// baseline is still accumulating (no breach possible).
  double ThresholdOf(const Cell& cell) const;
  CellStatus StatusOf(const Key& key, const Cell& cell, double now_ms) const;

  DriftOptions options_;
  std::map<Key, Cell> cells_;
  std::vector<DriftEvent> events_;
  Listener listener_;
  int64_t num_observations_ = 0;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_DRIFT_H_
