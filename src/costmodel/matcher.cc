#include "costmodel/matcher.h"

#include "common/str_util.h"

namespace disco {
namespace costmodel {

namespace {

using algebra::OpKind;
using costlang::CompiledPattern;

/// Last component of a possibly qualified attribute name ("E.id" -> "id").
std::string_view Unqualified(const std::string& attr) {
  size_t pos = attr.rfind('.');
  return pos == std::string::npos ? std::string_view(attr)
                                  : std::string_view(attr).substr(pos + 1);
}

/// Binds `slot` to `v`, or checks consistency if already bound (a variable
/// repeated in a head must unify to equal values).
bool BindSlot(Bindings* bindings, int slot, Value v) {
  Value& cur = (*bindings)[static_cast<size_t>(slot)];
  if (cur.is_null()) {
    cur = std::move(v);
    return true;
  }
  if (cur.is_string() && v.is_string()) {
    return EqualsIgnoreCase(cur.AsString(), v.AsString());
  }
  return cur == v;
}

bool MatchAttr(const costlang::AttrPattern& pat, const std::string& node_attr,
               Bindings* bindings) {
  std::string_view plain = Unqualified(node_attr);
  if (pat.is_literal) {
    return EqualsIgnoreCase(plain, pat.name);
  }
  return BindSlot(bindings, pat.slot, Value(std::string(plain)));
}

}  // namespace

MatchContext MakeMatchContext(const algebra::Operator& node) {
  MatchContext ctx;
  ctx.node = &node;
  if (node.kind == OpKind::kScan) {
    ctx.input_provenance.push_back(node.collection);
  } else {
    for (const auto& child : node.children) {
      ctx.input_provenance.push_back(child->FirstBaseCollection());
    }
    // A bind join's second logical input is the probed base collection.
    if (node.kind == OpKind::kBindJoin) {
      ctx.input_provenance.push_back(node.collection);
    }
  }
  return ctx;
}

std::optional<Bindings> MatchPattern(const CompiledPattern& pattern,
                                     int num_slots, const MatchContext& ctx) {
  const algebra::Operator& node = *ctx.node;
  if (pattern.op != node.kind) return std::nullopt;
  if (pattern.inputs.size() != ctx.input_provenance.size()) return std::nullopt;

  Bindings bindings(static_cast<size_t>(num_slots));

  // Collection positions match against input provenance.
  for (size_t i = 0; i < pattern.inputs.size(); ++i) {
    const costlang::InputPattern& in = pattern.inputs[i];
    const std::string& prov = ctx.input_provenance[i];
    if (in.is_literal) {
      if (!EqualsIgnoreCase(prov, in.name)) return std::nullopt;
    } else {
      if (!BindSlot(&bindings, in.slot, Value(prov))) return std::nullopt;
    }
  }

  switch (pattern.pred_kind) {
    case CompiledPattern::PredKind::kNone:
      break;

    case CompiledPattern::PredKind::kFree: {
      // Binds to a rendering of whatever occupies the predicate position.
      std::string repr;
      switch (node.kind) {
        case OpKind::kSelect:
          repr = node.select_pred->ToString();
          break;
        case OpKind::kJoin:
        case OpKind::kBindJoin:
          repr = node.join_pred->ToString();
          break;
        case OpKind::kProject:
          repr = JoinStrings(node.project_attrs, ", ");
          break;
        case OpKind::kAggregate:
          repr = algebra::AggFuncToString(node.agg_func);
          break;
        default:
          repr = "";
          break;
      }
      if (!BindSlot(&bindings, pattern.pred_slot, Value(repr))) {
        return std::nullopt;
      }
      break;
    }

    case CompiledPattern::PredKind::kSelect: {
      if (node.kind != OpKind::kSelect) return std::nullopt;
      const algebra::SelectPredicate& pred = *node.select_pred;
      if (pattern.sel_op != pred.op) return std::nullopt;
      if (!MatchAttr(pattern.sel_attr, pred.attribute, &bindings)) {
        return std::nullopt;
      }
      if (pattern.sel_value.is_literal) {
        if (!(pattern.sel_value.value == pred.value)) return std::nullopt;
      } else {
        if (!BindSlot(&bindings, pattern.sel_value.slot, pred.value)) {
          return std::nullopt;
        }
      }
      break;
    }

    case CompiledPattern::PredKind::kJoin: {
      if (node.kind != OpKind::kJoin && node.kind != OpKind::kBindJoin) {
        return std::nullopt;
      }
      const algebra::JoinPredicate& pred = *node.join_pred;
      if (!MatchAttr(pattern.join_left, pred.left_attribute, &bindings) ||
          !MatchAttr(pattern.join_right, pred.right_attribute, &bindings)) {
        return std::nullopt;
      }
      break;
    }

    case CompiledPattern::PredKind::kSortAttr: {
      if (node.kind != OpKind::kSort) return std::nullopt;
      if (!MatchAttr(pattern.sort_attr, node.sort_attr, &bindings)) {
        return std::nullopt;
      }
      break;
    }
  }
  return bindings;
}

}  // namespace costmodel
}  // namespace disco
