// The cost evaluation algorithm of paper Section 4.2 (Figure 11).
//
// Estimating a plan is a two-phase traversal:
//   phase 1 (top-down): for every required cost variable of a node, select
//     the most specific matching rules (query > predicate > collection >
//     wrapper > local > default); propagate to each child exactly the set
//     of variables the selected formulas reference (optimization (i)); cut
//     the recursion into children from which nothing is required
//     (optimization (ii));
//   phase 2 (bottom-up): evaluate the selected formulas in dependency
//     order (sizes before times); when several same-level formulas compute
//     one variable, all are invoked and the minimum wins (Step 3).
//
// Section 4.3's extensions are both here: query-scope lookups /
// adjustment factors via the HistoryManager, and branch-and-bound pruning
// via EstimateOptions::prune_bound.

#ifndef DISCO_COSTMODEL_ESTIMATOR_H_
#define DISCO_COSTMODEL_ESTIMATOR_H_

#include <limits>
#include <string>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "costmodel/cost_memo.h"
#include "costmodel/cost_vector.h"
#include "costmodel/history.h"
#include "costmodel/registry.h"

namespace disco {
namespace costmodel {

struct EstimateOptions {
  /// Paper §4.2 optimization (i)+(ii): pass each child only the variables
  /// actually referenced; skip children entirely when none are. Disabling
  /// computes all six variables everywhere (for the ablation bench).
  bool propagate_required_vars = true;

  /// Consult query-scope entries and adjustment factors (§4.3.1).
  bool use_history = true;

  /// §3.3.2 alternative tie-break: take only the first (registration
  /// order) rule at the winning level instead of min across all of them.
  bool tie_break_first_only = false;

  /// §4.3.2 branch-and-bound: abort as soon as any node's TotalTime
  /// exceeds this bound (the best complete plan seen so far).
  double prune_bound = std::numeric_limits<double>::infinity();

  /// Record which rule won each variable at each node (EXPLAIN).
  bool collect_explain = false;

  /// Subplan cost memoization (docs/PERFORMANCE.md). When both are set,
  /// every completed node estimate is looked up in / recorded into the
  /// memo keyed by (subtree hash, source context, required vars, option
  /// bits). `memo` is the shared base and stays read-only during the
  /// estimate; discoveries and hit/miss tallies go into the private
  /// `memo_delta`, which the caller absorbs afterwards (in slot order
  /// when estimates ran in parallel). The caller must have synced the
  /// memo against RuleRegistry::epoch(). collect_explain disables
  /// memoization (a hit would skip the per-node records).
  const CostMemo* memo = nullptr;
  MemoDelta* memo_delta = nullptr;
};

/// Which rule produced a variable's (minimum) value at one node.
struct VarExplain {
  CostVarId var = CostVarId::kTotalTime;
  double value = 0;
  Scope scope = Scope::kDefault;
  std::string rule;  ///< the winning rule's pattern, or "(query scope)"
};

/// EXPLAIN record for one plan node (pre-order).
struct NodeExplain {
  int depth = 0;
  std::string label;        ///< operator rendering, e.g. "select(salary = 7)"
  std::string source;       ///< executing context ("" = mediator)
  CostVector cost;
  bool from_query_scope = false;
  std::vector<VarExplain> vars;
};

struct PlanEstimate {
  CostVector root;
  bool pruned = false;       ///< estimation aborted via prune_bound
  int nodes_visited = 0;
  int formulas_evaluated = 0;
  int match_attempts = 0;    ///< rule-head unification attempts (Ext-2)
  /// Filled when EstimateOptions::collect_explain is set.
  std::vector<NodeExplain> explain;

  double total_time() const { return root.total_time(); }
};

/// Human-readable rendering of an estimate's explain records: one line
/// per node, indented by plan depth, with the winning rule per variable.
std::string FormatExplain(const PlanEstimate& estimate);

class CostEstimator {
 public:
  /// `history` may be null (no query scope / no adjustment).
  CostEstimator(const RuleRegistry* registry, const Catalog* catalog,
                const HistoryManager* history = nullptr)
      : registry_(registry), catalog_(catalog), history_(history) {}

  /// Estimates a mediator plan (submit nodes switch the scope context to
  /// their wrapper, per Figure 10).
  Result<PlanEstimate> Estimate(const algebra::Operator& plan,
                                const EstimateOptions& options = {}) const;

  /// Estimates `plan` as if it executed entirely at `source` -- the view
  /// a wrapper-scope estimate takes of a subquery.
  Result<PlanEstimate> EstimateAt(const algebra::Operator& plan,
                                  const std::string& source,
                                  const EstimateOptions& options = {}) const;

  /// Convenience: TotalTime of the whole plan.
  Result<double> EstimateTotalTime(const algebra::Operator& plan,
                                   const EstimateOptions& options = {}) const;

  const RuleRegistry* registry() const { return registry_; }

 private:
  const RuleRegistry* registry_;
  const Catalog* catalog_;
  const HistoryManager* history_;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_ESTIMATOR_H_
