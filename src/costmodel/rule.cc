#include "costmodel/rule.h"

namespace disco {
namespace costmodel {

const char* ScopeToString(Scope s) {
  switch (s) {
    case Scope::kDefault: return "default";
    case Scope::kLocal: return "local";
    case Scope::kWrapper: return "wrapper";
    case Scope::kCollection: return "collection";
    case Scope::kPredicate: return "predicate";
    case Scope::kQuery: return "query";
  }
  return "?";
}

Scope DeriveWrapperScope(const costlang::CompiledPattern& pattern) {
  if (pattern.predicate_bound) return Scope::kPredicate;
  if (pattern.collection_bound) return Scope::kCollection;
  return Scope::kWrapper;
}

bool RegisteredRule::OrderedBefore(const RegisteredRule& other) const {
  if (scope != other.scope) return ScopeRank(scope) > ScopeRank(other.scope);
  if (rule->pattern.specificity != other.rule->pattern.specificity) {
    return rule->pattern.specificity > other.rule->pattern.specificity;
  }
  return seq < other.seq;
}

}  // namespace costmodel
}  // namespace disco
