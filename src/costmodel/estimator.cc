#include "costmodel/estimator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "algebra/plan_printer.h"
#include "common/str_util.h"
#include "costlang/vm.h"
#include "costmodel/matcher.h"
#include "costmodel/selectivity.h"

namespace disco {
namespace costmodel {

namespace {

using algebra::OpKind;
using algebra::Operator;
using costlang::AttrStatId;
using costlang::CompiledFormula;
using costlang::CompiledRule;

/// Per-node estimation state.
struct NodeState {
  const Operator* node = nullptr;
  std::string source_ctx;  ///< wrapper executing the node; "" = mediator
  std::vector<std::unique_ptr<NodeState>> children;
  MatchContext match_ctx;
  CostVector cost;
};

std::unique_ptr<NodeState> BuildStateTree(const Operator& node,
                                          const std::string& source_ctx) {
  auto st = std::make_unique<NodeState>();
  st->node = &node;
  st->source_ctx = source_ctx;
  st->match_ctx = MakeMatchContext(node);
  const std::string child_ctx =
      node.kind == OpKind::kSubmit ? ToLower(node.source) : source_ctx;
  for (const auto& c : node.children) {
    st->children.push_back(BuildStateTree(*c, child_ctx));
  }
  return st;
}

/// Fingerprint of the options that change what an estimate computes.
/// prune_bound is deliberately excluded: a *completed* node estimate is
/// bound-independent (pruning only aborts traversals early, it never
/// alters computed values), so complete results are shareable across
/// bounds. collect_explain disables memoization entirely.
uint32_t MemoOptionBits(const EstimateOptions& o) {
  return (o.propagate_required_vars ? 1u : 0u) | (o.use_history ? 2u : 0u) |
         (o.tie_break_first_only ? 4u : 0u);
}

/// Default attribute statistics when a wrapper exported none -- the
/// "standard values ... as usual" of paper Section 6.
AttributeStats DefaultAttrStats(const ExtentStats& extent) {
  AttributeStats st;
  st.indexed = false;
  st.clustered = false;
  st.count_distinct = std::max<int64_t>(1, extent.count_object / 10);
  return st;
}

/// The walk over one node: selects rules, recurses, evaluates.
class NodeEstimator : public costlang::EvalContext {
 public:
  NodeEstimator(NodeState* st, const RuleRegistry* registry,
                const Catalog* catalog, const HistoryManager* history,
                const EstimateOptions& options, PlanEstimate* out,
                int depth = 0)
      : st_(st),
        registry_(registry),
        catalog_(catalog),
        history_(history),
        options_(options),
        out_(out),
        depth_(depth) {
    child_required_.resize(st_->children.size());
  }

  Status Run(VarSet required) {
    ++out_->nodes_visited;

    // EXPLAIN records are pre-order: reserve this node's slot before
    // recursing, fill it after evaluation.
    size_t explain_idx = 0;
    if (options_.collect_explain) {
      explain_idx = out_->explain.size();
      NodeExplain rec;
      rec.depth = depth_;
      rec.label = algebra::NodeLabel(*st_->node);
      rec.source = st_->source_ctx;
      out_->explain.push_back(std::move(rec));
    }

    // Pruning needs TotalTime observable at every node.
    if (std::isfinite(options_.prune_bound)) {
      required.set(static_cast<size_t>(CostVarId::kTotalTime));
    }

    // Memo lookup: a previously completed estimate of this exact subtree
    // in this context replaces the whole traversal. A result computed for
    // AllVars is a valid superset answer for any smaller required set, so
    // we probe that key too -- it is how subplans priced standalone (root
    // asks for everything) are reused when embedded under a join.
    memo_enabled_ = options_.memo != nullptr && options_.memo_delta != nullptr &&
                    !options_.collect_explain;
    if (memo_enabled_) {
      memo_key_.plan_hash = st_->node->Hash();
      memo_key_.source_ctx = st_->source_ctx;
      memo_key_.required_bits = static_cast<uint32_t>(required.to_ulong());
      memo_key_.option_bits = MemoOptionBits(options_);
      const CostVector* found = options_.memo_delta->Find(memo_key_);
      if (found == nullptr) found = options_.memo->Find(memo_key_);
      const uint32_t all_bits = static_cast<uint32_t>(AllVars().to_ulong());
      if (found == nullptr && memo_key_.required_bits != all_bits) {
        MemoKey all = memo_key_;
        all.required_bits = all_bits;
        found = options_.memo_delta->Find(all);
        if (found == nullptr) found = options_.memo->Find(all);
      }
      if (found != nullptr) {
        ++options_.memo_delta->hits;
        st_->cost = *found;
        return CheckPrune();
      }
      ++options_.memo_delta->misses;
    }

    // Query scope: an exactly recorded subquery short-circuits everything
    // (most specific level of the Figure 10 hierarchy).
    if (options_.use_history && !st_->source_ctx.empty()) {
      const CostVector* recorded =
          registry_->QueryCost(st_->source_ctx, *st_->node);
      if (recorded != nullptr) {
        st_->cost = *recorded;
        if (options_.collect_explain) {
          out_->explain[explain_idx].cost = st_->cost;
          out_->explain[explain_idx].from_query_scope = true;
        }
        if (memo_enabled_) options_.memo_delta->Insert(memo_key_, st_->cost);
        return CheckPrune();
      }
    }

    // ---- Phase 1: associate cost formulas with the node. -------------
    const std::vector<RegisteredRule>& candidates =
        registry_->Candidates(st_->source_ctx, st_->node->kind);
    exact_bucket_ =
        registry_->ExactSelectBucket(st_->source_ctx, *st_->node);

    VarSet done;
    VarSet pending = required;
    while (pending.any()) {
      VarSet round = pending;
      pending.reset();
      for (int v = 0; v < kNumCostVars; ++v) {
        if (!round.test(static_cast<size_t>(v)) ||
            done.test(static_cast<size_t>(v))) {
          continue;
        }
        CostVarId var = static_cast<CostVarId>(v);
        DISCO_RETURN_NOT_OK(SelectRulesFor(var, candidates, &pending));
        done.set(static_cast<size_t>(v));
      }
      // Drop already-done vars from the next round.
      pending &= ~done;
    }
    required_closure_ = done;

    // ---- Phase 2: recursive traversal (depth-first fetch). -----------
    const int num_children = static_cast<int>(st_->children.size());
    for (int i = 0; i < num_children; ++i) {
      VarSet child_req =
          options_.propagate_required_vars ? child_required_[i] : AllVars();
      if (child_req.none() && options_.propagate_required_vars) {
        continue;  // optimization (ii): cut the recursive call
      }
      NodeEstimator child(st_->children[static_cast<size_t>(i)].get(),
                          registry_, catalog_, history_, options_, out_,
                          depth_ + 1);
      DISCO_RETURN_NOT_OK(child.Run(child_req));
      if (out_->pruned) return Status::OK();
    }

    // ---- Phase 3: apply formulas to the node. -------------------------
    for (int v = 0; v < kNumCostVars; ++v) {
      CostVarId var = static_cast<CostVarId>(v);
      if (!required_closure_.test(static_cast<size_t>(v))) continue;
      DISCO_RETURN_NOT_OK(EvaluateVar(var));
    }

    if (options_.collect_explain) {
      out_->explain[explain_idx].cost = st_->cost;
      out_->explain[explain_idx].vars = std::move(explain_vars_);
    }

    // History-based parameter adjustment at submit boundaries (§4.3.1).
    if (options_.use_history && history_ != nullptr &&
        st_->node->kind == OpKind::kSubmit &&
        st_->cost.IsComputed(CostVarId::kTotalTime)) {
      double factor = history_->AdjustmentFactor(
          st_->node->source, st_->node->child(0).kind);
      if (factor != 1.0) {
        st_->cost.Set(CostVarId::kTotalTime,
                      st_->cost.total_time() * factor);
      }
    }
    // Insert after the history adjustment so a memo hit replays the
    // adjusted value. Reached only for complete results: a pruned child
    // returned early above, and this node's own prune check (below) does
    // not invalidate the vector just computed.
    if (memo_enabled_) options_.memo_delta->Insert(memo_key_, st_->cost);
    return CheckPrune();
  }

  const CostVector& cost() const { return st_->cost; }

  // ---- costlang::EvalContext ------------------------------------------

  Result<double> InputVar(int input, CostVarId var) override {
    // Base-collection inputs read catalog statistics: a scan's single
    // input, and a bind join's probed collection (input 1).
    const bool collection_input =
        st_->node->kind == OpKind::kScan ||
        (st_->node->kind == OpKind::kBindJoin && input == 1);
    if (collection_input) {
      DISCO_ASSIGN_OR_RETURN(CatalogEntry entry,
                             catalog_->Collection(st_->node->collection));
      switch (var) {
        case CostVarId::kCountObject:
          return static_cast<double>(entry.stats.extent.count_object);
        case CostVarId::kTotalSize:
          return static_cast<double>(entry.stats.extent.total_size);
        case CostVarId::kObjectSize:
          return static_cast<double>(entry.stats.extent.object_size);
        default:
          return 0.0;  // a raw collection has no time cost of its own
      }
    }
    if (input < 0 || input >= static_cast<int>(st_->children.size())) {
      return Status::Internal(StringPrintf("input %d out of range", input));
    }
    return st_->children[static_cast<size_t>(input)]->cost.Get(var);
  }

  Result<Value> InputAttrStat(int input, const std::string& attr,
                              AttrStatId stat) override {
    if (input < 0 ||
        input >= static_cast<int>(st_->match_ctx.input_provenance.size())) {
      return Status::Internal(StringPrintf("input %d out of range", input));
    }
    const std::string& prov =
        st_->match_ctx.input_provenance[static_cast<size_t>(input)];
    if (prov.empty()) {
      return Status::ExecutionError(
          "input has no provenance collection for attribute statistics");
    }
    DISCO_ASSIGN_OR_RETURN(CatalogEntry entry, catalog_->Collection(prov));
    AttributeStats astats;
    Result<AttributeStats> looked = entry.stats.Attribute(attr);
    if (looked.ok()) {
      astats = *looked;
    } else {
      astats = DefaultAttrStats(entry.stats.extent);
    }
    switch (stat) {
      case AttrStatId::kIndexed:
        return Value(astats.indexed ? 1.0 : 0.0);
      case AttrStatId::kClustered:
        return Value(astats.clustered ? 1.0 : 0.0);
      case AttrStatId::kCountDistinct:
        return Value(static_cast<double>(astats.count_distinct));
      case AttrStatId::kMin:
        if (astats.min.is_null()) {
          return Status::ExecutionError("Min of '" + attr +
                                        "' was not exported by the wrapper");
        }
        return astats.min;
      case AttrStatId::kMax:
        if (astats.max.is_null()) {
          return Status::ExecutionError("Max of '" + attr +
                                        "' was not exported by the wrapper");
        }
        return astats.max;
    }
    return Status::Internal("bad AttrStatId");
  }

  Result<double> SelfVar(CostVarId var) override {
    return st_->cost.Get(var);
  }

  Result<Value> Binding(int slot) override {
    if (current_bindings_ == nullptr || slot < 0 ||
        slot >= static_cast<int>(current_bindings_->size())) {
      return Status::Internal("binding slot out of range");
    }
    const Value& v = (*current_bindings_)[static_cast<size_t>(slot)];
    if (v.is_null()) {
      return Status::ExecutionError("referenced head variable is unbound");
    }
    return v;
  }

  Result<std::string> ImpliedAttribute() override {
    const Operator& node = *st_->node;
    if (node.select_pred.has_value()) return node.select_pred->attribute;
    if (!node.sort_attr.empty()) return node.sort_attr;
    if (!node.agg_attr.empty()) return node.agg_attr;
    return Status::ExecutionError(
        "no implied attribute: the node has no predicate");
  }

  Result<double> Selectivity(int input, const std::optional<std::string>& attr,
                             const std::optional<Value>& value) override {
    std::string attribute;
    algebra::CmpOp op = algebra::CmpOp::kEq;
    Value v;
    const Operator& node = *st_->node;
    if (!attr.has_value()) {
      if (!node.select_pred.has_value()) {
        return Status::ExecutionError(
            "selectivity(): the node has no selection predicate");
      }
      attribute = node.select_pred->attribute;
      op = node.select_pred->op;
      v = value.has_value() ? *value : node.select_pred->value;
    } else {
      attribute = *attr;
      if (!value.has_value()) {
        return Status::ExecutionError("selectivity(A): missing value");
      }
      v = *value;
      if (node.select_pred.has_value() &&
          EqualsIgnoreCase(node.select_pred->attribute, attribute)) {
        op = node.select_pred->op;
      }
    }
    if (input < 0 ||
        input >= static_cast<int>(st_->match_ctx.input_provenance.size())) {
      return Status::Internal(StringPrintf("input %d out of range", input));
    }
    // IN-set predicates are set-valued: estimate per value and sum.
    const std::vector<Value>* in_values =
        (op == algebra::CmpOp::kIn && node.select_pred.has_value() &&
         node.select_pred->op == algebra::CmpOp::kIn)
            ? &node.select_pred->in_values
            : nullptr;
    auto fallback = [&]() {
      double s = DefaultSelectivity(op);
      if (in_values != nullptr) {
        s = std::clamp(s * static_cast<double>(in_values->size()), 0.0, 1.0);
      }
      return s;
    };
    const std::string& prov =
        st_->match_ctx.input_provenance[static_cast<size_t>(input)];
    if (prov.empty()) return fallback();
    Result<CatalogEntry> entry = catalog_->Collection(prov);
    if (!entry.ok()) return fallback();
    Result<AttributeStats> astats = entry->stats.Attribute(attribute);
    if (!astats.ok()) return fallback();
    if (in_values != nullptr) {
      return EstimateInSelectivity(*astats, *in_values);
    }
    return EstimateSelectivity(*astats, op, v);
  }

 private:
  /// A rule selected for this node, with its match bindings.
  struct Selected {
    const RegisteredRule* reg = nullptr;
    Bindings bindings;
    std::optional<std::vector<Value>> locals;  ///< evaluated lazily
  };

  /// Finds the winning level for `var` among sorted candidates, collects
  /// all matching rules at that level, and extends the required-variable
  /// worklist with their self references.
  Status SelectRulesFor(CostVarId var,
                        const std::vector<RegisteredRule>& candidates,
                        VarSet* pending) {
    std::vector<Selected*>& chosen =
        selected_by_var_[static_cast<size_t>(var)];
    bool have_level = false;
    bool stop = false;
    Scope level_scope = Scope::kDefault;
    int level_spec = 0;

    auto process = [&](const RegisteredRule& reg) -> Status {
      if (!reg.rule->Provides(var)) return Status::OK();
      if (have_level) {
        if (reg.scope != level_scope ||
            reg.rule->pattern.specificity != level_spec) {
          stop = true;  // sorted: anything further is less specific
          return Status::OK();
        }
        if (options_.tie_break_first_only) {
          stop = true;
          return Status::OK();
        }
      }
      Selected* sel = MatchCached(reg);
      if (sel == nullptr) return Status::OK();
      if (!have_level) {
        have_level = true;
        level_scope = reg.scope;
        level_spec = reg.rule->pattern.specificity;
      }
      chosen.push_back(sel);
      return AccountRuleDeps(*sel->reg->rule, var, pending);
    };

    // Hash-indexed exact-select rules are the most specific candidates
    // (literal collection + attribute + value); they come first.
    if (exact_bucket_ != nullptr) {
      for (const RegisteredRule& reg : *exact_bucket_) {
        DISCO_RETURN_NOT_OK(process(reg));
        if (stop) break;
      }
    }
    for (const RegisteredRule& reg : candidates) {
      if (stop) break;
      DISCO_RETURN_NOT_OK(process(reg));
    }
    if (!have_level) {
      return Status::Internal(StringPrintf(
          "no cost rule provides %s for operator %s (source '%s'); is the "
          "generic model installed?",
          costlang::CostVarName(var),
          algebra::OpKindToString(st_->node->kind), st_->source_ctx.c_str()));
    }
    return Status::OK();
  }

  /// Records the child-variable and self-variable dependencies of the
  /// formula computing `var` in `rule`, plus (once per rule) those of its
  /// locals.
  Status AccountRuleDeps(const CompiledRule& rule, CostVarId var,
                         VarSet* pending) {
    for (const CompiledFormula& f : rule.formulas) {
      if (f.target != var) continue;
      for (const auto& [input, v] : f.program.input_var_refs) {
        NoteChildRef(input, v);
      }
      for (CostVarId v : f.program.self_var_refs) {
        pending->set(static_cast<size_t>(v));
      }
    }
    if (locals_accounted_.insert(&rule).second) {
      for (const costlang::CompiledLocal& local : rule.locals) {
        for (const auto& [input, v] : local.program.input_var_refs) {
          NoteChildRef(input, v);
        }
        for (CostVarId v : local.program.self_var_refs) {
          pending->set(static_cast<size_t>(v));
        }
      }
    }
    return Status::OK();
  }

  void NoteChildRef(int input, CostVarId var) {
    // Scans have no NodeState children; their "input" is the catalog.
    if (st_->node->kind == OpKind::kScan) return;
    if (input >= 0 && input < static_cast<int>(child_required_.size())) {
      child_required_[static_cast<size_t>(input)].set(
          static_cast<size_t>(var));
    }
  }

  /// Match attempt with caching; returns the Selected entry or null.
  Selected* MatchCached(const RegisteredRule& reg) {
    auto it = match_cache_.find(reg.rule);
    if (it != match_cache_.end()) {
      return it->second.has_value() ? &*it->second : nullptr;
    }
    ++out_->match_attempts;
    std::optional<Bindings> m =
        MatchPattern(reg.rule->pattern,
                     static_cast<int>(reg.rule->binding_slots.size()),
                     st_->match_ctx);
    auto [pos, inserted] = match_cache_.emplace(
        reg.rule, m.has_value()
                      ? std::optional<Selected>(
                            Selected{&reg, std::move(*m), std::nullopt})
                      : std::nullopt);
    return pos->second.has_value() ? &*pos->second : nullptr;
  }

  /// Evaluates `var`: all selected formulas run, the minimum wins.
  Status EvaluateVar(CostVarId var) {
    std::vector<Selected*>& chosen =
        selected_by_var_[static_cast<size_t>(var)];
    if (chosen.empty()) {
      return Status::Internal(StringPrintf(
          "phase 1 selected no rule for %s", costlang::CostVarName(var)));
    }
    double best = std::numeric_limits<double>::infinity();
    const Selected* winner = nullptr;
    for (Selected* sel : chosen) {
      DISCO_RETURN_NOT_OK(EnsureLocals(sel));
      const CompiledRule& rule = *sel->reg->rule;
      for (const CompiledFormula& f : rule.formulas) {
        if (f.target != var) continue;
        current_bindings_ = &sel->bindings;
        ++out_->formulas_evaluated;
        DISCO_ASSIGN_OR_RETURN(
            double v, costlang::Execute(f.program, this, *sel->locals,
                                        *sel->reg->globals));
        current_bindings_ = nullptr;
        if (v < best || winner == nullptr) {
          best = v;
          winner = sel;
        }
      }
    }
    st_->cost.Set(var, best);
    if (options_.collect_explain && winner != nullptr) {
      VarExplain ve;
      ve.var = var;
      ve.value = best;
      ve.scope = winner->reg->scope;
      ve.rule = winner->reg->rule->pattern.ToString();
      explain_vars_.push_back(std::move(ve));
    }
    return Status::OK();
  }

  /// Evaluates a rule's local definitions once per node, in textual order.
  Status EnsureLocals(Selected* sel) {
    if (sel->locals.has_value()) return Status::OK();
    std::vector<Value> locals;
    const CompiledRule& rule = *sel->reg->rule;
    locals.reserve(rule.locals.size());
    for (const costlang::CompiledLocal& local : rule.locals) {
      current_bindings_ = &sel->bindings;
      ++out_->formulas_evaluated;
      DISCO_ASSIGN_OR_RETURN(
          double v, costlang::Execute(local.program, this, locals,
                                      *sel->reg->globals));
      current_bindings_ = nullptr;
      locals.push_back(Value(v));
    }
    sel->locals = std::move(locals);
    return Status::OK();
  }

  Status CheckPrune() {
    // The cutoff applies only at mediator-context nodes: inside a source
    // context, min-wins access-path strategies (e.g. an index scan that
    // bypasses its child's sequential cost) make subcosts non-monotone,
    // so a large subcost there does not imply a large final cost. The
    // mediator-side composition rules (local scope) all accumulate their
    // children's TotalTime, so every submit boundary is a sound prune
    // point and an expensive subquery still aborts the estimate early.
    if (st_->source_ctx.empty() && std::isfinite(options_.prune_bound) &&
        st_->cost.IsComputed(CostVarId::kTotalTime) &&
        st_->cost.total_time() > options_.prune_bound) {
      out_->pruned = true;
    }
    return Status::OK();
  }

  NodeState* st_;
  const RuleRegistry* registry_;
  const Catalog* catalog_;
  const HistoryManager* history_;
  const EstimateOptions& options_;
  PlanEstimate* out_;

  VarSet required_closure_;
  const std::vector<RegisteredRule>* exact_bucket_ = nullptr;
  std::vector<VarSet> child_required_;
  std::array<std::vector<Selected*>, kNumCostVars> selected_by_var_;
  std::map<const CompiledRule*, std::optional<Selected>> match_cache_;
  std::set<const CompiledRule*> locals_accounted_;
  const Bindings* current_bindings_ = nullptr;
  int depth_ = 0;
  std::vector<VarExplain> explain_vars_;
  bool memo_enabled_ = false;
  MemoKey memo_key_;
};

}  // namespace

std::string FormatExplain(const PlanEstimate& estimate) {
  std::string out;
  for (const NodeExplain& node : estimate.explain) {
    out.append(static_cast<size_t>(node.depth) * 2, ' ');
    out += node.label;
    if (!node.source.empty()) out += "  @" + node.source;
    out += "  " + node.cost.ToString();
    out += "\n";
    if (node.from_query_scope) {
      out.append(static_cast<size_t>(node.depth) * 2 + 2, ' ');
      out += "<- recorded execution (query scope)\n";
      continue;
    }
    for (const VarExplain& v : node.vars) {
      out.append(static_cast<size_t>(node.depth) * 2 + 2, ' ');
      out += StringPrintf("%-12s <- [%s] %s\n",
                          costlang::CostVarName(v.var),
                          ScopeToString(v.scope), v.rule.c_str());
    }
  }
  return out;
}

Result<PlanEstimate> CostEstimator::Estimate(
    const Operator& plan, const EstimateOptions& options) const {
  return EstimateAt(plan, "", options);
}

Result<PlanEstimate> CostEstimator::EstimateAt(
    const Operator& plan, const std::string& source,
    const EstimateOptions& options) const {
  DISCO_RETURN_NOT_OK(plan.CheckWellFormed());
  std::unique_ptr<NodeState> root = BuildStateTree(plan, ToLower(source));
  PlanEstimate out;
  // The root is asked for every variable (the optimizer compares
  // TotalTime but callers inspect sizes too); propagation still trims the
  // variables computed below the root.
  NodeEstimator est(root.get(), registry_, catalog_, history_, options, &out);
  DISCO_RETURN_NOT_OK(est.Run(AllVars()));
  out.root = root->cost;
  return out;
}

Result<double> CostEstimator::EstimateTotalTime(
    const Operator& plan, const EstimateOptions& options) const {
  DISCO_ASSIGN_OR_RETURN(PlanEstimate est, Estimate(plan, options));
  return est.root.total_time();
}

}  // namespace costmodel
}  // namespace disco
