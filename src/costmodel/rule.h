// Scoped cost rules: a compiled rule plus its place in the Figure-10
// specialization hierarchy.

#ifndef DISCO_COSTMODEL_RULE_H_
#define DISCO_COSTMODEL_RULE_H_

#include <string>

#include "costlang/compiler.h"

namespace disco {
namespace costmodel {

/// The scopes of the paper's Section 4.1, ordered by matching precedence
/// (most specific last so higher enum value = tried first):
///   default < local < wrapper < collection < predicate < query.
enum class Scope {
  kDefault = 0,  ///< the mediator's generic cost model
  kLocal,        ///< mediator-local physical operators
  kWrapper,      ///< a wrapper rule with no bound collection/predicate
  kCollection,   ///< wrapper rule bound to a specific collection
  kPredicate,    ///< wrapper rule bound to a specific predicate part
  kQuery,        ///< exact recorded subquery (historical costs, §4.3.1)
};

const char* ScopeToString(Scope s);

/// Matching precedence rank; higher ranks are consulted first.
inline int ScopeRank(Scope s) { return static_cast<int>(s); }

/// Derives a wrapper rule's scope from its pattern: any bound predicate
/// part makes it predicate-scope, else a bound collection makes it
/// collection-scope, else it is wrapper-scope.
Scope DeriveWrapperScope(const costlang::CompiledPattern& pattern);

/// One rule as stored in the registry. `rule` and `globals` point into
/// the registry-owned compiled rule set.
struct RegisteredRule {
  const costlang::CompiledRule* rule = nullptr;
  const std::vector<Value>* globals = nullptr;
  Scope scope = Scope::kDefault;
  std::string source;  ///< owning wrapper; "" for default/local scope
  int seq = 0;         ///< registration order (the paper's tiebreak)

  /// Sort key for candidate ordering: scope desc, specificity desc,
  /// registration order asc.
  bool OrderedBefore(const RegisteredRule& other) const;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_RULE_H_
