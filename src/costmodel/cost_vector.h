// CostVector: the per-node estimation state -- the three time parameters
// of the paper's Section 2.3 (TimeFirst, TimeNext, TotalTime) plus the
// size statistics its size rules compute (CountObject, TotalSize,
// ObjectSize). Times are milliseconds, sizes bytes/objects.

#ifndef DISCO_COSTMODEL_COST_VECTOR_H_
#define DISCO_COSTMODEL_COST_VECTOR_H_

#include <array>
#include <bitset>
#include <string>

#include "common/result.h"
#include "costlang/bytecode.h"

namespace disco {
namespace costmodel {

using costlang::CostVarId;
using costlang::kNumCostVars;

/// A bitmask over cost variables; used for the required-variable
/// propagation of the estimation algorithm (paper Section 4.2).
using VarSet = std::bitset<kNumCostVars>;

/// All six cost variables.
VarSet AllVars();
/// Just TotalTime (what a plan comparison ultimately needs).
VarSet TotalTimeOnly();
VarSet SingleVar(CostVarId var);

/// The computed variables of one plan node. Variables start unset; the
/// estimator fills exactly the required ones.
class CostVector {
 public:
  CostVector() { values_.fill(0); }

  bool IsComputed(CostVarId var) const {
    return computed_.test(static_cast<size_t>(var));
  }
  VarSet computed_set() const { return computed_; }

  void Set(CostVarId var, double value) {
    values_[static_cast<size_t>(var)] = value;
    computed_.set(static_cast<size_t>(var));
  }

  /// Checked read.
  Result<double> Get(CostVarId var) const;

  /// Unchecked read (0 if unset); for display only.
  double GetOrZero(CostVarId var) const {
    return values_[static_cast<size_t>(var)];
  }

  double total_time() const { return GetOrZero(CostVarId::kTotalTime); }
  double time_first() const { return GetOrZero(CostVarId::kTimeFirst); }
  double time_next() const { return GetOrZero(CostVarId::kTimeNext); }
  double count_object() const { return GetOrZero(CostVarId::kCountObject); }
  double total_size() const { return GetOrZero(CostVarId::kTotalSize); }
  double object_size() const { return GetOrZero(CostVarId::kObjectSize); }

  /// Fully-specified vector (e.g. from a measured execution).
  static CostVector Full(double count_object, double total_size,
                         double object_size, double time_first,
                         double time_next, double total_time);

  std::string ToString() const;

 private:
  std::array<double, kNumCostVars> values_;
  VarSet computed_;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_COST_VECTOR_H_
