#include "costmodel/registry.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"

namespace disco {
namespace costmodel {

namespace {

/// True when `s` contains no ASCII upper-case letter -- the common case
/// for source names on the estimation hot path, which then needs no
/// lowercasing allocation at all.
bool IsLowerAscii(std::string_view s) {
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') return false;
  }
  return true;
}

}  // namespace

Status RuleRegistry::AddDefaultRules(costlang::CompiledRuleSet rules) {
  return AddRuleSet("", Scope::kDefault, /*derive_scope=*/false,
                    std::move(rules));
}

Status RuleRegistry::AddLocalRules(costlang::CompiledRuleSet rules) {
  return AddRuleSet("", Scope::kLocal, /*derive_scope=*/false,
                    std::move(rules));
}

Status RuleRegistry::AddWrapperRules(const std::string& source,
                                     costlang::CompiledRuleSet rules) {
  if (source.empty()) {
    return Status::InvalidArgument("wrapper rules need a source name");
  }
  return AddRuleSet(source, Scope::kWrapper, /*derive_scope=*/true,
                    std::move(rules));
}

Status RuleRegistry::AddRuleSet(const std::string& source, Scope fixed_scope,
                                bool derive_scope,
                                costlang::CompiledRuleSet rules) {
  auto owned = std::make_unique<costlang::CompiledRuleSet>(std::move(rules));
  // Interned once here; every RegisteredRule copy shares the SSO buffer
  // or the lowercased spelling, and lookups never re-lower it.
  const std::string lowered = ToLower(source);
  for (const costlang::CompiledRule& rule : owned->rules) {
    RegisteredRule reg;
    reg.rule = &rule;
    reg.globals = &owned->global_values;
    reg.scope = derive_scope ? DeriveWrapperScope(rule.pattern) : fixed_scope;
    reg.source = lowered;
    reg.seq = next_seq_++;
    rules_.push_back(std::move(reg));
    ++total_rules_;
  }
  rule_sets_.push_back(std::move(owned));
  index_valid_.store(false, std::memory_order_release);
  ++epoch_;
  return Status::OK();
}

int RuleRegistry::RemoveWrapperRules(const std::string& source) {
  const std::string key = ToLower(source);
  int removed = 0;
  std::vector<RegisteredRule> kept;
  kept.reserve(rules_.size());
  for (RegisteredRule& r : rules_) {
    if (r.source == key) {
      ++removed;
    } else {
      kept.push_back(std::move(r));
    }
  }
  rules_ = std::move(kept);
  total_rules_ -= removed;
  // The owned rule sets stay allocated (cheap, and keeps remaining
  // pointers stable); only the registration entries go away.
  query_costs_.erase(key);
  index_valid_.store(false, std::memory_order_release);
  ++epoch_;
  return removed;
}

void RuleRegistry::AddQueryCost(const std::string& source,
                                const algebra::Operator& subplan,
                                const CostVector& cost) {
  query_costs_[ToLower(source)][subplan.ToString()] = cost;
  // Epoch moves (memoized estimates that consulted the query scope are
  // stale) but the candidate index stays valid: query-scope entries live
  // in their own map, so no Reindex is needed.
  ++epoch_;
}

const CostVector* RuleRegistry::QueryCost(
    const std::string& source, const algebra::Operator& subplan) const {
  auto sit = IsLowerAscii(source) ? query_costs_.find(std::string_view(source))
                                  : query_costs_.find(ToLower(source));
  if (sit == query_costs_.end()) return nullptr;
  auto qit = sit->second.find(subplan.ToString());
  if (qit == sit->second.end()) return nullptr;
  return &qit->second;
}

int RuleRegistry::num_query_entries() const {
  int n = 0;
  for (const auto& [source, entries] : query_costs_) {
    n += static_cast<int>(entries.size());
  }
  return n;
}

namespace {

/// Hash-index key for a fully-bound select pattern / select node.
std::string ExactSelectKey(const std::string& collection,
                           const std::string& attribute, algebra::CmpOp op,
                           const Value& value) {
  std::string key = ToLower(collection);
  key += '\x1f';
  // Attribute names may arrive qualified from a plan; use the suffix.
  std::string attr(attribute);
  size_t pos = attr.rfind('.');
  if (pos != std::string::npos) attr = attr.substr(pos + 1);
  key += ToLower(attr);
  key += '\x1f';
  key += algebra::CmpOpToString(op);
  key += '\x1f';
  key += value.ToString();
  return key;
}

/// True if the rule belongs in the exact-select hash index.
bool IsExactSelectRule(const RegisteredRule& r) {
  const costlang::CompiledPattern& p = r.rule->pattern;
  return p.op == algebra::OpKind::kSelect &&
         p.pred_kind == costlang::CompiledPattern::PredKind::kSelect &&
         !p.inputs.empty() && p.inputs[0].is_literal &&
         p.sel_attr.is_literal && p.sel_value.is_literal &&
         !r.source.empty();
}

}  // namespace

void RuleRegistry::EnsureIndex() const {
  if (index_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(reindex_mu_);
  if (!index_valid_.load(std::memory_order_relaxed)) {
    const_cast<RuleRegistry*>(this)->Reindex();
  }
}

void RuleRegistry::Reindex() {
  index_.clear();
  for (auto& list : fallback_by_kind_) list.clear();
  // Collect the set of sources seen among wrapper rules, plus "".
  std::vector<std::string> sources{""};
  for (const RegisteredRule& r : rules_) {
    if (!r.source.empty() &&
        std::find(sources.begin(), sources.end(), r.source) == sources.end()) {
      sources.push_back(r.source);
    }
  }
  for (const RegisteredRule& r : rules_) {
    if (!IsExactSelectRule(r)) continue;
    const costlang::CompiledPattern& p = r.rule->pattern;
    std::string key = ExactSelectKey(p.inputs[0].name, p.sel_attr.name,
                                     p.sel_op, p.sel_value.value);
    index_[r.source].exact_select[key].push_back(r);
  }
  for (const std::string& source : sources) {
    PerSourceIndex& slice = index_[source];
    for (int k = 0; k < algebra::kNumOpKinds; ++k) {
      std::vector<RegisteredRule> list;
      for (const RegisteredRule& r : rules_) {
        if (static_cast<int>(r.rule->pattern.op) != k) continue;
        if (IsExactSelectRule(r)) continue;  // lives in the hash index
        const bool visible =
            r.scope == Scope::kDefault ||
            (r.scope == Scope::kLocal && source.empty()) ||
            (!r.source.empty() && r.source == source);
        if (visible) list.push_back(r);
      }
      std::sort(list.begin(), list.end(),
                [](const RegisteredRule& a, const RegisteredRule& b) {
                  return a.OrderedBefore(b);
                });
      slice.by_kind[static_cast<size_t>(k)] = std::move(list);
    }
  }
  // Sources with no rules of their own see the default scope only
  // (local-scope rules do not apply at a wrapper). Precomputing this
  // keeps Candidates() from ever mutating the index under const -- the
  // property the parallel estimation path relies on.
  for (int k = 0; k < algebra::kNumOpKinds; ++k) {
    std::vector<RegisteredRule> list;
    for (const RegisteredRule& r : rules_) {
      if (static_cast<int>(r.rule->pattern.op) != k) continue;
      if (IsExactSelectRule(r)) continue;
      if (r.scope == Scope::kDefault) list.push_back(r);
    }
    std::sort(list.begin(), list.end(),
              [](const RegisteredRule& a, const RegisteredRule& b) {
                return a.OrderedBefore(b);
              });
    fallback_by_kind_[static_cast<size_t>(k)] = std::move(list);
  }
  index_valid_.store(true, std::memory_order_release);
}

const RuleRegistry::PerSourceIndex* RuleRegistry::FindSource(
    std::string_view source) const {
  auto it = IsLowerAscii(source) ? index_.find(source)
                                 : index_.find(ToLower(source));
  return it == index_.end() ? nullptr : &it->second;
}

const std::vector<RegisteredRule>* RuleRegistry::ExactSelectBucket(
    std::string_view source, const algebra::Operator& node) const {
  if (node.kind != algebra::OpKind::kSelect || !node.select_pred.has_value()) {
    return nullptr;
  }
  EnsureIndex();
  const PerSourceIndex* slice = FindSource(source);
  if (slice == nullptr || slice->exact_select.empty()) return nullptr;
  std::string key =
      ExactSelectKey(node.FirstBaseCollection(), node.select_pred->attribute,
                     node.select_pred->op, node.select_pred->value);
  auto bit = slice->exact_select.find(key);
  if (bit == slice->exact_select.end()) return nullptr;
  return &bit->second;
}

const std::vector<RegisteredRule>& RuleRegistry::Candidates(
    std::string_view source, algebra::OpKind kind) const {
  EnsureIndex();
  const PerSourceIndex* slice = FindSource(source);
  // A source with no wrapper rules at all still sees the default scope.
  if (slice == nullptr) {
    return fallback_by_kind_[static_cast<size_t>(kind)];
  }
  return slice->by_kind[static_cast<size_t>(kind)];
}

std::string RuleRegistry::Describe() const {
  std::string out;
  EnsureIndex();
  std::vector<RegisteredRule> all = rules_;
  std::sort(all.begin(), all.end(),
            [](const RegisteredRule& a, const RegisteredRule& b) {
              if (a.source != b.source) return a.source < b.source;
              return a.OrderedBefore(b);
            });
  for (const RegisteredRule& r : all) {
    out += StringPrintf("[%-10s] %-12s %s\n", ScopeToString(r.scope),
                        r.source.empty() ? "(mediator)" : r.source.c_str(),
                        r.rule->ToString().c_str());
  }
  // query_costs_ is unordered; render sorted so dumps stay deterministic.
  std::map<std::string, std::map<std::string, const CostVector*>> sorted;
  for (const auto& [source, entries] : query_costs_) {
    for (const auto& [key, cost] : entries) {
      sorted[source][key] = &cost;
    }
  }
  for (const auto& [source, entries] : sorted) {
    for (const auto& [key, cost] : entries) {
      out += StringPrintf("[%-10s] %-12s %s -> %s\n", "query", source.c_str(),
                          key.c_str(), cost->ToString().c_str());
    }
  }
  return out;
}

}  // namespace costmodel
}  // namespace disco
