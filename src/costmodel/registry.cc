#include "costmodel/registry.h"

#include <algorithm>

#include "common/str_util.h"

namespace disco {
namespace costmodel {

Status RuleRegistry::AddDefaultRules(costlang::CompiledRuleSet rules) {
  return AddRuleSet("", Scope::kDefault, /*derive_scope=*/false,
                    std::move(rules));
}

Status RuleRegistry::AddLocalRules(costlang::CompiledRuleSet rules) {
  return AddRuleSet("", Scope::kLocal, /*derive_scope=*/false,
                    std::move(rules));
}

Status RuleRegistry::AddWrapperRules(const std::string& source,
                                     costlang::CompiledRuleSet rules) {
  if (source.empty()) {
    return Status::InvalidArgument("wrapper rules need a source name");
  }
  return AddRuleSet(source, Scope::kWrapper, /*derive_scope=*/true,
                    std::move(rules));
}

Status RuleRegistry::AddRuleSet(const std::string& source, Scope fixed_scope,
                                bool derive_scope,
                                costlang::CompiledRuleSet rules) {
  auto owned = std::make_unique<costlang::CompiledRuleSet>(std::move(rules));
  for (const costlang::CompiledRule& rule : owned->rules) {
    RegisteredRule reg;
    reg.rule = &rule;
    reg.globals = &owned->global_values;
    reg.scope = derive_scope ? DeriveWrapperScope(rule.pattern) : fixed_scope;
    reg.source = ToLower(source);
    reg.seq = next_seq_++;
    rules_.push_back(std::move(reg));
    ++total_rules_;
  }
  rule_sets_.push_back(std::move(owned));
  index_valid_ = false;
  return Status::OK();
}

int RuleRegistry::RemoveWrapperRules(const std::string& source) {
  const std::string key = ToLower(source);
  int removed = 0;
  std::vector<RegisteredRule> kept;
  kept.reserve(rules_.size());
  for (RegisteredRule& r : rules_) {
    if (r.source == key) {
      ++removed;
    } else {
      kept.push_back(std::move(r));
    }
  }
  rules_ = std::move(kept);
  total_rules_ -= removed;
  // The owned rule sets stay allocated (cheap, and keeps remaining
  // pointers stable); only the registration entries go away.
  query_costs_.erase(key);
  index_valid_ = false;
  return removed;
}

void RuleRegistry::AddQueryCost(const std::string& source,
                                const algebra::Operator& subplan,
                                const CostVector& cost) {
  query_costs_[ToLower(source)][subplan.ToString()] = cost;
}

const CostVector* RuleRegistry::QueryCost(
    const std::string& source, const algebra::Operator& subplan) const {
  auto sit = query_costs_.find(ToLower(source));
  if (sit == query_costs_.end()) return nullptr;
  auto qit = sit->second.find(subplan.ToString());
  if (qit == sit->second.end()) return nullptr;
  return &qit->second;
}

int RuleRegistry::num_query_entries() const {
  int n = 0;
  for (const auto& [source, entries] : query_costs_) {
    n += static_cast<int>(entries.size());
  }
  return n;
}

namespace {

/// Hash-index key for a fully-bound select pattern / select node.
std::string ExactSelectKey(const std::string& collection,
                           const std::string& attribute, algebra::CmpOp op,
                           const Value& value) {
  std::string key = ToLower(collection);
  key += '\x1f';
  // Attribute names may arrive qualified from a plan; use the suffix.
  std::string attr(attribute);
  size_t pos = attr.rfind('.');
  if (pos != std::string::npos) attr = attr.substr(pos + 1);
  key += ToLower(attr);
  key += '\x1f';
  key += algebra::CmpOpToString(op);
  key += '\x1f';
  key += value.ToString();
  return key;
}

/// True if the rule belongs in the exact-select hash index.
bool IsExactSelectRule(const RegisteredRule& r) {
  const costlang::CompiledPattern& p = r.rule->pattern;
  return p.op == algebra::OpKind::kSelect &&
         p.pred_kind == costlang::CompiledPattern::PredKind::kSelect &&
         !p.inputs.empty() && p.inputs[0].is_literal &&
         p.sel_attr.is_literal && p.sel_value.is_literal &&
         !r.source.empty();
}

}  // namespace

void RuleRegistry::Reindex() {
  index_.clear();
  exact_select_index_.clear();
  // Collect the set of sources seen among wrapper rules, plus "".
  std::vector<std::string> sources{""};
  for (const RegisteredRule& r : rules_) {
    if (!r.source.empty() &&
        std::find(sources.begin(), sources.end(), r.source) == sources.end()) {
      sources.push_back(r.source);
    }
  }
  for (const RegisteredRule& r : rules_) {
    if (!IsExactSelectRule(r)) continue;
    const costlang::CompiledPattern& p = r.rule->pattern;
    std::string key = ExactSelectKey(p.inputs[0].name, p.sel_attr.name,
                                     p.sel_op, p.sel_value.value);
    exact_select_index_[r.source][key].push_back(r);
  }
  for (const std::string& source : sources) {
    for (int k = 0; k < algebra::kNumOpKinds; ++k) {
      std::vector<RegisteredRule> list;
      for (const RegisteredRule& r : rules_) {
        if (static_cast<int>(r.rule->pattern.op) != k) continue;
        if (IsExactSelectRule(r)) continue;  // lives in the hash index
        const bool visible =
            r.scope == Scope::kDefault ||
            (r.scope == Scope::kLocal && source.empty()) ||
            (!r.source.empty() && r.source == source);
        if (visible) list.push_back(r);
      }
      std::sort(list.begin(), list.end(),
                [](const RegisteredRule& a, const RegisteredRule& b) {
                  return a.OrderedBefore(b);
                });
      if (!list.empty()) index_[{source, k}] = std::move(list);
    }
  }
  index_valid_ = true;
}

const std::vector<RegisteredRule>* RuleRegistry::ExactSelectBucket(
    const std::string& source, const algebra::Operator& node) const {
  if (node.kind != algebra::OpKind::kSelect || !node.select_pred.has_value()) {
    return nullptr;
  }
  if (!index_valid_) const_cast<RuleRegistry*>(this)->Reindex();
  auto sit = exact_select_index_.find(ToLower(source));
  if (sit == exact_select_index_.end()) return nullptr;
  std::string key =
      ExactSelectKey(node.FirstBaseCollection(), node.select_pred->attribute,
                     node.select_pred->op, node.select_pred->value);
  auto bit = sit->second.find(key);
  if (bit == sit->second.end()) return nullptr;
  return &bit->second;
}

const std::vector<RegisteredRule>& RuleRegistry::Candidates(
    const std::string& source, algebra::OpKind kind) const {
  static const std::vector<RegisteredRule> kEmpty;
  if (!index_valid_) const_cast<RuleRegistry*>(this)->Reindex();
  auto it = index_.find({ToLower(source), static_cast<int>(kind)});
  // A source with no wrapper rules at all still sees the default scope.
  if (it == index_.end()) {
    it = index_.find({std::string(), static_cast<int>(kind)});
    if (it == index_.end()) return kEmpty;
    // The mediator-context list may contain local-scope rules which do
    // not apply at a wrapper; filter lazily only if any are present.
    bool has_local = false;
    for (const RegisteredRule& r : it->second) {
      if (r.scope == Scope::kLocal) {
        has_local = true;
        break;
      }
    }
    if (!has_local || source.empty()) return it->second;
    auto key = std::make_pair(ToLower(source), static_cast<int>(kind));
    std::vector<RegisteredRule> filtered;
    for (const RegisteredRule& r : it->second) {
      if (r.scope != Scope::kLocal) filtered.push_back(r);
    }
    index_[key] = std::move(filtered);
    return index_[key];
  }
  return it->second;
}

std::string RuleRegistry::Describe() const {
  std::string out;
  if (!index_valid_) const_cast<RuleRegistry*>(this)->Reindex();
  std::vector<RegisteredRule> all = rules_;
  std::sort(all.begin(), all.end(),
            [](const RegisteredRule& a, const RegisteredRule& b) {
              if (a.source != b.source) return a.source < b.source;
              return a.OrderedBefore(b);
            });
  for (const RegisteredRule& r : all) {
    out += StringPrintf("[%-10s] %-12s %s\n", ScopeToString(r.scope),
                        r.source.empty() ? "(mediator)" : r.source.c_str(),
                        r.rule->ToString().c_str());
  }
  for (const auto& [source, entries] : query_costs_) {
    for (const auto& [key, cost] : entries) {
      out += StringPrintf("[%-10s] %-12s %s -> %s\n", "query", source.c_str(),
                          key.c_str(), cost.ToString().c_str());
    }
  }
  return out;
}

}  // namespace costmodel
}  // namespace disco
