// Subplan cost memoization (docs/PERFORMANCE.md).
//
// The DP join enumerator prices hundreds of candidate plans that share
// subtrees (every best-so-far table entry reappears, submit-wrapped or
// joined, in many larger candidates). CostMemo caches per-node CostVector
// results keyed by (structural subplan hash, executing source context,
// required-variable set, estimate-option bits) so shared subtrees are
// priced once per enumeration instead of once per candidate.
//
// Staleness: entries are only valid for one RuleRegistry::epoch() -- the
// registry bumps it on every rule-hierarchy or query-scope change (which
// also covers HistoryManager adjustment-factor updates, recorded in the
// same RecordExecution call). SyncEpoch() drops everything when the epoch
// moved.
//
// Concurrency contract (the thread-pool determinism contract): during a
// parallel pricing batch the base CostMemo is strictly read-only; each
// concurrent estimate writes its discoveries (and hit/miss tallies) into
// a private MemoDelta. After the batch joins, the caller absorbs the
// deltas *in slot order*. Memo content, hit counts, and therefore every
// downstream statistic are bit-identical for any pool size.

#ifndef DISCO_COSTMODEL_COST_MEMO_H_
#define DISCO_COSTMODEL_COST_MEMO_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/hashing.h"
#include "common/str_util.h"
#include "costmodel/cost_vector.h"

namespace disco {
namespace costmodel {

/// Identity of one memoized estimation result.
struct MemoKey {
  uint64_t plan_hash = 0;    ///< algebra::Operator::Hash() of the subtree
  std::string source_ctx;    ///< executing wrapper ("" = mediator), lowercase
  uint32_t required_bits = 0;  ///< VarSet the node was asked to compute
  uint32_t option_bits = 0;    ///< estimate-option fingerprint

  bool operator==(const MemoKey& o) const {
    return plan_hash == o.plan_hash && required_bits == o.required_bits &&
           option_bits == o.option_bits && source_ctx == o.source_ctx;
  }
};

struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const {
    size_t h = static_cast<size_t>(k.plan_hash);
    h = HashCombine(h, static_cast<size_t>(Fnv1a64(k.source_ctx)));
    h = HashCombine(h, (static_cast<size_t>(k.required_bits) << 8) ^
                           static_cast<size_t>(k.option_bits));
    return h;
  }
};

/// One estimate's private memo overlay: new entries plus hit/miss
/// tallies, merged into the shared CostMemo after the pricing batch.
class MemoDelta {
 public:
  const CostVector* Find(const MemoKey& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }
  void Insert(const MemoKey& key, const CostVector& cost) {
    entries_.emplace(key, cost);
  }
  bool empty() const { return entries_.empty() && hits == 0 && misses == 0; }

  int64_t hits = 0;
  int64_t misses = 0;

 private:
  friend class CostMemo;
  std::unordered_map<MemoKey, CostVector, MemoKeyHash> entries_;
};

class CostMemo {
 public:
  /// Validates the memo against the registry epoch: when it moved, every
  /// entry is dropped (counted as one invalidation). Call before a batch
  /// of estimates; never during one.
  void SyncEpoch(int64_t registry_epoch) {
    if (epoch_ == registry_epoch) return;
    if (initialized_ && !entries_.empty()) ++invalidations_;
    entries_.clear();
    epoch_ = registry_epoch;
    initialized_ = true;
  }

  /// Read-only lookup; safe from concurrent estimates.
  const CostVector* Find(const MemoKey& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Merges one estimate's overlay (first insertion of a key wins, so
  /// absorbing deltas in slot order is deterministic). Caller thread
  /// only, between batches.
  void Absorb(MemoDelta&& delta) {
    hits_ += delta.hits;
    misses_ += delta.misses;
    for (auto& [key, cost] : delta.entries_) {
      entries_.emplace(std::move(key), cost);
    }
    delta.entries_.clear();
    delta.hits = 0;
    delta.misses = 0;
  }

  size_t size() const { return entries_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t invalidations() const { return invalidations_; }
  int64_t epoch() const { return epoch_; }

 private:
  std::unordered_map<MemoKey, CostVector, MemoKeyHash> entries_;
  int64_t epoch_ = 0;
  bool initialized_ = false;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_COST_MEMO_H_
