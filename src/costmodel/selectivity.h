// Selectivity estimation from exported statistics (paper Section 2.3:
// "the selectivity of a selection ... can be derived from the minimum,
// maximum, and number of distinct values of the restricted attributes").

#ifndef DISCO_COSTMODEL_SELECTIVITY_H_
#define DISCO_COSTMODEL_SELECTIVITY_H_

#include "algebra/predicate.h"
#include "catalog/statistics.h"
#include "common/result.h"
#include "common/value.h"

namespace disco {
namespace costmodel {

/// Fallback selectivities when an attribute's statistics were never
/// exported -- the "standard values ... as usual" of Section 6 (the
/// classic System-R defaults).
double DefaultSelectivity(algebra::CmpOp op);

/// Estimates the fraction of objects satisfying `attr op value`.
/// Prefers the attribute's histogram; falls back to uniform estimates
/// from Min/Max/CountDistinct; falls back to DefaultSelectivity when the
/// needed statistics are absent. Always in [0, 1].
double EstimateSelectivity(const AttributeStats& stats, algebra::CmpOp op,
                           const Value& value);

/// Estimates the fraction of objects satisfying `attr in (values...)`:
/// the per-value equality estimates summed, clamped to [0, 1].
double EstimateInSelectivity(const AttributeStats& stats,
                             const std::vector<Value>& values);

/// Equi-join selectivity from the two attributes' distinct counts. The
/// paper (Section 2.3) estimates it as
/// 1 / Min(CountDistinct(A), CountDistinct(B)).
double JoinSelectivity(int64_t count_distinct_left,
                       int64_t count_distinct_right);

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_SELECTIVITY_H_
