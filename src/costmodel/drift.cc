#include "costmodel/drift.h"

#include <algorithm>

#include "common/str_util.h"
#include "costmodel/accuracy.h"

namespace disco {
namespace costmodel {

namespace {

/// Maps a cell's scope to the administrative action that refreshes the
/// cost information that scope came from.
std::string RecommendationFor(const std::string& source, Scope scope) {
  switch (scope) {
    case Scope::kWrapper:
    case Scope::kCollection:
    case Scope::kPredicate:
      return StringPrintf(
          "re-register wrapper '%s' to refresh its %s-scope cost rules",
          source.c_str(), ScopeToString(scope));
    case Scope::kQuery:
      return StringPrintf(
          "re-register wrapper '%s' to drop stale query-scope records",
          source.c_str());
    case Scope::kDefault:
    case Scope::kLocal:
      return StringPrintf(
          "recalibrate the generic model for '%s' (history adjustment "
          "will re-converge as executions accumulate)",
          source.c_str());
  }
  return "recalibrate '" + source + "'";
}

}  // namespace

std::string DriftEvent::ToString() const {
  return StringPrintf(
      "drift #%lld at %.1f ms: (%s, %s, %s) windowed q %.2f vs baseline "
      "%.2f -- %s",
      static_cast<long long>(seq), at_ms, source.c_str(),
      algebra::OpKindToString(kind), ScopeToString(scope), window_q,
      baseline_q, recommendation.c_str());
}

DriftMonitor::DriftMonitor(DriftOptions options) : options_(options) {
  options_.baseline_observations = std::max(1, options_.baseline_observations);
  options_.min_window_observations =
      std::max(1, options_.min_window_observations);
}

double DriftMonitor::ThresholdOf(const Cell& cell) const {
  if (!cell.frozen || cell.frozen_baseline_q <= 0) return 0;
  return options_.degrade_ratio * cell.frozen_baseline_q;
}

void DriftMonitor::Observe(const std::string& source, algebra::OpKind kind,
                           Scope scope, double estimated_ms,
                           double measured_ms, double now_ms) {
  if (!options_.enabled) return;
  const double q = AccuracyTracker::QError(estimated_ms, measured_ms);
  Key key{ToLower(source), kind, scope};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    it = cells_
             .emplace(key, Cell(options_.quantile, options_.window_ms,
                                options_.window_buckets))
             .first;
  }
  Cell& cell = it->second;
  ++cell.total;
  ++num_observations_;

  if (!cell.frozen) {
    cell.baseline.Add(q);
    if (cell.baseline.count() >= options_.baseline_observations) {
      cell.frozen = true;
      cell.frozen_baseline_q = cell.baseline.Value();
    }
  }
  cell.window.Add(now_ms, q);

  const double threshold = ThresholdOf(cell);
  if (threshold <= 0) return;
  const double window_q = cell.window.Value(now_ms);
  const bool over =
      cell.window.count(now_ms) >= options_.min_window_observations &&
      window_q > threshold;
  if (over && !cell.breached) {
    // Latch and fire exactly once per breach.
    cell.breached = true;
    DriftEvent event;
    event.seq = static_cast<int64_t>(events_.size()) + 1;
    event.source = key.source;
    event.kind = kind;
    event.scope = scope;
    event.at_ms = now_ms;
    event.window_q = window_q;
    event.baseline_q = cell.frozen_baseline_q;
    event.recommendation = RecommendationFor(key.source, scope);
    events_.push_back(event);
    if (listener_) listener_(event);
  } else if (!over && cell.breached && window_q <= threshold) {
    // Recovered: re-arm so a future degradation alerts again.
    cell.breached = false;
  }
}

DriftMonitor::CellStatus DriftMonitor::StatusOf(const Key& key,
                                                const Cell& cell,
                                                double now_ms) const {
  CellStatus s;
  s.key = key;
  s.total_observations = cell.total;
  s.window_count = cell.window.count(now_ms);
  s.window_q = cell.window.Value(now_ms);
  s.baseline_q = cell.frozen ? cell.frozen_baseline_q : cell.baseline.Value();
  s.baseline_frozen = cell.frozen;
  s.breached = cell.breached;
  return s;
}

std::vector<DriftMonitor::CellStatus> DriftMonitor::Cells(
    double now_ms) const {
  std::vector<CellStatus> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    out.push_back(StatusOf(key, cell, now_ms));
  }
  return out;
}

std::vector<DriftMonitor::CellStatus> DriftMonitor::RecommendRecalibration(
    double now_ms) const {
  std::vector<CellStatus> out;
  for (const auto& [key, cell] : cells_) {
    const double threshold = ThresholdOf(cell);
    if (threshold <= 0) continue;
    CellStatus s = StatusOf(key, cell, now_ms);
    if (s.window_count >= options_.min_window_observations &&
        s.window_q > threshold) {
      out.push_back(std::move(s));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CellStatus& a, const CellStatus& b) {
                     const double ra =
                         a.baseline_q > 0 ? a.window_q / a.baseline_q : 0;
                     const double rb =
                         b.baseline_q > 0 ? b.window_q / b.baseline_q : 0;
                     return ra > rb;
                   });
  return out;
}

void DriftMonitor::ResetBaseline(const std::string& source) {
  const std::string lower = ToLower(source);
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->first.source == lower) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
}

int DriftMonitor::Refresh(double now_ms) {
  int unlatched = 0;
  for (auto& [key, cell] : cells_) {
    if (!cell.breached) continue;
    const double threshold = ThresholdOf(cell);
    if (threshold <= 0 || cell.window.Value(now_ms) <= threshold) {
      cell.breached = false;
      ++unlatched;
    }
  }
  return unlatched;
}

std::string DriftMonitor::FormatReport(double now_ms, int top_k) const {
  std::vector<CellStatus> cells = Cells(now_ms);
  std::stable_sort(cells.begin(), cells.end(),
                   [](const CellStatus& a, const CellStatus& b) {
                     return a.window_q > b.window_q;
                   });
  if (top_k > 0 && static_cast<int>(cells.size()) > top_k) {
    cells.resize(static_cast<size_t>(top_k));
  }
  std::string out = StringPrintf(
      "drift monitor: %lld observations, %lld event%s\n",
      static_cast<long long>(num_observations_),
      static_cast<long long>(events_.size()),
      events_.size() == 1 ? "" : "s");
  if (cells.empty()) {
    out += "  (no cells tracked)\n";
    return out;
  }
  out += StringPrintf("  %-12s %-10s %-10s %8s %10s %10s %s\n", "source",
                      "operator", "scope", "window_n", "window_q",
                      "baseline_q", "state");
  for (const CellStatus& s : cells) {
    out += StringPrintf(
        "  %-12s %-10s %-10s %8lld %10.2f %10.2f %s\n", s.key.source.c_str(),
        algebra::OpKindToString(s.key.kind), ScopeToString(s.key.scope),
        static_cast<long long>(s.window_count), s.window_q, s.baseline_q,
        s.breached ? "BREACHED"
                   : (s.baseline_frozen ? "ok" : "baselining"));
  }
  return out;
}

}  // namespace costmodel
}  // namespace disco
