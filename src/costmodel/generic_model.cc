#include "costmodel/generic_model.h"

#include <algorithm>

#include "common/str_util.h"
#include "costlang/compiler.h"

namespace disco {
namespace costmodel {

namespace {

std::string Defines(const CalibrationParams& p) {
  return StringPrintf(
      "define StartupMs = %.6g;\n"
      "define IoMs = %.6g;\n"
      "define ObjMs = %.6g;\n"
      "define CmpMs = %.6g;\n"
      "define ProbeMs = %.6g;\n"
      "define PageSize = %.6g;\n"
      "define MedCmpMs = %.6g;\n"
      "define LatencyMs = %.6g;\n"
      "define NetByteMs = %.6g;\n"
      "define BindBatch = %d;\n"
      "define BindPar = %d;\n"
      "define Huge = 1e18;\n",
      p.ms_startup, p.ms_per_io, p.ms_per_object, p.ms_per_cmp,
      p.ms_index_probe, p.page_size, p.ms_med_cmp, p.ms_msg_latency,
      p.ms_per_net_byte, std::max(1, p.bind_batch_size),
      std::max(1, p.bind_parallelism));
}

}  // namespace

std::string GenericModelRuleText(const CalibrationParams& p) {
  std::string text = Defines(p);
  text += R"RULES(
# ---- sequential scan of a collection --------------------------------
scan(C) {
  CountObject = C.CountObject;
  TotalSize   = C.TotalSize;
  ObjectSize  = C.ObjectSize;
  TimeFirst   = StartupMs + IoMs;
  TimeNext    = ObjMs;
  TotalTime   = StartupMs + IoMs * (C.TotalSize / PageSize)
              + ObjMs * C.CountObject;
}

# ---- selection, strategy 1: sequential filter fused into the access
# path: only surviving objects pay the per-object production cost (the
# input's ObjMs charge is refunded and re-applied to the output) --------
select(C, P) {
  CountObject = C.CountObject * selectivity();
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TimeNext    = C.TimeNext;
  TotalTime   = C.TotalTime - ObjMs * C.CountObject
              + CmpMs * C.CountObject + ObjMs * CountObject;
}

# ---- selection, strategy 2: index scan (calibration-style linear page
# estimate -- precisely the formula Figure 12 shows to be inaccurate,
# which wrapper rules may override with e.g. Yao's formula) ------------
select(C, P) {
  CountObject = C.CountObject * selectivity();
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TotalTime   = if(Indexed,
                   StartupMs
                   + ProbeMs * log2(max(C.CountObject, 2))
                   + IoMs * selectivity() * (C.TotalSize / PageSize)
                   + ObjMs * CountObject,
                   Huge);
}

# ---- projection ------------------------------------------------------
project(C, P) {
  CountObject = C.CountObject;
  ObjectSize  = max(C.ObjectSize * 0.5, 8);
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TimeNext    = C.TimeNext;
  TotalTime   = C.TotalTime + CmpMs * C.CountObject;
}

# ---- sort (blocking) -------------------------------------------------
sort(C, A) {
  CountObject = C.CountObject;
  TotalSize   = C.TotalSize;
  ObjectSize  = C.ObjectSize;
  TimeFirst   = C.TotalTime
              + CmpMs * C.CountObject * log2(max(C.CountObject, 2));
  TimeNext    = ObjMs;
  TotalTime   = TimeFirst + ObjMs * C.CountObject;
}

# ---- duplicate elimination ------------------------------------------
dedup(C) {
  CountObject = C.CountObject * 0.8;
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TotalTime
              + CmpMs * C.CountObject * log2(max(C.CountObject, 2));
  TimeNext    = ObjMs;
  TotalTime   = TimeFirst + ObjMs * CountObject;
}

# ---- aggregation -----------------------------------------------------
aggregate(C, F) {
  CountObject = max(C.CountObject / 10, 1);
  ObjectSize  = 16;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TotalTime + CmpMs * C.CountObject;
  TimeNext    = ObjMs;
  TotalTime   = TimeFirst + ObjMs * CountObject;
}

# ---- join, strategy 1: nested loops (also carries the size rules) ----
join(C1, C2, A1 = A2) {
  CountObject = C1.CountObject * C2.CountObject
              / max(min(C1.A1.CountDistinct, C2.A2.CountDistinct), 1);
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + C2.TimeFirst;
  TimeNext    = ObjMs;
  TotalTime   = C1.TotalTime + C2.TotalTime
              + CmpMs * C1.CountObject * C2.CountObject
              + ObjMs * CountObject;
}

# ---- join, strategy 2: sort-merge ------------------------------------
join(C1, C2, A1 = A2) {
  TotalTime = C1.TotalTime + C2.TotalTime
            + CmpMs * C1.CountObject * log2(max(C1.CountObject, 2))
            + CmpMs * C2.CountObject * log2(max(C2.CountObject, 2))
            + CmpMs * (C1.CountObject + C2.CountObject)
            + ObjMs * CountObject;
}

# ---- join, strategy 3: index join (probe an index on the inner) ------
join(C1, C2, A1 = A2) {
  TotalTime = if(C2.A2.Indexed,
                 C1.TotalTime
                 + C1.CountObject * (ProbeMs + IoMs)
                 + ObjMs * CountObject,
                 Huge);
}

# ---- union -----------------------------------------------------------
union(C1, C2) {
  CountObject = C1.CountObject + C2.CountObject;
  TotalSize   = C1.TotalSize + C2.TotalSize;
  ObjectSize  = (C1.ObjectSize + C2.ObjectSize) / 2;
  TimeFirst   = min(C1.TimeFirst, C2.TimeFirst);
  TimeNext    = ObjMs;
  TotalTime   = C1.TotalTime + C2.TotalTime + CmpMs * CountObject;
}

# ---- submit: ship a subquery to a wrapper ----------------------------
submit(C) {
  CountObject = C.CountObject;
  TotalSize   = C.TotalSize;
  ObjectSize  = C.ObjectSize;
  TimeFirst   = C.TimeFirst + LatencyMs;
  TimeNext    = C.TimeNext + NetByteMs * C.ObjectSize;
  TotalTime   = C.TotalTime + LatencyMs + NetByteMs * C.TotalSize;
}

# ---- bind join (extension, cf. paper §7): the mediator probes the
# second collection once per distinct outer key. Keys group into
# batches of BindBatch (one disjunctive IN probe each) and batches
# issue in simulated-concurrent waves of BindPar; a wave costs its
# slowest batch (max-not-sum), so TotalTime scales with Waves, not
# Probes. BindBatch = BindPar = 1 reproduces the serial per-key cost --
bindjoin(C1, C2, A1 = A2) {
  Probes      = min(C1.CountObject, max(C1.A1.CountDistinct, 1));
  Batches     = ceil(Probes / BindBatch);
  Waves       = ceil(Batches / BindPar);
  PerBatch    = LatencyMs + StartupMs
              + if(C2.A2.Indexed,
                   BindBatch
                   * (ProbeMs * log2(max(C2.CountObject, 2)) + IoMs),
                   IoMs * (C2.TotalSize / PageSize)
                   + CmpMs * C2.CountObject);
  CountObject = C1.CountObject * C2.CountObject
              / max(min(C1.A1.CountDistinct, C2.A2.CountDistinct), 1);
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + LatencyMs + StartupMs;
  TimeNext    = ObjMs;
  TotalTime   = C1.TotalTime + Waves * PerBatch
              + ObjMs * CountObject
              + NetByteMs * TotalSize;
}
)RULES";
  return text;
}

std::string LocalModelRuleText(const CalibrationParams& p) {
  std::string text = Defines(p);
  text += R"RULES(
# Mediator-local physical operators: the data is already in memory at the
# mediator (it arrived through submit), so there is no I/O component and
# the per-compare constant is the mediator's own.

select(C, P) {
  CountObject = C.CountObject * selectivity();
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TimeNext    = C.TimeNext;
  TotalTime   = C.TotalTime + MedCmpMs * C.CountObject;
}

project(C, P) {
  CountObject = C.CountObject;
  ObjectSize  = max(C.ObjectSize * 0.5, 8);
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TimeNext    = C.TimeNext;
  TotalTime   = C.TotalTime + MedCmpMs * C.CountObject;
}

sort(C, A) {
  CountObject = C.CountObject;
  TotalSize   = C.TotalSize;
  ObjectSize  = C.ObjectSize;
  TimeFirst   = C.TotalTime
              + MedCmpMs * C.CountObject * log2(max(C.CountObject, 2));
  TimeNext    = MedCmpMs;
  TotalTime   = TimeFirst + MedCmpMs * C.CountObject;
}

dedup(C) {
  CountObject = C.CountObject * 0.8;
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TotalTime
              + MedCmpMs * C.CountObject * log2(max(C.CountObject, 2));
  TimeNext    = MedCmpMs;
  TotalTime   = TimeFirst + MedCmpMs * CountObject;
}

aggregate(C, F) {
  CountObject = max(C.CountObject / 10, 1);
  ObjectSize  = 16;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TotalTime + MedCmpMs * C.CountObject;
  TimeNext    = MedCmpMs;
  TotalTime   = TimeFirst + MedCmpMs * CountObject;
}

# Mediator joins: nested loops and sort-merge (no indexes at the
# mediator); min-wins picks the cheaper.
join(C1, C2, A1 = A2) {
  CountObject = C1.CountObject * C2.CountObject
              / max(min(C1.A1.CountDistinct, C2.A2.CountDistinct), 1);
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + C2.TimeFirst;
  TimeNext    = MedCmpMs;
  TotalTime   = C1.TotalTime + C2.TotalTime
              + MedCmpMs * C1.CountObject * C2.CountObject
              + MedCmpMs * CountObject;
}

join(C1, C2, A1 = A2) {
  TotalTime = C1.TotalTime + C2.TotalTime
            + MedCmpMs * C1.CountObject * log2(max(C1.CountObject, 2))
            + MedCmpMs * C2.CountObject * log2(max(C2.CountObject, 2))
            + MedCmpMs * (C1.CountObject + C2.CountObject)
            + MedCmpMs * CountObject;
}

union(C1, C2) {
  CountObject = C1.CountObject + C2.CountObject;
  TotalSize   = C1.TotalSize + C2.TotalSize;
  ObjectSize  = (C1.ObjectSize + C2.ObjectSize) / 2;
  TimeFirst   = min(C1.TimeFirst, C2.TimeFirst);
  TimeNext    = MedCmpMs;
  TotalTime   = C1.TotalTime + C2.TotalTime + MedCmpMs * CountObject;
}

# Communication cost of issuing a subplan to a wrapper (uniform network,
# per the paper's assumption).
submit(C) {
  CountObject = C.CountObject;
  TotalSize   = C.TotalSize;
  ObjectSize  = C.ObjectSize;
  TimeFirst   = C.TimeFirst + LatencyMs;
  TimeNext    = C.TimeNext + NetByteMs * C.ObjectSize;
  TotalTime   = C.TotalTime + LatencyMs + NetByteMs * C.TotalSize;
}

# ---- bind join (extension, cf. paper §7): the mediator probes the
# second collection once per distinct outer key. Keys group into
# batches of BindBatch (one disjunctive IN probe each) and batches
# issue in simulated-concurrent waves of BindPar; a wave costs its
# slowest batch (max-not-sum), so TotalTime scales with Waves, not
# Probes. BindBatch = BindPar = 1 reproduces the serial per-key cost --
bindjoin(C1, C2, A1 = A2) {
  Probes      = min(C1.CountObject, max(C1.A1.CountDistinct, 1));
  Batches     = ceil(Probes / BindBatch);
  Waves       = ceil(Batches / BindPar);
  PerBatch    = LatencyMs + StartupMs
              + if(C2.A2.Indexed,
                   BindBatch
                   * (ProbeMs * log2(max(C2.CountObject, 2)) + IoMs),
                   IoMs * (C2.TotalSize / PageSize)
                   + CmpMs * C2.CountObject);
  CountObject = C1.CountObject * C2.CountObject
              / max(min(C1.A1.CountDistinct, C2.A2.CountDistinct), 1);
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + LatencyMs + StartupMs;
  TimeNext    = ObjMs;
  TotalTime   = C1.TotalTime + Waves * PerBatch
              + ObjMs * CountObject
              + NetByteMs * TotalSize;
}
)RULES";
  (void)p;
  return text;
}

Status InstallGenericModel(RuleRegistry* registry,
                           const CalibrationParams& p) {
  costlang::CompileSchema empty_schema;  // all pattern names are variables
  DISCO_ASSIGN_OR_RETURN(
      costlang::CompiledRuleSet default_rules,
      costlang::CompileRuleText(GenericModelRuleText(p), empty_schema));
  DISCO_RETURN_NOT_OK(registry->AddDefaultRules(std::move(default_rules)));
  DISCO_ASSIGN_OR_RETURN(
      costlang::CompiledRuleSet local_rules,
      costlang::CompileRuleText(LocalModelRuleText(p), empty_schema));
  DISCO_RETURN_NOT_OK(registry->AddLocalRules(std::move(local_rules)));
  return Status::OK();
}

}  // namespace costmodel
}  // namespace disco
