#include "costmodel/selectivity.h"

#include <algorithm>

namespace disco {
namespace costmodel {

double DefaultSelectivity(algebra::CmpOp op) {
  switch (op) {
    case algebra::CmpOp::kEq:
    case algebra::CmpOp::kIn:  // per-value; callers scale by the set size
      return 0.1;
    case algebra::CmpOp::kNe:
      return 0.9;
    default:
      return 1.0 / 3.0;  // range predicates
  }
}

namespace {

/// Uniform interpolation position of `v` within [min, max]; nullopt when
/// the statistics do not support it (non-numeric or degenerate).
std::optional<double> Position(const AttributeStats& stats, const Value& v) {
  if (!stats.min.is_numeric() || !stats.max.is_numeric() || !v.is_numeric()) {
    return std::nullopt;
  }
  double lo = stats.min.AsDouble(), hi = stats.max.AsDouble();
  if (hi <= lo) return std::nullopt;
  return std::clamp((v.AsDouble() - lo) / (hi - lo), 0.0, 1.0);
}

/// True if `v` lies outside [min, max] (only when comparable).
bool OutOfRange(const AttributeStats& stats, const Value& v) {
  Result<int> lo = v.Compare(stats.min);
  Result<int> hi = v.Compare(stats.max);
  if (!lo.ok() || !hi.ok()) return false;
  return *lo < 0 || *hi > 0;
}

}  // namespace

double EstimateSelectivity(const AttributeStats& stats, algebra::CmpOp op,
                           const Value& value) {
  using algebra::CmpOp;

  if (stats.histogram.has_value() && !stats.histogram->empty()) {
    const EquiDepthHistogram& h = *stats.histogram;
    switch (op) {
      case CmpOp::kEq:
        return h.EstimateEq(value);
      case CmpOp::kNe:
        return std::clamp(1.0 - h.EstimateEq(value), 0.0, 1.0);
      case CmpOp::kLt:
        return h.EstimateLt(value);
      case CmpOp::kLe:
        return std::clamp(h.EstimateLt(value) + h.EstimateEq(value), 0.0, 1.0);
      case CmpOp::kGt:
        return std::clamp(1.0 - h.EstimateLt(value) - h.EstimateEq(value),
                          0.0, 1.0);
      case CmpOp::kGe:
        return std::clamp(1.0 - h.EstimateLt(value), 0.0, 1.0);
      case CmpOp::kIn:
        break;  // set-valued: resolved by EstimateInSelectivity
    }
  }

  switch (op) {
    case CmpOp::kEq: {
      if (!stats.min.is_null() && !stats.max.is_null() &&
          OutOfRange(stats, value)) {
        return 0.0;
      }
      if (stats.count_distinct > 0) {
        return 1.0 / static_cast<double>(stats.count_distinct);
      }
      return DefaultSelectivity(op);
    }
    case CmpOp::kNe: {
      if (stats.count_distinct > 0) {
        return std::clamp(
            1.0 - 1.0 / static_cast<double>(stats.count_distinct), 0.0, 1.0);
      }
      return DefaultSelectivity(op);
    }
    case CmpOp::kLt:
    case CmpOp::kLe: {
      std::optional<double> pos = Position(stats, value);
      if (!pos.has_value()) return DefaultSelectivity(op);
      return *pos;
    }
    case CmpOp::kGt:
    case CmpOp::kGe: {
      std::optional<double> pos = Position(stats, value);
      if (!pos.has_value()) return DefaultSelectivity(op);
      return 1.0 - *pos;
    }
    case CmpOp::kIn:
      break;  // set-valued: resolved by EstimateInSelectivity
  }
  return DefaultSelectivity(op);
}

double EstimateInSelectivity(const AttributeStats& stats,
                             const std::vector<Value>& values) {
  double sum = 0;
  for (const Value& v : values) {
    sum += EstimateSelectivity(stats, algebra::CmpOp::kEq, v);
  }
  return std::clamp(sum, 0.0, 1.0);
}

double JoinSelectivity(int64_t count_distinct_left,
                       int64_t count_distinct_right) {
  int64_t d = std::min(count_distinct_left, count_distinct_right);
  if (d <= 0) return 0.1;
  return 1.0 / static_cast<double>(d);
}

}  // namespace costmodel
}  // namespace disco
