// The mediator's generic cost model (paper Section 2.3).
//
// "When no specific information are given by wrappers, the mediator
// estimates the cost of plans using a cost model" -- calibration-style
// formulas for sequential scan, index scan, nested-loop / sort-merge /
// index join, and the remaining algebra operators. We express the model
// in the cost language itself and install it in the default scope, so a
// single matching/overriding mechanism serves every scope (the "elegant
// consequence" of Section 4.1). A parallel local-scope rule set covers
// mediator-side physical operators (Footnote 1) and the submit operator's
// communication cost.

#ifndef DISCO_COSTMODEL_GENERIC_MODEL_H_
#define DISCO_COSTMODEL_GENERIC_MODEL_H_

#include <string>

#include "common/status.h"
#include "costmodel/registry.h"

namespace disco {
namespace costmodel {

/// Calibration constants of the generic model. Defaults reflect the
/// ObjectStore measurements the paper's Section 5 reports: 25 ms to read
/// a page, 9 ms to produce an object, 120 ms startup (Figure 8's example
/// constant).
struct CalibrationParams {
  double ms_startup = 120.0;     ///< query start-up overhead (TimeFirst)
  double ms_per_io = 25.0;       ///< read one page from a data source
  double ms_per_object = 9.0;    ///< produce one result object
  double ms_per_cmp = 0.005;     ///< evaluate a predicate / compare once
  double ms_index_probe = 0.5;   ///< descend one B-tree level
  double page_size = 4096.0;     ///< bytes per page

  // Mediator-side processing (in-memory, faster than sources).
  double ms_med_cmp = 0.002;     ///< mediator compare/filter per object

  // Communication (uniform, per the paper's Section 2.3 assumption).
  // ~100 KB/s effective -- the Internet/intranet setting the paper
  // targets; shipping volume is a real factor in site placement.
  double ms_msg_latency = 50.0;   ///< per submitted subquery round trip
  double ms_per_net_byte = 0.01;  ///< ship one byte mediator-ward

  // Bind-join probe batching, mirroring the executor's
  // FederationOptions::{bind_batch_size, bind_parallelism} so the
  // optimizer prices bind joins the way they will actually run: keys
  // per disjunctive probe, and batches issued per simulated-concurrent
  // wave (the wave charges max-not-sum).
  int bind_batch_size = 1;
  int bind_parallelism = 1;
};

/// Renders the default-scope rule text (generic model) for `p`.
std::string GenericModelRuleText(const CalibrationParams& p);

/// Renders the local-scope rule text (mediator operators + submit).
std::string LocalModelRuleText(const CalibrationParams& p);

/// Compiles and installs both rule sets into `registry`. Must run before
/// any estimation (the default scope is the fallback of last resort).
Status InstallGenericModel(RuleRegistry* registry, const CalibrationParams& p);

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_GENERIC_MODEL_H_
