#include "costmodel/history.h"

#include <algorithm>

#include "common/str_util.h"

namespace disco {
namespace costmodel {

void HistoryManager::RecordExecution(RuleRegistry* registry,
                                     const std::string& source,
                                     const algebra::Operator& subplan,
                                     double estimated_total_ms,
                                     const CostVector& measured) {
  registry->AddQueryCost(source, subplan, measured);
  ++num_observations_;

  if (estimated_total_ms <= 0) return;
  double observed = measured.total_time();
  if (observed <= 0) return;
  double ratio = observed / estimated_total_ms;
  // Guard against degenerate observations dominating the factor.
  ratio = std::clamp(ratio, 1e-3, 1e3);

  Key key{ToLower(source), static_cast<int>(subplan.kind)};
  auto it = factors_.find(key);
  if (it == factors_.end()) {
    factors_[key] = ratio;
  } else {
    it->second = (1 - alpha_) * it->second + alpha_ * ratio;
  }
}

double HistoryManager::AdjustmentFactor(const std::string& source,
                                        algebra::OpKind kind) const {
  auto it = factors_.find(Key{ToLower(source), static_cast<int>(kind)});
  return it == factors_.end() ? 1.0 : it->second;
}

}  // namespace costmodel
}  // namespace disco
