// Historical cost management (paper Section 4.3.1).
//
// Two mechanisms, both fed by measured executions of wrapper subqueries:
//
// 1. *Query-scope rules*: the exact measured cost vector of a subquery is
//    stored in the registry's query scope; an identical subquery later
//    estimates to its recorded cost ("two executions of the same subquery
//    have the same cost regardless of differences in time").
//
// 2. *Parameter adjustment*: instead of storing a new formula per query,
//    the paper proposes adjusting formula input parameters until estimates
//    track observed costs. We realize this as an exponentially-weighted
//    multiplicative correction per (source, root operator kind): the
//    estimator multiplies a subquery's estimated TotalTime by the learned
//    factor at its submit node. This "encode[s] the history of the
//    execution in the adjustments" and generalizes to similar (not just
//    identical) subqueries.

#ifndef DISCO_COSTMODEL_HISTORY_H_
#define DISCO_COSTMODEL_HISTORY_H_

#include <map>
#include <string>

#include "algebra/operator.h"
#include "costmodel/cost_vector.h"
#include "costmodel/registry.h"

namespace disco {
namespace costmodel {

class HistoryManager {
 public:
  /// `alpha` is the EWMA weight of the newest observation in [0, 1].
  explicit HistoryManager(double alpha = 0.3) : alpha_(alpha) {}

  /// Records that `subplan`, submitted to `source`, was estimated at
  /// `estimated_total_ms` and actually took `measured`. Installs a
  /// query-scope entry in `registry` and updates the adjustment factor.
  void RecordExecution(RuleRegistry* registry, const std::string& source,
                       const algebra::Operator& subplan,
                       double estimated_total_ms, const CostVector& measured);

  /// Multiplicative TotalTime correction for subqueries rooted at `kind`
  /// on `source`; 1.0 when nothing has been learned.
  double AdjustmentFactor(const std::string& source,
                          algebra::OpKind kind) const;

  int num_observations() const { return num_observations_; }

 private:
  struct Key {
    std::string source;
    int kind;
    bool operator<(const Key& o) const {
      if (source != o.source) return source < o.source;
      return kind < o.kind;
    }
  };
  double alpha_;
  std::map<Key, double> factors_;
  int num_observations_ = 0;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_HISTORY_H_
