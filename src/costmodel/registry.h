// RuleRegistry: the mediator's store of cost rules across all scopes --
// the "hierarchic cost formula tree" of Figure 10, indexed for fast
// candidate lookup (the paper's "kind of virtual tables", Section 3.3.2).
//
// Wrapper rules land here at registration time; default- and local-scope
// rules are installed at mediator startup; query-scope entries are added
// by the history manager after executions.

#ifndef DISCO_COSTMODEL_REGISTRY_H_
#define DISCO_COSTMODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator.h"
#include "common/status.h"
#include "costlang/compiler.h"
#include "costmodel/cost_vector.h"
#include "costmodel/rule.h"

namespace disco {
namespace costmodel {

class RuleRegistry {
 public:
  RuleRegistry() = default;
  RuleRegistry(const RuleRegistry&) = delete;
  RuleRegistry& operator=(const RuleRegistry&) = delete;

  /// Installs the generic cost model (default scope, applies to every
  /// source as the fallback of last resort).
  Status AddDefaultRules(costlang::CompiledRuleSet rules);

  /// Installs rules for mediator-local operators (local scope).
  Status AddLocalRules(costlang::CompiledRuleSet rules);

  /// Installs a wrapper's exported rules under `source`. Each rule's
  /// scope (wrapper/collection/predicate) derives from its pattern.
  Status AddWrapperRules(const std::string& source,
                         costlang::CompiledRuleSet rules);

  /// Drops all of `source`'s wrapper rules and query-scope entries --
  /// the re-registration path of paper §2.1 ("when the cost formulas
  /// are improved by the wrapper implementor"). Default/local rules are
  /// unaffected. Returns how many rules were removed.
  int RemoveWrapperRules(const std::string& source);

  /// Records a query-scope entry: the exact measured cost of a subquery
  /// previously submitted to `source` (paper Section 4.3.1).
  void AddQueryCost(const std::string& source,
                    const algebra::Operator& subplan, const CostVector& cost);

  /// Exact-match query-scope lookup; nullptr if absent.
  const CostVector* QueryCost(const std::string& source,
                              const algebra::Operator& subplan) const;

  /// Candidate rules for estimating an operator of kind `kind` executing
  /// at `source` ("" = the mediator itself). Pre-sorted by matching
  /// precedence: scope desc, specificity desc, registration order asc.
  /// Includes the source's own rules plus default-scope rules (and
  /// local-scope rules when source is the mediator). Fully-bound select
  /// rules live in the hash index below, not here.
  const std::vector<RegisteredRule>& Candidates(const std::string& source,
                                                algebra::OpKind kind) const;

  /// The paper's "virtual tables" (Section 3.3.2): selection rules whose
  /// collection, attribute and value are all literal are hash-indexed by
  /// that triple, so thousands of query-specific rules cost O(1) to
  /// consult instead of lengthening every candidate scan. Returns the
  /// bucket matching `node` exactly (highest select specificity), or
  /// nullptr. These rules are excluded from Candidates().
  const std::vector<RegisteredRule>* ExactSelectBucket(
      const std::string& source, const algebra::Operator& node) const;

  int num_rules() const { return total_rules_; }
  int num_query_entries() const;

  /// Human-readable dump of the scope hierarchy (for debugging and the
  /// examples).
  std::string Describe() const;

 private:
  Status AddRuleSet(const std::string& source, Scope fixed_scope,
                    bool derive_scope, costlang::CompiledRuleSet rules);
  void Reindex();

  /// Owned storage for compiled rule sets (stable addresses).
  std::vector<std::unique_ptr<costlang::CompiledRuleSet>> rule_sets_;
  /// All registered rules, in registration order.
  std::vector<RegisteredRule> rules_;
  int total_rules_ = 0;
  int next_seq_ = 0;

  /// Index: (lowercased source, op kind) -> sorted candidate list. The
  /// mediator context is source "".
  mutable std::map<std::pair<std::string, int>, std::vector<RegisteredRule>>
      index_;
  /// Exact-select hash index: source -> "coll\x1f attr\x1f op\x1f value"
  /// -> rules, ordered by registration.
  mutable std::map<std::string,
                   std::unordered_map<std::string, std::vector<RegisteredRule>>>
      exact_select_index_;
  mutable bool index_valid_ = false;

  /// Query scope: source -> canonical subplan string -> measured cost.
  std::map<std::string, std::unordered_map<std::string, CostVector>>
      query_costs_;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_REGISTRY_H_
