// RuleRegistry: the mediator's store of cost rules across all scopes --
// the "hierarchic cost formula tree" of Figure 10, indexed for fast
// candidate lookup (the paper's "kind of virtual tables", Section 3.3.2).
//
// Wrapper rules land here at registration time; default- and local-scope
// rules are installed at mediator startup; query-scope entries are added
// by the history manager after executions.
//
// Concurrency: mutations (Add*/Remove*) happen on the mediator control
// thread only. The read side (Candidates / ExactSelectBucket / QueryCost)
// is safe to call from parallel plan-pricing workers: the lazy reindex is
// guarded by a mutex + atomic valid flag, and no read path mutates the
// index afterwards.

#ifndef DISCO_COSTMODEL_REGISTRY_H_
#define DISCO_COSTMODEL_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator.h"
#include "common/hashing.h"
#include "common/status.h"
#include "costlang/compiler.h"
#include "costmodel/cost_vector.h"
#include "costmodel/rule.h"

namespace disco {
namespace costmodel {

class RuleRegistry {
 public:
  RuleRegistry() = default;
  RuleRegistry(const RuleRegistry&) = delete;
  RuleRegistry& operator=(const RuleRegistry&) = delete;

  /// Installs the generic cost model (default scope, applies to every
  /// source as the fallback of last resort).
  Status AddDefaultRules(costlang::CompiledRuleSet rules);

  /// Installs rules for mediator-local operators (local scope).
  Status AddLocalRules(costlang::CompiledRuleSet rules);

  /// Installs a wrapper's exported rules under `source`. Each rule's
  /// scope (wrapper/collection/predicate) derives from its pattern.
  Status AddWrapperRules(const std::string& source,
                         costlang::CompiledRuleSet rules);

  /// Drops all of `source`'s wrapper rules and query-scope entries --
  /// the re-registration path of paper §2.1 ("when the cost formulas
  /// are improved by the wrapper implementor"). Default/local rules are
  /// unaffected. Returns how many rules were removed.
  int RemoveWrapperRules(const std::string& source);

  /// Records a query-scope entry: the exact measured cost of a subquery
  /// previously submitted to `source` (paper Section 4.3.1). Bumps the
  /// epoch but does NOT invalidate the candidate index (query-scope
  /// entries live in their own map).
  void AddQueryCost(const std::string& source,
                    const algebra::Operator& subplan, const CostVector& cost);

  /// Exact-match query-scope lookup; nullptr if absent.
  const CostVector* QueryCost(const std::string& source,
                              const algebra::Operator& subplan) const;

  /// Candidate rules for estimating an operator of kind `kind` executing
  /// at `source` ("" = the mediator itself). Pre-sorted by matching
  /// precedence: scope desc, specificity desc, registration order asc.
  /// Includes the source's own rules plus default-scope rules (and
  /// local-scope rules when source is the mediator). Fully-bound select
  /// rules live in the hash index below, not here. Lookup is
  /// allocation-free when `source` is already lower-cased (the
  /// estimator's hot path always is).
  const std::vector<RegisteredRule>& Candidates(std::string_view source,
                                                algebra::OpKind kind) const;

  /// The paper's "virtual tables" (Section 3.3.2): selection rules whose
  /// collection, attribute and value are all literal are hash-indexed by
  /// that triple, so thousands of query-specific rules cost O(1) to
  /// consult instead of lengthening every candidate scan. Returns the
  /// bucket matching `node` exactly (highest select specificity), or
  /// nullptr. These rules are excluded from Candidates().
  const std::vector<RegisteredRule>* ExactSelectBucket(
      std::string_view source, const algebra::Operator& node) const;

  int num_rules() const { return total_rules_; }
  int num_query_entries() const;

  /// Monotonic version of the cost-rule hierarchy: bumped by every
  /// AddDefaultRules / AddLocalRules / AddWrapperRules /
  /// RemoveWrapperRules / AddQueryCost. Subplan cost memos key their
  /// entries on this value so they invalidate exactly when the rule
  /// hierarchy (or the query scope / history state updated alongside it)
  /// changes (docs/PERFORMANCE.md).
  int64_t epoch() const { return epoch_; }

  /// Builds the candidate index now if it is stale. Optional: the read
  /// side does this lazily under a lock; calling it before fanning out
  /// parallel estimation avoids serializing the first lookups.
  void EnsureIndex() const;

  /// Human-readable dump of the scope hierarchy (for debugging and the
  /// examples).
  std::string Describe() const;

 private:
  /// Per-source slice of the candidate index. The mediator context is
  /// source "".
  struct PerSourceIndex {
    /// op kind -> sorted candidate list.
    std::array<std::vector<RegisteredRule>, algebra::kNumOpKinds> by_kind;
    /// Exact-select hash index: "coll\x1f attr\x1f op\x1f value" -> rules,
    /// ordered by registration.
    std::unordered_map<std::string, std::vector<RegisteredRule>, StringHash,
                       StringEq>
        exact_select;
  };

  Status AddRuleSet(const std::string& source, Scope fixed_scope,
                    bool derive_scope, costlang::CompiledRuleSet rules);
  void Reindex();
  const PerSourceIndex* FindSource(std::string_view source) const;

  /// Owned storage for compiled rule sets (stable addresses).
  std::vector<std::unique_ptr<costlang::CompiledRuleSet>> rule_sets_;
  /// All registered rules, in registration order.
  std::vector<RegisteredRule> rules_;
  int total_rules_ = 0;
  int next_seq_ = 0;
  int64_t epoch_ = 0;

  /// Index: lowercased source -> per-source candidate slices.
  mutable std::unordered_map<std::string, PerSourceIndex, StringHash, StringEq>
      index_;
  /// Candidate lists served to sources that exported no rules at all:
  /// default-scope rules only (local-scope rules never apply at a
  /// wrapper). Precomputed so Candidates() never mutates under const.
  mutable std::array<std::vector<RegisteredRule>, algebra::kNumOpKinds>
      fallback_by_kind_;
  mutable std::atomic<bool> index_valid_{false};
  mutable std::mutex reindex_mu_;

  /// Query scope: lowercased source -> canonical subplan string ->
  /// measured cost. Separate from the candidate index on purpose:
  /// AddQueryCost must not force a Reindex.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, CostVector>, StringHash,
                     StringEq>
      query_costs_;
};

}  // namespace costmodel
}  // namespace disco

#endif  // DISCO_COSTMODEL_REGISTRY_H_
