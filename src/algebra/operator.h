// The mediator logical algebra (paper Section 2.2).
//
// "the mediator algebra covers the following common operators: unary
// operators including scan, select, project, sort; binary operators
// including join, union; aggregate operators ...; plus an operator submit
// that is used to model the issuing of a subplan to a wrapper."

#ifndef DISCO_ALGEBRA_OPERATOR_H_
#define DISCO_ALGEBRA_OPERATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "common/result.h"

namespace disco {
namespace algebra {

enum class OpKind {
  kScan = 0,
  kSelect,
  kProject,
  kSort,
  kDedup,
  kAggregate,
  kJoin,
  kUnion,
  kSubmit,
  /// Bind join (extension, cf. paper §7): the mediator evaluates the
  /// left input, then probes `collection` at `source` once per distinct
  /// join key -- "selecting a few images from [the] other data source"
  /// instead of shipping or scanning the whole inner collection.
  kBindJoin,
};
constexpr int kNumOpKinds = 10;

const char* OpKindToString(OpKind k);

/// Parses an operator name as used in rule heads ("scan", "select", ...),
/// case-insensitive.
Result<OpKind> OpKindFromName(const std::string& name);

/// Aggregate functions of the algebra's aggregate operator.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc f);

/// A node of a logical plan tree. Which fields are meaningful depends on
/// `kind`; CheckWellFormed() validates the shape.
///
/// Plans own their children (unique_ptr); Clone() deep-copies.
struct Operator {
  OpKind kind = OpKind::kScan;
  std::vector<std::unique_ptr<Operator>> children;

  // kScan
  std::string collection;

  // kSelect
  std::optional<SelectPredicate> select_pred;

  // kProject
  std::vector<std::string> project_attrs;

  // kSort
  std::string sort_attr;
  bool sort_ascending = true;

  // kAggregate
  AggFunc agg_func = AggFunc::kCount;
  std::string agg_attr;                 ///< empty for COUNT(*)
  std::vector<std::string> group_by;    ///< empty for scalar aggregate

  // kJoin, kBindJoin
  std::optional<JoinPredicate> join_pred;

  // kSubmit: wrapper that executes the child subplan.
  // kBindJoin: wrapper owning the probed collection (`collection` holds
  // the collection name).
  std::string source;

  Operator() = default;
  explicit Operator(OpKind k) : kind(k) {}

  int num_children() const { return static_cast<int>(children.size()); }
  const Operator& child(int i) const { return *children[static_cast<size_t>(i)]; }
  Operator& child(int i) { return *children[static_cast<size_t>(i)]; }

  std::unique_ptr<Operator> Clone() const;

  /// Validates arity and required fields for this node and its subtree.
  Status CheckWellFormed() const;

  /// Canonical single-line rendering, e.g.
  /// `select(scan(Employee), salary = 10)`. Used for display and as the
  /// identity key of query-scope (historical) rules.
  std::string ToString() const;

  /// Structural equality (same tree, same parameters).
  bool Equals(const Operator& other) const;

  /// Structural hash consistent with Equals.
  size_t Hash() const;

  /// The set of base collections scanned in this subtree, in scan order.
  std::vector<std::string> BaseCollections() const;

  /// For provenance-based statistic lookup: the first base collection in
  /// this subtree ("" if none).
  std::string FirstBaseCollection() const;
};

// ---- Construction helpers --------------------------------------------

std::unique_ptr<Operator> Scan(std::string collection);
std::unique_ptr<Operator> Select(std::unique_ptr<Operator> input,
                                 SelectPredicate pred);
std::unique_ptr<Operator> Select(std::unique_ptr<Operator> input,
                                 std::string attribute, CmpOp op, Value value);
/// Disjunctive batch probe: `attribute in (values...)`.
std::unique_ptr<Operator> SelectIn(std::unique_ptr<Operator> input,
                                   std::string attribute,
                                   std::vector<Value> values);
std::unique_ptr<Operator> Project(std::unique_ptr<Operator> input,
                                  std::vector<std::string> attrs);
std::unique_ptr<Operator> Sort(std::unique_ptr<Operator> input,
                               std::string attr, bool ascending = true);
std::unique_ptr<Operator> Dedup(std::unique_ptr<Operator> input);
std::unique_ptr<Operator> Aggregate(std::unique_ptr<Operator> input,
                                    AggFunc func, std::string attr,
                                    std::vector<std::string> group_by = {});
std::unique_ptr<Operator> Join(std::unique_ptr<Operator> left,
                               std::unique_ptr<Operator> right,
                               JoinPredicate pred);
std::unique_ptr<Operator> Union(std::unique_ptr<Operator> left,
                                std::unique_ptr<Operator> right);
std::unique_ptr<Operator> Submit(std::string source,
                                 std::unique_ptr<Operator> subplan);
/// Bind join: probe `collection`@`source` per distinct left key.
std::unique_ptr<Operator> BindJoin(std::unique_ptr<Operator> left,
                                   std::string source, std::string collection,
                                   JoinPredicate pred);

}  // namespace algebra
}  // namespace disco

#endif  // DISCO_ALGEBRA_OPERATOR_H_
