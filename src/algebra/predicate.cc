#include "algebra/predicate.h"

namespace disco {
namespace algebra {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

Result<bool> EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  DISCO_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return Status::Internal("bad CmpOp");
}

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kEq;
    case CmpOp::kNe: return CmpOp::kNe;
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
  }
  return op;
}

std::string SelectPredicate::ToString() const {
  return attribute + " " + CmpOpToString(op) + " " + value.ToString();
}

std::string JoinPredicate::ToString() const {
  return left_attribute + " = " + right_attribute;
}

}  // namespace algebra
}  // namespace disco
