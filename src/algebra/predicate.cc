#include "algebra/predicate.h"

namespace disco {
namespace algebra {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kIn: return "in";
  }
  return "?";
}

Result<bool> EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  if (op == CmpOp::kIn) {
    return Status::Internal("kIn is set-valued; use EvalPredicate");
  }
  DISCO_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
    case CmpOp::kIn: break;  // handled above
  }
  return Status::Internal("bad CmpOp");
}

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kEq;
    case CmpOp::kNe: return CmpOp::kNe;
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    case CmpOp::kIn: return CmpOp::kIn;
  }
  return op;
}

std::string SelectPredicate::ToString() const {
  if (op == CmpOp::kIn) {
    std::string out = attribute + " in (";
    for (size_t i = 0; i < in_values.size(); ++i) {
      if (i > 0) out += ", ";
      out += in_values[i].ToString();
    }
    out += ")";
    return out;
  }
  return attribute + " " + CmpOpToString(op) + " " + value.ToString();
}

Result<bool> EvalPredicate(const Value& lhs, const SelectPredicate& pred) {
  if (pred.op == CmpOp::kIn) {
    for (const Value& v : pred.in_values) {
      if (lhs == v) return true;
    }
    return false;
  }
  return EvalCmp(lhs, pred.op, pred.value);
}

std::string JoinPredicate::ToString() const {
  return left_attribute + " = " + right_attribute;
}

}  // namespace algebra
}  // namespace disco
