// Predicates of the mediator algebra.
//
// Following the paper's Figure 9 grammar, a selection predicate is
// `attribute cmp value` and a join predicate is `attribute = attribute`.
// Conjunctions are represented as stacked select operators, so a single
// predicate object is always atomic — which is also what makes the
// rule-head matching of Section 3.3.2 well-defined.

#ifndef DISCO_ALGEBRA_PREDICATE_H_
#define DISCO_ALGEBRA_PREDICATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace disco {
namespace algebra {

/// Comparison operator of a selection predicate. `kIn` is the batched
/// disjunctive probe predicate (`attribute in (v1, ..., vn)`), used by
/// the bind-join executor to ship one probe per key batch; its operand
/// set lives in SelectPredicate::in_values.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kIn };

const char* CmpOpToString(CmpOp op);

/// Evaluates `lhs op rhs`; incomparable values yield an error. kIn is
/// set-valued and cannot be evaluated against a single rhs -- use
/// EvalPredicate for predicates that may carry kIn.
Result<bool> EvalCmp(const Value& lhs, CmpOp op, const Value& rhs);

/// Mirrors the operator left<->right (a < b  <=>  b > a).
CmpOp FlipCmp(CmpOp op);

/// A selection predicate: `attribute cmp constant`, or for kIn
/// `attribute in (in_values...)`.
struct SelectPredicate {
  std::string attribute;
  CmpOp op = CmpOp::kEq;
  Value value;
  /// Operand set of a kIn predicate (ignored for every other op).
  std::vector<Value> in_values;

  std::string ToString() const;
  bool operator==(const SelectPredicate& o) const {
    return attribute == o.attribute && op == o.op && value == o.value &&
           in_values == o.in_values;
  }
};

/// Evaluates the full predicate against an attribute value; handles kIn
/// (membership via typed Value equality) where EvalCmp cannot.
Result<bool> EvalPredicate(const Value& lhs, const SelectPredicate& pred);

/// An equi-join predicate: `left_attribute = right_attribute`.
struct JoinPredicate {
  std::string left_attribute;
  std::string right_attribute;

  std::string ToString() const;
  bool operator==(const JoinPredicate& o) const {
    return left_attribute == o.left_attribute &&
           right_attribute == o.right_attribute;
  }
};

}  // namespace algebra
}  // namespace disco

#endif  // DISCO_ALGEBRA_PREDICATE_H_
