#include "algebra/plan_printer.h"

#include "common/str_util.h"

namespace disco {
namespace algebra {

/// One-line label for a node, without children.
std::string NodeLabel(const Operator& op) {
  switch (op.kind) {
    case OpKind::kScan:
      return "scan(" + op.collection + ")";
    case OpKind::kSelect:
      return "select(" + op.select_pred->ToString() + ")";
    case OpKind::kProject:
      return "project(" + JoinStrings(op.project_attrs, ", ") + ")";
    case OpKind::kSort:
      return "sort(" + op.sort_attr +
             (op.sort_ascending ? " asc)" : " desc)");
    case OpKind::kDedup:
      return "dedup";
    case OpKind::kAggregate: {
      std::string s = "aggregate(";
      s += AggFuncToString(op.agg_func);
      s += "(" + (op.agg_attr.empty() ? std::string("*") : op.agg_attr) + ")";
      if (!op.group_by.empty()) s += " by " + JoinStrings(op.group_by, ", ");
      return s + ")";
    }
    case OpKind::kJoin:
      return "join(" + op.join_pred->ToString() + ")";
    case OpKind::kUnion:
      return "union";
    case OpKind::kSubmit:
      return "submit(@" + op.source + ")";
    case OpKind::kBindJoin:
      return "bindjoin(@" + op.source + "." + op.collection + ", " +
             op.join_pred->ToString() + ")";
  }
  return "?";
}

namespace {

void PrintRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(NodeLabel(op));
  out->push_back('\n');
  for (const auto& c : op.children) PrintRec(*c, depth + 1, out);
}

}  // namespace

std::string PrintPlan(const Operator& plan) {
  std::string out;
  PrintRec(plan, 0, &out);
  return out;
}

}  // namespace algebra
}  // namespace disco
