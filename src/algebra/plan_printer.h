// Multi-line, indented rendering of plan trees for humans.

#ifndef DISCO_ALGEBRA_PLAN_PRINTER_H_
#define DISCO_ALGEBRA_PLAN_PRINTER_H_

#include <string>

#include "algebra/operator.h"

namespace disco {
namespace algebra {

/// Pretty-prints `plan` as an indented tree, one operator per line, e.g.
///
///   join(name = author)
///     submit(@objdb)
///       select(salary > 100)
///         scan(Employee)
///     scan(Book)
std::string PrintPlan(const Operator& plan);

/// One-line label of a single node (no children), e.g.
/// `select(salary = 10)` or `submit(@oo7)`.
std::string NodeLabel(const Operator& op);

}  // namespace algebra
}  // namespace disco

#endif  // DISCO_ALGEBRA_PLAN_PRINTER_H_
