#include "algebra/operator.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace disco {
namespace algebra {

const char* OpKindToString(OpKind k) {
  switch (k) {
    case OpKind::kScan: return "scan";
    case OpKind::kSelect: return "select";
    case OpKind::kProject: return "project";
    case OpKind::kSort: return "sort";
    case OpKind::kDedup: return "dedup";
    case OpKind::kAggregate: return "aggregate";
    case OpKind::kJoin: return "join";
    case OpKind::kUnion: return "union";
    case OpKind::kSubmit: return "submit";
    case OpKind::kBindJoin: return "bindjoin";
  }
  return "?";
}

Result<OpKind> OpKindFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "scan") return OpKind::kScan;
  if (n == "select") return OpKind::kSelect;
  if (n == "project") return OpKind::kProject;
  if (n == "sort") return OpKind::kSort;
  if (n == "dedup" || n == "unique") return OpKind::kDedup;
  if (n == "aggregate" || n == "agg") return OpKind::kAggregate;
  if (n == "join") return OpKind::kJoin;
  if (n == "union") return OpKind::kUnion;
  if (n == "submit") return OpKind::kSubmit;
  if (n == "bindjoin") return OpKind::kBindJoin;
  return Status::ParseError("unknown operator '" + name + "'");
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

std::unique_ptr<Operator> Operator::Clone() const {
  auto out = std::make_unique<Operator>();
  out->kind = kind;
  out->collection = collection;
  out->select_pred = select_pred;
  out->project_attrs = project_attrs;
  out->sort_attr = sort_attr;
  out->sort_ascending = sort_ascending;
  out->agg_func = agg_func;
  out->agg_attr = agg_attr;
  out->group_by = group_by;
  out->join_pred = join_pred;
  out->source = source;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

Status Operator::CheckWellFormed() const {
  auto arity_error = [&](int expected) {
    return Status::InvalidArgument(
        StringPrintf("%s expects %d child(ren), has %d", OpKindToString(kind),
                     expected, num_children()));
  };
  switch (kind) {
    case OpKind::kScan:
      if (num_children() != 0) return arity_error(0);
      if (collection.empty()) {
        return Status::InvalidArgument("scan without a collection name");
      }
      break;
    case OpKind::kSelect:
      if (num_children() != 1) return arity_error(1);
      if (!select_pred.has_value()) {
        return Status::InvalidArgument("select without a predicate");
      }
      if (select_pred->op == CmpOp::kIn && select_pred->in_values.empty()) {
        return Status::InvalidArgument("IN select without values");
      }
      break;
    case OpKind::kProject:
      if (num_children() != 1) return arity_error(1);
      if (project_attrs.empty()) {
        return Status::InvalidArgument("project without attributes");
      }
      break;
    case OpKind::kSort:
      if (num_children() != 1) return arity_error(1);
      if (sort_attr.empty()) {
        return Status::InvalidArgument("sort without an attribute");
      }
      break;
    case OpKind::kDedup:
      if (num_children() != 1) return arity_error(1);
      break;
    case OpKind::kAggregate:
      if (num_children() != 1) return arity_error(1);
      if (agg_func != AggFunc::kCount && agg_attr.empty()) {
        return Status::InvalidArgument("aggregate without an attribute");
      }
      break;
    case OpKind::kJoin:
      if (num_children() != 2) return arity_error(2);
      if (!join_pred.has_value()) {
        return Status::InvalidArgument("join without a predicate");
      }
      break;
    case OpKind::kUnion:
      if (num_children() != 2) return arity_error(2);
      break;
    case OpKind::kSubmit:
      if (num_children() != 1) return arity_error(1);
      if (source.empty()) {
        return Status::InvalidArgument("submit without a source name");
      }
      if (child(0).kind == OpKind::kSubmit) {
        return Status::InvalidArgument("nested submit");
      }
      break;
    case OpKind::kBindJoin:
      if (num_children() != 1) return arity_error(1);
      if (source.empty() || collection.empty()) {
        return Status::InvalidArgument(
            "bindjoin needs a source and a collection to probe");
      }
      if (!join_pred.has_value()) {
        return Status::InvalidArgument("bindjoin without a predicate");
      }
      break;
  }
  for (const auto& c : children) DISCO_RETURN_NOT_OK(c->CheckWellFormed());
  return Status::OK();
}

std::string Operator::ToString() const {
  std::string out = OpKindToString(kind);
  out += "(";
  std::vector<std::string> parts;
  if (kind == OpKind::kSubmit) parts.push_back("@" + source);
  if (kind == OpKind::kBindJoin) {
    parts.push_back("@" + source + "." + collection);
  }
  for (const auto& c : children) parts.push_back(c->ToString());
  switch (kind) {
    case OpKind::kScan:
      parts.push_back(collection);
      break;
    case OpKind::kSelect:
      parts.push_back(select_pred->ToString());
      break;
    case OpKind::kProject:
      parts.push_back(JoinStrings(project_attrs, ", "));
      break;
    case OpKind::kSort:
      parts.push_back(sort_attr + (sort_ascending ? " asc" : " desc"));
      break;
    case OpKind::kAggregate: {
      std::string a = AggFuncToString(agg_func);
      a += "(" + (agg_attr.empty() ? std::string("*") : agg_attr) + ")";
      if (!group_by.empty()) a += " by " + JoinStrings(group_by, ", ");
      parts.push_back(std::move(a));
      break;
    }
    case OpKind::kJoin:
    case OpKind::kBindJoin:
      parts.push_back(join_pred->ToString());
      break;
    default:
      break;
  }
  out += JoinStrings(parts, ", ");
  out += ")";
  return out;
}

bool Operator::Equals(const Operator& other) const {
  if (kind != other.kind || num_children() != other.num_children()) {
    return false;
  }
  if (collection != other.collection || source != other.source) return false;
  if (select_pred.has_value() != other.select_pred.has_value()) return false;
  if (select_pred.has_value() && !(*select_pred == *other.select_pred)) {
    return false;
  }
  if (join_pred.has_value() != other.join_pred.has_value()) return false;
  if (join_pred.has_value() && !(*join_pred == *other.join_pred)) return false;
  if (project_attrs != other.project_attrs || sort_attr != other.sort_attr ||
      sort_ascending != other.sort_ascending || agg_func != other.agg_func ||
      agg_attr != other.agg_attr || group_by != other.group_by) {
    return false;
  }
  for (int i = 0; i < num_children(); ++i) {
    if (!child(i).Equals(other.child(i))) return false;
  }
  return true;
}

size_t Operator::Hash() const {
  size_t h = static_cast<size_t>(kind) * 0x9e3779b97f4a7c15ULL;
  h = HashCombine(h, std::hash<std::string>()(collection));
  h = HashCombine(h, std::hash<std::string>()(source));
  if (select_pred.has_value()) {
    h = HashCombine(h, std::hash<std::string>()(select_pred->attribute));
    h = HashCombine(h, static_cast<size_t>(select_pred->op));
    h = HashCombine(h, select_pred->value.Hash());
    for (const Value& v : select_pred->in_values) {
      h = HashCombine(h, v.Hash());
    }
  }
  if (join_pred.has_value()) {
    h = HashCombine(h, std::hash<std::string>()(join_pred->left_attribute));
    h = HashCombine(h, std::hash<std::string>()(join_pred->right_attribute));
  }
  for (const std::string& a : project_attrs) {
    h = HashCombine(h, std::hash<std::string>()(a));
  }
  h = HashCombine(h, std::hash<std::string>()(sort_attr));
  h = HashCombine(h, static_cast<size_t>(agg_func));
  h = HashCombine(h, std::hash<std::string>()(agg_attr));
  for (const std::string& a : group_by) {
    h = HashCombine(h, std::hash<std::string>()(a));
  }
  for (const auto& c : children) h = HashCombine(h, c->Hash());
  return h;
}

std::vector<std::string> Operator::BaseCollections() const {
  std::vector<std::string> out;
  if (kind == OpKind::kScan) {
    out.push_back(collection);
    return out;
  }
  for (const auto& c : children) {
    std::vector<std::string> sub = c->BaseCollections();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  if (kind == OpKind::kBindJoin) out.push_back(collection);
  return out;
}

std::string Operator::FirstBaseCollection() const {
  if (kind == OpKind::kScan) return collection;
  for (const auto& c : children) {
    std::string sub = c->FirstBaseCollection();
    if (!sub.empty()) return sub;
  }
  return "";
}

std::unique_ptr<Operator> Scan(std::string collection) {
  auto op = std::make_unique<Operator>(OpKind::kScan);
  op->collection = std::move(collection);
  return op;
}

std::unique_ptr<Operator> Select(std::unique_ptr<Operator> input,
                                 SelectPredicate pred) {
  auto op = std::make_unique<Operator>(OpKind::kSelect);
  op->children.push_back(std::move(input));
  op->select_pred = std::move(pred);
  return op;
}

std::unique_ptr<Operator> Select(std::unique_ptr<Operator> input,
                                 std::string attribute, CmpOp cmp,
                                 Value value) {
  return Select(std::move(input),
                SelectPredicate{std::move(attribute), cmp, std::move(value)});
}

std::unique_ptr<Operator> SelectIn(std::unique_ptr<Operator> input,
                                   std::string attribute,
                                   std::vector<Value> values) {
  SelectPredicate pred;
  pred.attribute = std::move(attribute);
  pred.op = CmpOp::kIn;
  pred.in_values = std::move(values);
  return Select(std::move(input), std::move(pred));
}

std::unique_ptr<Operator> Project(std::unique_ptr<Operator> input,
                                  std::vector<std::string> attrs) {
  auto op = std::make_unique<Operator>(OpKind::kProject);
  op->children.push_back(std::move(input));
  op->project_attrs = std::move(attrs);
  return op;
}

std::unique_ptr<Operator> Sort(std::unique_ptr<Operator> input,
                               std::string attr, bool ascending) {
  auto op = std::make_unique<Operator>(OpKind::kSort);
  op->children.push_back(std::move(input));
  op->sort_attr = std::move(attr);
  op->sort_ascending = ascending;
  return op;
}

std::unique_ptr<Operator> Dedup(std::unique_ptr<Operator> input) {
  auto op = std::make_unique<Operator>(OpKind::kDedup);
  op->children.push_back(std::move(input));
  return op;
}

std::unique_ptr<Operator> Aggregate(std::unique_ptr<Operator> input,
                                    AggFunc func, std::string attr,
                                    std::vector<std::string> group_by) {
  auto op = std::make_unique<Operator>(OpKind::kAggregate);
  op->children.push_back(std::move(input));
  op->agg_func = func;
  op->agg_attr = std::move(attr);
  op->group_by = std::move(group_by);
  return op;
}

std::unique_ptr<Operator> Join(std::unique_ptr<Operator> left,
                               std::unique_ptr<Operator> right,
                               JoinPredicate pred) {
  auto op = std::make_unique<Operator>(OpKind::kJoin);
  op->children.push_back(std::move(left));
  op->children.push_back(std::move(right));
  op->join_pred = std::move(pred);
  return op;
}

std::unique_ptr<Operator> Union(std::unique_ptr<Operator> left,
                                std::unique_ptr<Operator> right) {
  auto op = std::make_unique<Operator>(OpKind::kUnion);
  op->children.push_back(std::move(left));
  op->children.push_back(std::move(right));
  return op;
}

std::unique_ptr<Operator> Submit(std::string source,
                                 std::unique_ptr<Operator> subplan) {
  auto op = std::make_unique<Operator>(OpKind::kSubmit);
  op->source = std::move(source);
  op->children.push_back(std::move(subplan));
  return op;
}

std::unique_ptr<Operator> BindJoin(std::unique_ptr<Operator> left,
                                   std::string source, std::string collection,
                                   JoinPredicate pred) {
  auto op = std::make_unique<Operator>(OpKind::kBindJoin);
  op->children.push_back(std::move(left));
  op->source = std::move(source);
  op->collection = std::move(collection);
  op->join_pred = std::move(pred);
  return op;
}

}  // namespace algebra
}  // namespace disco
