#include "query/binder.h"

#include <functional>
#include <set>

#include "common/str_util.h"

namespace disco {
namespace query {

namespace {

/// A resolved attribute: which relation, and its canonical definition.
struct ResolvedAttr {
  int rel = 0;
  AttributeDef def;
};

class Binder {
 public:
  Binder(const ParsedQuery& q, const Catalog& catalog)
      : q_(q), catalog_(catalog) {}

  Result<BoundQuery> Bind() {
    BoundQuery out;

    // FROM: resolve collections and owning sources.
    std::set<std::string> seen;
    for (const std::string& table : q_.tables) {
      DISCO_ASSIGN_OR_RETURN(CatalogEntry entry, Lookup(table));
      if (!seen.insert(ToLower(entry.schema.name())).second) {
        return Status::NotSupported(
            "collection '" + entry.schema.name() +
            "' appears twice; self-joins (aliases) are not supported");
      }
      BoundRelation rel;
      rel.collection = entry.schema.name();
      rel.source = entry.source;
      out.relations.push_back(std::move(rel));
      schemas_.push_back(entry.schema);
    }

    // WHERE selections.
    for (const algebra::SelectPredicate& p : q_.selections) {
      DISCO_ASSIGN_OR_RETURN(ResolvedAttr attr, Resolve(p.attribute));
      DISCO_ASSIGN_OR_RETURN(Value value, Coerce(p.value, attr.def));
      out.relations[static_cast<size_t>(attr.rel)].predicates.push_back(
          algebra::SelectPredicate{attr.def.name, p.op, std::move(value)});
    }

    // WHERE joins.
    for (const algebra::JoinPredicate& j : q_.joins) {
      DISCO_ASSIGN_OR_RETURN(ResolvedAttr l, Resolve(j.left_attribute));
      DISCO_ASSIGN_OR_RETURN(ResolvedAttr r, Resolve(j.right_attribute));
      if (l.rel == r.rel) {
        return Status::NotSupported("join predicate '" + j.ToString() +
                                    "' relates a collection to itself");
      }
      if (l.def.type != r.def.type) {
        return Status::InvalidArgument(
            "join predicate '" + j.ToString() + "' compares " +
            AttrTypeToString(l.def.type) + " with " +
            AttrTypeToString(r.def.type));
      }
      BoundJoin join;
      join.left_rel = l.rel;
      join.left_attr = l.def.name;
      join.right_rel = r.rel;
      join.right_attr = r.def.name;
      out.joins.push_back(std::move(join));
    }

    // Connectivity (no cross products).
    DISCO_RETURN_NOT_OK(CheckConnected(out));

    // SELECT list.
    out.distinct = q_.distinct;
    if (!q_.select_all) {
      for (const SelectItem& item : q_.items) {
        if (item.agg.has_value()) {
          if (out.aggregate.has_value()) {
            return Status::NotSupported(
                "at most one aggregate per query is supported");
          }
          BoundAggregate agg;
          agg.func = *item.agg;
          if (!item.attribute.empty()) {
            DISCO_ASSIGN_OR_RETURN(ResolvedAttr a, Resolve(item.attribute));
            agg.attribute = a.def.name;
          }
          out.aggregate = std::move(agg);
        } else {
          DISCO_ASSIGN_OR_RETURN(ResolvedAttr a, Resolve(item.attribute));
          out.projections.push_back(a.def.name);
        }
      }
    }

    // GROUP BY.
    for (const std::string& g : q_.group_by) {
      DISCO_ASSIGN_OR_RETURN(ResolvedAttr a, Resolve(g));
      out.group_by.push_back(a.def.name);
    }
    if (!out.group_by.empty() && !out.aggregate.has_value()) {
      return Status::InvalidArgument("GROUP BY without an aggregate");
    }
    // Plain attributes next to an aggregate must be grouped.
    if (out.aggregate.has_value()) {
      for (const std::string& p : out.projections) {
        bool grouped = false;
        for (const std::string& g : out.group_by) {
          if (EqualsIgnoreCase(p, g)) grouped = true;
        }
        if (!grouped) {
          return Status::InvalidArgument("'" + p +
                                         "' must appear in GROUP BY");
        }
      }
    }

    // ORDER BY.
    if (q_.order_by.has_value()) {
      DISCO_ASSIGN_OR_RETURN(ResolvedAttr a, Resolve(*q_.order_by));
      out.order_by = a.def.name;
      out.order_ascending = q_.order_ascending;
    }
    return out;
  }

 private:
  Result<CatalogEntry> Lookup(const std::string& table) const {
    if (catalog_.HasCollection(table)) return catalog_.Collection(table);
    // Case-insensitive fallback.
    for (const std::string& name : catalog_.Collections()) {
      if (EqualsIgnoreCase(name, table)) return catalog_.Collection(name);
    }
    return Status::NotFound("unknown collection '" + table + "'");
  }

  /// Resolves a possibly qualified attribute against the FROM relations.
  Result<ResolvedAttr> Resolve(const std::string& name) const {
    std::string qualifier, attr = name;
    size_t pos = name.rfind('.');
    if (pos != std::string::npos) {
      qualifier = name.substr(0, pos);
      attr = name.substr(pos + 1);
    }
    std::optional<ResolvedAttr> found;
    for (size_t i = 0; i < schemas_.size(); ++i) {
      if (!qualifier.empty() &&
          !EqualsIgnoreCase(schemas_[i].name(), qualifier)) {
        continue;
      }
      for (const AttributeDef& def : schemas_[i].attributes()) {
        if (!EqualsIgnoreCase(def.name, attr)) continue;
        if (found.has_value()) {
          return Status::InvalidArgument("attribute '" + name +
                                         "' is ambiguous");
        }
        found = ResolvedAttr{static_cast<int>(i), def};
      }
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown attribute '" + name + "'");
    }
    return *found;
  }

  /// Checks/coerces a literal against the attribute type.
  Result<Value> Coerce(const Value& v, const AttributeDef& def) const {
    switch (def.type) {
      case AttrType::kLong:
        if (v.is_int64()) return v;
        if (v.is_double() && v.AsDouble() == static_cast<double>(static_cast<int64_t>(v.AsDouble()))) {
          return Value(static_cast<int64_t>(v.AsDouble()));
        }
        if (v.is_double()) return v;  // range compare against Long is fine
        break;
      case AttrType::kDouble:
        if (v.is_numeric()) return Value(v.AsDouble());
        break;
      case AttrType::kString:
        if (v.is_string()) return v;
        break;
      case AttrType::kBool:
        if (v.is_bool()) return v;
        break;
    }
    return Status::InvalidArgument(
        "literal " + v.ToString() + " does not match the " +
        AttrTypeToString(def.type) + " attribute '" + def.name + "'");
  }

  /// Rejects disconnected join graphs.
  Status CheckConnected(const BoundQuery& out) const {
    const size_t n = out.relations.size();
    if (n <= 1) return Status::OK();
    std::vector<int> comp(n);
    for (size_t i = 0; i < n; ++i) comp[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      while (comp[static_cast<size_t>(x)] != x) {
        x = comp[static_cast<size_t>(x)];
      }
      return x;
    };
    for (const BoundJoin& j : out.joins) {
      int a = find(j.left_rel), b = find(j.right_rel);
      if (a != b) comp[static_cast<size_t>(a)] = b;
    }
    int root = find(0);
    for (size_t i = 1; i < n; ++i) {
      if (find(static_cast<int>(i)) != root) {
        return Status::NotSupported(
            "the join graph is disconnected (cross products are not "
            "supported)");
      }
    }
    return Status::OK();
  }

  const ParsedQuery& q_;
  const Catalog& catalog_;
  std::vector<CollectionSchema> schemas_;
};

}  // namespace

Result<BoundQuery> Bind(const ParsedQuery& q, const Catalog& catalog) {
  if (q.tables.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  Binder b(q, catalog);
  return b.Bind();
}

}  // namespace query
}  // namespace disco
