#include "query/sql_parser.h"

#include "common/str_util.h"
#include "costlang/lexer.h"

namespace disco {
namespace query {

namespace {

// The SQL subset shares its token shapes with the cost language; we
// reuse that lexer and treat keywords case-insensitively here.
using costlang::Token;
using costlang::TokenType;

std::optional<algebra::AggFunc> AggFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "count") return algebra::AggFunc::kCount;
  if (n == "sum") return algebra::AggFunc::kSum;
  if (n == "avg") return algebra::AggFunc::kAvg;
  if (n == "min") return algebra::AggFunc::kMin;
  if (n == "max") return algebra::AggFunc::kMax;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    DISCO_RETURN_NOT_OK(ExpectKeyword("select"));
    if (Peek().IsIdent("distinct")) {
      q.distinct = true;
      Advance();
    }
    if (Peek().Is(TokenType::kStar)) {
      q.select_all = true;
      Advance();
    } else {
      while (true) {
        DISCO_ASSIGN_OR_RETURN(SelectItem item, ParseItem());
        q.items.push_back(std::move(item));
        if (!Peek().Is(TokenType::kComma)) break;
        Advance();
      }
    }

    DISCO_RETURN_NOT_OK(ExpectKeyword("from"));
    while (true) {
      DISCO_ASSIGN_OR_RETURN(std::string t, ExpectName());
      q.tables.push_back(std::move(t));
      if (!Peek().Is(TokenType::kComma)) break;
      Advance();
    }

    if (Peek().IsIdent("where")) {
      Advance();
      while (true) {
        DISCO_RETURN_NOT_OK(ParsePredicate(&q));
        if (!Peek().IsIdent("and")) break;
        Advance();
      }
    }

    if (Peek().IsIdent("group")) {
      Advance();
      DISCO_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        DISCO_ASSIGN_OR_RETURN(std::string a, ParseAttrName());
        q.group_by.push_back(std::move(a));
        if (!Peek().Is(TokenType::kComma)) break;
        Advance();
      }
    }

    if (Peek().IsIdent("order")) {
      Advance();
      DISCO_RETURN_NOT_OK(ExpectKeyword("by"));
      DISCO_ASSIGN_OR_RETURN(std::string a, ParseAttrName());
      q.order_by = std::move(a);
      if (Peek().IsIdent("asc")) {
        Advance();
      } else if (Peek().IsIdent("desc")) {
        q.order_ascending = false;
        Advance();
      }
    }

    if (Peek().Is(TokenType::kSemicolon)) Advance();
    if (!Peek().Is(TokenType::kEof)) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }
    return q;
  }

 private:
  Result<SelectItem> ParseItem() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Err("expected a select item, got '" + Peek().text + "'");
    }
    std::string first = Peek().text;
    std::optional<algebra::AggFunc> agg = AggFromName(first);
    if (agg.has_value() && PeekAt(1).Is(TokenType::kLParen)) {
      Advance();  // function name
      Advance();  // '('
      SelectItem item;
      item.agg = agg;
      if (Peek().Is(TokenType::kStar)) {
        if (*agg != algebra::AggFunc::kCount) {
          return Err("only count(*) may aggregate '*'");
        }
        Advance();
      } else {
        DISCO_ASSIGN_OR_RETURN(item.attribute, ParseAttrName());
      }
      DISCO_RETURN_NOT_OK(Expect(TokenType::kRParen, ")"));
      return item;
    }
    SelectItem item;
    DISCO_ASSIGN_OR_RETURN(item.attribute, ParseAttrName());
    return item;
  }

  Status ParsePredicate(ParsedQuery* q) {
    DISCO_ASSIGN_OR_RETURN(std::string lhs, ParseAttrName());
    DISCO_ASSIGN_OR_RETURN(algebra::CmpOp op, ParseCmp());
    // The right side decides selection vs join.
    if (Peek().Is(TokenType::kNumber)) {
      double v = Peek().number;
      Advance();
      Value val = (v == static_cast<int64_t>(v))
                      ? Value(static_cast<int64_t>(v))
                      : Value(v);
      q->selections.push_back(
          algebra::SelectPredicate{std::move(lhs), op, std::move(val)});
      return Status::OK();
    }
    if (Peek().Is(TokenType::kString)) {
      q->selections.push_back(
          algebra::SelectPredicate{std::move(lhs), op, Value(Peek().text)});
      Advance();
      return Status::OK();
    }
    if (Peek().Is(TokenType::kMinus)) {
      Advance();
      if (!Peek().Is(TokenType::kNumber)) {
        return Err("expected number after '-'");
      }
      double v = -Peek().number;
      Advance();
      Value val = (v == static_cast<int64_t>(v))
                      ? Value(static_cast<int64_t>(v))
                      : Value(v);
      q->selections.push_back(
          algebra::SelectPredicate{std::move(lhs), op, std::move(val)});
      return Status::OK();
    }
    if (Peek().Is(TokenType::kIdentifier)) {
      if (Peek().IsIdent("true") || Peek().IsIdent("false")) {
        q->selections.push_back(algebra::SelectPredicate{
            std::move(lhs), op, Value(Peek().IsIdent("true"))});
        Advance();
        return Status::OK();
      }
      DISCO_ASSIGN_OR_RETURN(std::string rhs, ParseAttrName());
      if (op != algebra::CmpOp::kEq) {
        return Err("join predicates must be equalities");
      }
      q->joins.push_back(
          algebra::JoinPredicate{std::move(lhs), std::move(rhs)});
      return Status::OK();
    }
    return Err("expected a literal or attribute after comparison");
  }

  Result<std::string> ParseAttrName() {
    DISCO_ASSIGN_OR_RETURN(std::string name, ExpectName());
    if (Peek().Is(TokenType::kDot)) {
      Advance();
      DISCO_ASSIGN_OR_RETURN(std::string attr, ExpectName());
      return name + "." + attr;
    }
    return name;
  }

  Result<algebra::CmpOp> ParseCmp() {
    algebra::CmpOp op;
    switch (Peek().type) {
      case TokenType::kEq: op = algebra::CmpOp::kEq; break;
      case TokenType::kNe: op = algebra::CmpOp::kNe; break;
      case TokenType::kLt: op = algebra::CmpOp::kLt; break;
      case TokenType::kLe: op = algebra::CmpOp::kLe; break;
      case TokenType::kGt: op = algebra::CmpOp::kGt; break;
      case TokenType::kGe: op = algebra::CmpOp::kGe; break;
      default:
        return Err("expected a comparison operator, got '" + Peek().text +
                   "'");
    }
    Advance();
    return op;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t ahead) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Expect(TokenType t, const char* what) {
    if (!Peek().Is(t)) {
      return Err(std::string("expected '") + what + "', got '" + Peek().text +
                 "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!Peek().IsIdent(kw)) {
      return Err("expected '" + kw + "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectName() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Err("expected identifier, got '" + Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("SQL line %d: %s", Peek().line, msg.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string ParsedQuery::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_all) {
    out += "*";
  } else {
    std::vector<std::string> parts;
    for (const SelectItem& item : items) {
      if (item.agg.has_value()) {
        parts.push_back(std::string(algebra::AggFuncToString(*item.agg)) +
                        "(" + (item.attribute.empty() ? "*" : item.attribute) +
                        ")");
      } else {
        parts.push_back(item.attribute);
      }
    }
    out += JoinStrings(parts, ", ");
  }
  out += " FROM " + JoinStrings(tables, ", ");
  std::vector<std::string> preds;
  for (const auto& s : selections) preds.push_back(s.ToString());
  for (const auto& j : joins) preds.push_back(j.ToString());
  if (!preds.empty()) out += " WHERE " + JoinStrings(preds, " AND ");
  if (!group_by.empty()) out += " GROUP BY " + JoinStrings(group_by, ", ");
  if (order_by.has_value()) {
    out += " ORDER BY " + *order_by + (order_ascending ? "" : " DESC");
  }
  return out;
}

Result<ParsedQuery> ParseSql(const std::string& sql) {
  DISCO_ASSIGN_OR_RETURN(std::vector<Token> tokens, costlang::Tokenize(sql));
  Parser p(std::move(tokens));
  return p.Parse();
}

}  // namespace query
}  // namespace disco
