// Binder: resolves a parsed query against the mediator catalog into a
// bound query graph -- the form the optimizer enumerates over.

#ifndef DISCO_QUERY_BINDER_H_
#define DISCO_QUERY_BINDER_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "query/sql_parser.h"

namespace disco {
namespace query {

/// One FROM relation with the selection predicates bound to it.
struct BoundRelation {
  std::string collection;  ///< canonical collection name
  std::string source;      ///< wrapper owning it
  std::vector<algebra::SelectPredicate> predicates;
};

/// One equi-join edge of the query graph.
struct BoundJoin {
  int left_rel = 0;
  std::string left_attr;
  int right_rel = 0;
  std::string right_attr;
};

struct BoundAggregate {
  algebra::AggFunc func = algebra::AggFunc::kCount;
  std::string attribute;  ///< empty for count(*)
};

struct BoundQuery {
  std::vector<BoundRelation> relations;
  std::vector<BoundJoin> joins;
  /// Output attributes (unqualified); empty means "all".
  std::vector<std::string> projections;
  bool distinct = false;
  std::optional<BoundAggregate> aggregate;
  std::vector<std::string> group_by;
  std::optional<std::string> order_by;
  bool order_ascending = true;
};

/// Binds `q` against `catalog`. Rejects unknown collections/attributes,
/// type-mismatched literals, and disconnected join graphs (cross products
/// are not supported).
Result<BoundQuery> Bind(const ParsedQuery& q, const Catalog& catalog);

}  // namespace query
}  // namespace disco

#endif  // DISCO_QUERY_BINDER_H_
