// Parser for the client query language: the "simple object/relational
// SQL" of the paper's Step 3 (Section 2.2).
//
//   query  ::= SELECT [DISTINCT] items FROM tables
//              [WHERE pred (AND pred)*]
//              [GROUP BY attrs] [ORDER BY attr [ASC|DESC]]
//   items  ::= '*' | item (',' item)*
//   item   ::= attr | (COUNT|SUM|AVG|MIN|MAX) '(' (attr|'*') ')'
//   pred   ::= attr cmp literal | attr '=' attr
//   attr   ::= name ['.' name]
//
// Conjunctive predicates only; disjunctions and nesting are out of scope
// (as in the paper's examples).

#ifndef DISCO_QUERY_SQL_PARSER_H_
#define DISCO_QUERY_SQL_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "algebra/predicate.h"
#include "common/result.h"

namespace disco {
namespace query {

struct SelectItem {
  std::string attribute;                  ///< empty for count(*)
  std::optional<algebra::AggFunc> agg;    ///< set for aggregate items
};

struct ParsedQuery {
  bool select_all = false;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::string> tables;
  std::vector<algebra::SelectPredicate> selections;  ///< attr cmp literal
  std::vector<algebra::JoinPredicate> joins;         ///< attr = attr
  std::vector<std::string> group_by;
  std::optional<std::string> order_by;
  bool order_ascending = true;

  std::string ToString() const;
};

Result<ParsedQuery> ParseSql(const std::string& sql);

}  // namespace query
}  // namespace disco

#endif  // DISCO_QUERY_SQL_PARSER_H_
