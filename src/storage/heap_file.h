// Heap files: unordered record storage over slotted pages, accessed
// through the buffer pool (every page access charges simulated I/O on a
// pool miss).

#ifndef DISCO_STORAGE_HEAP_FILE_H_
#define DISCO_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace disco {
namespace storage {

struct HeapFileOptions {
  uint32_t page_size = 4096;
  /// Fraction of the page usable for data before a new page starts; the
  /// OO7 setup uses 0.96 (paper Section 5).
  double fill_factor = 1.0;
  /// Hard cap on records per page (0 = bytes-only limit). Lets the OO7
  /// generator hit the paper's exact 70-objects-per-page layout.
  int max_records_per_page = 0;
};

class HeapFile {
 public:
  /// `file_id` must be unique per buffer pool.
  HeapFile(BufferPool* pool, uint32_t file_id, HeapFileOptions options);

  /// Appends a record (never reuses space; this engine has no deletes).
  /// Insertion touches the tail page through the buffer pool.
  Result<RID> Insert(std::span<const uint8_t> record);

  /// Reads one record; touches its page.
  Result<std::vector<uint8_t>> Get(const RID& rid) const;

  /// Calls `fn(rid, record)` for every record in page order, touching
  /// each page once. `fn` returning false stops the scan.
  template <typename Fn>
  Status ForEach(Fn&& fn) const {
    for (PageId p = 0; p < pages_.size(); ++p) {
      pool_->Touch(BufferPool::Key(file_id_, p));
      const Page& page = pages_[p];
      for (int s = 0; s < page.num_records(); ++s) {
        DISCO_ASSIGN_OR_RETURN(std::span<const uint8_t> rec,
                               page.Get(static_cast<uint16_t>(s)));
        if (!fn(RID{p, static_cast<uint16_t>(s)}, rec)) return Status::OK();
      }
    }
    return Status::OK();
  }

  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }
  int64_t num_records() const { return num_records_; }
  int64_t data_bytes() const { return data_bytes_; }
  uint32_t file_id() const { return file_id_; }
  uint32_t page_size() const { return options_.page_size; }

 private:
  uint32_t usable_bytes() const;

  BufferPool* pool_;
  uint32_t file_id_;
  HeapFileOptions options_;
  std::vector<Page> pages_;
  int64_t num_records_ = 0;
  int64_t data_bytes_ = 0;
};

}  // namespace storage
}  // namespace disco

#endif  // DISCO_STORAGE_HEAP_FILE_H_
