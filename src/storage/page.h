// Slotted pages: the byte-level unit of the simulated storage engine.
//
// Layout (little-endian):
//   [0..2)  uint16 num_slots
//   [2..4)  uint16 free_offset (first free byte for record data)
//   records grow upward from offset 4;
//   the slot directory grows downward from the end of the page, one
//   4-byte entry per slot: uint16 offset, uint16 length.

#ifndef DISCO_STORAGE_PAGE_H_
#define DISCO_STORAGE_PAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"

namespace disco {
namespace storage {

using PageId = uint32_t;

/// Record identifier: page number within a heap file plus slot index.
struct RID {
  PageId page = 0;
  uint16_t slot = 0;

  bool operator==(const RID& o) const {
    return page == o.page && slot == o.slot;
  }
  bool operator<(const RID& o) const {
    if (page != o.page) return page < o.page;
    return slot < o.slot;
  }
};

class Page {
 public:
  static constexpr uint32_t kHeaderSize = 4;
  static constexpr uint32_t kSlotSize = 4;

  explicit Page(uint32_t page_size);

  /// Bytes a record of length `len` consumes when inserted (data + slot).
  static uint32_t SpaceNeeded(uint32_t len) { return len + kSlotSize; }

  uint32_t free_space() const;
  int num_records() const;
  uint32_t page_size() const { return static_cast<uint32_t>(bytes_.size()); }

  /// Appends a record; OutOfRange if it does not fit.
  Result<uint16_t> Insert(std::span<const uint8_t> record);

  /// Read-only view of a record; OutOfRange for bad slots.
  Result<std::span<const uint8_t>> Get(uint16_t slot) const;

 private:
  uint16_t ReadU16(uint32_t offset) const;
  void WriteU16(uint32_t offset, uint16_t v);

  std::vector<uint8_t> bytes_;
};

}  // namespace storage
}  // namespace disco

#endif  // DISCO_STORAGE_PAGE_H_
