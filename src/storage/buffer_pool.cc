#include "storage/buffer_pool.h"

#include "common/logging.h"

namespace disco {
namespace storage {

BufferPool::BufferPool(SimClock* clock, size_t capacity, double ms_per_read)
    : clock_(clock), capacity_(capacity), ms_per_read_(ms_per_read) {
  DISCO_CHECK(capacity_ > 0) << "buffer pool needs capacity";
}

void BufferPool::Touch(uint64_t page_key) {
  auto it = map_.find(page_key);
  if (it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++misses_;
  clock_->Advance(ms_per_read_);
  lru_.push_front(page_key);
  map_[page_key] = lru_.begin();
  if (map_.size() > capacity_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace storage
}  // namespace disco
