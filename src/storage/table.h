// Tables: schema-typed collections over heap files with optional B+-tree
// indexes, plus the statistics computation wrappers export at
// registration.

#ifndef DISCO_STORAGE_TABLE_H_
#define DISCO_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/result.h"
#include "common/value.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/sim_clock.h"

namespace disco {
namespace storage {

/// A tuple is one Value per schema attribute, in schema order.
using Tuple = std::vector<Value>;

/// Shared simulation context of one data source: its clock, timing
/// constants, and buffer pool.
struct StorageEnv {
  SimClock clock;
  SourceCostParams params;
  BufferPool pool;

  explicit StorageEnv(size_t pool_pages = 4096,
                      SourceCostParams p = SourceCostParams())
      : params(p), pool(&clock, pool_pages, p.ms_per_page_read) {}

  uint32_t NextFileId() { return next_file_id_++; }

 private:
  uint32_t next_file_id_ = 0;
};

struct TableOptions {
  HeapFileOptions heap;
};

class Table {
 public:
  Table(CollectionSchema schema, StorageEnv* env, TableOptions options = {});

  const std::string& name() const { return schema_.name(); }
  const CollectionSchema& schema() const { return schema_; }
  const HeapFile& heap() const { return heap_; }
  StorageEnv* env() const { return env_; }

  /// Appends a tuple (checked against the schema).
  Status Insert(const Tuple& tuple);

  /// Builds a B+-tree on `attribute` over the existing rows. `clustered`
  /// declares (does not enforce) that the heap is ordered on the
  /// attribute; it is exported in the statistics.
  Status CreateIndex(const std::string& attribute, bool clustered = false);

  bool HasIndex(const std::string& attribute) const;
  /// The index on `attribute`; NotFound if absent.
  Result<const BTree*> Index(const std::string& attribute) const;

  /// Reads one tuple by rid (touches its page).
  Result<Tuple> Fetch(const RID& rid) const;

  /// Calls `fn(rid, tuple)` for each tuple in page order; `fn` returning
  /// false stops.
  template <typename Fn>
  Status Scan(Fn&& fn) const {
    Status inner = Status::OK();
    DISCO_RETURN_NOT_OK(heap_.ForEach(
        [&](const RID& rid, std::span<const uint8_t> rec) {
          Result<Tuple> t = Deserialize(rec);
          if (!t.ok()) {
            inner = t.status();
            return false;
          }
          return fn(rid, *t);
        }));
    return inner;
  }

  /// Computes the registration-time statistics (extent + per-attribute,
  /// optionally with equi-depth histograms). Runs unmetered.
  Result<CollectionStats> ComputeStats(int histogram_buckets = 0) const;

  /// Serialized size in bytes of `tuple` under this schema.
  Result<int64_t> SerializedSize(const Tuple& tuple) const;

 private:
  Result<std::vector<uint8_t>> Serialize(const Tuple& tuple) const;
  Result<Tuple> Deserialize(std::span<const uint8_t> bytes) const;

  CollectionSchema schema_;
  StorageEnv* env_;
  HeapFile heap_;
  std::map<std::string, std::unique_ptr<BTree>> indexes_;
  std::map<std::string, bool> clustered_;
};

}  // namespace storage
}  // namespace disco

#endif  // DISCO_STORAGE_TABLE_H_
