#include "storage/page.h"

#include <cstring>

#include "common/logging.h"
#include "common/str_util.h"

namespace disco {
namespace storage {

Page::Page(uint32_t page_size) : bytes_(page_size, 0) {
  DISCO_CHECK(page_size >= kHeaderSize + kSlotSize)
      << "page size " << page_size << " too small";
  WriteU16(0, 0);            // num_slots
  WriteU16(2, kHeaderSize);  // free_offset
}

uint16_t Page::ReadU16(uint32_t offset) const {
  uint16_t v;
  std::memcpy(&v, bytes_.data() + offset, 2);
  return v;
}

void Page::WriteU16(uint32_t offset, uint16_t v) {
  std::memcpy(bytes_.data() + offset, &v, 2);
}

int Page::num_records() const { return ReadU16(0); }

uint32_t Page::free_space() const {
  uint32_t slots_end =
      page_size() - static_cast<uint32_t>(num_records()) * kSlotSize;
  uint32_t data_end = ReadU16(2);
  return slots_end > data_end ? slots_end - data_end : 0;
}

Result<uint16_t> Page::Insert(std::span<const uint8_t> record) {
  const uint32_t len = static_cast<uint32_t>(record.size());
  if (len > 0xFFFF) {
    return Status::InvalidArgument("record larger than 64 KiB");
  }
  if (SpaceNeeded(len) > free_space()) {
    return Status::OutOfRange("page full");
  }
  const uint16_t slot = static_cast<uint16_t>(num_records());
  const uint16_t offset = ReadU16(2);
  if (len > 0) std::memcpy(bytes_.data() + offset, record.data(), len);
  // Slot directory entry, from the end of the page.
  const uint32_t slot_pos = page_size() - (static_cast<uint32_t>(slot) + 1) * kSlotSize;
  WriteU16(slot_pos, offset);
  WriteU16(slot_pos + 2, static_cast<uint16_t>(len));
  WriteU16(0, static_cast<uint16_t>(slot + 1));
  WriteU16(2, static_cast<uint16_t>(offset + len));
  return slot;
}

Result<std::span<const uint8_t>> Page::Get(uint16_t slot) const {
  if (slot >= num_records()) {
    return Status::OutOfRange(
        StringPrintf("slot %u out of range (page has %d records)", slot,
                     num_records()));
  }
  const uint32_t slot_pos = page_size() - (static_cast<uint32_t>(slot) + 1) * kSlotSize;
  const uint16_t offset = ReadU16(slot_pos);
  const uint16_t len = ReadU16(slot_pos + 2);
  return std::span<const uint8_t>(bytes_.data() + offset, len);
}

}  // namespace storage
}  // namespace disco
