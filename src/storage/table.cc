#include "storage/table.h"

#include <cstring>
#include <set>

#include "common/str_util.h"

namespace disco {
namespace storage {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, 4);
  out->insert(out->end(), b, b + 4);
}

void Put64(std::vector<uint8_t>* out, const void* p) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + 8);
}

}  // namespace

Table::Table(CollectionSchema schema, StorageEnv* env, TableOptions options)
    : schema_(std::move(schema)),
      env_(env),
      heap_(&env->pool, env->NextFileId(), options.heap) {}

Result<std::vector<uint8_t>> Table::Serialize(const Tuple& tuple) const {
  if (static_cast<int>(tuple.size()) != schema_.num_attributes()) {
    return Status::InvalidArgument(StringPrintf(
        "tuple has %zu fields, schema '%s' expects %d", tuple.size(),
        schema_.name().c_str(), schema_.num_attributes()));
  }
  std::vector<uint8_t> out;
  for (int i = 0; i < schema_.num_attributes(); ++i) {
    const AttributeDef& def = schema_.attributes()[static_cast<size_t>(i)];
    const Value& v = tuple[static_cast<size_t>(i)];
    if (v.is_null()) {
      out.push_back(0);
      continue;
    }
    const ValueType expected = AttrTypeToValueType(def.type);
    if (v.type() != expected) {
      return Status::InvalidArgument(StringPrintf(
          "field '%s' of '%s': expected %s, got %s", def.name.c_str(),
          schema_.name().c_str(), ValueTypeToString(expected),
          ValueTypeToString(v.type())));
    }
    out.push_back(1);
    switch (def.type) {
      case AttrType::kLong: {
        int64_t x = v.AsInt64();
        Put64(&out, &x);
        break;
      }
      case AttrType::kDouble: {
        double x = v.AsDouble();
        Put64(&out, &x);
        break;
      }
      case AttrType::kBool:
        out.push_back(v.AsBool() ? 1 : 0);
        break;
      case AttrType::kString: {
        const std::string& s = v.AsString();
        PutU32(&out, static_cast<uint32_t>(s.size()));
        out.insert(out.end(), s.begin(), s.end());
        break;
      }
    }
  }
  return out;
}

Result<Tuple> Table::Deserialize(std::span<const uint8_t> bytes) const {
  Tuple out;
  out.reserve(static_cast<size_t>(schema_.num_attributes()));
  size_t pos = 0;
  auto need = [&](size_t n) -> Status {
    if (pos + n > bytes.size()) {
      return Status::Internal("corrupt record in '" + schema_.name() + "'");
    }
    return Status::OK();
  };
  for (const AttributeDef& def : schema_.attributes()) {
    DISCO_RETURN_NOT_OK(need(1));
    uint8_t tag = bytes[pos++];
    if (tag == 0) {
      out.push_back(Value::Null());
      continue;
    }
    switch (def.type) {
      case AttrType::kLong: {
        DISCO_RETURN_NOT_OK(need(8));
        int64_t x;
        std::memcpy(&x, bytes.data() + pos, 8);
        pos += 8;
        out.push_back(Value(x));
        break;
      }
      case AttrType::kDouble: {
        DISCO_RETURN_NOT_OK(need(8));
        double x;
        std::memcpy(&x, bytes.data() + pos, 8);
        pos += 8;
        out.push_back(Value(x));
        break;
      }
      case AttrType::kBool: {
        DISCO_RETURN_NOT_OK(need(1));
        out.push_back(Value(bytes[pos++] != 0));
        break;
      }
      case AttrType::kString: {
        DISCO_RETURN_NOT_OK(need(4));
        uint32_t len;
        std::memcpy(&len, bytes.data() + pos, 4);
        pos += 4;
        DISCO_RETURN_NOT_OK(need(len));
        out.push_back(Value(std::string(
            reinterpret_cast<const char*>(bytes.data() + pos), len)));
        pos += len;
        break;
      }
    }
  }
  return out;
}

Result<int64_t> Table::SerializedSize(const Tuple& tuple) const {
  DISCO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, Serialize(tuple));
  return static_cast<int64_t>(bytes.size());
}

Status Table::Insert(const Tuple& tuple) {
  // Loading is maintenance work, not query time.
  MeteringPause pause(&env_->clock);
  DISCO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, Serialize(tuple));
  DISCO_ASSIGN_OR_RETURN(RID rid, heap_.Insert(bytes));
  for (auto& [attr, index] : indexes_) {
    std::optional<int> idx = schema_.AttributeIndex(attr);
    DISCO_DCHECK(idx.has_value());
    DISCO_RETURN_NOT_OK(
        index->Insert(tuple[static_cast<size_t>(*idx)], rid));
  }
  return Status::OK();
}

Status Table::CreateIndex(const std::string& attribute, bool clustered) {
  std::optional<int> idx = schema_.AttributeIndex(attribute);
  if (!idx.has_value()) {
    return Status::NotFound("collection '" + schema_.name() +
                            "' has no attribute '" + attribute + "'");
  }
  if (indexes_.count(attribute) > 0) {
    return Status::AlreadyExists("index on '" + attribute +
                                 "' already exists");
  }
  // Index construction is maintenance work: unmetered.
  MeteringPause pause(&env_->clock);
  // Fanout matches ~12-byte key+rid entries in a 4 KiB page, so index
  // I/O stays realistically small next to data-page I/O.
  auto tree =
      std::make_unique<BTree>(&env_->pool, env_->NextFileId(), /*fanout=*/340);
  Status status = Status::OK();
  DISCO_RETURN_NOT_OK(Scan([&](const RID& rid, const Tuple& t) {
    Status s = tree->Insert(t[static_cast<size_t>(*idx)], rid);
    if (!s.ok()) {
      status = s;
      return false;
    }
    return true;
  }));
  DISCO_RETURN_NOT_OK(status);
  indexes_[attribute] = std::move(tree);
  clustered_[attribute] = clustered;
  return Status::OK();
}

bool Table::HasIndex(const std::string& attribute) const {
  return indexes_.count(attribute) > 0;
}

Result<const BTree*> Table::Index(const std::string& attribute) const {
  auto it = indexes_.find(attribute);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on '" + attribute + "'");
  }
  return static_cast<const BTree*>(it->second.get());
}

Result<Tuple> Table::Fetch(const RID& rid) const {
  DISCO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap_.Get(rid));
  return Deserialize(bytes);
}

Result<CollectionStats> Table::ComputeStats(int histogram_buckets) const {
  MeteringPause pause(&env_->clock);
  CollectionStats stats;
  stats.extent.count_object = heap_.num_records();
  stats.extent.total_size = heap_.num_pages() * heap_.page_size();
  stats.extent.object_size =
      heap_.num_records() > 0 ? heap_.data_bytes() / heap_.num_records() : 0;

  const int n = schema_.num_attributes();
  std::vector<std::vector<Value>> columns(static_cast<size_t>(n));
  DISCO_RETURN_NOT_OK(Scan([&](const RID&, const Tuple& t) {
    for (int i = 0; i < n; ++i) {
      columns[static_cast<size_t>(i)].push_back(t[static_cast<size_t>(i)]);
    }
    return true;
  }));

  for (int i = 0; i < n; ++i) {
    const AttributeDef& def = schema_.attributes()[static_cast<size_t>(i)];
    std::vector<Value>& col = columns[static_cast<size_t>(i)];
    AttributeStats astats;
    astats.indexed = HasIndex(def.name);
    auto cit = clustered_.find(def.name);
    astats.clustered = cit != clustered_.end() && cit->second;

    std::set<std::string> distinct;
    bool first = true;
    for (const Value& v : col) {
      if (v.is_null()) continue;
      distinct.insert(v.ToString());
      if (first) {
        astats.min = v;
        astats.max = v;
        first = false;
        continue;
      }
      Result<int> lo = v.Compare(astats.min);
      Result<int> hi = v.Compare(astats.max);
      if (lo.ok() && *lo < 0) astats.min = v;
      if (hi.ok() && *hi > 0) astats.max = v;
    }
    astats.count_distinct = static_cast<int64_t>(distinct.size());

    if (histogram_buckets > 0 && !col.empty()) {
      std::vector<Value> non_null;
      non_null.reserve(col.size());
      for (const Value& v : col) {
        if (!v.is_null()) non_null.push_back(v);
      }
      Result<EquiDepthHistogram> hist =
          EquiDepthHistogram::Build(std::move(non_null), histogram_buckets);
      if (hist.ok()) astats.histogram = std::move(*hist);
    }
    stats.attributes[def.name] = std::move(astats);
  }
  return stats;
}

}  // namespace storage
}  // namespace disco
