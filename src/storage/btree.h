// B+-tree index over a single attribute, mapping Values to record ids.
//
// Nodes are page-granular for simulated-I/O purposes: every node visited
// during a descent or leaf-chain scan is touched through the buffer pool.
// Duplicate keys are supported (secondary indexes).

#ifndef DISCO_STORAGE_BTREE_H_
#define DISCO_STORAGE_BTREE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace disco {
namespace storage {

class BTree {
 public:
  /// `fanout` is the max keys per node (split threshold). The default
  /// approximates 4 KiB pages of ~16-byte entries.
  BTree(BufferPool* pool, uint32_t file_id, int fanout = 128);
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  Status Insert(const Value& key, const RID& rid);

  /// All record ids with key == `key`.
  Result<std::vector<RID>> SearchEq(const Value& key) const;

  struct Bound {
    Value value;
    bool inclusive = true;
  };

  /// Record ids with keys in the given (possibly half-open) range, in key
  /// order. Unset bounds are unbounded.
  Result<std::vector<RID>> SearchRange(const std::optional<Bound>& lo,
                                       const std::optional<Bound>& hi) const;

  int64_t num_entries() const { return num_entries_; }
  int height() const { return height_; }
  int64_t num_nodes() const { return num_nodes_; }

 private:
  struct Node;

  Result<int> Cmp(const Value& a, const Value& b) const;
  void TouchNode(const Node& n) const;

  /// Descends to the leaf that would contain `key`, touching nodes.
  Result<Node*> FindLeaf(const Value& key) const;

  /// Splits `node` (full) into two; returns the separator key and the
  /// new right sibling.
  std::pair<Value, std::unique_ptr<Node>> Split(Node* node);

  BufferPool* pool_;
  uint32_t file_id_;
  int fanout_;
  std::unique_ptr<Node> root_;
  Node* first_leaf_ = nullptr;
  int64_t num_entries_ = 0;
  int height_ = 1;
  int64_t num_nodes_ = 1;
  uint32_t next_page_no_ = 0;
};

}  // namespace storage
}  // namespace disco

#endif  // DISCO_STORAGE_BTREE_H_
