// Simulated time for the data-source substrate.
//
// Every experiment in this repo measures *simulated* milliseconds: the
// storage engine charges this clock for page I/O, per-object CPU, and
// communication, using the calibration constants the paper reports for
// ObjectStore (25 ms per page read, 9 ms per produced object). This makes
// the "Experiment" curves deterministic and machine-independent while
// preserving the structure (which pages are fetched, how often the
// buffer hits) that the paper's Figure 12 is about.

#ifndef DISCO_STORAGE_SIM_CLOCK_H_
#define DISCO_STORAGE_SIM_CLOCK_H_

#include <cstdint>

namespace disco {
namespace storage {

/// Per-source timing constants charged to the simulated clock.
struct SourceCostParams {
  double ms_startup = 120.0;       ///< per executed (sub)query
  double ms_per_page_read = 25.0;  ///< buffer-pool miss
  double ms_per_object = 9.0;      ///< produce one output object
  double ms_per_cmp = 0.005;       ///< one comparison / predicate check
  double ms_parse_per_object = 0.0;  ///< extra decode cost (file sources)
};

/// Monotonic simulated clock. Single-threaded by design.
class SimClock {
 public:
  double now_ms() const { return now_ms_; }
  void Advance(double ms) {
    if (ms > 0 && !paused_) now_ms_ += ms;
  }
  void Reset() { now_ms_ = 0; }

  bool paused() const { return paused_; }
  void set_paused(bool paused) { paused_ = paused; }

 private:
  double now_ms_ = 0;
  bool paused_ = false;
};

/// RAII pause of metering: maintenance work (loading data, computing
/// statistics at registration time) should not count as query time.
class MeteringPause {
 public:
  explicit MeteringPause(SimClock* clock)
      : clock_(clock), was_paused_(clock->paused()) {
    clock_->set_paused(true);
  }
  ~MeteringPause() { clock_->set_paused(was_paused_); }
  MeteringPause(const MeteringPause&) = delete;
  MeteringPause& operator=(const MeteringPause&) = delete;

 private:
  SimClock* clock_;
  bool was_paused_;
};

}  // namespace storage
}  // namespace disco

#endif  // DISCO_STORAGE_SIM_CLOCK_H_
