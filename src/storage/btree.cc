#include "storage/btree.h"

#include <algorithm>

#include "common/logging.h"

namespace disco {
namespace storage {

struct BTree::Node {
  bool leaf = true;
  uint32_t page_no = 0;
  std::vector<Value> keys;
  std::vector<std::unique_ptr<Node>> children;  // internal: keys.size()+1
  std::vector<RID> rids;                        // leaf: parallel to keys
  Node* next = nullptr;                         // leaf chain
};

BTree::BTree(BufferPool* pool, uint32_t file_id, int fanout)
    : pool_(pool), file_id_(file_id), fanout_(fanout) {
  DISCO_CHECK(fanout_ >= 4) << "fanout too small";
  root_ = std::make_unique<Node>();
  root_->page_no = next_page_no_++;
  first_leaf_ = root_.get();
}

BTree::~BTree() = default;

Result<int> BTree::Cmp(const Value& a, const Value& b) const {
  Result<int> c = a.Compare(b);
  if (!c.ok()) {
    return Status::InvalidArgument("index key types are incomparable: " +
                                   a.ToString() + " vs " + b.ToString());
  }
  return c;
}

void BTree::TouchNode(const Node& n) const {
  pool_->Touch(BufferPool::Key(file_id_, n.page_no));
}

std::pair<Value, std::unique_ptr<BTree::Node>> BTree::Split(Node* node) {
  auto right = std::make_unique<Node>();
  right->leaf = node->leaf;
  right->page_no = next_page_no_++;
  ++num_nodes_;

  const size_t mid = node->keys.size() / 2;
  Value separator = node->keys[mid];

  if (node->leaf) {
    right->keys.assign(std::make_move_iterator(node->keys.begin() + static_cast<long>(mid)),
                       std::make_move_iterator(node->keys.end()));
    right->rids.assign(node->rids.begin() + static_cast<long>(mid),
                       node->rids.end());
    node->keys.resize(mid);
    node->rids.resize(mid);
    right->next = node->next;
    node->next = right.get();
    // Leaf split: the separator is the first key of the right node.
    separator = right->keys.front();
  } else {
    // Internal split: the separator moves up and is removed here.
    right->keys.assign(std::make_move_iterator(node->keys.begin() + static_cast<long>(mid) + 1),
                       std::make_move_iterator(node->keys.end()));
    for (size_t i = mid + 1; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->keys.resize(mid);
    node->children.resize(mid + 1);
  }
  return {std::move(separator), std::move(right)};
}

Status BTree::Insert(const Value& key, const RID& rid) {
  // Iterative descent with a parent stack, splitting on the way back up.
  struct PathEntry {
    Node* node;
    size_t child_idx;
  };
  std::vector<PathEntry> path;
  Node* cur = root_.get();
  while (!cur->leaf) {
    TouchNode(*cur);
    size_t i = 0;
    while (i < cur->keys.size()) {
      DISCO_ASSIGN_OR_RETURN(int c, Cmp(key, cur->keys[i]));
      if (c < 0) break;
      ++i;
    }
    path.push_back({cur, i});
    cur = cur->children[i].get();
  }
  TouchNode(*cur);

  // Insert into the leaf at the upper bound (duplicates append after).
  size_t pos = 0;
  while (pos < cur->keys.size()) {
    DISCO_ASSIGN_OR_RETURN(int c, Cmp(key, cur->keys[pos]));
    if (c < 0) break;
    ++pos;
  }
  cur->keys.insert(cur->keys.begin() + static_cast<long>(pos), key);
  cur->rids.insert(cur->rids.begin() + static_cast<long>(pos), rid);
  ++num_entries_;

  // Split upward while nodes overflow.
  Node* node = cur;
  while (node->keys.size() > static_cast<size_t>(fanout_)) {
    auto [separator, right] = Split(node);
    if (path.empty()) {
      // Root split: grow the tree.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      new_root->page_no = next_page_no_++;
      ++num_nodes_;
      new_root->keys.push_back(std::move(separator));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(right));
      root_ = std::move(new_root);
      ++height_;
      return Status::OK();
    }
    PathEntry parent = path.back();
    path.pop_back();
    parent.node->keys.insert(
        parent.node->keys.begin() + static_cast<long>(parent.child_idx),
        std::move(separator));
    parent.node->children.insert(
        parent.node->children.begin() + static_cast<long>(parent.child_idx) + 1,
        std::move(right));
    node = parent.node;
  }
  return Status::OK();
}

Result<BTree::Node*> BTree::FindLeaf(const Value& key) const {
  // Searches descend LEFT on separator equality: duplicates of a key may
  // straddle a split (both sides of the separator), and range scans walk
  // the leaf chain rightward from the leftmost candidate.
  Node* cur = root_.get();
  while (!cur->leaf) {
    TouchNode(*cur);
    size_t i = 0;
    while (i < cur->keys.size()) {
      DISCO_ASSIGN_OR_RETURN(int c, Cmp(key, cur->keys[i]));
      if (c <= 0) break;
      ++i;
    }
    cur = cur->children[i].get();
  }
  TouchNode(*cur);
  return cur;
}

Result<std::vector<RID>> BTree::SearchEq(const Value& key) const {
  Bound b{key, true};
  return SearchRange(b, b);
}

Result<std::vector<RID>> BTree::SearchRange(
    const std::optional<Bound>& lo, const std::optional<Bound>& hi) const {
  std::vector<RID> out;
  Node* leaf;
  if (lo.has_value()) {
    DISCO_ASSIGN_OR_RETURN(leaf, FindLeaf(lo->value));
  } else {
    leaf = first_leaf_;
    // Charge the descent to the leftmost leaf.
    Node* cur = root_.get();
    while (true) {
      TouchNode(*cur);
      if (cur->leaf) break;
      cur = cur->children.front().get();
    }
  }
  bool first_leaf_visit = true;
  while (leaf != nullptr) {
    if (!first_leaf_visit) TouchNode(*leaf);
    first_leaf_visit = false;
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      const Value& k = leaf->keys[i];
      if (lo.has_value()) {
        DISCO_ASSIGN_OR_RETURN(int c, Cmp(k, lo->value));
        if (c < 0 || (c == 0 && !lo->inclusive)) continue;
      }
      if (hi.has_value()) {
        DISCO_ASSIGN_OR_RETURN(int c, Cmp(k, hi->value));
        if (c > 0 || (c == 0 && !hi->inclusive)) return out;
      }
      out.push_back(leaf->rids[i]);
    }
    leaf = leaf->next;
  }
  return out;
}

}  // namespace storage
}  // namespace disco
