// Buffer pool: an LRU cache of page *keys* that charges the simulated
// clock for misses.
//
// Page contents stay memory-resident in their owning files; what the
// pool simulates is the I/O timing and locality behaviour -- exactly the
// effect Yao's formula models and the calibrated linear formula misses
// (paper Section 5).

#ifndef DISCO_STORAGE_BUFFER_POOL_H_
#define DISCO_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/sim_clock.h"

namespace disco {
namespace storage {

class BufferPool {
 public:
  /// `capacity` in pages; `ms_per_read` charged to `clock` per miss.
  BufferPool(SimClock* clock, size_t capacity, double ms_per_read);

  /// Declares an access to `page_key`. A miss charges one page read and
  /// may evict the least recently used entry.
  void Touch(uint64_t page_key);

  /// Drops everything (e.g. between experiment runs).
  void Clear();

  size_t capacity() const { return capacity_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  size_t resident() const { return map_.size(); }
  void ResetStats() { hits_ = misses_ = 0; }

  /// Builds a page key from a file id and page number.
  static uint64_t Key(uint32_t file_id, uint32_t page) {
    return (static_cast<uint64_t>(file_id) << 32) | page;
  }

 private:
  SimClock* clock_;
  size_t capacity_;
  double ms_per_read_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace storage
}  // namespace disco

#endif  // DISCO_STORAGE_BUFFER_POOL_H_
