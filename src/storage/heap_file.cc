#include "storage/heap_file.h"

#include "common/logging.h"

namespace disco {
namespace storage {

HeapFile::HeapFile(BufferPool* pool, uint32_t file_id, HeapFileOptions options)
    : pool_(pool), file_id_(file_id), options_(options) {
  DISCO_CHECK(options_.fill_factor > 0 && options_.fill_factor <= 1.0)
      << "bad fill factor " << options_.fill_factor;
}

uint32_t HeapFile::usable_bytes() const {
  return static_cast<uint32_t>(options_.page_size * options_.fill_factor);
}

Result<RID> HeapFile::Insert(std::span<const uint8_t> record) {
  const uint32_t needed = Page::SpaceNeeded(static_cast<uint32_t>(record.size()));
  bool new_page = pages_.empty();
  if (!new_page) {
    const Page& tail = pages_.back();
    const uint32_t used = options_.page_size - tail.free_space();
    if (used + needed > usable_bytes()) new_page = true;
    if (options_.max_records_per_page > 0 &&
        tail.num_records() >= options_.max_records_per_page) {
      new_page = true;
    }
  }
  if (new_page) pages_.emplace_back(options_.page_size);

  const PageId pid = static_cast<PageId>(pages_.size() - 1);
  pool_->Touch(BufferPool::Key(file_id_, pid));
  DISCO_ASSIGN_OR_RETURN(uint16_t slot, pages_.back().Insert(record));
  ++num_records_;
  data_bytes_ += static_cast<int64_t>(record.size());
  return RID{pid, slot};
}

Result<std::vector<uint8_t>> HeapFile::Get(const RID& rid) const {
  if (rid.page >= pages_.size()) {
    return Status::OutOfRange("page out of range");
  }
  pool_->Touch(BufferPool::Key(file_id_, rid.page));
  DISCO_ASSIGN_OR_RETURN(std::span<const uint8_t> rec,
                         pages_[rid.page].Get(rid.slot));
  return std::vector<uint8_t>(rec.begin(), rec.end());
}

}  // namespace storage
}  // namespace disco
