#include "wrapper/fault_schedule.h"

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/str_util.h"

namespace disco {
namespace wrapper {

namespace {

/// Platform-stable FNV-1a over the lower-cased wrapper name, so the
/// per-call corruption stream depends only on (seed, name, call index).
uint64_t HashName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u >= 'A' && u <= 'Z') u = static_cast<unsigned char>(u - 'A' + 'a');
    h ^= u;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* FaultEffectToString(FaultEffect effect) {
  switch (effect) {
    case FaultEffect::kOutage:
      return "outage";
    case FaultEffect::kLatencyStorm:
      return "latency-storm";
    case FaultEffect::kFlap:
      return "flap";
    case FaultEffect::kMalform:
      return "malform";
  }
  return "unknown";
}

void FaultSchedule::DefineDomain(const std::string& name,
                                 std::vector<std::string> members) {
  std::vector<std::string> lower;
  lower.reserve(members.size());
  for (const std::string& m : members) lower.push_back(ToLower(m));
  domains_[name] = std::move(lower);
}

bool FaultSchedule::InDomain(const std::string& domain,
                             const std::string& source) const {
  auto it = domains_.find(domain);
  if (it == domains_.end()) return false;
  const std::string key = ToLower(source);
  for (const std::string& m : it->second) {
    if (m == key) return true;
  }
  return false;
}

std::vector<const FaultWindow*> FaultSchedule::ActiveWindows(
    const std::string& source) const {
  std::vector<const FaultWindow*> out;
  if (!enabled_) return out;
  for (const FaultWindow& w : windows_) {
    if (now_ms_ < w.start_ms || now_ms_ >= w.end_ms) continue;
    if (!InDomain(w.domain, source)) continue;
    out.push_back(&w);
  }
  return out;
}

ScheduledFaultWrapper::ScheduledFaultWrapper(std::unique_ptr<Wrapper> inner,
                                             const FaultSchedule* schedule)
    : inner_(std::move(inner)), schedule_(schedule) {}

const std::string& ScheduledFaultWrapper::name() const {
  return inner_->name();
}

std::string ScheduledFaultWrapper::ExportInterfaces() const {
  return inner_->ExportInterfaces();
}

Result<CollectionStats> ScheduledFaultWrapper::ExportStatistics(
    const std::string& collection) const {
  return inner_->ExportStatistics(collection);
}

std::string ScheduledFaultWrapper::ExportCostRules() const {
  return inner_->ExportCostRules();
}

optimizer::SourceCapabilities ScheduledFaultWrapper::ExportCapabilities()
    const {
  return inner_->ExportCapabilities();
}

Result<sources::ExecutionResult> ScheduledFaultWrapper::Execute(
    const algebra::Operator& subplan) {
  ++calls_;
  const std::vector<const FaultWindow*> active =
      schedule_->ActiveWindows(name());

  // Hard failures first: any active outage, or any flap in its down
  // phase, kills the submit before the inner wrapper runs -- exactly
  // how a correlated network partition looks from the mediator.
  for (const FaultWindow* w : active) {
    if (w->effect == FaultEffect::kOutage) {
      ++injected_outages_;
      return Status::Unavailable(w->message + " (domain '" + w->domain +
                                 "')");
    }
    if (w->effect == FaultEffect::kFlap && w->flap_period_ms > 0) {
      const double phase =
          std::fmod(schedule_->now_ms() - w->start_ms, w->flap_period_ms);
      if (phase < w->flap_down_fraction * w->flap_period_ms) {
        ++injected_outages_;
        return Status::Unavailable(w->message + " (domain '" + w->domain +
                                   "', flapping)");
      }
    }
  }

  Result<sources::ExecutionResult> result = inner_->Execute(subplan);
  if (!result.ok()) return result;

  for (const FaultWindow* w : active) {
    if (w->effect != FaultEffect::kLatencyStorm) continue;
    result->total_ms = result->total_ms * w->storm_factor + w->storm_added_ms;
    result->first_tuple_ms =
        result->first_tuple_ms * w->storm_factor + w->storm_added_ms;
  }

  for (const FaultWindow* w : active) {
    if (w->effect != FaultEffect::kMalform) continue;
    // Fresh Rng per (seed, wrapper, call index): corruption of call k
    // never depends on what earlier calls drew, so any arm that issues
    // the same k-th call to this wrapper sees the same corruption.
    Rng rng(schedule_->seed() ^ HashName(name()) ^
            (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(calls_)));
    bool corrupted = false;
    if ((w->malform_modes & kMalformTruncate) != 0 &&
        rng.NextDouble() < w->malform_row_probability &&
        result->tuples.size() > 1) {
      // Silently drop the tail; objects_produced keeps the full count,
      // which is precisely how the result guard catches the lie.
      result->tuples.resize(result->tuples.size() / 2);
      corrupted = true;
    }
    const uint32_t row_modes =
        w->malform_modes & (kMalformArity | kMalformTypes | kMalformNonFinite);
    if (row_modes != 0) {
      for (storage::Tuple& row : result->tuples) {
        if (rng.NextDouble() >= w->malform_row_probability) continue;
        // Cycle deterministically through the enabled row modes.
        uint32_t enabled[3];
        int n = 0;
        if (row_modes & kMalformArity) enabled[n++] = kMalformArity;
        if (row_modes & kMalformTypes) enabled[n++] = kMalformTypes;
        if (row_modes & kMalformNonFinite) enabled[n++] = kMalformNonFinite;
        const uint32_t mode = enabled[rng.NextUint64(
            static_cast<uint64_t>(n))];
        corrupted = true;
        if (mode == kMalformArity) {
          if (rng.NextUint64(2) == 0 && !row.empty()) {
            row.pop_back();
          } else {
            row.push_back(Value());
          }
        } else if (mode == kMalformTypes && !row.empty()) {
          Value& v = row[rng.NextUint64(row.size())];
          if (v.is_string()) {
            v = Value(int64_t{0});
          } else {
            v = Value("\xef\xbf\xbd corrupt");
          }
        } else if (mode == kMalformNonFinite && !row.empty()) {
          Value& v = row[rng.NextUint64(row.size())];
          v = Value(rng.NextUint64(2) == 0
                        ? std::numeric_limits<double>::quiet_NaN()
                        : std::numeric_limits<double>::infinity());
        }
      }
    }
    if (corrupted) ++malformed_responses_;
  }

  return result;
}

}  // namespace wrapper
}  // namespace disco
