// FaultInjectingWrapper: a decorator that makes any wrapper misbehave
// on demand -- the promoted, reusable form of the test-only
// `FaultyWrapper`.
//
// Registration calls pass straight through to the decorated wrapper;
// Execute() consults a FaultProfile to decide whether this submit
// fails, succeeds late, or succeeds normally. All randomness comes from
// a seeded common/rng.h generator, so a given (profile, call sequence)
// produces the exact same faults every run -- robustness experiments
// stay reproducible bit-for-bit.

#ifndef DISCO_WRAPPER_FAULT_INJECTION_H_
#define DISCO_WRAPPER_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace wrapper {

/// When and how Execute() fails. The clauses compose: a submit fails if
/// ANY enabled clause fires on it.
struct FaultProfile {
  /// Each submit fails with this probability (seeded coin; 0 = off).
  double fail_probability = 0.0;
  /// Every Nth submit (N, 2N, 3N, ...) fails (0 = off).
  int fail_every_n = 0;
  /// Transient outage: the first N submits fail, then the source
  /// recovers (0 = off).
  int fail_first_n = 0;
  /// Added to total_ms and first_tuple_ms of every successful submit
  /// (a slow-but-alive source; interacts with RetryPolicy timeouts).
  double added_latency_ms = 0.0;
  /// Seeded slow-source mode: each successful submit is delayed by a
  /// latency drawn uniformly from
  ///   slow_mean_ms * [1 - slow_jitter, 1 + slow_jitter]
  /// (0 = off). The draw comes from the same seeded Rng as the failure
  /// coin, keyed purely by call index, so a given (profile, call
  /// sequence) produces the exact same delays every run -- the
  /// deterministic tail-latency generator behind hedging and deadline
  /// experiments.
  double slow_mean_ms = 0.0;
  /// Half-width of the slow-mode latency band as a fraction of
  /// slow_mean_ms, in [0, 1]. 0 draws nothing and delays by exactly
  /// slow_mean_ms.
  double slow_jitter = 0.0;
  /// Stuck-stream stalls: every Nth successful submit (N, 2N, ...)
  /// delivers its first tuple on time but stalls for stall_ms before the
  /// last one (added to total_ms only). 0 = off.
  int stall_every_n = 0;
  double stall_ms = 0.0;
  /// Seed for the probability coin.
  uint64_t seed = 0xD15C0;
  /// Message of the injected failure status.
  std::string failure_message = "connection lost";

  /// Fails each submit independently with probability `p`.
  static FaultProfile Flaky(double p, uint64_t seed = 0xD15C0) {
    FaultProfile f;
    f.fail_probability = p;
    f.seed = seed;
    return f;
  }

  /// Transient outage: first `n` submits fail, then recovery.
  static FaultProfile Outage(int n) {
    FaultProfile f;
    f.fail_first_n = n;
    return f;
  }

  /// Deterministic periodic failure: every `n`th submit fails.
  static FaultProfile EveryNth(int n) {
    FaultProfile f;
    f.fail_every_n = n;
    return f;
  }

  /// Permanently dead source.
  static FaultProfile Dead() { return Flaky(0.0).WithAlwaysFail(); }

  /// Seeded slow source: successful submits are delayed by
  /// mean_ms * [1 - jitter, 1 + jitter], drawn deterministically.
  static FaultProfile Slow(double mean_ms, double jitter = 0.5,
                           uint64_t seed = 0xD15C0) {
    FaultProfile f;
    f.slow_mean_ms = mean_ms;
    f.slow_jitter = jitter;
    f.seed = seed;
    return f;
  }

  /// Stuck stream: every `n`th submit stalls for `stall_ms` after the
  /// first tuple (total_ms grows; first_tuple_ms does not).
  static FaultProfile StuckStream(int n, double stall_ms) {
    FaultProfile f;
    f.stall_every_n = n;
    f.stall_ms = stall_ms;
    return f;
  }

  FaultProfile WithAlwaysFail() {
    fail_every_n = 1;
    return *this;
  }
  FaultProfile WithLatency(double ms) {
    added_latency_ms = ms;
    return *this;
  }
};

class FaultInjectingWrapper : public Wrapper {
 public:
  FaultInjectingWrapper(std::unique_ptr<Wrapper> inner, FaultProfile profile);

  const std::string& name() const override;
  std::string ExportInterfaces() const override;
  Result<CollectionStats> ExportStatistics(
      const std::string& collection) const override;
  std::string ExportCostRules() const override;
  optimizer::SourceCapabilities ExportCapabilities() const override;
  Result<sources::ExecutionResult> Execute(
      const algebra::Operator& subplan) override;

  Wrapper* inner() { return inner_.get(); }
  const FaultProfile& profile() const { return profile_; }
  /// Replaces the profile and rewinds the fault schedule (call counter
  /// and RNG), e.g. to stage a fresh outage mid-experiment.
  void SetProfile(FaultProfile profile);

  int64_t calls() const { return calls_; }
  int64_t injected_failures() const { return injected_failures_; }

 private:
  std::unique_ptr<Wrapper> inner_;
  FaultProfile profile_;
  Rng rng_;
  int64_t calls_ = 0;
  int64_t injected_failures_ = 0;
};

}  // namespace wrapper
}  // namespace disco

#endif  // DISCO_WRAPPER_FAULT_INJECTION_H_
