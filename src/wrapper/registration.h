// The registration phase (paper Section 2.1, Figure 1): the mediator
// calls a wrapper, uploads its schema / capabilities / statistics / cost
// rules, compiles the rules, and stores everything in the catalog and
// the rule registry.

#ifndef DISCO_WRAPPER_REGISTRATION_H_
#define DISCO_WRAPPER_REGISTRATION_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "costmodel/registry.h"
#include "optimizer/capabilities.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace wrapper {

struct RegistrationReport {
  int collections = 0;
  int cost_rules = 0;
  bool statistics_exported = false;
};

/// Registers `w`: parses its IDL, pulls statistics for collections that
/// declare cardinality methods, compiles its cost rules against its own
/// schema, and installs everything. Collections without exported
/// statistics get empty stats (the generic model then falls back to its
/// standard values).
Result<RegistrationReport> RegisterWrapper(Wrapper* w, Catalog* catalog,
                                           costmodel::RuleRegistry* registry,
                                           optimizer::CapabilityTable* caps);

/// Re-registration (paper: "when ... the statistics become out of date"):
/// refreshes the catalog statistics of all of `w`'s collections.
Status RefreshStatistics(Wrapper* w, Catalog* catalog);

}  // namespace wrapper
}  // namespace disco

#endif  // DISCO_WRAPPER_REGISTRATION_H_
