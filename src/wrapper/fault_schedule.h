// Schedule-driven, *correlated* fault injection on the simulated clock.
//
// FaultInjectingWrapper (fault_injection.h) makes one wrapper misbehave
// according to a per-wrapper profile keyed by call index. Real
// federations fail differently: a rack loses power and every source on
// it goes down *together*, a network path degrades for a timed window,
// a source flaps, or -- worst of all -- keeps answering but answers
// garbage. FaultSchedule models exactly that:
//
// * **Fault domains** -- named groups of wrappers that share fate
//   (`DefineDomain("rack-a", {"s0", "s1"})`).
// * **Timed windows** -- each `FaultWindow` applies one effect to one
//   domain over a half-open interval [start_ms, end_ms) of the
//   schedule clock: a hard outage, a latency storm, a flap sequence
//   (square-wave up/down), or a malformed-response mode that corrupts
//   otherwise-successful answers (wrong arity, type-mismatched values,
//   NaN/inf, truncated streams).
//
// The schedule clock advances only at query boundaries: the harness
// calls `AdvanceTo(mediator.sim_now_ms())` before each query, so the
// fault state is constant *within* a query no matter how the scatter
// phase interleaves tasks -- the determinism contract (byte-identical
// results for any federation pool size) survives chaos injection.
// Malformed-response corruption draws from an Rng freshly seeded per
// (schedule seed, wrapper name, call index), so it too replays
// bit-for-bit.
//
// `ScheduledFaultWrapper` is a decorator like FaultInjectingWrapper and
// composes with it: wrap the fault-injecting wrapper to layer scheduled
// correlated faults over per-wrapper background noise.

#ifndef DISCO_WRAPPER_FAULT_SCHEDULE_H_
#define DISCO_WRAPPER_FAULT_SCHEDULE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wrapper/wrapper.h"

namespace disco {
namespace wrapper {

/// What a window does to the wrappers of its domain while active.
enum class FaultEffect {
  kOutage,        ///< every submit fails (Status::Unavailable)
  kLatencyStorm,  ///< successful submits slowed: ms * factor + added
  kFlap,          ///< square wave: down for the leading fraction of
                  ///< each period, up for the rest
  kMalform,       ///< successful submits answer corrupted rows
};

const char* FaultEffectToString(FaultEffect effect);

/// Malformed-response modes; OR them into FaultWindow::malform_modes.
enum MalformMode : uint32_t {
  kMalformArity = 1u << 0,      ///< rows gain/lose a column
  kMalformTypes = 1u << 1,      ///< values swapped to the wrong type
  kMalformNonFinite = 1u << 2,  ///< numeric values become NaN / +inf
  kMalformTruncate = 1u << 3,   ///< tail of the stream silently dropped
  kMalformAll = kMalformArity | kMalformTypes | kMalformNonFinite |
                kMalformTruncate,
};

/// One timed effect on one fault domain.
struct FaultWindow {
  std::string domain;
  double start_ms = 0;
  double end_ms = 0;  ///< half-open: active while start <= now < end
  FaultEffect effect = FaultEffect::kOutage;

  // kLatencyStorm: latency becomes ms * storm_factor + storm_added_ms.
  double storm_factor = 1.0;
  double storm_added_ms = 0.0;

  // kFlap: down while fmod(now - start, period) < down_fraction * period.
  double flap_period_ms = 0.0;
  double flap_down_fraction = 0.5;

  // kMalform: which corruptions may fire, and the per-row seeded
  // probability that a row is corrupted (truncation is per-batch).
  uint32_t malform_modes = kMalformAll;
  double malform_row_probability = 1.0;

  /// Message of injected outage/flap failures.
  std::string message = "scheduled outage";
};

/// The shared schedule: domains, windows, and the schedule clock.
/// Owned by the experiment (test / chaos harness); every
/// ScheduledFaultWrapper holds a pointer to it. Advance it only between
/// queries.
class FaultSchedule {
 public:
  explicit FaultSchedule(uint64_t seed = 0xC4405) : seed_(seed) {}

  /// Declares (or replaces) a fault domain. Member names are matched
  /// case-insensitively against wrapper names.
  void DefineDomain(const std::string& name,
                    std::vector<std::string> members);

  void AddWindow(FaultWindow window) {
    windows_.push_back(std::move(window));
  }

  /// Moves the schedule clock. Call at query boundaries only: fault
  /// state must stay constant within a query for pool-size
  /// byte-identity to hold.
  void AdvanceTo(double now_ms) { now_ms_ = now_ms; }
  double now_ms() const { return now_ms_; }

  uint64_t seed() const { return seed_; }

  /// Master switch: a disabled schedule injects nothing (the chaos
  /// harness runs its fault-free oracle arm this way, on the same
  /// wrapper stack).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  bool InDomain(const std::string& domain, const std::string& source) const;

  /// Windows active for `source` at the schedule clock, in insertion
  /// order. Empty when disabled.
  std::vector<const FaultWindow*> ActiveWindows(
      const std::string& source) const;

  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  uint64_t seed_;
  bool enabled_ = true;
  double now_ms_ = 0;
  /// Domain name -> lower-cased member wrapper names.
  std::map<std::string, std::vector<std::string>> domains_;
  std::vector<FaultWindow> windows_;
};

/// Decorator applying a FaultSchedule to one wrapper. Registration
/// calls pass through; Execute() consults the schedule's active windows
/// for this wrapper's name.
class ScheduledFaultWrapper : public Wrapper {
 public:
  /// `schedule` must outlive the wrapper.
  ScheduledFaultWrapper(std::unique_ptr<Wrapper> inner,
                        const FaultSchedule* schedule);

  const std::string& name() const override;
  std::string ExportInterfaces() const override;
  Result<CollectionStats> ExportStatistics(
      const std::string& collection) const override;
  std::string ExportCostRules() const override;
  optimizer::SourceCapabilities ExportCapabilities() const override;
  Result<sources::ExecutionResult> Execute(
      const algebra::Operator& subplan) override;

  Wrapper* inner() { return inner_.get(); }
  int64_t calls() const { return calls_; }
  int64_t injected_outages() const { return injected_outages_; }
  int64_t malformed_responses() const { return malformed_responses_; }

 private:
  std::unique_ptr<Wrapper> inner_;
  const FaultSchedule* schedule_;
  int64_t calls_ = 0;
  int64_t injected_outages_ = 0;
  int64_t malformed_responses_ = 0;  ///< batches corrupted
};

}  // namespace wrapper
}  // namespace disco

#endif  // DISCO_WRAPPER_FAULT_SCHEDULE_H_
