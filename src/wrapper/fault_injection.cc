#include "wrapper/fault_injection.h"

namespace disco {
namespace wrapper {

FaultInjectingWrapper::FaultInjectingWrapper(std::unique_ptr<Wrapper> inner,
                                             FaultProfile profile)
    : inner_(std::move(inner)),
      profile_(std::move(profile)),
      rng_(profile_.seed) {}

const std::string& FaultInjectingWrapper::name() const {
  return inner_->name();
}

std::string FaultInjectingWrapper::ExportInterfaces() const {
  return inner_->ExportInterfaces();
}

Result<CollectionStats> FaultInjectingWrapper::ExportStatistics(
    const std::string& collection) const {
  return inner_->ExportStatistics(collection);
}

std::string FaultInjectingWrapper::ExportCostRules() const {
  return inner_->ExportCostRules();
}

optimizer::SourceCapabilities FaultInjectingWrapper::ExportCapabilities()
    const {
  return inner_->ExportCapabilities();
}

void FaultInjectingWrapper::SetProfile(FaultProfile profile) {
  profile_ = std::move(profile);
  rng_ = Rng(profile_.seed);
  calls_ = 0;
  injected_failures_ = 0;
}

Result<sources::ExecutionResult> FaultInjectingWrapper::Execute(
    const algebra::Operator& subplan) {
  ++calls_;
  bool fail = false;
  if (profile_.fail_first_n > 0 && calls_ <= profile_.fail_first_n) {
    fail = true;
  }
  if (profile_.fail_every_n > 0 && calls_ % profile_.fail_every_n == 0) {
    fail = true;
  }
  // Always burn one coin flip when the clause is enabled so the fault
  // sequence depends only on the call index, not on the other clauses.
  if (profile_.fail_probability > 0 &&
      rng_.NextDouble() < profile_.fail_probability) {
    fail = true;
  }
  // Same discipline for the slow-mode draw: burn it whenever the clause
  // could draw, even on calls that end up failing, so the delay of call
  // k never depends on the outcomes of calls before it.
  double slow_ms = 0;
  if (profile_.slow_mean_ms > 0) {
    double u = 0.5;
    if (profile_.slow_jitter > 0) u = rng_.NextDouble();
    slow_ms = profile_.slow_mean_ms *
              (1.0 + profile_.slow_jitter * (2.0 * u - 1.0));
  }
  if (fail) {
    ++injected_failures_;
    return Status::Unavailable(profile_.failure_message);
  }
  DISCO_ASSIGN_OR_RETURN(sources::ExecutionResult result,
                         inner_->Execute(subplan));
  result.total_ms += profile_.added_latency_ms + slow_ms;
  result.first_tuple_ms += profile_.added_latency_ms + slow_ms;
  if (profile_.stall_every_n > 0 && calls_ % profile_.stall_every_n == 0) {
    // The stream sticks after the first tuple: all-answers time grows,
    // first-answer time stays put.
    result.total_ms += profile_.stall_ms;
  }
  return result;
}

}  // namespace wrapper
}  // namespace disco
