// The wrapper interface: what a data source exposes to the mediator at
// registration (schema as extended IDL, statistics, cost rules,
// capabilities) and at query time (Execute).
//
// This mirrors the paper's Figures 1 and 2: during registration the
// mediator calls the wrapper and uploads "the schema of the wrapper,
// capabilities of the wrapper, ... and cost information"; during query
// processing it submits algebraic subqueries and receives subanswers.

#ifndef DISCO_WRAPPER_WRAPPER_H_
#define DISCO_WRAPPER_WRAPPER_H_

#include <memory>
#include <string>

#include "algebra/operator.h"
#include "catalog/statistics.h"
#include "common/result.h"
#include "optimizer/capabilities.h"
#include "sources/data_source.h"

namespace disco {
namespace wrapper {

class Wrapper {
 public:
  virtual ~Wrapper() = default;

  virtual const std::string& name() const = 0;

  /// Extended-IDL text describing the wrapper's collections (Figures
  /// 3-5), including the `cardinality` declarations for collections that
  /// export statistics.
  virtual std::string ExportInterfaces() const = 0;

  /// The statistics behind a collection's cardinality methods.
  virtual Result<CollectionStats> ExportStatistics(
      const std::string& collection) const = 0;

  /// Cost-rule text in the Figure 9 language; empty = the wrapper exports
  /// no cost information (the mediator's generic model covers it).
  virtual std::string ExportCostRules() const = 0;

  virtual optimizer::SourceCapabilities ExportCapabilities() const = 0;

  /// Executes a submitted subquery (no submit nodes inside).
  virtual Result<sources::ExecutionResult> Execute(
      const algebra::Operator& subplan) = 0;
};

/// A wrapper over a simulated DataSource. The IDL text is generated from
/// the source's table schemas; statistics are computed from the data.
/// What *cost* information it exports -- nothing, partial wrapper-scope
/// rules, or detailed predicate-scope rules -- is configured per
/// instance, which is exactly the spectrum the paper's framework covers.
class SimulatedWrapper : public Wrapper {
 public:
  struct Options {
    std::string cost_rules;  ///< exported rule text ("" = none)
    optimizer::SourceCapabilities capabilities;
    /// Equi-depth histogram buckets to export per attribute (0 = none).
    int histogram_buckets = 0;
    /// Export the `cardinality` sections at all? (false simulates a
    /// source that reports no statistics.)
    bool export_statistics = true;
  };

  SimulatedWrapper(std::unique_ptr<sources::DataSource> source,
                   Options options);

  const std::string& name() const override;
  std::string ExportInterfaces() const override;
  Result<CollectionStats> ExportStatistics(
      const std::string& collection) const override;
  std::string ExportCostRules() const override;
  optimizer::SourceCapabilities ExportCapabilities() const override;
  Result<sources::ExecutionResult> Execute(
      const algebra::Operator& subplan) override;

  sources::DataSource* source() { return source_.get(); }

  /// Administrative access for re-registration scenarios (e.g. the
  /// implementor improves the exported cost rules, paper §2.1).
  Options* mutable_options() { return &options_; }

 private:
  std::unique_ptr<sources::DataSource> source_;
  Options options_;
};

}  // namespace wrapper
}  // namespace disco

#endif  // DISCO_WRAPPER_WRAPPER_H_
