#include "wrapper/wrapper.h"

#include "common/str_util.h"

namespace disco {
namespace wrapper {

SimulatedWrapper::SimulatedWrapper(std::unique_ptr<sources::DataSource> source,
                                   Options options)
    : source_(std::move(source)), options_(std::move(options)) {}

const std::string& SimulatedWrapper::name() const { return source_->name(); }

std::string SimulatedWrapper::ExportInterfaces() const {
  std::string out;
  for (const storage::Table* table : source_->tables()) {
    const CollectionSchema& schema = table->schema();
    out += "interface " + schema.name() + " {\n";
    for (const AttributeDef& a : schema.attributes()) {
      out += StringPrintf("  attribute %s %s;\n", AttrTypeToString(a.type),
                          a.name.c_str());
    }
    if (options_.export_statistics) {
      out +=
          "  cardinality extent(out long CountObject, out long TotalSize,\n"
          "                     out long ObjectSize);\n"
          "  cardinality attribute(in String AttributeName,\n"
          "                        out Boolean Indexed,\n"
          "                        out Long CountDistinct,\n"
          "                        out Constant Min, out Constant Max);\n";
    }
    out += "}\n\n";
  }
  return out;
}

Result<CollectionStats> SimulatedWrapper::ExportStatistics(
    const std::string& collection) const {
  if (!options_.export_statistics) {
    return Status::NotSupported("wrapper '" + name() +
                                "' exports no statistics");
  }
  const storage::Table* table = source_->table(collection);
  if (table == nullptr) {
    return Status::NotFound("wrapper '" + name() + "' has no collection '" +
                            collection + "'");
  }
  return table->ComputeStats(options_.histogram_buckets);
}

std::string SimulatedWrapper::ExportCostRules() const {
  return options_.cost_rules;
}

optimizer::SourceCapabilities SimulatedWrapper::ExportCapabilities() const {
  return options_.capabilities;
}

Result<sources::ExecutionResult> SimulatedWrapper::Execute(
    const algebra::Operator& subplan) {
  return source_->Execute(subplan);
}

}  // namespace wrapper
}  // namespace disco
