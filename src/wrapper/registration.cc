#include "wrapper/registration.h"

#include "costlang/compiler.h"
#include "idl/idl_parser.h"

namespace disco {
namespace wrapper {

namespace {

/// Runs the fallible registration body; the caller rolls back the
/// catalog if it fails (the source was already declared there).
Result<RegistrationReport> RegisterWrapperImpl(
    Wrapper* w, const std::vector<idl::InterfaceDef>& interfaces,
    Catalog* catalog, costmodel::RuleRegistry* registry,
    optimizer::CapabilityTable* caps);

}  // namespace

Result<RegistrationReport> RegisterWrapper(Wrapper* w, Catalog* catalog,
                                           costmodel::RuleRegistry* registry,
                                           optimizer::CapabilityTable* caps) {
  // Step 1a/2a: pull and parse the interface definitions.
  DISCO_ASSIGN_OR_RETURN(
      std::vector<idl::InterfaceDef> interfaces,
      idl::ParseModule(w->ExportInterfaces()));
  if (interfaces.empty()) {
    return Status::InvalidArgument("wrapper '" + w->name() +
                                   "' exports no interfaces");
  }

  DISCO_RETURN_NOT_OK(catalog->RegisterSource(w->name()));
  Result<RegistrationReport> report =
      RegisterWrapperImpl(w, interfaces, catalog, registry, caps);
  if (!report.ok()) {
    // A failed registration leaves no trace: the paper's mediator either
    // has a usable wrapper or none.
    (void)catalog->RemoveSource(w->name());
    registry->RemoveWrapperRules(w->name());
  }
  return report;
}

namespace {

Result<RegistrationReport> RegisterWrapperImpl(
    Wrapper* w, const std::vector<idl::InterfaceDef>& interfaces,
    Catalog* catalog, costmodel::RuleRegistry* registry,
    optimizer::CapabilityTable* caps) {
  RegistrationReport report;

  costlang::CompileSchema compile_schema;
  for (const idl::InterfaceDef& def : interfaces) {
    CollectionStats stats;
    if (def.declares_extent_stats || def.declares_attribute_stats) {
      Result<CollectionStats> exported =
          w->ExportStatistics(def.schema.name());
      if (exported.ok()) {
        stats = std::move(*exported);
        report.statistics_exported = true;
        if (!def.declares_attribute_stats) stats.attributes.clear();
        if (!def.declares_extent_stats) stats.extent = ExtentStats{};
      } else if (!exported.status().IsNotSupported()) {
        return exported.status().WithContext("statistics of '" +
                                             def.schema.name() + "'");
      }
    }
    std::vector<std::string> attr_names;
    for (const AttributeDef& a : def.schema.attributes()) {
      attr_names.push_back(a.name);
    }
    compile_schema.AddCollection(def.schema.name(), attr_names);
    DISCO_RETURN_NOT_OK(
        catalog->RegisterCollection(w->name(), def.schema, std::move(stats)));
    ++report.collections;
  }

  // Cost rules compile against the wrapper's own schema (names the
  // schema knows are literals; everything else is a free variable).
  const std::string rule_text = w->ExportCostRules();
  if (!rule_text.empty()) {
    DISCO_ASSIGN_OR_RETURN(
        costlang::CompiledRuleSet rules,
        costlang::CompileRuleText(rule_text, compile_schema));
    report.cost_rules = static_cast<int>(rules.rules.size());
    DISCO_RETURN_NOT_OK(
        registry->AddWrapperRules(w->name(), std::move(rules)));
  }

  caps->Set(w->name(), w->ExportCapabilities());
  return report;
}

}  // namespace

Status RefreshStatistics(Wrapper* w, Catalog* catalog) {
  for (const std::string& collection : catalog->CollectionsOf(w->name())) {
    Result<CollectionStats> stats = w->ExportStatistics(collection);
    if (!stats.ok()) {
      if (stats.status().IsNotSupported()) continue;
      return stats.status();
    }
    DISCO_RETURN_NOT_OK(catalog->UpdateStats(collection, std::move(*stats)));
  }
  return Status::OK();
}

}  // namespace wrapper
}  // namespace disco
