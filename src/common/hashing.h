// Hashing helpers for the planning fast path: a stable 64-bit string
// hash and transparent functors enabling heterogeneous (allocation-free)
// unordered_map lookup by std::string_view.

#ifndef DISCO_COMMON_HASHING_H_
#define DISCO_COMMON_HASHING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace disco {

/// FNV-1a over the bytes of `s`. Stable across platforms and runs (unlike
/// std::hash), so values derived from it may appear in persisted output.
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Transparent hash functor: lets unordered containers look up
/// std::string keys by string_view without materializing a std::string.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return static_cast<size_t>(Fnv1a64(s));
  }
};

/// Transparent equality partner of StringHash.
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace disco

#endif  // DISCO_COMMON_HASHING_H_
