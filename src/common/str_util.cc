#include "common/str_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace disco {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view other) {
  if (s.size() != other.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(other[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace disco
