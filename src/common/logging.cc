#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace disco {
namespace internal {

namespace {
const char* SeverityName(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityName(severity_), file_,
               line_, stream_.str().c_str());
  if (severity_ == LogSeverity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace disco
