#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <strings.h>

namespace disco {
namespace internal {

namespace {

const char* SeverityName(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

LogSeverity SeverityFromEnv() {
  const char* env = std::getenv("DISCO_LOG_LEVEL");
  if (env == nullptr) return LogSeverity::kWarning;
  // Case-insensitive match on the usual spellings.
  auto is = [env](const char* a, const char* b = nullptr) {
    return strcasecmp(env, a) == 0 || (b != nullptr && strcasecmp(env, b) == 0);
  };
  if (is("info", "debug")) return LogSeverity::kInfo;
  if (is("warning", "warn")) return LogSeverity::kWarning;
  if (is("error")) return LogSeverity::kError;
  return LogSeverity::kWarning;
}

std::atomic<int>& MinSeveritySlot() {
  static std::atomic<int> slot{static_cast<int>(SeverityFromEnv())};
  return slot;
}

}  // namespace

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      MinSeveritySlot().load(std::memory_order_relaxed));
}

void SetMinLogSeverity(LogSeverity severity) {
  MinSeveritySlot().store(static_cast<int>(severity),
                          std::memory_order_relaxed);
}

bool LogSeverityEnabled(LogSeverity severity) {
  return severity == LogSeverity::kFatal || severity >= MinLogSeverity();
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (LogSeverityEnabled(severity_)) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityName(severity_), file_,
                 line_, stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace disco
