// Small string helpers shared by the lexers/parsers and printers.

#ifndef DISCO_COMMON_STR_UTIL_H_
#define DISCO_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace disco {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// True if `s` equals `other` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view other);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters (\n, \t, \r, \uXXXX for the
/// rest). Does not add the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// Combines two hash values (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace disco

#endif  // DISCO_COMMON_STR_UTIL_H_
