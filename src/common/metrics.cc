#include "common/metrics.h"

#include <cmath>
#include <limits>

#include "common/str_util.h"

namespace disco {
namespace metrics {

namespace {

/// Lock-free add on an atomic double (no std::atomic<double>::fetch_add
/// before C++20 guarantees it is lock-free everywhere).
void AtomicAdd(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double value) {
  double cur = a->load(std::memory_order_relaxed);
  while (value < cur &&
         !a->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double value) {
  double cur = a->load(std::memory_order_relaxed);
  while (value > cur &&
         !a->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::BucketIndex(double value) {
  if (!(value > kMinUpper)) return 0;  // also NaN and nonpositive
  // Smallest i with value <= kMinUpper * 2^i.
  int i = static_cast<int>(std::ceil(std::log2(value / kMinUpper)));
  // log2 rounding can land one bucket low on exact powers of two.
  if (value > kMinUpper * std::ldexp(1.0, i)) ++i;
  if (i < 0) i = 0;
  if (i >= kNumBuckets) i = kNumBuckets - 1;
  return i;
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinUpper * std::ldexp(1.0, i);
}

void Histogram::Record(double value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  const int64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  if (prior == 0) {
    // First observation seeds min/max; racing observers correct it below.
    double zero = 0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::Snapshot::Quantile(double p) const {
  if (count <= 0) return 0;
  const double target = p * static_cast<double>(count);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[static_cast<size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      const double ub = BucketUpperBound(i);
      return std::isinf(ub) ? max : ub;
    }
  }
  return max;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->TakeSnapshot();
  }
  return out;
}

std::string Registry::ToText() const {
  RegistrySnapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    out += StringPrintf("counter %s %lld\n", name.c_str(),
                        static_cast<long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    out += StringPrintf("gauge %s %.3f\n", name.c_str(), v);
  }
  for (const auto& [name, h] : snap.histograms) {
    out += StringPrintf(
        "histogram %s count=%lld sum=%.3f mean=%.3f min=%.3f p50=%.3f "
        "p90=%.3f p99=%.3f max=%.3f\n",
        name.c_str(), static_cast<long long>(h.count), h.sum, h.mean(), h.min,
        h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.max);
  }
  return out;
}

std::string Registry::ToJson() const {
  // Names may embed user-controlled label values (e.g. the source name
  // in disco.breaker.state.<source>): escape them, or a quote in a
  // source name corrupts the whole export.
  RegistrySnapshot snap = TakeSnapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += StringPrintf("%s\"%s\":%lld", first ? "" : ",",
                        JsonEscape(name).c_str(), static_cast<long long>(v));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += StringPrintf("%s\"%s\":%.3f", first ? "" : ",",
                        JsonEscape(name).c_str(), v);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += StringPrintf(
        "%s\"%s\":{\"count\":%lld,\"sum\":%.3f,\"min\":%.3f,\"max\":%.3f,"
        "\"buckets\":[",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<long long>(h.count), h.sum, h.min, h.max);
    first = false;
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const int64_t n = h.buckets[static_cast<size_t>(i)];
      if (n == 0) continue;
      const double ub = Histogram::BucketUpperBound(i);
      if (std::isinf(ub)) {
        out += StringPrintf("%s{\"le\":\"inf\",\"n\":%lld}",
                            first_bucket ? "" : ",",
                            static_cast<long long>(n));
      } else {
        out += StringPrintf("%s{\"le\":%.6f,\"n\":%lld}",
                            first_bucket ? "" : ",", ub,
                            static_cast<long long>(n));
      }
      first_bucket = false;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

/// OpenMetrics metric names allow [a-zA-Z0-9_:] only; anything else
/// (the '.' and '-' in our catalog, label-ish source names) maps to '_'.
/// Distinct registry names that collide after sanitization would emit
/// duplicate families -- the catalog avoids that by construction.
std::string OpenMetricsName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out = "_" + out;
  return out;
}

/// Shortest %.17g-style rendering that is still deterministic: %g drops
/// trailing zeros, so bucket bounds read "0.001" / "16.384" / "1024".
std::string OpenMetricsDouble(double v) { return StringPrintf("%.9g", v); }

}  // namespace

std::string Registry::ToOpenMetrics() const {
  RegistrySnapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string n = OpenMetricsName(name);
    out += StringPrintf("# TYPE %s counter\n", n.c_str());
    out += StringPrintf("%s_total %lld\n", n.c_str(),
                        static_cast<long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = OpenMetricsName(name);
    out += StringPrintf("# TYPE %s gauge\n", n.c_str());
    out += StringPrintf("%s %s\n", n.c_str(), OpenMetricsDouble(v).c_str());
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = OpenMetricsName(name);
    out += StringPrintf("# TYPE %s histogram\n", n.c_str());
    // Cumulative buckets; empty buckets are elided (legal in the
    // exposition format -- cumulative counts stay monotone), +Inf is
    // always present and equals _count.
    int64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const int64_t b = h.buckets[static_cast<size_t>(i)];
      if (b == 0) continue;
      cumulative += b;
      const double ub = Histogram::BucketUpperBound(i);
      if (std::isinf(ub)) continue;  // folded into +Inf below
      out += StringPrintf("%s_bucket{le=\"%s\"} %lld\n", n.c_str(),
                          OpenMetricsDouble(ub).c_str(),
                          static_cast<long long>(cumulative));
    }
    out += StringPrintf("%s_bucket{le=\"+Inf\"} %lld\n", n.c_str(),
                        static_cast<long long>(h.count));
    out += StringPrintf("%s_sum %.3f\n", n.c_str(), h.sum);
    out += StringPrintf("%s_count %lld\n", n.c_str(),
                        static_cast<long long>(h.count));
  }
  out += "# EOF\n";
  return out;
}

}  // namespace metrics
}  // namespace disco
