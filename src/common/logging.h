// Minimal logging and invariant-checking macros.
//
// DISCO_CHECK(cond) << "msg";   -- aborts with message if cond is false.
// DISCO_DCHECK(cond) << "msg";  -- same, compiled out in NDEBUG builds.
// DISCO_LOG(Info) << "msg";     -- line to stderr, used sparingly.
//
// Non-fatal messages are filtered by a runtime minimum severity:
// default Warning, overridable via the DISCO_LOG_LEVEL environment
// variable (info | warning | error) or SetMinLogSeverity(). Fatal
// always emits and aborts.

#ifndef DISCO_COMMON_LOGGING_H_
#define DISCO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace disco {
namespace internal {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// The runtime log threshold. First use reads DISCO_LOG_LEVEL from the
/// environment (default Warning); SetMinLogSeverity overrides it.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);
/// True if a message at `severity` would be emitted.
bool LogSeverityEnabled(LogSeverity severity);

/// Accumulates a message via operator<< and emits it (aborting for kFatal)
/// on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a log stream in compiled-out DCHECKs.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

/// Turns a LogMessage stream expression into void so it can sit in the
/// false branch of the ternary in DISCO_CHECK. operator& binds looser
/// than operator<< but tighter than ?:.
struct Voidify {
  void operator&(LogMessage&) {}
  void operator&(NullLog&) {}
  void operator&(LogMessage&&) {}
  void operator&(NullLog&&) {}
};

}  // namespace internal

#define DISCO_LOG(severity)                \
  ::disco::internal::LogMessage(           \
      ::disco::internal::LogSeverity::k##severity, __FILE__, __LINE__)

#define DISCO_CHECK(cond)                                  \
  (cond) ? (void)0                                         \
         : ::disco::internal::Voidify() & DISCO_LOG(Fatal) \
               << "Check failed: " #cond " "

#ifdef NDEBUG
#define DISCO_DCHECK(cond) \
  true ? (void)0 : ::disco::internal::Voidify() & ::disco::internal::NullLog()
#else
#define DISCO_DCHECK(cond) DISCO_CHECK(cond)
#endif

}  // namespace disco

#endif  // DISCO_COMMON_LOGGING_H_
