#include "common/value.h"

#include <cmath>
#include <functional>

#include "common/logging.h"

namespace disco {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "Null";
    case ValueType::kBool:
      return "Bool";
    case ValueType::kInt64:
      return "Int64";
    case ValueType::kDouble:
      return "Double";
    case ValueType::kString:
      return "String";
  }
  return "?";
}

bool Value::AsBool() const {
  DISCO_CHECK(is_bool()) << "Value is " << ValueTypeToString(type());
  return std::get<bool>(repr_);
}

int64_t Value::AsInt64() const {
  DISCO_CHECK(is_int64()) << "Value is " << ValueTypeToString(type());
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(std::get<int64_t>(repr_));
  DISCO_CHECK(is_double()) << "Value is " << ValueTypeToString(type());
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  DISCO_CHECK(is_string()) << "Value is " << ValueTypeToString(type());
  return std::get<std::string>(repr_);
}

double Value::NumericAsDouble() const {
  DISCO_CHECK(is_numeric()) << "Value is " << ValueTypeToString(type());
  return AsDouble();
}

Result<int> Value::Compare(const Value& other) const {
  // Null sorts below everything; two nulls are equal.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    double a = AsDouble(), b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    int a = AsBool() ? 1 : 0, b = other.AsBool() ? 1 : 0;
    return a - b;
  }
  return Status::InvalidArgument(
      std::string("incomparable value types ") + ValueTypeToString(type()) +
      " and " + ValueTypeToString(other.type()));
}

bool Value::operator==(const Value& other) const {
  Result<int> c = Compare(other);
  return c.ok() && *c == 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      double d = std::get<double>(repr_);
      // Render integral doubles compactly ("3" not "3.000000").
      if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
        return std::to_string(static_cast<int64_t>(d));
      }
      return std::to_string(d);
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return AsBool() ? 0x1234567 : 0x7654321;
    case ValueType::kInt64:
    case ValueType::kDouble:
      // Hash via the double representation so 1 and 1.0 collide, matching
      // operator==.
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

}  // namespace disco
