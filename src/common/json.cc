#include "common/json.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace disco {
namespace json {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return v.get();
  }
  return nullptr;
}

const JsonValue* JsonValue::GetPath(const std::string& dotted) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (start <= dotted.size()) {
    const size_t dot = dotted.find('.', start);
    const std::string part =
        dotted.substr(start, dot == std::string::npos ? std::string::npos
                                                      : dot - start);
    if (cur->is_array()) {
      char* end = nullptr;
      const long idx = std::strtol(part.c_str(), &end, 10);
      if (end == part.c_str() || *end != '\0' || idx < 0 ||
          static_cast<size_t>(idx) >= cur->items.size()) {
        return nullptr;
      }
      cur = cur->items[static_cast<size_t>(idx)].get();
    } else {
      cur = cur->Get(part);
      if (cur == nullptr) return nullptr;
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return cur;
}

namespace {

/// Appends the UTF-8 encoding of `cp` (a valid scalar value).
void AppendUtf8(long cp, std::string* out) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Recursive-descent parser over a complete in-memory document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValuePtr> Parse() {
    DISCO_ASSIGN_OR_RETURN(JsonValuePtr value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("json: %s at offset %zu", msg.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValuePtr> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        if (ConsumeWord("null")) return std::make_shared<JsonValue>();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValuePtr> ParseObject() {
    ++pos_;  // '{'
    auto out = std::make_shared<JsonValue>();
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      DISCO_ASSIGN_OR_RETURN(JsonValuePtr key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      DISCO_ASSIGN_OR_RETURN(JsonValuePtr value, ParseValue());
      out->members.emplace_back(key->string_value, std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValuePtr> ParseArray() {
    ++pos_;  // '['
    auto out = std::make_shared<JsonValue>();
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      DISCO_ASSIGN_OR_RETURN(JsonValuePtr value, ParseValue());
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValuePtr> ParseString() {
    ++pos_;  // '"'
    auto out = std::make_shared<JsonValue>();
    out->kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out->string_value += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->string_value += esc;
          break;
        case 'n':
          out->string_value += '\n';
          break;
        case 't':
          out->string_value += '\t';
          break;
        case 'r':
          out->string_value += '\r';
          break;
        case 'b':
          out->string_value += '\b';
          break;
        case 'f':
          out->string_value += '\f';
          break;
        case 'u': {
          // Full \uXXXX decoding to UTF-8, surrogate pairs included: a
          // high surrogate must be followed by a `\uXXXX` low surrogate
          // and the pair combines into one supplementary code point.
          DISCO_ASSIGN_OR_RETURN(long code, ParseHex4());
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            DISCO_ASSIGN_OR_RETURN(long low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(code, &out->string_value);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  /// The four hex digits of a \u escape (cursor already past the 'u').
  Result<long> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    long code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return Error("bad \\u escape");
      }
      code = (code << 4) | digit;
    }
    pos_ += 4;
    return code;
  }

  Result<JsonValuePtr> ParseBool() {
    auto out = std::make_shared<JsonValue>();
    out->kind = JsonValue::Kind::kBool;
    if (ConsumeWord("true")) {
      out->bool_value = true;
      return out;
    }
    if (ConsumeWord("false")) return out;
    return Error("bad literal");
  }

  Result<JsonValuePtr> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      return Error("bad number");
    }
    auto out = std::make_shared<JsonValue>();
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void FlattenInto(const JsonValue& value, const std::string& prefix,
                 std::map<std::string, double>* out) {
  switch (value.kind) {
    case JsonValue::Kind::kNumber:
      (*out)[prefix] = value.number_value;
      break;
    case JsonValue::Kind::kBool:
      (*out)[prefix] = value.bool_value ? 1 : 0;
      break;
    case JsonValue::Kind::kArray:
      for (size_t i = 0; i < value.items.size(); ++i) {
        FlattenInto(*value.items[i],
                    prefix.empty() ? StringPrintf("%zu", i)
                                   : prefix + StringPrintf(".%zu", i),
                    out);
      }
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.members) {
        FlattenInto(*member, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Kind::kString:
    case JsonValue::Kind::kNull:
      break;
  }
}

}  // namespace

Result<JsonValuePtr> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::map<std::string, double> FlattenNumbers(const JsonValue& value) {
  std::map<std::string, double> out;
  FlattenInto(value, "", &out);
  return out;
}

}  // namespace json
}  // namespace disco
