#include "common/thread_pool.h"

#include <algorithm>

namespace disco {

namespace {
/// claim_ layout: batch sequence (low 32 bits of batch_seq_) in the high
/// word, next unclaimed index in the low word. Packing both into one
/// atomic makes a claim valid only for the batch it was issued against: a
/// straggler from batch k can never claim an index of batch k+1 (which
/// would both skip that index and invoke a dead std::function).
constexpr int kIndexBits = 32;
constexpr uint64_t kIndexMask = (uint64_t{1} << kIndexBits) - 1;

uint64_t PackBatch(int64_t seq) {
  return (static_cast<uint64_t>(seq) & kIndexMask) << kIndexBits;
}
}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainBatch(int64_t seq, const std::function<void(int)>* fn,
                            int n) {
  const uint64_t batch_tag = PackBatch(seq);
  uint64_t cur = claim_.load(std::memory_order_acquire);
  for (;;) {
    if ((cur & ~kIndexMask) != batch_tag) return;  // a newer batch took over
    const int i = static_cast<int>(cur & kIndexMask);
    if (i >= n) return;  // batch fully claimed
    if (!claim_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      continue;  // cur was reloaded by the failed CAS
    }
    (*fn)(i);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last index of the batch: wake the caller. The lock pairs with
      // the caller's wait so the notification cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
    cur = claim_.load(std::memory_order_acquire);
  }
}

void ThreadPool::WorkerLoop() {
  int64_t seen_seq = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int n = 0;
    int64_t seq = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || batch_seq_ != seen_seq; });
      if (shutdown_) return;
      // Snapshot the batch under the lock: fn_ points at the caller's
      // stack and must never be dereferenced against a different batch.
      seen_seq = seq = batch_seq_;
      fn = fn_;
      n = batch_size_;
    }
    if (fn != nullptr) DrainBatch(seq, fn, n);
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads_ == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  int64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++batch_seq_;
    fn_ = &fn;
    batch_size_ = n;
    remaining_.store(n, std::memory_order_relaxed);
    claim_.store(PackBatch(seq), std::memory_order_release);
  }
  work_cv_.notify_all();
  DrainBatch(seq, &fn, n);  // the caller participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [&] { return remaining_.load(std::memory_order_acquire) == 0; });
  fn_ = nullptr;
  batch_size_ = 0;
}

}  // namespace disco
