// A minimal recursive-descent JSON parser for the repo's own tooling
// (bench_summary merges BENCH_*.json files; perf_gate reads a metric
// out of one; tests round-trip metrics::Registry::ToJson against
// ToOpenMetrics). It parses the JSON this repo emits -- objects,
// arrays, strings with the standard escapes (\uXXXX decodes to UTF-8,
// surrogate pairs included), numbers, booleans, null -- and nothing
// more exotic (no comments, no trailing commas).
//
// Not a general-purpose library: error positions are byte offsets, the
// whole document lives in memory, and numbers are doubles.

#ifndef DISCO_COMMON_JSON_H_
#define DISCO_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace disco {
namespace json {

class JsonValue;
using JsonValuePtr = std::shared_ptr<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValuePtr> items;  ///< arrays
  /// Object members in document order (JSON allows duplicate keys; the
  /// repo never emits them, and Get() returns the first).
  std::vector<std::pair<std::string, JsonValuePtr>> members;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member named `key`, or nullptr.
  const JsonValue* Get(const std::string& key) const;
  /// Walks a dotted path ("plan_cache.speedup"), or nullptr.
  const JsonValue* GetPath(const std::string& dotted) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
Result<JsonValuePtr> ParseJson(const std::string& text);

/// Flattens every numeric leaf of `value` into dotted-path -> number,
/// arrays indexed numerically ("results.0.value"). Booleans count as
/// 0/1; strings and nulls are skipped.
std::map<std::string, double> FlattenNumbers(const JsonValue& value);

}  // namespace json
}  // namespace disco

#endif  // DISCO_COMMON_JSON_H_
