// Deterministic pseudo-random number generator for data generation.
//
// All synthetic data (OO7 database, workload parameters) is produced from
// explicitly seeded Rng instances so every experiment is reproducible
// bit-for-bit.

#ifndef DISCO_COMMON_RNG_H_
#define DISCO_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace disco {

/// SplitMix64-seeded xorshift128+ generator. Not cryptographic; fast and
/// platform-stable.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into two non-zero state words.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    s0_ = Mix(z);
    z += 0x9e3779b97f4a7c15ULL;
    s1_ = Mix(z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be positive.
  uint64_t NextUint64(uint64_t n) {
    DISCO_DCHECK(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi) {
    DISCO_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  uint64_t s0_, s1_;
};

}  // namespace disco

#endif  // DISCO_COMMON_RNG_H_
