#include "common/status.h"

namespace disco {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace disco
