// A small fixed-size worker pool for deterministic fan-out/fan-in
// parallelism (docs/PERFORMANCE.md).
//
// The only primitive is ParallelFor(n, fn): run fn(0..n-1), blocking the
// caller until every index completed. Work is distributed by an atomic
// index counter, so *which thread* runs an index is nondeterministic --
// the determinism contract is therefore structural: tasks may only write
// to state owned by their own index (slot arrays), and the caller reduces
// the slots in index order afterwards. Under that discipline a pool of
// size 1 (which runs everything inline on the caller thread, spawning no
// workers) and a pool of size N produce bit-identical results.
//
// Tasks must not throw; errors travel through per-slot Result/Status
// values, matching the rest of the codebase.

#ifndef DISCO_COMMON_THREAD_POOL_H_
#define DISCO_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace disco {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller thread participates in
  /// every ParallelFor, so size 1 means fully inline execution). Values
  /// below 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (including the caller thread).
  int size() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n) and blocks until all completed.
  /// fn is invoked concurrently from up to size() threads; it must only
  /// touch per-index state. Not reentrant (one ParallelFor at a time).
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();
  /// Claims indices of batch `seq` until it is drained or superseded.
  void DrainBatch(int64_t seq, const std::function<void(int)>* fn, int n);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait here for a batch
  std::condition_variable done_cv_;   ///< the caller waits here for fan-in
  const std::function<void(int)>* fn_ = nullptr;  ///< guarded by mu_
  int batch_size_ = 0;                ///< guarded by mu_
  int64_t batch_seq_ = 0;             ///< bumped per ParallelFor (wakeup token)
  /// Batch tag + next unclaimed index in one word (see thread_pool.cc);
  /// the pairing stops stragglers from claiming into a newer batch.
  std::atomic<uint64_t> claim_{0};
  std::atomic<int> remaining_{0};
  bool shutdown_ = false;
};

}  // namespace disco

#endif  // DISCO_COMMON_THREAD_POOL_H_
