#include "common/tracing.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace disco {
namespace tracing {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int Trace::BeginSpan(const std::string& name, const std::string& category) {
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int>(stack_.size());
  span.name = name;
  span.category = category;
  span.start_ms = now_ms_;
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Trace::EndSpan(int id) {
  DISCO_CHECK(!stack_.empty() && stack_.back() == id)
      << "spans must be closed innermost-first (ending " << id << ")";
  stack_.pop_back();
  Span& span = spans_[static_cast<size_t>(id)];
  span.end_ms = now_ms_;
  span.closed = true;
}

int Trace::Instant(const std::string& name, const std::string& category) {
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int>(stack_.size());
  span.name = name;
  span.category = category;
  span.start_ms = now_ms_;
  span.end_ms = now_ms_;
  span.closed = true;
  span.instant = true;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

int Trace::CounterEvent(const std::string& name, double value,
                        const std::string& category) {
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int>(stack_.size());
  span.name = name;
  span.category = category;
  span.start_ms = now_ms_;
  span.end_ms = now_ms_;
  span.closed = true;
  span.counter = true;
  span.counter_value = value;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

int Trace::AddCompleteSpan(const std::string& name,
                           const std::string& category, double start_ms,
                           double end_ms, int lane) {
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int>(stack_.size());
  span.name = name;
  span.category = category;
  span.start_ms = start_ms;
  span.end_ms = end_ms < start_ms ? start_ms : end_ms;
  span.closed = true;
  span.lane = lane;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::AddArg(int id, const std::string& key, const std::string& value) {
  DISCO_CHECK(id >= 0 && id < static_cast<int>(spans_.size()))
      << "bad span id " << id;
  spans_[static_cast<size_t>(id)].args.emplace_back(key, value);
}

void Trace::AddArg(int id, const std::string& key, int64_t value) {
  AddArg(id, key, StringPrintf("%lld", static_cast<long long>(value)));
}

void Trace::AddArg(int id, const std::string& key, double value) {
  AddArg(id, key, StringPrintf("%.3f", value));
}

std::string Trace::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Metadata ("M") events first: process and lane (thread) names, so
  // Perfetto labels the scatter/hedge lanes with their source groups.
  if (!process_name_.empty()) {
    out += StringPrintf(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"%s\"}}",
        JsonEscape(process_name_).c_str());
    first = false;
  }
  for (const auto& [lane, name] : lane_names_) {
    if (!first) out += ",";
    first = false;
    out += StringPrintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        1 + lane, JsonEscape(name).c_str());
  }
  for (const Span& span : spans_) {
    if (!first) out += ",";
    first = false;
    // Timestamps are microseconds in the trace-event format.
    if (span.counter) {
      // Counter values must be numbers (not strings) to form a track.
      out += StringPrintf(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,"
          "\"pid\":1,\"args\":{\"value\":%.3f}}",
          JsonEscape(span.name).c_str(), JsonEscape(span.category).c_str(),
          span.start_ms * 1000.0, span.counter_value);
      continue;
    }
    if (span.instant) {
      out += StringPrintf(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
          "\"ts\":%.3f,\"pid\":1,\"tid\":%d",
          JsonEscape(span.name).c_str(), JsonEscape(span.category).c_str(),
          span.start_ms * 1000.0, 1 + span.lane);
    } else {
      const double end_ms = span.closed ? span.end_ms : now_ms_;
      out += StringPrintf(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%d",
          JsonEscape(span.name).c_str(), JsonEscape(span.category).c_str(),
          span.start_ms * 1000.0, (end_ms - span.start_ms) * 1000.0,
          1 + span.lane);
    }
    if (!span.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : span.args) {
        out += StringPrintf("%s\"%s\":\"%s\"", first_arg ? "" : ",",
                            JsonEscape(key).c_str(),
                            JsonEscape(value).c_str());
        first_arg = false;
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Trace::ToText() const {
  std::string out;
  for (const Span& span : spans_) {
    out += std::string(static_cast<size_t>(span.depth) * 2, ' ');
    out += span.name;
    if (span.counter) {
      out += StringPrintf("  [counter %.3f at %.3f ms]", span.counter_value,
                          span.start_ms);
    } else if (span.instant) {
      out += StringPrintf("  [at %.3f ms]", span.start_ms);
    } else {
      const double end_ms = span.closed ? span.end_ms : now_ms_;
      out += StringPrintf("  [%.3f ms .. %.3f ms]  dur=%.3f", span.start_ms,
                          end_ms, end_ms - span.start_ms);
    }
    if (span.lane > 0) out += StringPrintf("  lane=%d", span.lane);
    for (const auto& [key, value] : span.args) {
      out += "  " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

}  // namespace tracing
}  // namespace disco
