#include "common/sketch.h"

#include <algorithm>
#include <cmath>

namespace disco {

P2Quantile::P2Quantile(double p) : p_(p) {
  if (p_ <= 0) p_ = 0.01;
  if (p_ >= 1) p_ = 0.99;
  desired_ = {1, 1 + 2 * p_, 1 + 4 * p_, 3 + 2 * p_, 5};
  increments_ = {0, p_ / 2, p_, (1 + p_) / 2, 1};
}

void P2Quantile::Add(double x) {
  if (n_ < 5) {
    heights_[static_cast<size_t>(n_)] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      positions_ = {1, 2, 3, 4, 5};
    }
    return;
  }

  // Which cell does x fall into? Adjust the extreme markers on the way.
  size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (size_t i = k + 1; i < 5; ++i) positions_[i] += 1;
  ++n_;
  for (size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired positions.
  for (size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1 && right_gap > 1) || (d <= -1 && left_gap < -1)) {
      const double sign = d >= 1 ? 1 : -1;
      // Piecewise-parabolic (P^2) prediction of the new height.
      const double np1 = positions_[i + 1];
      const double nm1 = positions_[i - 1];
      const double ni = positions_[i];
      const double qp1 = heights_[i + 1];
      const double qm1 = heights_[i - 1];
      const double qi = heights_[i];
      double candidate =
          qi + sign / (np1 - nm1) *
                   ((ni - nm1 + sign) * (qp1 - qi) / (np1 - ni) +
                    (np1 - ni - sign) * (qi - qm1) / (ni - nm1));
      if (qm1 < candidate && candidate < qp1) {
        heights_[i] = candidate;
      } else {
        // Parabolic step would break monotonicity: fall back to linear.
        const size_t j = static_cast<size_t>(static_cast<double>(i) + sign);
        heights_[i] = qi + sign * (heights_[j] - qi) /
                               (positions_[j] - ni);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (n_ == 0) return 0;
  if (n_ < 5) {
    // Exact nearest-rank on the (unsorted) buffer.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + n_);
    const auto rank = static_cast<int64_t>(
        std::ceil(p_ * static_cast<double>(n_)));
    return sorted[static_cast<size_t>(std::clamp<int64_t>(rank, 1, n_) - 1)];
  }
  return heights_[2];
}

SlidingWindowQuantile::SlidingWindowQuantile(double p, double window_ms,
                                             int num_buckets)
    : p_(p), num_buckets_(std::max(1, num_buckets)) {
  if (window_ms <= 0) window_ms = 1;
  bucket_ms_ = window_ms / num_buckets_;
  buckets_.resize(static_cast<size_t>(num_buckets_));
}

int64_t SlidingWindowQuantile::SliceOf(double now_ms) const {
  if (now_ms < 0) return 0;
  return static_cast<int64_t>(std::floor(now_ms / bucket_ms_));
}

void SlidingWindowQuantile::Add(double now_ms, double x) {
  const int64_t slice = SliceOf(now_ms);
  Bucket& b = buckets_[static_cast<size_t>(slice % num_buckets_)];
  if (b.index != slice) {
    if (b.index > slice) return;  // stale timestamp: drop
    b.index = slice;
    b.sketch = P2Quantile(p_);
  }
  b.sketch.Add(x);
}

double SlidingWindowQuantile::Value(double now_ms) const {
  const int64_t now_slice = SliceOf(now_ms);
  double weighted = 0;
  int64_t total = 0;
  for (const Bucket& b : buckets_) {
    if (!Live(b, now_slice)) continue;
    weighted += static_cast<double>(b.sketch.count()) * b.sketch.Value();
    total += b.sketch.count();
  }
  return total > 0 ? weighted / static_cast<double>(total) : 0;
}

int64_t SlidingWindowQuantile::count(double now_ms) const {
  const int64_t now_slice = SliceOf(now_ms);
  int64_t total = 0;
  for (const Bucket& b : buckets_) {
    if (Live(b, now_slice)) total += b.sketch.count();
  }
  return total;
}

}  // namespace disco
