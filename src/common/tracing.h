// Deterministic query-lifecycle tracing.
//
// A Trace is a tree of spans stamped with *simulated* milliseconds: the
// instrumented code advances the trace clock by exactly the simulated
// time it charges (mediator/exec.cc) -- wall time never leaks in, so
// two runs with the same seed produce byte-identical traces that can be
// diffed or asserted on in tests.
//
//   tracing::Trace trace(/*start_ms=*/0);
//   {
//     tracing::ScopedSpan q(&trace, "query");
//     {
//       tracing::ScopedSpan s(&trace, "submit @erp", "submit");
//       trace.Advance(57.5);                 // simulated work
//       s.Arg("attempts", int64_t{1});
//     }
//   }
//   WriteFile("trace.json", trace.ToChromeJson());
//
// ToChromeJson() emits the Chrome trace-event format (complete "X"
// events plus instant "i" events), loadable in chrome://tracing or
// https://ui.perfetto.dev. See docs/OBSERVABILITY.md for the schema.

#ifndef DISCO_COMMON_TRACING_H_
#define DISCO_COMMON_TRACING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace disco {
namespace tracing {

struct Span {
  int id = 0;
  int parent = -1;  ///< span id, -1 for roots
  int depth = 0;
  std::string name;
  std::string category;
  double start_ms = 0;
  double end_ms = 0;
  bool closed = false;
  bool instant = false;  ///< zero-duration marker event
  /// Counter sample ("C" event in the Chrome export): `counter_value` at
  /// start_ms. Perfetto renders same-named samples as a counter track.
  bool counter = false;
  double counter_value = 0;
  /// Concurrency lane: 0 is the main (serial) timeline; scatter-gather
  /// execution stamps each source group's submits with its own lane so
  /// overlapping spans render side by side (Chrome export: tid = 1+lane).
  int lane = 0;
  /// Ordered key/value annotations (insertion order is export order).
  std::vector<std::pair<std::string, std::string>> args;

  double duration_ms() const { return end_ms - start_ms; }
};

/// A single query's (or session's) span tree. Not thread-safe: traces
/// belong to the single-threaded query path, like the SimClock they are
/// driven by.
class Trace {
 public:
  explicit Trace(double start_ms = 0) : now_ms_(start_ms) {}

  /// The trace clock. Advance() is how instrumented code accounts
  /// simulated work; AdvanceTo() clamps to monotonicity.
  double now_ms() const { return now_ms_; }
  void Advance(double ms) {
    if (ms > 0) now_ms_ += ms;
  }
  void AdvanceTo(double ms) {
    if (ms > now_ms_) now_ms_ = ms;
  }

  /// Opens a span at now_ms() under the innermost open span. Returns its
  /// id. Spans must be closed in LIFO order.
  int BeginSpan(const std::string& name, const std::string& category = "query");
  void EndSpan(int id);

  /// Zero-duration marker under the innermost open span (e.g. a breaker
  /// state transition).
  int Instant(const std::string& name, const std::string& category = "event");

  /// Samples a named counter at now_ms() (cumulative CPU ms, rows, ...).
  /// Exported as a Chrome "C" event; same-named samples form one track.
  int CounterEvent(const std::string& name, double value,
                   const std::string& category = "counter");

  /// Process/lane naming for the Chrome export ("M" metadata events):
  /// the process name heads the trace, lane names label the tids
  /// (tid = 1 + lane) so scatter lanes render with source-group names.
  void SetProcessName(const std::string& name) { process_name_ = name; }
  void SetLaneName(int lane, const std::string& name) {
    lane_names_[lane] = name;
  }
  const std::string& process_name() const { return process_name_; }
  const std::map<int, std::string>& lane_names() const { return lane_names_; }

  /// Records an already-finished span with explicit timestamps under the
  /// innermost open span -- how concurrent (scatter-gather) work whose
  /// intervals overlap is attached retroactively to the single-threaded
  /// trace. Does not move the trace clock. `lane` picks the concurrency
  /// lane (see Span::lane). Returns the span id.
  int AddCompleteSpan(const std::string& name, const std::string& category,
                      double start_ms, double end_ms, int lane = 0);

  /// Annotates an open or closed span.
  void AddArg(int id, const std::string& key, const std::string& value);
  void AddArg(int id, const std::string& key, int64_t value);
  void AddArg(int id, const std::string& key, double value);

  const std::vector<Span>& spans() const { return spans_; }
  /// Number of spans still open.
  int open_spans() const { return static_cast<int>(stack_.size()); }

  /// Chrome trace-event JSON ({"traceEvents":[...]}), events in span
  /// creation order, timestamps in microseconds.
  std::string ToChromeJson() const;

  /// Indented human-readable rendering, one span per line:
  ///   query                    [0.000 ms .. 171.500 ms]  dur=171.500
  ///     submit @erp  (submit)  ...  attempts=1
  std::string ToText() const;

 private:
  std::vector<Span> spans_;
  std::vector<int> stack_;  ///< ids of open spans, innermost last
  double now_ms_ = 0;
  std::string process_name_;
  std::map<int, std::string> lane_names_;
};

using TraceHandle = std::shared_ptr<Trace>;

/// RAII span; tolerates a null trace (tracing disabled).
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const std::string& name,
             const std::string& category = "query")
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name, category);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int id() const { return id_; }

  template <typename T>
  void Arg(const std::string& key, T value) {
    if (trace_ != nullptr) trace_->AddArg(id_, key, value);
  }
  void Arg(const std::string& key, const char* value) {
    if (trace_ != nullptr) trace_->AddArg(id_, key, std::string(value));
  }

 private:
  Trace* trace_ = nullptr;
  int id_ = -1;
};

}  // namespace tracing
}  // namespace disco

#endif  // DISCO_COMMON_TRACING_H_
