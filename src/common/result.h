// Result<T>: a value-or-Status, the return type of fallible producers.

#ifndef DISCO_COMMON_RESULT_H_
#define DISCO_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace disco {

/// Holds either a `T` or a non-OK Status. Accessing the value of an
/// errored Result is a checked failure (DISCO_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a Status (must be an error).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    DISCO_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK Status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error (or OK if this Result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    DISCO_CHECK(ok()) << "ValueOrDie on error Result: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DISCO_CHECK(ok()) << "ValueOrDie on error Result: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DISCO_CHECK(ok()) << "ValueOrDie on error Result: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, replacing it with a default-constructed T.
  T MoveValueUnsafe() { return std::get<T>(std::move(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration, e.g.
///   DISCO_ASSIGN_OR_RETURN(auto plan, Optimize(query));
#define DISCO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).MoveValueUnsafe();

#define DISCO_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DISCO_ASSIGN_OR_RETURN_NAME(x, y) DISCO_ASSIGN_OR_RETURN_CONCAT(x, y)
#define DISCO_ASSIGN_OR_RETURN(lhs, expr) \
  DISCO_ASSIGN_OR_RETURN_IMPL(            \
      DISCO_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace disco

#endif  // DISCO_COMMON_RESULT_H_
