// Deterministic streaming quantile estimation (workload profiling).
//
// Two pieces, both fixed-memory and RNG-free so that same-seed runs of
// the whole system stay byte-identical (docs/OBSERVABILITY.md):
//
// 1. P2Quantile -- the P^2 algorithm (Jain & Chlamtac, CACM 1985): a
//    single quantile tracked with five markers whose heights are nudged
//    by a piecewise-parabolic fit as observations stream in. O(1) per
//    Add(), exact until the fifth observation.
//
// 2. SlidingWindowQuantile -- a ring of P2Quantile sub-sketches, each
//    covering one fixed slice of *simulated* time. Old slices expire as
//    the clock advances, so the estimate tracks the recent workload
//    instead of the whole process lifetime -- the primitive behind the
//    cost-model drift monitor (costmodel/drift.h).

#ifndef DISCO_COMMON_SKETCH_H_
#define DISCO_COMMON_SKETCH_H_

#include <array>
#include <cstdint>
#include <vector>

namespace disco {

/// Streaming estimate of the p-quantile of everything Add()ed.
class P2Quantile {
 public:
  /// `p` in (0, 1); e.g. 0.9 tracks the P90.
  explicit P2Quantile(double p = 0.5);

  void Add(double x);

  /// Current estimate: exact (nearest-rank on the sorted buffer) until
  /// five observations exist, the P^2 marker height afterwards. 0 when
  /// empty.
  double Value() const;

  int64_t count() const { return n_; }
  double p() const { return p_; }

 private:
  double p_;
  int64_t n_ = 0;
  std::array<double, 5> heights_{};    ///< marker heights q_i
  std::array<double, 5> positions_{};  ///< actual marker positions n_i
  std::array<double, 5> desired_{};    ///< desired positions n'_i
  std::array<double, 5> increments_{}; ///< dn'_i per observation
};

/// The p-quantile of the last `window_ms` of simulated time, estimated
/// from `num_buckets` tumbling sub-sketches: Add(now_ms, x) lands in the
/// bucket covering now_ms, Value(now_ms) combines the still-live buckets
/// (count-weighted mean of their P^2 estimates -- a coarse but
/// deterministic approximation of the true window quantile). Timestamps
/// must be nonnegative simulated milliseconds; they may arrive out of
/// order within a bucket but the clock should not move backwards across
/// buckets (stale Adds are dropped).
class SlidingWindowQuantile {
 public:
  SlidingWindowQuantile(double p, double window_ms, int num_buckets = 6);

  void Add(double now_ms, double x);

  /// Combined estimate over buckets still inside the window at
  /// `now_ms`; 0 when the window is empty.
  double Value(double now_ms) const;

  /// Observations still inside the window at `now_ms`.
  int64_t count(double now_ms) const;

  double p() const { return p_; }
  double window_ms() const { return bucket_ms_ * num_buckets_; }

 private:
  struct Bucket {
    int64_t index = -1;  ///< absolute slice number; -1 = never used
    P2Quantile sketch{0.5};
  };

  int64_t SliceOf(double now_ms) const;
  bool Live(const Bucket& b, int64_t now_slice) const {
    return b.index >= 0 && b.index > now_slice - num_buckets_ &&
           b.index <= now_slice;
  }

  double p_;
  double bucket_ms_;
  int num_buckets_;
  std::vector<Bucket> buckets_;
};

}  // namespace disco

#endif  // DISCO_COMMON_SKETCH_H_
