// Value: the polymorphic constant of the paper (its `Constant` object).
//
// Statistics such as Min/Max, query predicates, and tuple fields all carry
// values whose type varies per attribute (Figure 4 encodes Min/Max "in a
// special polymorphic Constant object"). Value is a small tagged union over
// null / bool / int64 / double / string with total ordering within
// comparable types.

#ifndef DISCO_COMMON_VALUE_H_
#define DISCO_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace disco {

/// Runtime type tag of a Value.
enum class ValueType { kNull = 0, kBool, kInt64, kDouble, kString };

/// Human-readable type name, e.g. "Int64".
const char* ValueTypeToString(ValueType t);

/// A polymorphic constant. Numeric values (Int64/Double) compare and
/// compute with each other; Strings compare lexicographically.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(bool b) : repr_(b) {}
  explicit Value(int64_t i) : repr_(i) {}
  explicit Value(int i) : repr_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : repr_(d) {}
  explicit Value(std::string s) : repr_(std::move(s)) {}
  explicit Value(const char* s) : repr_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int64() || is_double(); }

  bool AsBool() const;
  int64_t AsInt64() const;
  double AsDouble() const;          ///< Int64 widens to double.
  const std::string& AsString() const;

  /// Numeric content as double regardless of Int64/Double tag; checked.
  double NumericAsDouble() const;

  /// Three-way comparison. Numerics compare numerically across tags;
  /// strings lexicographically; bools false<true; Null compares less
  /// than everything. Mixed non-numeric types are an error.
  Result<int> Compare(const Value& other) const;

  /// Exact equality: same type class and equal content (Int64 1 equals
  /// Double 1.0; used by predicate evaluation and plan identity).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// SQL-literal-like rendering: strings quoted, null as "null".
  std::string ToString() const;

  /// Stable hash, consistent with operator== (numeric 1 and 1.0 collide).
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

}  // namespace disco

#endif  // DISCO_COMMON_VALUE_H_
