// A small thread-safe metrics registry: counters, gauges, and
// histograms with fixed log-scale buckets.
//
//   metrics::Registry reg;
//   reg.counter("disco.exec.submits")->Increment();
//   reg.histogram("disco.submit.ms")->Record(57.5);
//   std::puts(reg.ToText().c_str());
//
// The registry is the first intentionally concurrent component of this
// repo: instruments are lock-free atomics so they can be bumped from
// any thread, and instrument creation/lookup is guarded by a mutex.
// Returned instrument pointers stay valid for the registry's lifetime.
// Exports iterate instruments in name order, so single-threaded runs
// produce byte-identical text/JSON (see docs/OBSERVABILITY.md for the
// metric name catalog).

#ifndef DISCO_COMMON_METRICS_H_
#define DISCO_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace disco {
namespace metrics {

/// Monotonically increasing integer.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can move both ways (e.g. a breaker state, a queue depth).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Distribution of a nonnegative quantity (simulated ms, rows, bytes)
/// over fixed log2-scale buckets: bucket 0 holds values <= kMinUpper,
/// bucket i holds (kMinUpper * 2^(i-1), kMinUpper * 2^i]. With
/// kMinUpper = 0.001 ms the 44 buckets span 1 us .. ~100 days.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;
  static constexpr double kMinUpper = 0.001;

  void Record(double value);

  /// Bucket that `value` falls into.
  static int BucketIndex(double value);
  /// Inclusive upper bound of bucket `i` (infinity for the last).
  static double BucketUpperBound(int i);

  struct Snapshot {
    int64_t count = 0;
    double sum = 0;
    double min = 0;  ///< 0 when empty
    double max = 0;
    std::array<int64_t, kNumBuckets> buckets{};

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0;
    }
    /// Upper bound of the bucket holding the p-quantile, p in [0, 1].
    /// A coarse, deterministic estimate (no interpolation).
    double Quantile(double p) const;
  };
  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

/// Named snapshot of a whole registry (plain values, no atomics).
struct RegistrySnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

class Registry {
 public:
  /// Find-or-create. The returned pointer is stable for the registry's
  /// lifetime; each name denotes one instrument kind (creating a gauge
  /// named like an existing counter is a distinct instrument).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  RegistrySnapshot TakeSnapshot() const;

  /// One instrument per line, in name order:
  ///   counter disco.exec.submits 12
  ///   gauge disco.health.oo7 1.000
  ///   histogram disco.submit.ms count=12 sum=... p50=... p99=... max=...
  std::string ToText() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with non-empty
  /// buckets listed as [{"le":...,"n":...}].
  std::string ToJson() const;

  /// OpenMetrics / Prometheus text exposition, ending in "# EOF".
  /// Naming rule: every character outside [a-zA-Z0-9_:] becomes '_'
  /// (so disco.submit.ms scrapes as disco_submit_ms); a leading digit
  /// gains a '_' prefix. Counters expose <name>_total; histograms
  /// expose cumulative <name>_bucket{le="..."} samples (non-empty
  /// buckets plus le="+Inf") and <name>_sum / <name>_count.
  /// See docs/OBSERVABILITY.md ("OpenMetrics exposition").
  std::string ToOpenMetrics() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace metrics
}  // namespace disco

#endif  // DISCO_COMMON_METRICS_H_
