// Status: the error-handling currency of the disco library.
//
// Public APIs never throw; fallible operations return a Status (or a
// Result<T>, see result.h) in the style of Arrow / RocksDB.

#ifndef DISCO_COMMON_STATUS_H_
#define DISCO_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace disco {

/// Classifies a failure. `kOk` means success and carries no message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kParseError,        ///< text in IDL / cost language / SQL did not parse
  kNotFound,          ///< named collection, attribute, rule, ... is unknown
  kAlreadyExists,     ///< duplicate registration
  kOutOfRange,        ///< index / value outside its domain
  kNotSupported,      ///< valid request outside implemented capabilities
  kExecutionError,    ///< runtime failure while evaluating a plan or formula
  kUnavailable,       ///< a data source is (temporarily) unreachable
  kInternal,          ///< invariant violation (a bug in disco itself)
};

/// Human-readable name of a code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A cheap success-or-error value. Success is represented by a null
/// internal state so returning Status::OK() never allocates.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsExecutionError() const { return code() == StatusCode::kExecutionError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the message with `context + ": "` (no-op on OK).
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  std::unique_ptr<State> state_;  // null == OK
};

/// Propagates a non-OK Status to the caller.
#define DISCO_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::disco::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace disco

#endif  // DISCO_COMMON_STATUS_H_
