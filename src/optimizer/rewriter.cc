#include "optimizer/rewriter.h"

namespace disco {
namespace optimizer {

using algebra::Operator;

std::unique_ptr<Operator> BuildRelationPlan(const query::BoundRelation& rel) {
  std::unique_ptr<Operator> plan = algebra::Scan(rel.collection);
  for (const algebra::SelectPredicate& p : rel.predicates) {
    plan = algebra::Select(std::move(plan), p);
  }
  return plan;
}

std::unique_ptr<Operator> EnsureSubmitted(const std::string& source,
                                          std::unique_ptr<Operator> plan) {
  if (plan->kind == algebra::OpKind::kSubmit) return plan;
  return algebra::Submit(source, std::move(plan));
}

std::unique_ptr<Operator> AppendQueryTail(std::unique_ptr<Operator> plan,
                                          const query::BoundQuery& q) {
  if (q.aggregate.has_value()) {
    plan = algebra::Aggregate(std::move(plan), q.aggregate->func,
                              q.aggregate->attribute, q.group_by);
  } else if (!q.projections.empty()) {
    plan = algebra::Project(std::move(plan), q.projections);
  }
  if (q.distinct) plan = algebra::Dedup(std::move(plan));
  if (q.order_by.has_value()) {
    plan = algebra::Sort(std::move(plan), *q.order_by, q.order_ascending);
  }
  return plan;
}

bool SubplanSupported(const Operator& plan, const SourceCapabilities& caps) {
  if (!caps.Supports(plan.kind)) return false;
  for (const auto& child : plan.children) {
    if (!SubplanSupported(*child, caps)) return false;
  }
  return true;
}

}  // namespace optimizer
}  // namespace disco
