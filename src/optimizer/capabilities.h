// Wrapper capability descriptions: which algebra operators a wrapper can
// execute in a submitted subquery. The paper assumes all wrappers execute
// all operations (Section 2.1, deferring discrepancies to [KTV97]); the
// table defaults to that, but sources may restrict (e.g. a flat-file
// wrapper that can only scan and filter).

#ifndef DISCO_OPTIMIZER_CAPABILITIES_H_
#define DISCO_OPTIMIZER_CAPABILITIES_H_

#include <map>
#include <string>

#include "algebra/operator.h"

namespace disco {
namespace optimizer {

struct SourceCapabilities {
  bool select = true;
  /// Can the wrapper evaluate a disjunctive IN-set select (`attr in
  /// (v1, ..., vn)`) in one probe? When false the bind-join executor
  /// decomposes each key batch into per-key equality selects.
  bool in_select = true;
  bool project = true;
  bool join = true;
  bool sort = true;
  bool dedup = true;
  bool aggregate = true;
  bool set_union = true;

  /// Scan is always supported; submit never is (wrappers don't nest).
  bool Supports(algebra::OpKind kind) const;

  static SourceCapabilities All() { return SourceCapabilities(); }
  /// Scan + select + project only (simple file wrappers).
  static SourceCapabilities FilterOnly();
};

/// Per-source capability registry, filled at registration.
class CapabilityTable {
 public:
  void Set(const std::string& source, SourceCapabilities caps);
  /// Defaults to All() for unknown sources (the paper's assumption).
  SourceCapabilities Get(const std::string& source) const;

 private:
  std::map<std::string, SourceCapabilities> caps_;
};

}  // namespace optimizer
}  // namespace disco

#endif  // DISCO_OPTIMIZER_CAPABILITIES_H_
