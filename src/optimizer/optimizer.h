// The mediator optimizer facade: bound query -> best complete plan.

#ifndef DISCO_OPTIMIZER_OPTIMIZER_H_
#define DISCO_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "costmodel/estimator.h"
#include "optimizer/capabilities.h"
#include "optimizer/join_enum.h"
#include "query/binder.h"

namespace disco {
namespace optimizer {

struct OptimizerOptions {
  bool use_pruning = true;  ///< §4.3.2 branch-and-bound in enumeration
  Objective objective = Objective::kTotalTime;
  bool enable_bind_join = true;
  costmodel::EstimateOptions estimate;
  int max_relations = 12;
};

struct OptimizedPlan {
  std::unique_ptr<algebra::Operator> plan;
  double estimated_ms = 0;
  costmodel::PlanEstimate final_estimate;  ///< full estimate of the winner
  EnumStats stats;
};

class Optimizer {
 public:
  Optimizer(const costmodel::CostEstimator* estimator,
            const CapabilityTable* capabilities)
      : estimator_(estimator), enumerator_(estimator, capabilities) {}

  Result<OptimizedPlan> Optimize(const query::BoundQuery& q,
                                 const OptimizerOptions& options = {}) const;

 private:
  const costmodel::CostEstimator* estimator_;
  JoinEnumerator enumerator_;
};

}  // namespace optimizer
}  // namespace disco

#endif  // DISCO_OPTIMIZER_OPTIMIZER_H_
