// The mediator optimizer facade: bound query -> best complete plan.

#ifndef DISCO_OPTIMIZER_OPTIMIZER_H_
#define DISCO_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/tracing.h"
#include "costmodel/estimator.h"
#include "optimizer/capabilities.h"
#include "optimizer/join_enum.h"
#include "query/binder.h"

namespace disco {
namespace optimizer {

struct OptimizerOptions {
  bool use_pruning = true;  ///< §4.3.2 branch-and-bound in enumeration
  Objective objective = Objective::kTotalTime;
  bool enable_bind_join = true;
  costmodel::EstimateOptions estimate;
  int max_relations = 12;
  /// Fast planning path (docs/PERFORMANCE.md): subplan cost memoization
  /// and deterministic parallel candidate pricing, forwarded to the join
  /// enumerator. `memo` and `pool` are borrowed and may be null (null
  /// memo = run-local memo; null pool = price inline).
  bool use_memo = true;
  costmodel::CostMemo* memo = nullptr;
  ThreadPool* pool = nullptr;
  /// Runtime health input: sources to plan around (open circuit
  /// breakers, sources that just died mid-execution). A relation bound
  /// to an avoided source is re-pointed at an equivalent collection on
  /// a healthy source when one is declared in `catalog`; without a
  /// replica the relation keeps its original source (degraded planning
  /// beats no plan).
  std::vector<std::string> avoid_sources;
  /// Catalog used to look up equivalent collections; may be null when
  /// `avoid_sources` is empty.
  const Catalog* catalog = nullptr;
  /// Observability: when set, Optimize() emits rewrite/enumerate spans
  /// (annotated with EnumStats counters) into this trace.
  tracing::Trace* trace = nullptr;
};

struct OptimizedPlan {
  std::unique_ptr<algebra::Operator> plan;
  double estimated_ms = 0;
  costmodel::PlanEstimate final_estimate;  ///< full estimate of the winner
  EnumStats stats;
  /// (original collection, replica used) for every relation re-routed
  /// around an avoided source.
  std::vector<std::pair<std::string, std::string>> replica_substitutions;
};

class Optimizer {
 public:
  Optimizer(const costmodel::CostEstimator* estimator,
            const CapabilityTable* capabilities)
      : estimator_(estimator), enumerator_(estimator, capabilities) {}

  Result<OptimizedPlan> Optimize(const query::BoundQuery& q,
                                 const OptimizerOptions& options = {}) const;

 private:
  const costmodel::CostEstimator* estimator_;
  JoinEnumerator enumerator_;
};

}  // namespace optimizer
}  // namespace disco

#endif  // DISCO_OPTIMIZER_OPTIMIZER_H_
