// Dynamic-programming join enumeration with submit placement.
//
// The mediator "constructs several plans" and keeps the cheapest by
// estimated cost (paper Section 2.2). We enumerate connected subsets of
// the (acyclic) join graph bottom-up. Each subset keeps the best plan per
// *location*: entirely at one source (no submit yet -- it can still merge
// with other work at that source into one subquery), or at the mediator
// (all source work wrapped in submits). Capabilities gate what can be
// pushed; the cost estimator prices every candidate, optionally with the
// branch-and-bound cutoff of Section 4.3.2.
//
// Fast planning path (docs/PERFORMANCE.md): candidates generated for one
// DP step are priced as a batch -- in parallel when a ThreadPool is
// supplied -- against bounds frozen at batch start, then reduced in slot
// order (min cost; exact ties break on the canonical plan string). A
// shared CostMemo lets candidates reuse the CostVectors of subtrees
// priced in earlier batches. Both are exactly deterministic: the chosen
// plan, every statistic, and every trace byte are identical for any pool
// size, including no pool at all.

#ifndef DISCO_OPTIMIZER_JOIN_ENUM_H_
#define DISCO_OPTIMIZER_JOIN_ENUM_H_

#include <memory>

#include "common/thread_pool.h"
#include "costmodel/cost_memo.h"
#include "costmodel/estimator.h"
#include "optimizer/capabilities.h"
#include "query/binder.h"

namespace disco {
namespace optimizer {

/// What the optimizer minimizes. The paper's cost vectors carry
/// TimeFirst/TimeNext precisely so a mediator can optimize either for
/// throughput (TotalTime) or for response time to the first answer
/// (TimeFirst) -- interactive clients want the latter. kResponseTime
/// prices plans for the scatter-gather federation layer
/// (docs/ROBUSTNESS.md): independent submits run concurrently, so the
/// serial sum of submit subtree times is replaced by their max (plus the
/// mediator-side merge work), matching the executor's max-not-sum
/// charging.
enum class Objective {
  kTotalTime = 0,
  kTimeFirst,
  kResponseTime,
};

struct EnumOptions {
  /// Abort candidate estimations that exceed the incumbent (§4.3.2).
  bool use_pruning = true;
  Objective objective = Objective::kTotalTime;
  /// Consider bind joins (probe a predicate-free relation per outer key)
  /// as an alternative to shipping it -- the paper's §7 scenario of
  /// "selecting a few images" via another source.
  bool enable_bind_join = true;
  costmodel::EstimateOptions estimate;
  int max_relations = 12;

  /// Memoize subplan cost vectors across candidates. When `memo` is null
  /// a run-local memo is used (reuse within this enumeration only); pass
  /// a long-lived CostMemo to also reuse across queries. The enumerator
  /// syncs it against RuleRegistry::epoch() before pricing anything.
  bool use_memo = true;
  costmodel::CostMemo* memo = nullptr;

  /// Prices each batch's candidates concurrently when set (borrowed, not
  /// owned). Null prices inline -- bit-identical results either way.
  ThreadPool* pool = nullptr;
};

/// Work counters accumulated across all candidate estimations.
struct EnumStats {
  int plans_costed = 0;
  int plans_pruned = 0;
  int64_t nodes_visited = 0;
  int64_t formulas_evaluated = 0;
  int64_t match_attempts = 0;
  int64_t memo_hits = 0;    ///< subtree estimates answered from the memo
  int64_t memo_misses = 0;  ///< subtree estimates computed from rules
};

struct EnumResult {
  std::unique_ptr<algebra::Operator> plan;  ///< complete mediator plan
  double cost_ms = 0;
  EnumStats stats;
};

/// The kResponseTime price of `plan`: its estimated TotalTime with the
/// serial sum of top-level submit subtree times replaced by their max --
/// what the plan costs when the scatter phase runs every submit
/// concurrently. Plans without (or with one) submit price identically
/// to TotalTime. Also used directly by benches/tests to compare serial
/// vs concurrent plan prices.
Result<double> ResponseTimeCost(const algebra::Operator& plan,
                                const costmodel::CostEstimator& estimator,
                                const costmodel::EstimateOptions& options);

class JoinEnumerator {
 public:
  JoinEnumerator(const costmodel::CostEstimator* estimator,
                 const CapabilityTable* capabilities)
      : estimator_(estimator), capabilities_(capabilities) {}

  /// Enumerates and returns the cheapest complete plan for `q` (including
  /// the query tail: aggregate / projection / distinct / order).
  Result<EnumResult> Enumerate(const query::BoundQuery& q,
                               const EnumOptions& options = {}) const;

 private:
  const costmodel::CostEstimator* estimator_;
  const CapabilityTable* capabilities_;
};

}  // namespace optimizer
}  // namespace disco

#endif  // DISCO_OPTIMIZER_JOIN_ENUM_H_
