#include "optimizer/optimizer.h"

namespace disco {
namespace optimizer {

Result<OptimizedPlan> Optimizer::Optimize(const query::BoundQuery& q,
                                          const OptimizerOptions& options) const {
  EnumOptions enum_options;
  enum_options.use_pruning = options.use_pruning;
  enum_options.objective = options.objective;
  enum_options.enable_bind_join = options.enable_bind_join;
  enum_options.estimate = options.estimate;
  enum_options.max_relations = options.max_relations;

  DISCO_ASSIGN_OR_RETURN(EnumResult result,
                         enumerator_.Enumerate(q, enum_options));

  OptimizedPlan out;
  // Re-estimate the winner without a bound for a complete cost vector.
  DISCO_ASSIGN_OR_RETURN(out.final_estimate,
                         estimator_->Estimate(*result.plan, options.estimate));
  out.plan = std::move(result.plan);
  out.estimated_ms = out.final_estimate.root.total_time();
  out.stats = result.stats;
  return out;
}

}  // namespace optimizer
}  // namespace disco
