#include "optimizer/optimizer.h"

#include "common/str_util.h"

namespace disco {
namespace optimizer {

namespace {

bool SourceAvoided(const std::vector<std::string>& avoid,
                   const std::string& source) {
  for (const std::string& a : avoid) {
    if (EqualsIgnoreCase(a, source)) return true;
  }
  return false;
}

}  // namespace

Result<OptimizedPlan> Optimizer::Optimize(const query::BoundQuery& q,
                                          const OptimizerOptions& options) const {
  EnumOptions enum_options;
  enum_options.use_pruning = options.use_pruning;
  enum_options.objective = options.objective;
  enum_options.enable_bind_join = options.enable_bind_join;
  enum_options.estimate = options.estimate;
  enum_options.max_relations = options.max_relations;
  enum_options.use_memo = options.use_memo;
  enum_options.memo = options.memo;
  enum_options.pool = options.pool;

  // Health-aware routing: re-point relations bound to avoided sources
  // at declared-equivalent collections on healthy sources. Attribute
  // names are identical across an equivalence class (enforced by
  // Catalog::DeclareEquivalent), so predicates, joins, and projections
  // bind unchanged.
  query::BoundQuery rerouted;
  const query::BoundQuery* effective = &q;
  std::vector<std::pair<std::string, std::string>> substitutions;
  {
    tracing::ScopedSpan rewrite_span(options.trace, "rewrite", "plan");
    if (!options.avoid_sources.empty() && options.catalog != nullptr) {
      for (size_t i = 0; i < q.relations.size(); ++i) {
        const query::BoundRelation& rel = q.relations[i];
        if (!SourceAvoided(options.avoid_sources, rel.source)) continue;
        for (const std::string& alt :
             options.catalog->EquivalentsOf(rel.collection)) {
          Result<CatalogEntry> entry = options.catalog->Collection(alt);
          if (!entry.ok() ||
              SourceAvoided(options.avoid_sources, entry->source)) {
            continue;
          }
          if (effective == &q) rerouted = q;
          rerouted.relations[i].collection = alt;
          rerouted.relations[i].source = entry->source;
          substitutions.emplace_back(rel.collection, alt);
          effective = &rerouted;
          break;
        }
      }
    }
    rewrite_span.Arg("relations", static_cast<int64_t>(q.relations.size()));
    rewrite_span.Arg("replica_substitutions",
                     static_cast<int64_t>(substitutions.size()));
  }

  EnumResult result;
  {
    tracing::ScopedSpan enum_span(options.trace, "enumerate", "plan");
    Result<EnumResult> enumerated =
        enumerator_.Enumerate(*effective, enum_options);
    DISCO_RETURN_NOT_OK(enumerated.status());
    result = std::move(*enumerated);
    enum_span.Arg("plans_costed", int64_t{result.stats.plans_costed});
    enum_span.Arg("plans_pruned", int64_t{result.stats.plans_pruned});
    enum_span.Arg("formulas_evaluated",
                  int64_t{result.stats.formulas_evaluated});
    enum_span.Arg("memo_hits", int64_t{result.stats.memo_hits});
    enum_span.Arg("memo_misses", int64_t{result.stats.memo_misses});
  }

  OptimizedPlan out;
  out.replica_substitutions = std::move(substitutions);
  // Re-estimate the winner without a bound for a complete cost vector.
  DISCO_ASSIGN_OR_RETURN(out.final_estimate,
                         estimator_->Estimate(*result.plan, options.estimate));
  out.plan = std::move(result.plan);
  out.estimated_ms = out.final_estimate.root.total_time();
  out.stats = result.stats;
  return out;
}

}  // namespace optimizer
}  // namespace disco
