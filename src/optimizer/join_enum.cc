#include "optimizer/join_enum.h"

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/str_util.h"
#include "optimizer/rewriter.h"

namespace disco {
namespace optimizer {

namespace {

using algebra::Operator;
using query::BoundQuery;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Best plan for a subset at one location. `location` "" = mediator
/// (source work already submitted); otherwise the plan runs wholly at
/// that source and is not yet wrapped in submit.
struct Entry {
  std::unique_ptr<Operator> plan;
  double completion_cost = kInf;  ///< estimated cost once submitted/run
};

class Enumeration {
 public:
  Enumeration(const BoundQuery& q, const costmodel::CostEstimator* estimator,
              const CapabilityTable* caps, const EnumOptions& options,
              EnumStats* stats)
      : q_(q),
        estimator_(estimator),
        caps_(caps),
        options_(options),
        stats_(stats) {}

  Result<EnumResult> Run() {
    const int n = static_cast<int>(q_.relations.size());
    const uint32_t full = (n == 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
    best_.clear();
    best_.resize(static_cast<size_t>(full) + 1);

    // Base relations.
    for (int i = 0; i < n; ++i) {
      DISCO_RETURN_NOT_OK(SeedRelation(i));
    }

    // Connected-subset DP, by subset size.
    for (uint32_t s = 1; s <= full; ++s) {
      if (__builtin_popcount(s) < 2) continue;
      // Split into (s1, s2); fix the lowest bit into s1 to halve the
      // work, and try both join orientations explicitly.
      const uint32_t low = s & (~s + 1);
      for (uint32_t s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
        if ((s1 & low) == 0) continue;
        const uint32_t s2 = s & ~s1;
        if (best_[s1].empty() || best_[s2].empty()) continue;
        DISCO_RETURN_NOT_OK(Combine(s, s1, s2));
      }
    }

    if (best_[full].empty()) {
      return Status::NotSupported(
          "no plan found: the join graph could not be enumerated");
    }

    // Finish: append the query tail, trying both "inside the submit"
    // (single-source queries, capabilities permitting) and "at the
    // mediator".
    std::unique_ptr<Operator> best_plan;
    double best_cost = kInf;
    for (const auto& [loc, entry] : best_[full]) {
      if (loc.empty()) {
        std::unique_ptr<Operator> plan =
            AppendQueryTail(entry.plan->Clone(), q_);
        DISCO_RETURN_NOT_OK(Consider(std::move(plan), &best_plan, &best_cost));
      } else {
        // (a) tail inside the submitted subquery.
        std::unique_ptr<Operator> inside = AppendQueryTail(entry.plan->Clone(), q_);
        if (SubplanSupported(*inside, caps_->Get(loc))) {
          DISCO_RETURN_NOT_OK(Consider(EnsureSubmitted(loc, std::move(inside)),
                                       &best_plan, &best_cost));
        }
        // (b) tail at the mediator.
        std::unique_ptr<Operator> outside = AppendQueryTail(
            EnsureSubmitted(loc, entry.plan->Clone()), q_);
        DISCO_RETURN_NOT_OK(
            Consider(std::move(outside), &best_plan, &best_cost));
      }
    }
    if (best_plan == nullptr) {
      return Status::NotSupported("no executable complete plan found");
    }
    EnumResult out;
    out.plan = std::move(best_plan);
    out.cost_ms = best_cost;
    out.stats = *stats_;
    return out;
  }

 private:
  /// Estimates `plan` (a complete mediator plan), with branch-and-bound
  /// against `bound` when enabled. Returns +inf when pruned.
  Result<double> Cost(const Operator& plan, double bound) {
    costmodel::EstimateOptions opts = options_.estimate;
    // Branch-and-bound cuts on TotalTime, so it only applies to the
    // TotalTime objective (a plan with a large TotalTime may still have
    // the best TimeFirst).
    if (options_.use_pruning &&
        options_.objective == Objective::kTotalTime &&
        std::isfinite(bound)) {
      opts.prune_bound = bound;
    }
    DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate est,
                           estimator_->Estimate(plan, opts));
    ++stats_->plans_costed;
    stats_->nodes_visited += est.nodes_visited;
    stats_->formulas_evaluated += est.formulas_evaluated;
    stats_->match_attempts += est.match_attempts;
    if (est.pruned) {
      ++stats_->plans_pruned;
      return kInf;
    }
    return options_.objective == Objective::kTimeFirst
               ? est.root.time_first()
               : est.root.total_time();
  }

  Status Consider(std::unique_ptr<Operator> plan,
                  std::unique_ptr<Operator>* best_plan, double* best_cost) {
    DISCO_ASSIGN_OR_RETURN(double cost, Cost(*plan, *best_cost));
    if (cost < *best_cost) {
      *best_cost = cost;
      *best_plan = std::move(plan);
    }
    return Status::OK();
  }

  Status SeedRelation(int i) {
    const query::BoundRelation& rel = q_.relations[static_cast<size_t>(i)];
    const std::string source = ToLower(rel.source);
    const SourceCapabilities caps = caps_->Get(source);
    const uint32_t mask = 1u << i;

    std::unique_ptr<Operator> local = BuildRelationPlan(rel);
    const bool pushable = SubplanSupported(*local, caps);
    if (pushable) {
      // Submitted form of the pushed-down selections.
      DISCO_RETURN_NOT_OK(
          Store(mask, "", EnsureSubmitted(source, local->Clone())));
      DISCO_RETURN_NOT_OK(Store(mask, source, std::move(local)));
    }
    // The alternative of filtering at the mediator is always considered:
    // it is mandatory when the source cannot evaluate selections, and it
    // can win when the source's predicate evaluation is expensive (a
    // fact only its exported cost rules reveal).
    if (!pushable || !rel.predicates.empty()) {
      std::unique_ptr<Operator> plan =
          algebra::Submit(source, algebra::Scan(rel.collection));
      for (const algebra::SelectPredicate& p : rel.predicates) {
        plan = algebra::Select(std::move(plan), p);
      }
      DISCO_RETURN_NOT_OK(Store(mask, "", std::move(plan)));
    }
    return Status::OK();
  }

  /// The single join edge crossing (s1, s2), oriented left=s1. The join
  /// graph is a tree (binder guarantees connectivity; Enumerate checks
  /// acyclicity), so at most one edge crosses any connected split.
  Result<algebra::JoinPredicate> CrossingEdge(uint32_t s1, uint32_t s2) const {
    for (const query::BoundJoin& j : q_.joins) {
      const uint32_t lbit = 1u << j.left_rel;
      const uint32_t rbit = 1u << j.right_rel;
      if ((lbit & s1) && (rbit & s2)) {
        return algebra::JoinPredicate{j.left_attr, j.right_attr};
      }
      if ((rbit & s1) && (lbit & s2)) {
        return algebra::JoinPredicate{j.right_attr, j.left_attr};
      }
    }
    return Status::NotFound("no crossing edge");
  }

  Status Combine(uint32_t s, uint32_t s1, uint32_t s2) {
    Result<algebra::JoinPredicate> edge = CrossingEdge(s1, s2);
    if (!edge.ok()) return Status::OK();  // not a valid (connected) split
    const algebra::JoinPredicate flipped{edge->right_attribute,
                                         edge->left_attribute};

    // Bind-join candidates: probe a single predicate-free relation per
    // distinct key of the other side's result.
    if (options_.enable_bind_join) {
      DISCO_RETURN_NOT_OK(TryBindJoin(s, s1, s2, *edge));
      DISCO_RETURN_NOT_OK(TryBindJoin(s, s2, s1, flipped));
    }

    for (const auto& [loc1, e1] : best_[s1]) {
      for (const auto& [loc2, e2] : best_[s2]) {
        // Same-source join pushed into the source.
        if (!loc1.empty() && loc1 == loc2 && caps_->Get(loc1).join) {
          DISCO_RETURN_NOT_OK(Store(
              s, loc1,
              algebra::Join(e1.plan->Clone(), e2.plan->Clone(), *edge)));
          DISCO_RETURN_NOT_OK(Store(
              s, loc1,
              algebra::Join(e2.plan->Clone(), e1.plan->Clone(), flipped)));
        }
        // Mediator join of the submitted sides.
        std::unique_ptr<Operator> l = FinishClone(loc1, e1);
        std::unique_ptr<Operator> r = FinishClone(loc2, e2);
        DISCO_RETURN_NOT_OK(
            Store(s, "", algebra::Join(std::move(l), std::move(r), *edge)));
        l = FinishClone(loc2, e2);
        r = FinishClone(loc1, e1);
        DISCO_RETURN_NOT_OK(
            Store(s, "", algebra::Join(std::move(l), std::move(r), flipped)));
      }
    }
    return Status::OK();
  }

  /// Adds bindjoin(outer, probed) candidates where `probed_set` is a
  /// single relation with no local predicates whose source can answer
  /// point selections.
  Status TryBindJoin(uint32_t s, uint32_t outer_set, uint32_t probed_set,
                     const algebra::JoinPredicate& edge) {
    if (__builtin_popcount(probed_set) != 1) return Status::OK();
    const int idx = __builtin_ctz(probed_set);
    const query::BoundRelation& rel = q_.relations[static_cast<size_t>(idx)];
    if (!rel.predicates.empty()) return Status::OK();
    if (!caps_->Get(rel.source).select) return Status::OK();
    for (const auto& [loc, e] : best_[outer_set]) {
      DISCO_RETURN_NOT_OK(Store(
          s, "",
          algebra::BindJoin(FinishClone(loc, e), ToLower(rel.source),
                            rel.collection, edge)));
    }
    return Status::OK();
  }

  std::unique_ptr<Operator> FinishClone(const std::string& loc,
                                        const Entry& e) const {
    std::unique_ptr<Operator> plan = e.plan->Clone();
    return loc.empty() ? std::move(plan) : EnsureSubmitted(loc, std::move(plan));
  }

  /// Prices `plan` as a candidate for (subset, location) and keeps it if
  /// it beats the incumbent. Local plans are priced by their submitted
  /// completion.
  Status Store(uint32_t subset, const std::string& location,
               std::unique_ptr<Operator> plan) {
    auto& entries = best_[subset];
    double bound = kInf;
    auto it = entries.find(location);
    if (it != entries.end()) bound = it->second.completion_cost;

    double cost;
    if (location.empty()) {
      DISCO_ASSIGN_OR_RETURN(cost, Cost(*plan, bound));
    } else {
      std::unique_ptr<Operator> completed =
          EnsureSubmitted(location, plan->Clone());
      DISCO_ASSIGN_OR_RETURN(cost, Cost(*completed, bound));
    }
    if (cost < bound) {
      entries[location] = Entry{std::move(plan), cost};
    }
    return Status::OK();
  }

  const BoundQuery& q_;
  const costmodel::CostEstimator* estimator_;
  const CapabilityTable* caps_;
  const EnumOptions& options_;
  EnumStats* stats_;

  /// best_[subset][location] -> Entry.
  std::vector<std::map<std::string, Entry>> best_;
};

}  // namespace

Result<EnumResult> JoinEnumerator::Enumerate(const BoundQuery& q,
                                             const EnumOptions& options) const {
  const int n = static_cast<int>(q.relations.size());
  if (n == 0) return Status::InvalidArgument("no relations to enumerate");
  if (n > options.max_relations) {
    return Status::NotSupported(
        StringPrintf("%d relations exceed the enumeration limit (%d)", n,
                     options.max_relations));
  }
  if (static_cast<int>(q.joins.size()) != n - 1 && n > 1) {
    return Status::NotSupported(
        "cyclic join graphs are not supported by the enumerator");
  }
  EnumStats stats;
  Enumeration e(q, estimator_, capabilities_, options, &stats);
  return e.Run();
}

}  // namespace optimizer
}  // namespace disco
