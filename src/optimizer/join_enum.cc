#include "optimizer/join_enum.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "optimizer/rewriter.h"

namespace disco {
namespace optimizer {

namespace {

using algebra::Operator;
using query::BoundQuery;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Best plan for a subset at one location. `location` "" = mediator
/// (source work already submitted); otherwise the plan runs wholly at
/// that source and is not yet wrapped in submit.
struct Entry {
  std::unique_ptr<Operator> plan;
  double completion_cost = kInf;  ///< estimated cost once submitted/run
};

/// One candidate of a pricing batch. Generation (single-threaded) fills
/// the identity fields; PriceOne (possibly concurrent) fills the
/// outputs; the slot-order reduction consumes them.
struct Candidate {
  uint32_t subset = 0;
  std::string location;
  std::unique_ptr<Operator> plan;    ///< form stored in the DP table
  std::unique_ptr<Operator> priced;  ///< completed form estimated (null:
                                     ///< `plan` is already complete)
  double frozen_bound = kInf;        ///< prune bound at batch start

  Status status = Status::OK();
  costmodel::PlanEstimate est;
  double cost = kInf;
  costmodel::MemoDelta delta;
};

void CollectSubmitNodes(const Operator& op,
                        std::vector<const Operator*>* out) {
  if (op.kind == algebra::OpKind::kSubmit) {
    out->push_back(&op);
    return;  // the subtree below runs inside this submit
  }
  for (int i = 0; i < op.num_children(); ++i) {
    CollectSubmitNodes(op.child(i), out);
  }
}

/// kResponseTime adjustment: `plan_total` minus the serial sum of the
/// plan's submit subtree times plus their max -- the price when the
/// scatter phase overlaps every submit. Identity for plans with fewer
/// than two submits. Bind-join probe concurrency needs no adjustment
/// here: probes are not kSubmit nodes, and the bindjoin cost rule
/// already prices their batching and waves (Waves * PerBatch) exactly
/// as the executor runs them.
Result<double> AdjustForConcurrentSubmits(
    const Operator& plan, double plan_total,
    const costmodel::CostEstimator& estimator,
    costmodel::EstimateOptions opts) {
  std::vector<const Operator*> submits;
  CollectSubmitNodes(plan, &submits);
  if (submits.size() < 2) return plan_total;
  // Subtree estimates must complete: the bound applies to the full plan.
  opts.prune_bound = kInf;
  double sum = 0, slowest = 0;
  for (const Operator* s : submits) {
    DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate est,
                           estimator.Estimate(*s, opts));
    const double t = est.root.total_time();
    sum += t;
    slowest = std::max(slowest, t);
  }
  // Numerical guard: mediator-side work is never negative.
  return std::max(plan_total - sum + slowest, slowest);
}

class Enumeration {
 public:
  Enumeration(const BoundQuery& q, const costmodel::CostEstimator* estimator,
              const CapabilityTable* caps, const EnumOptions& options,
              EnumStats* stats)
      : q_(q),
        estimator_(estimator),
        caps_(caps),
        options_(options),
        stats_(stats) {}

  Result<EnumResult> Run() {
    const int n = static_cast<int>(q_.relations.size());
    const uint32_t full = (n == 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
    best_.clear();
    best_.resize(static_cast<size_t>(full) + 1);

    if (options_.use_memo) {
      memo_ = options_.memo != nullptr ? options_.memo : &local_memo_;
      memo_->SyncEpoch(estimator_->registry()->epoch());
    }
    // Build the candidate index up front so concurrent first lookups do
    // not serialize on the lazy-reindex lock.
    estimator_->registry()->EnsureIndex();

    std::vector<Candidate> batch;

    // Base relations: one batch for all seeds.
    for (int i = 0; i < n; ++i) {
      DISCO_RETURN_NOT_OK(SeedRelation(i, &batch));
    }
    DISCO_RETURN_NOT_OK(FlushBatch(&batch));

    // Connected-subset DP, by subset size. Each valid split prices its
    // candidates as one batch, so later splits of the same subset see
    // the incumbents established by earlier ones (keeps §4.3.2 pruning
    // effective while staying deterministic).
    for (uint32_t s = 1; s <= full; ++s) {
      if (__builtin_popcount(s) < 2) continue;
      // Split into (s1, s2); fix the lowest bit into s1 to halve the
      // work, and try both join orientations explicitly.
      const uint32_t low = s & (~s + 1);
      for (uint32_t s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
        if ((s1 & low) == 0) continue;
        const uint32_t s2 = s & ~s1;
        if (best_[s1].empty() || best_[s2].empty()) continue;
        DISCO_RETURN_NOT_OK(Combine(s, s1, s2, &batch));
        DISCO_RETURN_NOT_OK(FlushBatch(&batch));
      }
    }

    if (best_[full].empty()) {
      return Status::NotSupported(
          "no plan found: the join graph could not be enumerated");
    }

    // Finish: append the query tail, trying both "inside the submit"
    // (single-source queries, capabilities permitting) and "at the
    // mediator". One final batch, reduced into the overall winner.
    for (const auto& [loc, entry] : best_[full]) {
      if (loc.empty()) {
        AddFinal(&batch, AppendQueryTail(entry.plan->Clone(), q_));
      } else {
        // (a) tail inside the submitted subquery.
        std::unique_ptr<Operator> inside =
            AppendQueryTail(entry.plan->Clone(), q_);
        if (SubplanSupported(*inside, caps_->Get(loc))) {
          AddFinal(&batch, EnsureSubmitted(loc, std::move(inside)));
        }
        // (b) tail at the mediator.
        AddFinal(&batch,
                 AppendQueryTail(EnsureSubmitted(loc, entry.plan->Clone()), q_));
      }
    }
    DISCO_RETURN_NOT_OK(FlushFinalBatch(&batch));

    if (final_plan_ == nullptr) {
      return Status::NotSupported("no executable complete plan found");
    }
    EnumResult out;
    out.plan = std::move(final_plan_);
    out.cost_ms = final_cost_;
    out.stats = *stats_;
    return out;
  }

 private:
  // ---- candidate generation ------------------------------------------

  Status SeedRelation(int i, std::vector<Candidate>* batch) {
    const query::BoundRelation& rel = q_.relations[static_cast<size_t>(i)];
    const std::string source = ToLower(rel.source);
    const SourceCapabilities caps = caps_->Get(source);
    const uint32_t mask = 1u << i;

    std::unique_ptr<Operator> local = BuildRelationPlan(rel);
    const bool pushable = SubplanSupported(*local, caps);
    if (pushable) {
      // Submitted form of the pushed-down selections.
      Add(batch, mask, "", EnsureSubmitted(source, local->Clone()));
      Add(batch, mask, source, std::move(local));
    }
    // The alternative of filtering at the mediator is always considered:
    // it is mandatory when the source cannot evaluate selections, and it
    // can win when the source's predicate evaluation is expensive (a
    // fact only its exported cost rules reveal).
    if (!pushable || !rel.predicates.empty()) {
      std::unique_ptr<Operator> plan =
          algebra::Submit(source, algebra::Scan(rel.collection));
      for (const algebra::SelectPredicate& p : rel.predicates) {
        plan = algebra::Select(std::move(plan), p);
      }
      Add(batch, mask, "", std::move(plan));
    }
    return Status::OK();
  }

  /// The single join edge crossing (s1, s2), oriented left=s1. The join
  /// graph is a tree (binder guarantees connectivity; Enumerate checks
  /// acyclicity), so at most one edge crosses any connected split.
  Result<algebra::JoinPredicate> CrossingEdge(uint32_t s1, uint32_t s2) const {
    for (const query::BoundJoin& j : q_.joins) {
      const uint32_t lbit = 1u << j.left_rel;
      const uint32_t rbit = 1u << j.right_rel;
      if ((lbit & s1) && (rbit & s2)) {
        return algebra::JoinPredicate{j.left_attr, j.right_attr};
      }
      if ((rbit & s1) && (lbit & s2)) {
        return algebra::JoinPredicate{j.right_attr, j.left_attr};
      }
    }
    return Status::NotFound("no crossing edge");
  }

  Status Combine(uint32_t s, uint32_t s1, uint32_t s2,
                 std::vector<Candidate>* batch) {
    Result<algebra::JoinPredicate> edge = CrossingEdge(s1, s2);
    if (!edge.ok()) return Status::OK();  // not a valid (connected) split
    const algebra::JoinPredicate flipped{edge->right_attribute,
                                         edge->left_attribute};

    // Bind-join candidates: probe a single predicate-free relation per
    // distinct key of the other side's result.
    if (options_.enable_bind_join) {
      TryBindJoin(s, s1, s2, *edge, batch);
      TryBindJoin(s, s2, s1, flipped, batch);
    }

    for (const auto& [loc1, e1] : best_[s1]) {
      for (const auto& [loc2, e2] : best_[s2]) {
        // Same-source join pushed into the source.
        if (!loc1.empty() && loc1 == loc2 && caps_->Get(loc1).join) {
          Add(batch, s, loc1,
              algebra::Join(e1.plan->Clone(), e2.plan->Clone(), *edge));
          Add(batch, s, loc1,
              algebra::Join(e2.plan->Clone(), e1.plan->Clone(), flipped));
        }
        // Mediator join of the submitted sides.
        Add(batch, s, "",
            algebra::Join(FinishClone(loc1, e1), FinishClone(loc2, e2),
                          *edge));
        Add(batch, s, "",
            algebra::Join(FinishClone(loc2, e2), FinishClone(loc1, e1),
                          flipped));
      }
    }
    return Status::OK();
  }

  /// Adds bindjoin(outer, probed) candidates where `probed_set` is a
  /// single relation with no local predicates whose source can answer
  /// point selections.
  void TryBindJoin(uint32_t s, uint32_t outer_set, uint32_t probed_set,
                   const algebra::JoinPredicate& edge,
                   std::vector<Candidate>* batch) {
    if (__builtin_popcount(probed_set) != 1) return;
    const int idx = __builtin_ctz(probed_set);
    const query::BoundRelation& rel = q_.relations[static_cast<size_t>(idx)];
    if (!rel.predicates.empty()) return;
    if (!caps_->Get(rel.source).select) return;
    for (const auto& [loc, e] : best_[outer_set]) {
      Add(batch, s, "",
          algebra::BindJoin(FinishClone(loc, e), ToLower(rel.source),
                            rel.collection, edge));
    }
  }

  std::unique_ptr<Operator> FinishClone(const std::string& loc,
                                        const Entry& e) const {
    std::unique_ptr<Operator> plan = e.plan->Clone();
    return loc.empty() ? std::move(plan)
                       : EnsureSubmitted(loc, std::move(plan));
  }

  /// Queues a DP-table candidate. Local plans are priced by their
  /// submitted completion.
  void Add(std::vector<Candidate>* batch, uint32_t subset,
           const std::string& location, std::unique_ptr<Operator> plan) {
    Candidate c;
    c.subset = subset;
    c.location = location;
    if (!location.empty()) {
      c.priced = EnsureSubmitted(location, plan->Clone());
    }
    c.plan = std::move(plan);
    batch->push_back(std::move(c));
  }

  /// Queues a complete-plan candidate for the finish phase.
  void AddFinal(std::vector<Candidate>* batch,
                std::unique_ptr<Operator> plan) {
    Candidate c;
    c.plan = std::move(plan);
    batch->push_back(std::move(c));
  }

  // ---- batched pricing -----------------------------------------------

  /// Estimates one candidate. Runs on a pool worker: touches only the
  /// candidate's own fields plus shared *read-only* state (registry
  /// index, catalog, history, the base memo).
  void PriceOne(Candidate* c) const {
    costmodel::EstimateOptions opts = options_.estimate;
    if (memo_ != nullptr) {
      opts.memo = memo_;
      opts.memo_delta = &c->delta;
    }
    // Branch-and-bound cuts on TotalTime. Under kTotalTime the bound is
    // the objective itself. Under kResponseTime the concurrent-submit
    // adjustment only lowers TotalTime when the plan scatters two or
    // more submits, so single-submit plans (where adjusted == total)
    // prune inside the estimator against the frozen bound, while
    // multi-submit plans estimate in full and are cut post-adjustment.
    // kTimeFirst never prunes (a plan with a large TotalTime may still
    // have the best TimeFirst).
    const Operator& target = c->priced != nullptr ? *c->priced : *c->plan;
    bool post_adjust_cut = false;
    if (options_.use_pruning && std::isfinite(c->frozen_bound)) {
      if (options_.objective == Objective::kTotalTime) {
        opts.prune_bound = c->frozen_bound;
      } else if (options_.objective == Objective::kResponseTime) {
        std::vector<const Operator*> submits;
        CollectSubmitNodes(target, &submits);
        if (submits.size() < 2) {
          opts.prune_bound = c->frozen_bound;
        } else {
          post_adjust_cut = true;
        }
      }
    }
    Result<costmodel::PlanEstimate> est = estimator_->Estimate(target, opts);
    if (!est.ok()) {
      c->status = est.status();
      return;
    }
    c->est = std::move(est).MoveValueUnsafe();
    if (c->est.pruned) {
      c->cost = kInf;
      return;
    }
    switch (options_.objective) {
      case Objective::kTimeFirst:
        c->cost = c->est.root.time_first();
        break;
      case Objective::kResponseTime: {
        Result<double> adjusted = AdjustForConcurrentSubmits(
            target, c->est.root.total_time(), *estimator_, opts);
        if (!adjusted.ok()) {
          c->status = adjusted.status();
          return;
        }
        c->cost = *adjusted;
        if (post_adjust_cut && c->cost >= c->frozen_bound) {
          c->est.pruned = true;
          c->cost = kInf;
        }
        break;
      }
      case Objective::kTotalTime:
        c->cost = c->est.root.total_time();
        break;
    }
  }

  /// Prices every queued candidate (concurrently when a pool is set)
  /// against bounds frozen now, then reduces in slot order: absorb the
  /// memo delta, accumulate stats, update the DP table. Deterministic
  /// for any pool size by construction.
  Status FlushBatch(std::vector<Candidate>* batch) {
    DISCO_RETURN_NOT_OK(PriceBatch(batch));
    for (Candidate& c : *batch) {
      DISCO_RETURN_NOT_OK(Reduce(&c));
      auto& entries = best_[c.subset];
      auto it = entries.find(c.location);
      const double incumbent =
          it != entries.end() ? it->second.completion_cost : kInf;
      if (Wins(c.cost, *c.plan, incumbent,
               it != entries.end() ? it->second.plan.get() : nullptr)) {
        entries[c.location] = Entry{std::move(c.plan), c.cost};
      }
    }
    batch->clear();
    return Status::OK();
  }

  /// Finish-phase variant of FlushBatch: reduces into the single overall
  /// winner instead of the DP table.
  Status FlushFinalBatch(std::vector<Candidate>* batch) {
    DISCO_RETURN_NOT_OK(PriceBatch(batch));
    for (Candidate& c : *batch) {
      DISCO_RETURN_NOT_OK(Reduce(&c));
      if (Wins(c.cost, *c.plan, final_cost_, final_plan_.get())) {
        final_cost_ = c.cost;
        final_plan_ = std::move(c.plan);
      }
    }
    batch->clear();
    return Status::OK();
  }

  Status PriceBatch(std::vector<Candidate>* batch) {
    if (batch->empty()) return Status::OK();
    // Freeze prune bounds before any pricing: every candidate of the
    // batch sees the incumbents as of now, regardless of pool size or
    // scheduling. (A complete estimate is bound-independent; freezing
    // only costs a little pruning *within* the batch.)
    for (Candidate& c : *batch) {
      const auto& entries = best_[c.subset];
      auto it = entries.find(c.location);
      c.frozen_bound = it != entries.end() && c.plan != nullptr
                           ? it->second.completion_cost
                           : kInf;
    }
    if (options_.pool != nullptr && batch->size() > 1) {
      std::vector<Candidate>& b = *batch;
      options_.pool->ParallelFor(static_cast<int>(b.size()),
                                 [&](int i) { PriceOne(&b[static_cast<size_t>(i)]); });
    } else {
      for (Candidate& c : *batch) PriceOne(&c);
    }
    return Status::OK();
  }

  /// Slot-order bookkeeping for one priced candidate: memo-delta
  /// absorption, statistics, error propagation.
  Status Reduce(Candidate* c) {
    stats_->memo_hits += c->delta.hits;
    stats_->memo_misses += c->delta.misses;
    if (memo_ != nullptr) memo_->Absorb(std::move(c->delta));
    DISCO_RETURN_NOT_OK(c->status);
    ++stats_->plans_costed;
    stats_->nodes_visited += c->est.nodes_visited;
    stats_->formulas_evaluated += c->est.formulas_evaluated;
    stats_->match_attempts += c->est.match_attempts;
    if (c->est.pruned) ++stats_->plans_pruned;
    return Status::OK();
  }

  /// The deterministic reduction order: strictly cheaper wins; an exact
  /// cost tie breaks on the canonical plan string so the winner does not
  /// depend on generation order.
  static bool Wins(double cost, const Operator& plan, double incumbent_cost,
                   const Operator* incumbent) {
    if (cost < incumbent_cost) return true;
    if (cost == incumbent_cost && incumbent != nullptr &&
        std::isfinite(cost)) {
      return plan.ToString() < incumbent->ToString();
    }
    return false;
  }

  const BoundQuery& q_;
  const costmodel::CostEstimator* estimator_;
  const CapabilityTable* caps_;
  const EnumOptions& options_;
  EnumStats* stats_;

  costmodel::CostMemo* memo_ = nullptr;  ///< null when memoization is off
  costmodel::CostMemo local_memo_;       ///< used when no shared memo given

  /// best_[subset][location] -> Entry. std::map keeps candidate
  /// generation (and therefore slot order) deterministic.
  std::vector<std::map<std::string, Entry>> best_;

  std::unique_ptr<Operator> final_plan_;
  double final_cost_ = kInf;
};

}  // namespace

Result<EnumResult> JoinEnumerator::Enumerate(const BoundQuery& q,
                                             const EnumOptions& options) const {
  const int n = static_cast<int>(q.relations.size());
  if (n == 0) return Status::InvalidArgument("no relations to enumerate");
  if (n > options.max_relations) {
    return Status::NotSupported(
        StringPrintf("%d relations exceed the enumeration limit (%d)", n,
                     options.max_relations));
  }
  if (static_cast<int>(q.joins.size()) != n - 1 && n > 1) {
    return Status::NotSupported(
        "cyclic join graphs are not supported by the enumerator");
  }
  EnumStats stats;
  Enumeration e(q, estimator_, capabilities_, options, &stats);
  return e.Run();
}

Result<double> ResponseTimeCost(const algebra::Operator& plan,
                                const costmodel::CostEstimator& estimator,
                                const costmodel::EstimateOptions& options) {
  costmodel::EstimateOptions opts = options;
  opts.prune_bound = kInf;
  DISCO_ASSIGN_OR_RETURN(costmodel::PlanEstimate est,
                         estimator.Estimate(plan, opts));
  return AdjustForConcurrentSubmits(plan, est.root.total_time(), estimator,
                                    opts);
}

}  // namespace optimizer
}  // namespace disco
