#include "optimizer/capabilities.h"

#include "common/str_util.h"

namespace disco {
namespace optimizer {

bool SourceCapabilities::Supports(algebra::OpKind kind) const {
  switch (kind) {
    case algebra::OpKind::kScan:
      return true;
    case algebra::OpKind::kSelect:
      return select;
    case algebra::OpKind::kProject:
      return project;
    case algebra::OpKind::kJoin:
      return join;
    case algebra::OpKind::kSort:
      return sort;
    case algebra::OpKind::kDedup:
      return dedup;
    case algebra::OpKind::kAggregate:
      return aggregate;
    case algebra::OpKind::kUnion:
      return set_union;
    case algebra::OpKind::kSubmit:
    case algebra::OpKind::kBindJoin:
      return false;  // mediator-only operators
  }
  return false;
}

SourceCapabilities SourceCapabilities::FilterOnly() {
  SourceCapabilities caps;
  caps.join = false;
  caps.sort = false;
  caps.dedup = false;
  caps.aggregate = false;
  caps.set_union = false;
  return caps;
}

void CapabilityTable::Set(const std::string& source, SourceCapabilities caps) {
  caps_[ToLower(source)] = caps;
}

SourceCapabilities CapabilityTable::Get(const std::string& source) const {
  auto it = caps_.find(ToLower(source));
  return it == caps_.end() ? SourceCapabilities::All() : it->second;
}

}  // namespace optimizer
}  // namespace disco
