// Plan-building rewrites: relation access paths with pushed-down
// selections, submit placement, and the mediator-side "tail" (project /
// aggregate / dedup / sort) of a query.

#ifndef DISCO_OPTIMIZER_REWRITER_H_
#define DISCO_OPTIMIZER_REWRITER_H_

#include <memory>

#include "algebra/operator.h"
#include "optimizer/capabilities.h"
#include "query/binder.h"

namespace disco {
namespace optimizer {

/// scan(collection) with the relation's selections stacked on top (the
/// classic select-pushdown shape; each conjunct is its own select so
/// predicate-scope rules can match it).
std::unique_ptr<algebra::Operator> BuildRelationPlan(
    const query::BoundRelation& rel);

/// Wraps `plan` in submit(source) unless it is already submitted.
std::unique_ptr<algebra::Operator> EnsureSubmitted(
    const std::string& source, std::unique_ptr<algebra::Operator> plan);

/// Appends the query tail (aggregate/group-by, projection, distinct,
/// order-by) above `plan`. Used at the mediator, or inside a submit when
/// a single source runs the whole query and its capabilities allow.
std::unique_ptr<algebra::Operator> AppendQueryTail(
    std::unique_ptr<algebra::Operator> plan, const query::BoundQuery& q);

/// True if every operator in `plan` is executable by a wrapper with
/// capabilities `caps` (scan/select/join/...; submit is never).
bool SubplanSupported(const algebra::Operator& plan,
                      const SourceCapabilities& caps);

}  // namespace optimizer
}  // namespace disco

#endif  // DISCO_OPTIMIZER_REWRITER_H_
