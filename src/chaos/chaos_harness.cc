#include "chaos/chaos_harness.h"

#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"
#include "wrapper/fault_schedule.h"

namespace disco {
namespace chaos {

namespace {

constexpr int kSources = 4;
/// Source i owns keys [i * kKeyStride, i * kKeyStride + rows): a missing
/// tuple's key names the source that lost it, which is what makes the
/// attribution contract checkable.
constexpr int64_t kKeyStride = 1000;

std::string SourceName(int i) { return StringPrintf("s%d", i); }
std::string CollectionName(int i) { return StringPrintf("C%d", i); }

std::unique_ptr<algebra::Operator> FourWayUnion() {
  using algebra::Scan;
  using algebra::Submit;
  return algebra::Union(
      algebra::Union(Submit("s0", Scan("C0")), Submit("s1", Scan("C1"))),
      algebra::Union(Submit("s2", Scan("C2")), Submit("s3", Scan("C3"))));
}

/// Declares the scenario's domains and windows on `schedule`. Returns
/// false for unknown scenario names. `seed` nudges window starts and
/// flap periods so the sweep covers different clock alignments, not
/// just different corruption streams.
bool ConfigureScenario(const std::string& scenario, uint64_t seed,
                       wrapper::FaultSchedule* schedule) {
  schedule->DefineDomain("rack", {"s0", "s1"});
  schedule->DefineDomain("flappy", {"s1"});
  schedule->DefineDomain("wan", {"s2"});
  schedule->DefineDomain("liar", {"s3"});
  schedule->DefineDomain("solo", {"s0"});
  const double off = 20.0 * static_cast<double>(seed % 5);

  auto malform = [&](uint32_t modes, double probability) {
    wrapper::FaultWindow w;
    w.domain = "liar";
    w.start_ms = 0;
    w.end_ms = 1e9;
    w.effect = wrapper::FaultEffect::kMalform;
    w.malform_modes = modes;
    w.malform_row_probability = probability;
    schedule->AddWindow(w);
  };

  if (scenario == "outage-domain") {
    wrapper::FaultWindow w;
    w.domain = "rack";
    w.start_ms = off;
    w.end_ms = off + 260;
    w.effect = wrapper::FaultEffect::kOutage;
    w.message = "rack power loss";
    schedule->AddWindow(w);
  } else if (scenario == "flap") {
    wrapper::FaultWindow w;
    w.domain = "flappy";
    w.start_ms = 0;
    w.end_ms = 1e9;
    w.effect = wrapper::FaultEffect::kFlap;
    w.flap_period_ms = 90 + 10 * static_cast<double>(seed % 4);
    w.flap_down_fraction = 0.5;
    w.message = "flapping uplink";
    schedule->AddWindow(w);
  } else if (scenario == "latency-storm") {
    wrapper::FaultWindow w;
    w.domain = "wan";
    w.start_ms = off;
    w.end_ms = 1e9;
    w.effect = wrapper::FaultEffect::kLatencyStorm;
    w.storm_factor = 8;
    w.storm_added_ms = 40;
    schedule->AddWindow(w);
  } else if (scenario == "malformed-arity") {
    malform(wrapper::kMalformArity, 0.6);
  } else if (scenario == "malformed-types") {
    malform(wrapper::kMalformTypes, 0.6);
  } else if (scenario == "malformed-nonfinite") {
    malform(wrapper::kMalformNonFinite, 0.6);
  } else if (scenario == "truncated-stream") {
    malform(wrapper::kMalformTruncate, 1.0);
  } else if (scenario == "mixed") {
    wrapper::FaultWindow outage;
    outage.domain = "solo";
    outage.start_ms = off;
    outage.end_ms = off + 180;
    outage.effect = wrapper::FaultEffect::kOutage;
    outage.message = "switch reboot";
    schedule->AddWindow(outage);
    wrapper::FaultWindow storm;
    storm.domain = "wan";
    storm.start_ms = 0;
    storm.end_ms = 1e9;
    storm.effect = wrapper::FaultEffect::kLatencyStorm;
    storm.storm_factor = 4;
    storm.storm_added_ms = 25;
    schedule->AddWindow(storm);
    malform(wrapper::kMalformAll, 0.4);
  } else {
    return false;
  }
  return true;
}

struct Federation {
  std::unique_ptr<mediator::Mediator> med;
  /// Per-source tap for call counting, registration order.
  std::vector<wrapper::ScheduledFaultWrapper*> taps;
};

Federation MakeFederation(const wrapper::FaultSchedule* schedule, int pool,
                          const ChaosOptions& options) {
  mediator::MediatorOptions mo;
  mo.fault_tolerance.allow_partial = true;
  mo.fault_tolerance.retry = mediator::RetryPolicy::Standard(3);
  mo.fault_tolerance.federation.threads = pool;
  // An always-satisfied deadline keeps every arm on the scatter path,
  // so pool sizes 0/1/4 exercise the same machinery and must digest
  // byte-identically.
  mo.fault_tolerance.federation.deadline_ms = 1e9;
  mo.breaker.failure_threshold = 3;
  mo.breaker.cooldown_ms = 80;
  mo.record_history = false;
  Federation out;
  out.med = std::make_unique<mediator::Mediator>(mo);
  for (int i = 0; i < kSources; ++i) {
    auto src = sources::MakeRelationalSource(SourceName(i));
    storage::Table* t = src->CreateTable(
        CollectionSchema(CollectionName(i), {{"k", AttrType::kLong}}));
    for (int j = 0; j < options.rows_per_source; ++j) {
      Status s = t->Insert({Value(int64_t{i} * kKeyStride + j)});
      DISCO_CHECK(s.ok()) << s.ToString();
    }
    auto sim = std::make_unique<wrapper::SimulatedWrapper>(
        std::move(src), wrapper::SimulatedWrapper::Options{});
    // Base latency under the scheduled faults: storms have something to
    // multiply and queries advance the clock through fault windows.
    wrapper::FaultProfile base;
    base.added_latency_ms = 20;
    auto noisy = std::make_unique<wrapper::FaultInjectingWrapper>(
        std::move(sim), base);
    auto tapped = std::make_unique<wrapper::ScheduledFaultWrapper>(
        std::move(noisy), schedule);
    out.taps.push_back(tapped.get());
    Status s = out.med->RegisterWrapper(std::move(tapped));
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  return out;
}

/// What one arm observed for one query.
struct QueryObs {
  bool ok = false;
  std::string error;
  std::map<int64_t, int> keys;     ///< key -> multiplicity
  std::set<std::string> warned;    ///< sources named by warnings
  std::vector<std::string> warning_text;
};

struct ArmResult {
  std::string digest;  ///< full observable behaviour, byte-comparable
  std::vector<QueryObs> queries;
  std::vector<std::string> breaker_violations;
  std::vector<std::string> open_call_violations;
  int queries_ok = 0;
  int queries_failed = 0;
  int64_t returned_tuples = 0;
  int64_t quarantined_rows = 0;
  int64_t warning_count = 0;
  bool known_scenario = true;
};

ArmResult RunArm(const std::string& scenario, uint64_t seed, int pool,
                 bool faults_enabled, const ChaosOptions& options) {
  ArmResult out;
  wrapper::FaultSchedule schedule(0xC4A05ULL ^
                                  (seed * 0x9E3779B97F4A7C15ULL));
  if (!ConfigureScenario(scenario, seed, &schedule)) {
    out.known_scenario = false;
    return out;
  }
  schedule.set_enabled(faults_enabled);
  Federation fed = MakeFederation(&schedule, pool, options);
  auto plan = FourWayUnion();

  std::map<std::string, mediator::SourceHealth> pre;
  std::map<std::string, int64_t> pre_calls;
  for (int q = 0; q < options.queries_per_run; ++q) {
    // Fault state is constant within a query: the schedule clock moves
    // only here, at the query boundary.
    schedule.AdvanceTo(fed.med->sim_now_ms());
    for (int i = 0; i < kSources; ++i) {
      const std::string name = SourceName(i);
      pre[name] = fed.med->health()->Health(name);
      pre_calls[name] = fed.taps[i]->calls();
    }

    auto r = fed.med->Execute(*plan);

    QueryObs obs;
    obs.ok = r.ok();
    out.digest += StringPrintf("q%d ok=%d", q, obs.ok ? 1 : 0);
    if (r.ok()) {
      ++out.queries_ok;
      out.digest += StringPrintf(" ms=%.3f t:", r->measured_ms);
      for (const storage::Tuple& t : r->tuples) {
        for (const Value& v : t) out.digest += v.ToString() + ",";
        out.digest += ";";
        ++out.returned_tuples;
        if (!t.empty() && t[0].is_int64()) ++obs.keys[t[0].AsInt64()];
      }
      out.digest += " w:";
      for (const mediator::ExecWarning& w : r->warnings) {
        if (!w.source.empty()) obs.warned.insert(w.source);
        obs.warning_text.push_back(w.ToString());
        out.digest += w.ToString() + "|";
      }
      out.warning_count += static_cast<int64_t>(r->warnings.size());
      out.quarantined_rows += r->guard.rows_quarantined;
      out.digest += StringPrintf(
          " g:%lld,%lld,%lld,%lld",
          static_cast<long long>(r->guard.batches_checked),
          static_cast<long long>(r->guard.malformed_batches),
          static_cast<long long>(r->guard.rows_quarantined),
          static_cast<long long>(r->guard.truncated_streams));
    } else {
      ++out.queries_failed;
      obs.error = r.status().ToString();
      out.digest += " err=" + obs.error;
    }
    out.digest += "\n";

    // Breaker contracts against the shared registry.
    for (int i = 0; i < kSources; ++i) {
      const std::string name = SourceName(i);
      const mediator::SourceHealth h = fed.med->health()->Health(name);
      const mediator::SourceHealth& p = pre[name];
      if (h.total_successes < p.total_successes ||
          h.total_failures < p.total_failures ||
          h.rejected_submits < p.rejected_submits ||
          h.malformed_batches < p.malformed_batches ||
          h.quarantined_rows < p.quarantined_rows) {
        out.breaker_violations.push_back(StringPrintf(
            "q%d %s: breaker counter went backwards", q, name.c_str()));
      }
      // Same open episode before and after (no transition, no recorded
      // outcome) means no submit was legally admitted in between -- the
      // wrapper must not have been called at all.
      const int64_t calls_delta = fed.taps[i]->calls() - pre_calls[name];
      if (p.state == mediator::BreakerState::kOpen &&
          h.state == mediator::BreakerState::kOpen &&
          h.opened_at_ms == p.opened_at_ms &&
          h.total_successes == p.total_successes &&
          h.total_failures == p.total_failures && calls_delta != 0) {
        out.open_call_violations.push_back(StringPrintf(
            "q%d %s: %lld call(s) reached a source whose breaker stayed "
            "open", q, name.c_str(), static_cast<long long>(calls_delta)));
      }
    }
    out.queries.push_back(std::move(obs));
  }

  // Final breaker counters belong to the digest: the lockstep replay of
  // health events must leave the shared registry byte-identical too.
  const double now = fed.med->sim_now_ms();
  for (int i = 0; i < kSources; ++i) {
    const std::string name = SourceName(i);
    const mediator::SourceHealth h = fed.med->health()->Health(name);
    out.digest += StringPrintf(
        "%s %s ok=%lld fail=%lld rej=%lld probes=%d cooldown=%.3f "
        "malformed=%lld quarantined=%lld lying=%d\n",
        name.c_str(),
        mediator::BreakerStateToString(
            fed.med->health()->StateAt(name, now)),
        static_cast<long long>(h.total_successes),
        static_cast<long long>(h.total_failures),
        static_cast<long long>(h.rejected_submits),
        h.consecutive_probe_failures,
        fed.med->health()->EffectiveCooldownMs(name),
        static_cast<long long>(h.malformed_batches),
        static_cast<long long>(h.quarantined_rows), h.lying ? 1 : 0);
  }
  return out;
}

}  // namespace

std::vector<std::string> AllChaosScenarios() {
  return {"outage-domain",     "flap",
          "latency-storm",     "malformed-arity",
          "malformed-types",   "malformed-nonfinite",
          "truncated-stream",  "mixed"};
}

ChaosRunResult RunChaosScenario(const std::string& scenario, uint64_t seed,
                                const ChaosOptions& options) {
  ChaosRunResult run;
  run.scenario = scenario;
  run.seed = seed;

  ArmResult oracle = RunArm(scenario, seed, 4, /*faults_enabled=*/false,
                            options);
  if (!oracle.known_scenario) {
    run.violations.push_back("unknown scenario '" + scenario + "'");
    return run;
  }
  ArmResult pool0 = RunArm(scenario, seed, 0, true, options);
  ArmResult pool1 = RunArm(scenario, seed, 1, true, options);
  ArmResult pool4 = RunArm(scenario, seed, 4, true, options);
  ArmResult replay = RunArm(scenario, seed, 4, true, options);

  run.pools_identical =
      pool0.digest == pool4.digest && pool1.digest == pool4.digest;
  if (!run.pools_identical) {
    run.violations.push_back("pool arms 0/1/4 digests diverged");
  }
  run.replay_identical = replay.digest == pool4.digest;
  if (!run.replay_identical) {
    run.violations.push_back("replay arm digest diverged");
  }

  run.queries_ok = pool4.queries_ok;
  run.queries_failed = pool4.queries_failed;
  run.returned_tuples = pool4.returned_tuples;
  run.quarantined_rows = pool4.quarantined_rows;
  run.warning_count = pool4.warning_count;

  // Soundness + attribution against the oracle, query by query.
  for (int q = 0; q < options.queries_per_run; ++q) {
    const QueryObs& truth = oracle.queries[q];
    const QueryObs& seen = pool4.queries[q];
    if (!truth.ok) {
      run.violations.push_back(
          StringPrintf("q%d: oracle arm itself failed: %s", q,
                       truth.error.c_str()));
      continue;
    }
    for (const auto& [key, count] : truth.keys) run.oracle_tuples += count;
    if (!seen.ok) continue;  // an explicit error is loud, not silent loss
    for (const auto& [key, count] : seen.keys) {
      auto it = truth.keys.find(key);
      const int expected = it == truth.keys.end() ? 0 : it->second;
      if (count > expected) {
        run.unsound_tuples += count - expected;
        run.violations.push_back(StringPrintf(
            "q%d: tuple key=%lld returned %dx but only %dx in the oracle",
            q, static_cast<long long>(key), count, expected));
      }
    }
    for (const auto& [key, count] : truth.keys) {
      auto it = seen.keys.find(key);
      const int got = it == seen.keys.end() ? 0 : it->second;
      if (got >= count) continue;
      run.missing_tuples += count - got;
      const std::string source =
          SourceName(static_cast<int>(key / kKeyStride));
      bool warned = seen.warned.count(source) > 0;
      for (size_t w = 0; !warned && w < seen.warning_text.size(); ++w) {
        warned = seen.warning_text[w].find(source) != std::string::npos;
      }
      if (!warned) {
        run.violations.push_back(StringPrintf(
            "q%d: tuple key=%lld missing without a warning naming %s", q,
            static_cast<long long>(key), source.c_str()));
      }
    }
  }

  run.sound = run.unsound_tuples == 0;
  bool attributed = true;
  for (const std::string& v : run.violations) {
    if (v.find("missing without a warning") != std::string::npos) {
      attributed = false;
    }
  }
  run.attributed = attributed;
  run.breaker_ok = pool4.breaker_violations.empty();
  run.no_open_calls = pool4.open_call_violations.empty();
  for (std::string& v : pool4.breaker_violations) {
    run.violations.push_back(std::move(v));
  }
  for (std::string& v : pool4.open_call_violations) {
    run.violations.push_back(std::move(v));
  }
  run.availability =
      run.oracle_tuples > 0
          ? static_cast<double>(run.returned_tuples) /
                static_cast<double>(run.oracle_tuples)
          : 1.0;
  return run;
}

ChaosSweepResult RunChaosSweep(const ChaosOptions& options) {
  ChaosSweepResult sweep;
  std::vector<std::string> scenarios =
      options.scenarios.empty() ? AllChaosScenarios() : options.scenarios;
  double availability_sum = 0;
  int sound_runs = 0;
  for (const std::string& scenario : scenarios) {
    for (int s = 0; s < options.seeds; ++s) {
      ChaosRunResult run = RunChaosScenario(
          scenario, options.seed_base + static_cast<uint64_t>(s), options);
      ++sweep.runs;
      if (run.passed()) ++sweep.passed;
      if (run.sound) ++sound_runs;
      availability_sum += run.availability;
      sweep.quarantined_rows += run.quarantined_rows;
      sweep.results.push_back(std::move(run));
    }
  }
  sweep.soundness =
      sweep.runs > 0 ? static_cast<double>(sound_runs) / sweep.runs : 1.0;
  sweep.availability = sweep.runs > 0 ? availability_sum / sweep.runs : 1.0;
  return sweep;
}

std::string ChaosSweepResult::ToJson() const {
  std::string out = StringPrintf(
      "{\"chaos\":{\"runs\":%d,\"passed\":%d,\"soundness\":%.4f,"
      "\"availability\":%.4f,\"quarantined_rows\":%lld},",
      runs, passed, soundness, availability,
      static_cast<long long>(quarantined_rows));
  // Per-scenario aggregates, first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const ChaosRunResult*>> grouped;
  for (const ChaosRunResult& r : results) {
    if (grouped.find(r.scenario) == grouped.end()) order.push_back(r.scenario);
    grouped[r.scenario].push_back(&r);
  }
  out += "\"scenarios\":{";
  for (size_t i = 0; i < order.size(); ++i) {
    const std::vector<const ChaosRunResult*>& group = grouped[order[i]];
    int group_passed = 0;
    double group_avail = 0;
    int64_t group_missing = 0, group_quarantined = 0;
    for (const ChaosRunResult* r : group) {
      if (r->passed()) ++group_passed;
      group_avail += r->availability;
      group_missing += r->missing_tuples;
      group_quarantined += r->quarantined_rows;
    }
    out += StringPrintf(
        "%s\"%s\":{\"runs\":%zu,\"passed\":%d,\"availability\":%.4f,"
        "\"missing_tuples\":%lld,\"quarantined_rows\":%lld}",
        i == 0 ? "" : ",", JsonEscape(order[i]).c_str(), group.size(),
        group_passed, group_avail / static_cast<double>(group.size()),
        static_cast<long long>(group_missing),
        static_cast<long long>(group_quarantined));
  }
  out += "}}";
  return out;
}

}  // namespace chaos
}  // namespace disco
