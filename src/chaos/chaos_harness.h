// Deterministic chaos harness: seed-swept fault scenarios checked
// against a fault-free oracle under machine-checked *degradation
// contracts* (docs/ROBUSTNESS.md, "Chaos harness").
//
// Each run pins one (scenario, seed) pair: a four-source federation
// with globally disjoint key ranges executes the same union query
// stream while a FaultSchedule (wrapper/fault_schedule.h) injects
// correlated outages, flaps, latency storms, or malformed responses.
// The same stack runs five arms:
//
//   oracle     schedule disabled -- the ground-truth answer stream
//   pool 0/1/4 faults on, federation pool sizes 0, 1, and 4
//   replay     pool 4 again -- byte-identity of the whole run
//
// and every arm's full observable behaviour (per-query tuples,
// warnings, errors, simulated latency, guard roll-up, final breaker
// counters) is folded into a digest. The contracts:
//
//   soundness     returned tuples are a sub-multiset of the oracle's --
//                 chaos may *lose* rows, never invent or corrupt them
//   attribution   every missing tuple maps (by key range) to a source
//                 the query warned about or an explicit query error --
//                 degradation is never silent
//   breaker       per-source counters are monotone and states legal;
//                 a breaker open before and after a query admitted no
//                 wrapper call in between (no retries against open
//                 breakers)
//   determinism   pool arms 0/1/4 and the replay arm digest
//                 byte-identically
//
// Scores: availability = returned/oracle tuples (mean over runs),
// soundness = fraction of runs with zero unsound tuples. The chaos CLI
// (tools/chaos.cc) and bench_chaos gate on soundness == 1.0.

#ifndef DISCO_CHAOS_CHAOS_HARNESS_H_
#define DISCO_CHAOS_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace disco {
namespace chaos {

struct ChaosOptions {
  /// Seeds swept per scenario: seed_base .. seed_base + seeds - 1.
  int seeds = 25;
  uint64_t seed_base = 1;
  /// Union queries executed per arm (the schedule clock advances to the
  /// mediator's simulated clock before each).
  int queries_per_run = 10;
  /// Rows per source; source i owns keys [i*1000, i*1000 + rows).
  int rows_per_source = 40;
  /// Scenario names to run (empty = AllChaosScenarios()).
  std::vector<std::string> scenarios;
};

/// Outcome of one (scenario, seed) run across all five arms.
struct ChaosRunResult {
  std::string scenario;
  uint64_t seed = 0;

  int queries_ok = 0;      ///< faulty-arm queries that returned ok
  int queries_failed = 0;  ///< faulty-arm queries that errored
  int64_t oracle_tuples = 0;
  int64_t returned_tuples = 0;
  int64_t missing_tuples = 0;
  int64_t unsound_tuples = 0;  ///< returned but absent from the oracle
  int64_t quarantined_rows = 0;
  int64_t warning_count = 0;

  // Contract verdicts.
  bool sound = false;             ///< unsound_tuples == 0
  bool attributed = false;        ///< every missing tuple warned about
  bool breaker_ok = false;        ///< monotone counters, legal states
  bool no_open_calls = false;     ///< open breakers admitted no calls
  bool pools_identical = false;   ///< pool 0 == pool 1 == pool 4 digest
  bool replay_identical = false;  ///< replay arm == pool 4 digest

  /// Human-readable contract violations (empty when passed()).
  std::vector<std::string> violations;

  double availability = 0;  ///< returned_tuples / oracle_tuples

  bool passed() const {
    return sound && attributed && breaker_ok && no_open_calls &&
           pools_identical && replay_identical;
  }
};

/// Aggregate of a full sweep; ToJson() is the BENCH_chaos.json body.
struct ChaosSweepResult {
  int runs = 0;
  int passed = 0;
  double soundness = 0;     ///< fraction of runs with zero unsound tuples
  double availability = 0;  ///< mean per-run availability
  int64_t quarantined_rows = 0;
  std::vector<ChaosRunResult> results;

  bool all_passed() const { return passed == runs; }
  std::string ToJson() const;
};

/// The built-in scenario catalog (docs/ROBUSTNESS.md lists each):
/// outage-domain, flap, latency-storm, malformed-arity,
/// malformed-types, malformed-nonfinite, truncated-stream, mixed.
std::vector<std::string> AllChaosScenarios();

/// Runs one (scenario, seed) pair through all five arms and checks
/// every contract. Unknown scenario names fail with a violation.
ChaosRunResult RunChaosScenario(const std::string& scenario, uint64_t seed,
                                const ChaosOptions& options = {});

/// The full sweep: every scenario x every seed.
ChaosSweepResult RunChaosSweep(const ChaosOptions& options = {});

}  // namespace chaos
}  // namespace disco

#endif  // DISCO_CHAOS_CHAOS_HARNESS_H_
