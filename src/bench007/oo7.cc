#include "bench007/oo7.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "common/str_util.h"

namespace disco {
namespace bench007 {

namespace {

using storage::Tuple;

// Two-character type codes keep the serialized AtomicPart record at 52
// bytes (+4 bytes slot = 56), which at a 96% fill factor of a 4096-byte
// page yields exactly the paper's 70 objects per page / 1000 data pages.
const char* kPartTypes[] = {"t0", "t1", "t2", "t3", "t4",
                            "t5", "t6", "t7", "t8", "t9"};

}  // namespace

Result<std::unique_ptr<sources::DataSource>> BuildOO7Source(
    const OO7Config& config, std::string source_name) {
  std::unique_ptr<sources::DataSource> source =
      sources::MakeObjectDbSource(std::move(source_name), config.pool_pages);
  Rng rng(config.seed);

  // ---- AtomicPart ------------------------------------------------------
  // Five Long attributes + a short type string: 56 bytes of payload, 70
  // objects per 4096-byte page at 96% fill.
  CollectionSchema atomic_schema(
      "AtomicPart", {{"id", AttrType::kLong},
                     {"docId", AttrType::kLong},
                     {"buildDate", AttrType::kLong},
                     {"x", AttrType::kLong},
                     {"y", AttrType::kLong},
                     {"type", AttrType::kString}});
  storage::TableOptions atomic_opts;
  atomic_opts.heap.page_size = config.page_size;
  atomic_opts.heap.fill_factor = config.fill_factor;
  atomic_opts.heap.max_records_per_page = config.atomic_parts_per_page;
  storage::Table* atomic =
      source->CreateTable(atomic_schema, atomic_opts);

  // Insertion order decides clustering: a random permutation of ids makes
  // the Id index unclustered (the Figure 12 regime).
  std::vector<int64_t> ids(static_cast<size_t>(config.num_atomic_parts));
  std::iota(ids.begin(), ids.end(), 0);
  if (!config.clustered_ids) {
    for (size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[rng.NextUint64(i)]);
    }
  }
  for (int64_t id : ids) {
    Tuple t;
    t.push_back(Value(id));
    t.push_back(Value(id / std::max(1, config.atomic_per_composite)));
    t.push_back(Value(rng.NextInt64(0, 999)));           // buildDate
    t.push_back(Value(rng.NextInt64(0, 99999)));         // x
    t.push_back(Value(rng.NextInt64(0, 99999)));         // y
    t.push_back(Value(std::string(
        kPartTypes[rng.NextUint64(10)])));               // type
    DISCO_RETURN_NOT_OK(atomic->Insert(t));
  }
  DISCO_RETURN_NOT_OK(
      atomic->CreateIndex("id", /*clustered=*/config.clustered_ids));
  DISCO_RETURN_NOT_OK(atomic->CreateIndex("docId"));

  // ---- CompositePart ---------------------------------------------------
  CollectionSchema composite_schema(
      "CompositePart", {{"id", AttrType::kLong},
                        {"buildDate", AttrType::kLong},
                        {"documentId", AttrType::kLong}});
  storage::TableOptions composite_opts;
  composite_opts.heap.page_size = config.page_size;
  composite_opts.heap.fill_factor = config.fill_factor;
  storage::Table* composite = source->CreateTable(composite_schema,
                                                  composite_opts);
  for (int i = 0; i < config.num_composite_parts; ++i) {
    Tuple t;
    t.push_back(Value(static_cast<int64_t>(i)));
    t.push_back(Value(rng.NextInt64(0, 999)));
    t.push_back(Value(static_cast<int64_t>(
        rng.NextUint64(static_cast<uint64_t>(
            std::max(1, config.num_documents))))));
    DISCO_RETURN_NOT_OK(composite->Insert(t));
  }
  DISCO_RETURN_NOT_OK(composite->CreateIndex("id"));

  // ---- Connection ------------------------------------------------------
  CollectionSchema connection_schema(
      "Connection", {{"fromId", AttrType::kLong},
                     {"toId", AttrType::kLong},
                     {"length", AttrType::kLong},
                     {"type", AttrType::kString}});
  storage::TableOptions connection_opts;
  connection_opts.heap.page_size = config.page_size;
  connection_opts.heap.fill_factor = config.fill_factor;
  storage::Table* connection = source->CreateTable(connection_schema,
                                                   connection_opts);
  const uint64_t n_atomic = static_cast<uint64_t>(
      std::max(1, config.num_atomic_parts));
  for (int i = 0; i < config.num_atomic_parts; ++i) {
    for (int c = 0; c < config.connections_per_atomic; ++c) {
      Tuple t;
      t.push_back(Value(static_cast<int64_t>(i)));
      t.push_back(Value(static_cast<int64_t>(rng.NextUint64(n_atomic))));
      t.push_back(Value(rng.NextInt64(1, 1000)));
      t.push_back(Value(std::string(kPartTypes[rng.NextUint64(10)])));
      DISCO_RETURN_NOT_OK(connection->Insert(t));
    }
  }
  DISCO_RETURN_NOT_OK(connection->CreateIndex("fromId"));

  // ---- Document --------------------------------------------------------
  CollectionSchema document_schema(
      "Document", {{"id", AttrType::kLong},
                   {"title", AttrType::kString},
                   {"compositePartId", AttrType::kLong}});
  storage::TableOptions document_opts;
  document_opts.heap.page_size = config.page_size;
  document_opts.heap.fill_factor = config.fill_factor;
  storage::Table* document = source->CreateTable(document_schema,
                                                 document_opts);
  for (int i = 0; i < config.num_documents; ++i) {
    Tuple t;
    t.push_back(Value(static_cast<int64_t>(i)));
    t.push_back(Value(StringPrintf("Composite Part %08d", i)));
    t.push_back(Value(static_cast<int64_t>(i)));
    DISCO_RETURN_NOT_OK(document->Insert(t));
  }
  DISCO_RETURN_NOT_OK(document->CreateIndex("id"));

  // Fresh caches: nothing from loading should linger in the pool.
  source->env()->pool.Clear();
  source->env()->pool.ResetStats();
  source->env()->clock.Reset();
  return source;
}

std::string Oo7YaoRuleText(double io_ms, double output_ms, double page_size) {
  // Figure 13, written in the wrapper cost language. `C` is a free
  // collection variable, `id` a literal attribute of AtomicPart, `V` a
  // free value variable; CountPage is a rule-local intermediate.
  return StringPrintf(
      "define IO = %.6g;\n"
      "define Output = %.6g;\n"
      "define PageSize = %.6g;\n"
      "\n"
      "select(C, id <= V) {\n"
      "  CountPage   = C.TotalSize / PageSize;\n"
      "  CountObject = C.CountObject * (V - C.id.Min)\n"
      "              / (C.id.Max - C.id.Min);\n"
      "  ObjectSize  = C.ObjectSize;\n"
      "  TotalSize   = CountObject * ObjectSize;\n"
      "  TimeFirst   = IO;\n"
      "  TimeNext    = Output;\n"
      "  TotalTime   = IO * CountPage\n"
      "              * (1 - exp(-1 * (CountObject / CountPage)))\n"
      "              + CountObject * Output;\n"
      "}\n",
      io_ms, output_ms, page_size);
}

}  // namespace bench007
}  // namespace disco
