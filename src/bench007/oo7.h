// OO7 benchmark database generator [CDN93], scaled to the paper's
// Section 5 setup: an AtomicParts collection of 70 000 objects of 56
// bytes, 70 per 4096-byte page at 96% fill (1000 data pages), with an
// unclustered index on Id whose values are uniformly distributed.
//
// Besides AtomicParts we generate the surrounding OO7 design-library
// schema (CompositeParts, Connections, Documents) so multi-collection
// queries and joins have realistic shape.

#ifndef DISCO_BENCH007_OO7_H_
#define DISCO_BENCH007_OO7_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sources/data_source.h"

namespace disco {
namespace bench007 {

struct OO7Config {
  int num_atomic_parts = 70000;
  int num_composite_parts = 500;
  int atomic_per_composite = 20;    ///< derived docId fanout
  int connections_per_atomic = 3;
  int num_documents = 500;
  uint64_t seed = 7;

  uint32_t page_size = 4096;
  double fill_factor = 0.96;
  int atomic_parts_per_page = 70;   ///< the paper's layout: 1000 pages
  size_t pool_pages = 4096;         ///< holds the whole working set

  /// Insert AtomicParts in Id order (clustered) instead of a random
  /// permutation (unclustered, the Figure 12 regime).
  bool clustered_ids = false;
};

/// Builds an ObjectStore-like data source named `source_name` holding the
/// OO7 tables, with indexes on the id attributes.
Result<std::unique_ptr<sources::DataSource>> BuildOO7Source(
    const OO7Config& config, std::string source_name = "oo7");

/// The Figure 13 wrapper rule: Yao's formula for index scans on
/// AtomicPart by Id range, exactly as a wrapper implementor would export
/// it. `io_ms` and `output_ms` are the measured constants (25 and 9 in
/// the paper).
std::string Oo7YaoRuleText(double io_ms = 25.0, double output_ms = 9.0,
                           double page_size = 4096.0);

}  // namespace bench007
}  // namespace disco

#endif  // DISCO_BENCH007_OO7_H_
