#include "costmodel/registry.h"

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "costlang/compiler.h"
#include "costmodel/generic_model.h"

namespace disco {
namespace costmodel {
namespace {

costlang::CompiledRuleSet CompileRules(const std::string& text) {
  costlang::CompileSchema schema;
  schema.AddCollection("Employee", {"salary", "name"});
  auto rules = costlang::CompileRuleText(text, schema);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  return std::move(*rules);
}

TEST(ScopeTest, RankOrdering) {
  EXPECT_GT(ScopeRank(Scope::kQuery), ScopeRank(Scope::kPredicate));
  EXPECT_GT(ScopeRank(Scope::kPredicate), ScopeRank(Scope::kCollection));
  EXPECT_GT(ScopeRank(Scope::kCollection), ScopeRank(Scope::kWrapper));
  EXPECT_GT(ScopeRank(Scope::kWrapper), ScopeRank(Scope::kLocal));
  EXPECT_GT(ScopeRank(Scope::kLocal), ScopeRank(Scope::kDefault));
}

TEST(ScopeTest, DeriveWrapperScopeFromPattern) {
  costlang::CompiledRuleSet rules = CompileRules(
      "select(C, P) { TotalTime = 1; }\n"
      "select(Employee, P) { TotalTime = 2; }\n"
      "select(Employee, salary = V) { TotalTime = 3; }\n"
      "select(C, salary = 10) { TotalTime = 4; }");
  EXPECT_EQ(DeriveWrapperScope(rules.rules[0].pattern), Scope::kWrapper);
  EXPECT_EQ(DeriveWrapperScope(rules.rules[1].pattern), Scope::kCollection);
  EXPECT_EQ(DeriveWrapperScope(rules.rules[2].pattern), Scope::kPredicate);
  EXPECT_EQ(DeriveWrapperScope(rules.rules[3].pattern), Scope::kPredicate);
}

TEST(RegistryTest, CandidatesSortedByScopeThenSpecificityThenSeq) {
  RuleRegistry registry;
  ASSERT_TRUE(registry
                  .AddDefaultRules(CompileRules(
                      "select(C, P) { TotalTime = 0; }"))
                  .ok());
  ASSERT_TRUE(registry
                  .AddWrapperRules(
                      "src", CompileRules(
                                 "select(C, P) { TotalTime = 1; }\n"
                                 "select(Employee, salary = V) "
                                 "{ TotalTime = 2; }\n"
                                 "select(Employee, P) { TotalTime = 3; }"))
                  .ok());

  const auto& candidates =
      registry.Candidates("src", algebra::OpKind::kSelect);
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[0].scope, Scope::kPredicate);
  EXPECT_EQ(candidates[1].scope, Scope::kCollection);
  EXPECT_EQ(candidates[2].scope, Scope::kWrapper);
  EXPECT_EQ(candidates[3].scope, Scope::kDefault);
}

TEST(RegistryTest, WrapperRulesInvisibleToOtherSources) {
  RuleRegistry registry;
  ASSERT_TRUE(registry
                  .AddDefaultRules(CompileRules("scan(C) { TotalTime = 0; }"))
                  .ok());
  ASSERT_TRUE(registry
                  .AddWrapperRules("a", CompileRules(
                                            "scan(C) { TotalTime = 1; }"))
                  .ok());
  EXPECT_EQ(registry.Candidates("a", algebra::OpKind::kScan).size(), 2u);
  EXPECT_EQ(registry.Candidates("b", algebra::OpKind::kScan).size(), 1u);
  EXPECT_EQ(registry.Candidates("", algebra::OpKind::kScan).size(), 1u);
}

TEST(RegistryTest, LocalRulesOnlyAtMediator) {
  RuleRegistry registry;
  ASSERT_TRUE(registry
                  .AddDefaultRules(CompileRules("scan(C) { TotalTime = 0; }"))
                  .ok());
  ASSERT_TRUE(registry
                  .AddLocalRules(CompileRules("scan(C) { TotalTime = 9; }"))
                  .ok());
  EXPECT_EQ(registry.Candidates("", algebra::OpKind::kScan).size(), 2u);
  // A wrapper context sees only the default rule.
  EXPECT_EQ(registry.Candidates("some_src", algebra::OpKind::kScan).size(),
            1u);
}

TEST(RegistryTest, SourceNamesCaseInsensitive) {
  RuleRegistry registry;
  ASSERT_TRUE(registry
                  .AddWrapperRules("MySrc", CompileRules(
                                                "scan(C) { TotalTime = 1; }"))
                  .ok());
  EXPECT_EQ(registry.Candidates("mysrc", algebra::OpKind::kScan).size(), 1u);
  EXPECT_EQ(registry.Candidates("MYSRC", algebra::OpKind::kScan).size(), 1u);
}

TEST(RegistryTest, EmptySourceNameRejectedForWrapperRules) {
  RuleRegistry registry;
  EXPECT_TRUE(registry
                  .AddWrapperRules("", CompileRules(
                                           "scan(C) { TotalTime = 1; }"))
                  .IsInvalidArgument());
}

TEST(RegistryTest, QueryCostRoundTrip) {
  RuleRegistry registry;
  auto plan = algebra::Select(algebra::Scan("Employee"), "salary",
                              algebra::CmpOp::kEq, Value(int64_t{7}));
  EXPECT_EQ(registry.QueryCost("src", *plan), nullptr);

  CostVector cost = CostVector::Full(10, 1000, 100, 5, 1, 42);
  registry.AddQueryCost("src", *plan, cost);
  const CostVector* found = registry.QueryCost("src", *plan);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->total_time(), 42);
  EXPECT_EQ(registry.num_query_entries(), 1);

  // A structurally different plan misses.
  auto other = algebra::Select(algebra::Scan("Employee"), "salary",
                               algebra::CmpOp::kEq, Value(int64_t{8}));
  EXPECT_EQ(registry.QueryCost("src", *other), nullptr);
  // Different source misses.
  EXPECT_EQ(registry.QueryCost("other", *plan), nullptr);
}

TEST(RegistryTest, GenericModelInstalls) {
  RuleRegistry registry;
  ASSERT_TRUE(InstallGenericModel(&registry, CalibrationParams()).ok());
  // Every operator kind has at least one default-scope candidate.
  for (int k = 0; k < algebra::kNumOpKinds; ++k) {
    EXPECT_FALSE(
        registry.Candidates("anywhere", static_cast<algebra::OpKind>(k))
            .empty())
        << algebra::OpKindToString(static_cast<algebra::OpKind>(k));
  }
  EXPECT_GT(registry.num_rules(), 15);
}

TEST(RegistryTest, DescribeListsRules) {
  RuleRegistry registry;
  ASSERT_TRUE(registry
                  .AddWrapperRules("src", CompileRules(
                                              "scan(C) { TotalTime = 1; }"))
                  .ok());
  std::string desc = registry.Describe();
  EXPECT_NE(desc.find("wrapper"), std::string::npos);
  EXPECT_NE(desc.find("scan"), std::string::npos);
}

TEST(CostVectorTest, SetGetAndMask) {
  CostVector v;
  EXPECT_FALSE(v.IsComputed(CostVarId::kTotalTime));
  EXPECT_TRUE(v.Get(CostVarId::kTotalTime).status().IsExecutionError());
  v.Set(CostVarId::kTotalTime, 12.5);
  EXPECT_TRUE(v.IsComputed(CostVarId::kTotalTime));
  EXPECT_DOUBLE_EQ(*v.Get(CostVarId::kTotalTime), 12.5);
  EXPECT_DOUBLE_EQ(v.GetOrZero(CostVarId::kTimeNext), 0);
  EXPECT_NE(v.ToString().find("TotalTime"), std::string::npos);
}

TEST(CostVectorTest, FullSetsEverything) {
  CostVector v = CostVector::Full(1, 2, 3, 4, 5, 6);
  for (int i = 0; i < kNumCostVars; ++i) {
    EXPECT_TRUE(v.IsComputed(static_cast<CostVarId>(i)));
  }
  EXPECT_DOUBLE_EQ(v.count_object(), 1);
  EXPECT_DOUBLE_EQ(v.total_size(), 2);
  EXPECT_DOUBLE_EQ(v.object_size(), 3);
  EXPECT_DOUBLE_EQ(v.time_first(), 4);
  EXPECT_DOUBLE_EQ(v.time_next(), 5);
  EXPECT_DOUBLE_EQ(v.total_time(), 6);
}

}  // namespace
}  // namespace costmodel
}  // namespace disco
